"""Benchmark: regenerate Figure 4 (execution time relative to an ideal SQ).

Simulates every proxy workload under the ideal baseline (3-cycle associative
SQ with oracle scheduling) and the five compared configurations, then prints
per-benchmark relative execution times and the per-suite / overall geometric
means, with the paper's geometric means alongside.

Assertions check the ordering the paper reports, not absolute numbers:

* the realistic configurations are within a few percent of the ideal SQ on
  average;
* ``indexed-3-fwd+dly`` is much closer to the ideal SQ than
  ``indexed-3-fwd`` (delay prediction recovers most of the loss);
* ``indexed-3-fwd+dly`` is competitive with the 5-cycle associative SQ —
  matching or beating it on a substantial fraction of programs.
"""

from conftest import run_once

from repro.harness.figure4 import run_figure4
from repro.harness.paper_data import FIGURE4_GMEANS
from repro.workloads.suites import workload_names


def test_figure4_relative_performance(benchmark, bench_settings, bench_workloads, bench_engine):
    names = bench_workloads or workload_names()
    result = run_once(benchmark, run_figure4, workloads=names, settings=bench_settings,
                      engine=bench_engine)
    print()
    print(result.render())

    gmeans = result.gmeans()["all"]

    # Ordering: the indexed SQ without delay is the worst configuration on
    # average; adding delay prediction recovers most of the gap.
    assert gmeans["indexed-3-fwd+dly"] < gmeans["indexed-3-fwd"]
    assert gmeans["associative-3"] <= gmeans["indexed-3-fwd"]

    # Magnitudes: all realistic configurations stay within ~15% of ideal on
    # average (paper: 1.4% - 6.3%), and indexed+delay within ~8% (paper 3.3%).
    for config, value in gmeans.items():
        assert 0.9 < value < 1.15, (config, value)
    assert gmeans["indexed-3-fwd+dly"] < 1.08

    # The indexed SQ with delay matches or beats the realistic associative SQ
    # on a substantial fraction of programs (paper: 31 of 47).
    comparison = result.wins_vs("indexed-3-fwd+dly", "associative-5-predictive",
                                tolerance=0.01)
    competitive = comparison["wins"] + comparison["ties"]
    assert competitive >= 0.4 * len(result.rows)

    print("\nGeometric means vs paper:")
    for config in ("associative-3", "indexed-3-fwd", "indexed-3-fwd+dly"):
        paper = FIGURE4_GMEANS["all"].get(config)
        print(f"  {config:22s} measured {gmeans[config]:.3f}   paper {paper:.3f}")

    benchmark.extra_info.update({f"gmean_{k}": round(v, 4) for k, v in gmeans.items()})
    benchmark.extra_info["indexed_vs_assoc5"] = comparison
    benchmark.extra_info["engine"] = dict(bench_engine.last_run_stats)


def test_figure4_pathological_benchmarks(benchmark, bench_settings, bench_engine):
    """The per-benchmark stories the paper tells: not-most-recent forwarding
    (mesa.texgen) and FSP conflicts (eon) hurt the raw indexed SQ and are
    largely repaired by delay prediction."""
    subset = ["mesa.t", "eon.c", "vortex", "adpcm.d"]
    result = run_once(benchmark, run_figure4, workloads=subset, settings=bench_settings,
                      engine=bench_engine)
    print()
    print(result.render())

    for name in ("mesa.t", "eon.c"):
        row = result.row(name)
        raw = row.relative_time["indexed-3-fwd"]
        with_delay = row.relative_time["indexed-3-fwd+dly"]
        assert raw > 1.05, name                      # visible slowdown without delay
        assert with_delay < raw, name                # delay recovers much of it

    quiet = result.row("adpcm.d")
    for config, value in quiet.relative_time.items():
        assert value < 1.03, (config, value)         # no forwarding -> no effect

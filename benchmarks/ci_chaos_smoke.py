#!/usr/bin/env python
"""CI chaos smoke: the sampled Figure-4 smoke under a fixed fault plan.

Runs the same tiny sampled Figure-4 grid as ``ci_sampled_smoke.py`` twice:
once clean, then cold + warm under a deterministic ``REPRO_FAULT_PLAN``
that crashes a worker, hangs a job past its deadline, and corrupts /
truncates cache blobs on write.  Asserts:

* the faulted sweep merges to results bit-identical to the clean one,
* the injected crash and hang were actually detected and recovered
  (``worker_crashes`` / ``job_timeouts`` counters in the run stats),
* every blob the plan damaged was quarantined and recomputed on re-read,
* teardown leaves no orphan worker processes and no ``*.tmp`` files.

A second, MLP-enabled leg then repeats the clean / cold / warm comparison
with the non-blocking memory hierarchy on and *checkpointed* warming
(``checkpoints=True``), so the fault plan's blob corruption also lands on
checkpoint-store payloads carrying the v4 schema's new classes
(:class:`~repro.memory.mlp.NonBlockingHierarchy`, its MSHR file and
prefetcher) — damaged snapshots must quarantine and regenerate, never
deserialize into wrong warm state.

Both legs run against private temporary cache directories — deliberately
not the shared ``actions/cache`` store, so injected damage can never
poison a cache other CI steps reuse.  Exits nonzero on any failure.
"""

import dataclasses
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.exec import ExperimentEngine, ResultCache  # noqa: E402
from repro.harness.figure4 import run_figure4  # noqa: E402
from repro.harness.runner import ExperimentSettings  # noqa: E402
from repro.memory.hierarchy import MemoryHierarchyConfig  # noqa: E402
from repro.memory.mshr import MLPConfig, PrefetchConfig  # noqa: E402
from repro.pipeline.config import CoreConfig  # noqa: E402
from repro.sampling import SamplingPlan  # noqa: E402

WORKLOADS = ("gzip", "swim")
CONFIGS = ("associative-5-predictive", "indexed-3-fwd+dly")

PLAN = SamplingPlan(interval_length=800, detailed_warmup=800, period=8_000,
                    functional_warmup=4_000, seed=0)
SETTINGS = ExperimentSettings(instructions=32_000, stats_warmup_fraction=0.0,
                              sampling=PLAN)

#: The MLP leg: same plan, non-blocking hierarchy with prefetching, warmed
#: through the checkpoint store (full-history snapshots hold the new
#: classes, so blob faults exercise the v4 checkpoint schema).
MLP_WORKLOADS = ("swim",)
MLP_SETTINGS = dataclasses.replace(
    SETTINGS,
    core=CoreConfig(memory=MemoryHierarchyConfig(
        mlp=MLPConfig(enabled=True, mshr_entries=8,
                      prefetch=PrefetchConfig(enabled=True)))),
    checkpoints=True)

#: The 2x(2+1) grid has job indices 0..5: crash job 1 once, hang job 5 once
#: (killed at the REPRO_JOB_TIMEOUT deadline below), and damage ~20% of
#: cache writes under a fixed seed so the run is reproducible.
FAULT_PLAN = ("worker_crash@job:1,hang@job:5,"
              "corrupt_blob@p=0.1,truncate_blob@p=0.1,seed=13")
JOB_TIMEOUT_S = "15"


def _signature(result):
    return [(row.name, row.baseline_cycles, tuple(sorted(row.relative_time.items())))
            for row in result.rows]


def _run(cache_dir, settings=SETTINGS, workloads=WORKLOADS,
         checkpoint_dir=None):
    engine = ExperimentEngine(jobs=2, cache=ResultCache(cache_dir),
                              checkpoint_dir=checkpoint_dir)
    start = time.perf_counter()
    result = run_figure4(workloads=list(workloads), settings=settings,
                         configs=CONFIGS, engine=engine)
    return result, dict(engine.last_run_stats), time.perf_counter() - start


def _assert_clean_teardown(*dirs):
    for child in multiprocessing.active_children():
        child.join(5.0)
    assert multiprocessing.active_children() == [], "orphan worker processes"
    leftovers = [p for d in dirs for p in Path(d).rglob("*.tmp")]
    assert not leftovers, f"leaked temp files: {leftovers}"


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-clean-") as clean_dir, \
            tempfile.TemporaryDirectory(prefix="repro-chaos-faulted-") as chaos_dir:
        os.environ.pop("REPRO_FAULT_PLAN", None)
        clean, _clean_stats, clean_s = _run(clean_dir)

        os.environ["REPRO_FAULT_PLAN"] = FAULT_PLAN
        os.environ["REPRO_JOB_TIMEOUT"] = JOB_TIMEOUT_S
        try:
            cold, cold_stats, cold_s = _run(chaos_dir)
            # The warm pass re-reads every blob the cold pass wrote, so
            # injected corruption surfaces here as quarantine + recompute.
            warm, warm_stats, warm_s = _run(chaos_dir)
        finally:
            os.environ.pop("REPRO_FAULT_PLAN", None)
            os.environ.pop("REPRO_JOB_TIMEOUT", None)

        reference = _signature(clean)
        assert _signature(cold) == reference, "faulted run diverged from clean"
        assert _signature(warm) == reference, "faulted warm re-run diverged"

        assert cold_stats.get("worker_crashes", 0) >= 1, cold_stats
        assert cold_stats.get("job_timeouts", 0) >= 1, cold_stats
        assert cold_stats.get("pool_respawns", 0) >= 1, cold_stats

        injected = (cold_stats.get("injected_corrupt_blobs", 0)
                    + cold_stats.get("injected_truncated_blobs", 0))
        quarantined = warm_stats.get("blobs_quarantined", 0)
        if injected:
            assert quarantined >= 1, (cold_stats, warm_stats)

        _assert_clean_teardown(clean_dir, chaos_dir)

        print(f"chaos smoke: clean {clean_s:.1f}s, faulted cold {cold_s:.1f}s "
              f"(crashes={cold_stats.get('worker_crashes', 0)}, "
              f"timeouts={cold_stats.get('job_timeouts', 0)}, "
              f"retries={cold_stats.get('job_retries', 0)}, "
              f"damaged blobs={injected}), warm {warm_s:.1f}s "
              f"(quarantined+recomputed={quarantined}); "
              f"all legs bit-identical, teardown clean")

    # ---- MLP-enabled checkpointed leg (v4 checkpoint schema under faults) --
    with tempfile.TemporaryDirectory(prefix="repro-chaos-mlp-clean-") as clean_dir, \
            tempfile.TemporaryDirectory(prefix="repro-chaos-mlp-faulted-") as chaos_dir:
        clean, _stats, clean_s = _run(
            clean_dir, settings=MLP_SETTINGS, workloads=MLP_WORKLOADS,
            checkpoint_dir=os.path.join(clean_dir, "ckpt"))
        os.environ["REPRO_FAULT_PLAN"] = FAULT_PLAN
        os.environ["REPRO_JOB_TIMEOUT"] = JOB_TIMEOUT_S
        try:
            cold, cold_stats, cold_s = _run(
                chaos_dir, settings=MLP_SETTINGS, workloads=MLP_WORKLOADS,
                checkpoint_dir=os.path.join(chaos_dir, "ckpt"))
            warm, warm_stats, warm_s = _run(
                chaos_dir, settings=MLP_SETTINGS, workloads=MLP_WORKLOADS,
                checkpoint_dir=os.path.join(chaos_dir, "ckpt"))
        finally:
            os.environ.pop("REPRO_FAULT_PLAN", None)
            os.environ.pop("REPRO_JOB_TIMEOUT", None)

        reference = _signature(clean)
        assert _signature(cold) == reference, "MLP faulted run diverged"
        assert _signature(warm) == reference, "MLP faulted warm re-run diverged"
        assert cold_stats.get("mshr_jobs", 0) > 0, cold_stats
        assert cold_stats.get("worker_crashes", 0) >= 1, cold_stats

        _assert_clean_teardown(clean_dir, chaos_dir)

        print(f"chaos smoke (MLP+checkpoints): clean {clean_s:.1f}s, "
              f"faulted cold {cold_s:.1f}s, warm {warm_s:.1f}s "
              f"(mshr jobs={cold_stats.get('mshr_jobs', 0)}, "
              f"crashes={cold_stats.get('worker_crashes', 0)}, "
              f"quarantined={warm_stats.get('blobs_quarantined', 0)}); "
              f"bit-identical under the v4 checkpoint schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())

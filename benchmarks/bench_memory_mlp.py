"""Benchmark: MLP-aware memory sweep (MSHR entries x SQ policy x prefetch).

Runs a Figure-4-style grid over the non-blocking memory hierarchy on the
memory-bound workloads — SQ policies crossed with MSHR entry counts and a
stride-prefetcher cell — four ways through the experiment engine (serial,
parallel, cold result cache, warm result cache) and verifies that all of
them produce *identical* statistics before reporting the sweep's shape:

* the degenerate cell (``mshr_entries=1``, no non-blocking L2, no
  prefetcher) is bit-identical to the blocking hierarchy, per workload and
  policy — the PR 7 degeneracy anchor, here checked through the full
  engine path rather than at the hierarchy level;
* CPI separates measurably across MSHR entry counts (bounded entries add
  structural stalls; more entries approach the blocking model's
  MLP-optimistic limit), with identical committed-instruction counts;
* prefetching issues and scores useful prefetches without polluting the
  demand-miss accounting.

A sampled + checkpointed leg then runs one MLP-enabled cell through the
checkpoint store twice (cold generation, warm reload) and serial vs
parallel, asserting bit-identity — the functional warmer and checkpoint
schema carrying the new hierarchy classes end to end.

The measurements land in ``BENCH_memory.json`` at the repo root.
"""

import dataclasses
import os
import time

from _common import DEFAULT_INSTRUCTIONS, write_bench_json

from repro.exec import ExperimentEngine, JobSpec, available_cpus
from repro.harness.runner import ExperimentSettings
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.mshr import MLPConfig, PrefetchConfig
from repro.pipeline.config import CoreConfig
from repro.sampling.driver import run_sampled_workload
from repro.sampling.plan import SamplingPlan

#: The sweep runs on the memory-bound corner of the suite: mcf's pointer
#: chases stress the MSHR file, swim's strided fp loops reward prefetching.
MEMORY_WORKLOADS = ("swim", "mcf")

#: One associative and one indexed SQ policy — enough to show the MLP knobs
#: compose with the paper's store-queue axis without exploding the grid.
MEMORY_CONFIGS = ("associative-5-predictive", "indexed-3-fwd+dly")

#: Grid cells: label -> MLP configuration.  ``blocking`` is the default
#: (MLP modeling off); ``mshr1`` is the degenerate non-blocking config that
#: must reproduce it bit for bit.
MLP_CELLS = (
    ("blocking", MLPConfig()),
    ("mshr1", MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False)),
    ("mshr2", MLPConfig(enabled=True, mshr_entries=2)),
    ("mshr4", MLPConfig(enabled=True, mshr_entries=4)),
    ("mshr16", MLPConfig(enabled=True, mshr_entries=16)),
    ("mshr8+pf", MLPConfig(enabled=True, mshr_entries=8,
                           prefetch=PrefetchConfig(enabled=True))),
)

SAMPLED_CELL = ("swim", "associative-5-predictive",
                MLPConfig(enabled=True, mshr_entries=8,
                          prefetch=PrefetchConfig(enabled=True)))
SAMPLED_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_MEMORY_SAMPLED_INSTRUCTIONS", "30000"))


def _settings(mlp: MLPConfig, instructions: int) -> ExperimentSettings:
    core = CoreConfig(memory=MemoryHierarchyConfig(mlp=mlp))
    return ExperimentSettings(instructions=instructions, core=core,
                              stats_warmup_fraction=0.25)


def _specs(instructions: int):
    """The sweep's job list plus aligned ``(workload, config, cell)`` keys."""
    keys, specs = [], []
    for workload in MEMORY_WORKLOADS:
        for config in MEMORY_CONFIGS:
            for label, mlp in MLP_CELLS:
                keys.append((workload, config, label))
                specs.append(JobSpec(workload, config,
                                     _settings(mlp, instructions)))
    return keys, specs


def _signature(records):
    """Everything that must be identical across execution strategies."""
    return [(record.workload, record.config_name,
             tuple(sorted(record.result.stats.as_dict().items())),
             tuple(sorted(record.result.extra.items())))
            for record in records]


def measure_memory_mlp(cache_dir, instructions=None, parallel_jobs=None):
    """Measure the sweep four ways and the sampled+checkpointed leg.

    Returns a dict of measurements; ``assert_memory_mlp`` applies the
    fidelity assertions.  Serial/parallel/cached bit-identity is asserted
    here because a mismatch makes every other number meaningless.
    """
    instructions = instructions or DEFAULT_INSTRUCTIONS
    cpus = available_cpus()
    if parallel_jobs is None:
        parallel_jobs = max(4, cpus) if cpus >= 4 else max(2, cpus)
    keys, specs = _specs(instructions)

    serial_engine = ExperimentEngine(jobs=1, cache=False)
    start = time.perf_counter()
    serial = serial_engine.run(specs, chunksize=len(MLP_CELLS))
    serial_s = time.perf_counter() - start
    engine_stats = dict(serial_engine.last_run_stats)

    parallel_engine = ExperimentEngine(jobs=parallel_jobs, cache=False)
    start = time.perf_counter()
    parallel = parallel_engine.run(specs, chunksize=len(MLP_CELLS))
    parallel_s = time.perf_counter() - start

    cached_engine = ExperimentEngine(jobs=parallel_jobs, cache=True,
                                     cache_dir=cache_dir)
    start = time.perf_counter()
    cold = cached_engine.run(specs, chunksize=len(MLP_CELLS))
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = cached_engine.run(specs, chunksize=len(MLP_CELLS))
    warm_s = time.perf_counter() - start

    want = _signature(serial)
    assert _signature(parallel) == want, "parallel != serial"
    assert _signature(cold) == want, "cold cache != serial"
    assert _signature(warm) == want, "warm cache != serial"

    cells = {}
    for (workload, config, label), record in zip(keys, serial):
        stats = record.result.stats
        cells["/".join((workload, config, label))] = {
            "cycles": stats.cycles,
            "committed": stats.committed,
            "ipc": stats.ipc,
            "mshr_stall_cycles": stats.mshr_stall_cycles,
            "mshr_demand_misses": stats.mshr_demand_misses,
            "misses_coalesced": stats.misses_coalesced,
            "prefetch_issued": stats.prefetch_issued,
            "prefetch_useful": stats.prefetch_useful,
            "mshr_occupancy": stats.mshr_occupancy,
            "mlp_avg": record.result.extra.get("mlp_avg", 0.0),
        }

    # Sampled + checkpointed leg: one MLP-enabled cell through the
    # checkpoint store, cold vs warm and serial vs parallel.
    workload, config, mlp = SAMPLED_CELL
    plan = SamplingPlan(interval_length=500, detailed_warmup=300,
                        period=10_000, functional_warmup=2_000, seed=3)
    sampled_settings = ExperimentSettings(
        instructions=SAMPLED_INSTRUCTIONS,
        core=CoreConfig(memory=MemoryHierarchyConfig(mlp=mlp)),
        sampling=plan, checkpoints=True)
    ckpt_dir = os.path.join(cache_dir, "mlp-checkpoints")
    legs = {}
    for leg, jobs in (("cold", 1), ("warm_serial", 1),
                      ("warm_parallel", parallel_jobs)):
        start = time.perf_counter()
        record = run_sampled_workload(
            workload, config,
            dataclasses.replace(sampled_settings, jobs=jobs),
            checkpoint_dir=ckpt_dir)
        wall = time.perf_counter() - start
        sampled = record.result.sampled
        legs[leg] = {
            "wall_s": wall,
            "stats": tuple(sorted(record.result.stats.as_dict().items())),
            "cpi_mean": sampled.cpi_mean,
            "interval_cycles": [m.cycles for m in sampled.intervals],
        }

    return {
        "instructions": instructions,
        "sampled_instructions": SAMPLED_INSTRUCTIONS,
        "cpus": cpus,
        "parallel_jobs": parallel_jobs,
        "grid_jobs": len(specs),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cold_cache_s": cold_s,
        "warm_cache_s": warm_s,
        "warm_cache_speedup": serial_s / warm_s if warm_s else 0.0,
        "engine_stats": engine_stats,
        "cells": cells,
        "checkpointed_legs": legs,
    }


def assert_memory_mlp(data: dict) -> None:
    """The sweep's fidelity assertions (see module docstring)."""
    cells = data["cells"]

    def cell(workload, config, label):
        return cells["/".join((workload, config, label))]

    full_fidelity = data["instructions"] >= 8000

    for workload in MEMORY_WORKLOADS:
        for config in MEMORY_CONFIGS:
            # Degeneracy anchor: mshr1 == blocking, bit for bit.
            assert cell(workload, config, "mshr1") == \
                cell(workload, config, "blocking"), (workload, config)

            # Same work retired in every cell, up to one commit burst: the
            # stats-warmup cutoff lands mid-cycle, so cells whose timing
            # differs may reset the counters a few commits apart.
            committed = {cells[k]["committed"] for k in cells
                         if k.startswith(f"{workload}/{config}/")}
            assert max(committed) - min(committed) <= 16, \
                (workload, config, committed)

            # Bounded MSHRs only *add* structural stalls: cycles decrease
            # (weakly) with entries, approaching the blocking anchor.
            tight = cell(workload, config, "mshr2")
            mid = cell(workload, config, "mshr4")
            roomy = cell(workload, config, "mshr16")
            assert tight["cycles"] >= mid["cycles"] >= roomy["cycles"], \
                (workload, config)
            assert tight["mshr_stall_cycles"] >= roomy["mshr_stall_cycles"], \
                (workload, config)
            # With ample entries the bounded model converges on the
            # blocking model's MLP-optimistic timing.  Not a bound in
            # either direction — fills install lines lazily, so LRU and
            # eviction order can differ slightly — hence a band.
            blocking_cycles = cell(workload, config, "blocking")["cycles"]
            assert abs(roomy["cycles"] - blocking_cycles) <= \
                0.1 * blocking_cycles, (workload, config)

            pf = cell(workload, config, "mshr8+pf")
            assert pf["prefetch_useful"] <= pf["prefetch_issued"], \
                (workload, config)

            if full_fidelity:
                # Measurable CPI separation across the MSHR axis.
                assert tight["cycles"] > roomy["cycles"], (workload, config)
                assert tight["mshr_stall_cycles"] > 0, (workload, config)
                assert roomy["mlp_avg"] >= 1.0, (workload, config)

    if full_fidelity:
        # The strided fp workload must show a *large* MLP win and working
        # prefetches (bands calibrated on the default 8000-instruction
        # traces; reduced runs still check the structural orderings above).
        for config in MEMORY_CONFIGS:
            tight = cell("swim", config, "mshr2")
            roomy = cell("swim", config, "mshr16")
            assert tight["cycles"] >= 1.5 * roomy["cycles"], config
            pf = cell("swim", config, "mshr8+pf")
            assert pf["prefetch_issued"] > 0, config
            assert pf["prefetch_useful"] > 0, config

    # MSHR counters surface through the engine's supervision stats.
    engine_stats = data["engine_stats"]
    assert engine_stats["mshr_jobs"] > 0, engine_stats
    assert engine_stats["mshr_demand_misses"] > 0, engine_stats

    # Checkpointed sampled leg: cold generation, warm reload, and the
    # parallel fan-out are bit-identical.
    legs = data["checkpointed_legs"]
    assert legs["warm_serial"]["stats"] == legs["cold"]["stats"], "warm != cold"
    assert legs["warm_parallel"]["stats"] == legs["cold"]["stats"], \
        "parallel != cold"
    assert legs["warm_parallel"]["interval_cycles"] == \
        legs["cold"]["interval_cycles"]


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-memory-") as cache_dir:
        data = measure_memory_mlp(cache_dir=cache_dir)
    assert_memory_mlp(data)
    path = write_bench_json("memory", data)
    swim = data["cells"]["swim/associative-5-predictive/mshr2"]["cycles"]
    roomy = data["cells"]["swim/associative-5-predictive/mshr16"]["cycles"]
    print(f"memory sweep: swim mshr2={swim} vs mshr16={roomy} cycles, "
          f"{data['grid_jobs']} cells, serial {data['serial_s']:.1f}s -> {path.name}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test: checkpointed sampled sweep with warm-store reuse.

Runs a small sampled Figure-4 grid through the engine **twice**, each time
against a *fresh* result cache (so every interval really simulates) but the
same persistent checkpoint store:

* phase A may generate checkpoints (cold store) or reuse them (store
  restored by ``actions/cache``) — both are correct;
* phase B must serve every (workload, configuration) pair from the warm
  store: ``checkpoint_generated == 0``, everything reused, and the merged
  results bit-identical to phase A.

Designed for the GitHub Actions job (see ``.github/workflows/ci.yml``),
where ``.repro-checkpoints/`` is shared across runs via ``actions/cache``;
snapshot keys cover source fingerprints and the plan, so restoring a stale
store is always safe (changed sources simply miss and regenerate).  Exits
nonzero on any failure.
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.exec import ExperimentEngine, JobSpec, ResultCache  # noqa: E402
from repro.harness.runner import ExperimentSettings  # noqa: E402
from repro.sampling import SamplingPlan  # noqa: E402

WORKLOADS = ("gzip", "swim")
CONFIGS = ("associative-5-predictive", "indexed-3-fwd+dly")

PLAN = SamplingPlan(interval_length=800, detailed_warmup=800, period=8_000,
                    functional_warmup=4_000, seed=0)
SETTINGS = ExperimentSettings(instructions=32_000, stats_warmup_fraction=0.0,
                              sampling=PLAN, checkpoints=True)


def _signature(records):
    return [(record.workload, record.config_name,
             tuple(sorted(record.result.stats.as_dict().items())))
            for record in records]


def _sweep(result_cache_dir) -> tuple:
    engine = ExperimentEngine.from_settings(
        SETTINGS, cache=ResultCache(result_cache_dir))
    specs = [JobSpec(workload, config, SETTINGS)
             for workload in WORKLOADS for config in CONFIGS]
    start = time.perf_counter()
    records = engine.run(specs)
    return records, dict(engine.last_run_stats), time.perf_counter() - start


def main() -> int:
    identities = len(WORKLOADS) * len(CONFIGS)
    with tempfile.TemporaryDirectory(prefix="repro-ck-smoke-") as root:
        records_a, stats_a, wall_a = _sweep(os.path.join(root, "results-a"))
        records_b, stats_b, wall_b = _sweep(os.path.join(root, "results-b"))

    for stats in (stats_a, stats_b):
        # Fresh result caches: reuse must come from the checkpoint store.
        assert stats["cache_hits"] == 0, stats
        assert stats["checkpoint_identities"] == identities, stats
    # No generation passes at all in phase B (checkpoint_passes also covers
    # shared-only regeneration, which reports zero generated identities).
    assert stats_b["checkpoint_passes"] == 0, stats_b
    assert stats_b["checkpoint_generated"] == 0, stats_b
    assert stats_b["checkpoint_reused"] == identities, stats_b
    assert _signature(records_a) == _signature(records_b), \
        "warm-store re-run diverged"
    for record in records_a:
        assert record.result.sampled.cpi_mean > 0.0, record

    print(f"checkpointed smoke: {len(WORKLOADS)} workloads x "
          f"{len(CONFIGS)} configs, "
          f"{PLAN.num_intervals(SETTINGS.instructions)} intervals each; "
          f"phase A {wall_a:.1f}s "
          f"({stats_a['checkpoint_generated']} generated, "
          f"{stats_a['checkpoint_reused']} reused), "
          f"phase B {wall_b:.1f}s (all {stats_b['checkpoint_reused']} "
          f"reused, bit-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

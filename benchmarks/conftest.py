"""Pytest configuration for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  Because a
single regeneration already simulates dozens of (workload, configuration)
pairs, every benchmark is run exactly once (``rounds=1``) — the timing
reported by pytest-benchmark is the cost of regenerating the artifact, and
the artifact itself is printed and attached to ``benchmark.extra_info``.

All simulation grids execute through :class:`repro.exec.ExperimentEngine`:
jobs fan out over a process pool and finished cells are memoized on disk,
so a re-run after an interrupted sweep only simulates the missing cells.
Cached cells make the pytest-benchmark wall time an underestimate of full
regeneration cost — each bench attaches ``engine`` stats (cache hits vs
simulated) to ``extra_info`` so the timing stays interpretable;
``benchmarks/run_all.py`` disables caching for its timed runs and is the
authoritative trajectory measurement.

The knobs, helpers, and the ``BENCH_*.json`` writer live in
:mod:`_common` (pytest-free, shared with ``run_all.py`` and the
``repro-bench`` console entry point); this module adds only the fixtures.
"""

import pytest

# Re-exported so benches can keep importing everything `from conftest`.
from _common import (  # noqa: F401
    DEFAULT_INSTRUCTIONS,
    DEFAULT_JOBS,
    REPO_ROOT,
    WORKLOAD_SUBSET,
    run_environment,
    run_once,
    write_bench_json,
)

from repro.exec import ExperimentEngine
from repro.harness.runner import ExperimentSettings


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by all timing benchmarks."""
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS,
                              stats_warmup_fraction=0.25,
                              jobs=DEFAULT_JOBS)


@pytest.fixture(scope="session")
def bench_engine(bench_settings) -> ExperimentEngine:
    """The experiment engine shared by all timing benchmarks."""
    return ExperimentEngine.from_settings(bench_settings)


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset override (None means the experiment's default set)."""
    return WORKLOAD_SUBSET

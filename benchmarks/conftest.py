"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  Because a
single regeneration already simulates dozens of (workload, configuration)
pairs, every benchmark is run exactly once (``rounds=1``) — the timing
reported by pytest-benchmark is the cost of regenerating the artifact, and
the artifact itself is printed and attached to ``benchmark.extra_info``.

All simulation grids execute through :class:`repro.exec.ExperimentEngine`:
jobs fan out over a process pool and finished cells are memoized on disk
(see ``REPRO_CACHE_DIR`` below), so a re-run after an interrupted sweep only
simulates the missing cells.  Cached cells make the pytest-benchmark wall
time an underestimate of full regeneration cost — each bench attaches
``engine`` stats (cache hits vs simulated) to ``extra_info`` so the timing
stays interpretable; ``benchmarks/run_all.py`` disables caching for its
timed runs and is the authoritative trajectory measurement.

Environment knobs:

``REPRO_BENCH_INSTRUCTIONS``
    Dynamic instructions per workload trace (default 8000).  The paper uses
    10M-instruction samples; the default here keeps the full 47-workload
    sweep to a few minutes while preserving the qualitative shape.  Increase
    it for higher-fidelity runs.
``REPRO_BENCH_WORKLOADS``
    Comma-separated subset of workload names (default: all 47 for Table 3 /
    Figure 4, the paper's nine for Figure 5).
``REPRO_JOBS``
    Worker-process count for the experiment engine.  Benchmarks default to
    one worker per CPU; values <= 0 also mean "all CPUs".
``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    Set ``REPRO_CACHE=0`` to disable result memoization; ``REPRO_CACHE_DIR``
    moves the cache (default ``.repro-cache/``, safe to delete any time).
"""

import datetime
import json
import os
from pathlib import Path

import pytest

from repro.exec import ExperimentEngine
from repro.harness.runner import ExperimentSettings

#: Repository root (benchmarks/ lives directly under it); the BENCH_*.json
#: trajectory files are written here so successive PRs can diff them.
REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))

_workloads_env = os.environ.get("REPRO_BENCH_WORKLOADS", "").strip()
WORKLOAD_SUBSET = [w.strip() for w in _workloads_env.split(",") if w.strip()] or None

#: Benchmarks exercise the parallel path by default: REPRO_JOBS if set,
#: otherwise one worker per CPU.
DEFAULT_JOBS = int(os.environ.get("REPRO_JOBS", "0") or "0") or (os.cpu_count() or 1)


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by all timing benchmarks."""
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS,
                              stats_warmup_fraction=0.25,
                              jobs=DEFAULT_JOBS)


@pytest.fixture(scope="session")
def bench_engine(bench_settings) -> ExperimentEngine:
    """The experiment engine shared by all timing benchmarks."""
    return ExperimentEngine.from_settings(bench_settings)


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset override (None means the experiment's default set)."""
    return WORKLOAD_SUBSET


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one machine-readable ``BENCH_<name>.json`` at the repo root.

    Every trajectory file carries the same envelope (UTC timestamp, trace
    length, wall time) plus bench-specific metrics, so tooling can track the
    performance trajectory across PRs without parsing pytest output.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    envelope = {
        "bench": name,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "instructions": DEFAULT_INSTRUCTIONS,
    }
    envelope.update(payload)
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path

"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  Because a
single regeneration already simulates dozens of (workload, configuration)
pairs, every benchmark is run exactly once (``rounds=1``) — the timing
reported by pytest-benchmark is the cost of regenerating the artifact, and
the artifact itself is printed and attached to ``benchmark.extra_info``.

Environment knobs:

``REPRO_BENCH_INSTRUCTIONS``
    Dynamic instructions per workload trace (default 8000).  The paper uses
    10M-instruction samples; the default here keeps the full 47-workload
    sweep to a few minutes while preserving the qualitative shape.  Increase
    it for higher-fidelity runs.
``REPRO_BENCH_WORKLOADS``
    Comma-separated subset of workload names (default: all 47 for Table 3 /
    Figure 4, the paper's nine for Figure 5).
"""

import os

import pytest

from repro.harness.runner import ExperimentSettings

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))

_workloads_env = os.environ.get("REPRO_BENCH_WORKLOADS", "").strip()
WORKLOAD_SUBSET = [w.strip() for w in _workloads_env.split(",") if w.strip()] or None


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by all timing benchmarks."""
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS, stats_warmup_fraction=0.25)


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset override (None means the experiment's default set)."""
    return WORKLOAD_SUBSET


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

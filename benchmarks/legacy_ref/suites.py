# Frozen seed reference (src/repro/workloads/suites.py @ PR 4) — see legacy_ref/__init__.py.
"""Suite composer: profiles -> dynamic traces.

Given a :class:`~legacy_ref.profiles.WorkloadProfile`, the composer
instantiates the kernel mix implied by the profile's knobs and interleaves
kernel iterations until the requested dynamic instruction budget is reached.
The mix is solved so that the fraction of loads that forward approximates
the profile's ``forward_rate`` (calibrated to Table 3 of the paper).

Traces are defined **segment-wise** so that paper-scale (10M-instruction)
traces support random access without being materialised: a trace of length
``N`` is the concatenation of independently composed segments of
``TRACE_SEGMENT_UOPS`` micro-ops each.  Segment ``i`` is composed with a
seed derived from ``(seed, i)`` against the *same static program* (static
PCs and data regions are allocated deterministically by the profile, so
every segment reuses the same static instructions — like successive phases
of one looping program), which keeps PC-indexed predictor state meaningful
across segment boundaries.  ``build_workload_window`` composes only the
segments overlapping a requested ``[start, stop)`` window; the statistical
sampling subsystem (:mod:`repro.sampling`) is built on it.  Traces that fit
in a single segment are bit-identical to the old single-compose definition,
because composition is prefix-stable: ``compose(n)`` is a prefix of
``compose(m)`` for ``n <= m``.  Longer traces — including the 40k
``DEFAULT_INSTRUCTIONS`` — change content at the first segment boundary;
the result cache invalidates itself through the workload source
fingerprint, and no test or benchmark pins multi-segment trace content.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from legacy_ref.trace import DynamicTrace
from legacy_ref.kernels import (
    AccumulateKernel,
    BranchyKernel,
    FPStencilKernel,
    GlobalRMWKernel,
    ManyStoreDepKernel,
    NotMostRecentKernel,
    PointerChaseKernel,
    StackSpillKernel,
    StreamCopyKernel,
    WideNarrowKernel,
)
from legacy_ref.profiles import (
    MEDIA, INT, FP,
    PROFILES,
    SENSITIVITY_BENCHMARKS,
    WorkloadProfile,
    get_profile,
)
from legacy_ref.program import Kernel, ProgramBuilder

#: Suites in presentation order (matches Table 3 / Figure 4).
ALL_SUITES: Tuple[str, ...] = (MEDIA, INT, FP)

#: Default dynamic-instruction budget per workload used by the benchmarks.
DEFAULT_INSTRUCTIONS = 40_000

#: Length of one independently composed trace segment.  Traces up to this
#: length are a single segment, identical to the pre-segmentation scheme
#: (covers every existing test and the 8k benchmark default); longer traces
#: (e.g. the 40k ``DEFAULT_INSTRUCTIONS``) change content at segment
#: boundaries.  The value balances segment amortisation against
#: random-access cost: a sampling interval window pays for composing its
#: segments from their starts, so smaller segments make interval jobs
#: cheaper.
TRACE_SEGMENT_UOPS = 16_384


@dataclass
class _WeightedKernel:
    kernel: Kernel
    weight: float


class WorkloadComposer:
    """Builds the kernel mix for one profile and emits the trace."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1) -> None:
        self.profile = profile
        self.builder = ProgramBuilder(profile.name, seed=seed)
        self._rng = random.Random(seed ^ 0xC0FFEE)
        self._forwarding_pool = self._build_forwarding_pool()
        self._background_pool = self._build_background_pool()
        self._branchy = BranchyKernel(self.builder, taken_prob=profile.branch_taken_prob)
        self._forward_prob = self._solve_forwarding_probability()

    # -- kernel pools -----------------------------------------------------------

    def _build_forwarding_pool(self) -> List[_WeightedKernel]:
        profile = self.profile
        builder = self.builder
        pool: List[_WeightedKernel] = []
        if profile.forward_rate <= 0.0:
            return pool

        special = profile.not_most_recent + profile.fsp_pressure + profile.wide_narrow
        base = max(0.0, 1.0 - special)
        # Split the plain (FSP-friendly) share between stack spills and
        # global read-modify-writes.
        if base > 0.0:
            pool.append(_WeightedKernel(
                StackSpillKernel(builder, slots=profile.stack_slots), base * 0.6))
            pool.append(_WeightedKernel(
                GlobalRMWKernel(builder, n_globals=profile.forwarding_distance), base * 0.4))
        if profile.not_most_recent > 0.0:
            pool.append(_WeightedKernel(
                NotMostRecentKernel(builder, lag=2), profile.not_most_recent))
        if profile.fsp_pressure > 0.0:
            pool.append(_WeightedKernel(
                ManyStoreDepKernel(builder, n_stores=6), profile.fsp_pressure))
        if profile.wide_narrow > 0.0:
            pool.append(_WeightedKernel(WideNarrowKernel(builder), profile.wide_narrow))
        return pool

    def _build_background_pool(self) -> List[_WeightedKernel]:
        profile = self.profile
        builder = self.builder
        working_set = profile.working_set_kb * 1024
        pool: List[_WeightedKernel] = []
        remaining = max(0.0, 1.0 - profile.pointer_chase - profile.fp_fraction)
        pool.append(_WeightedKernel(
            StreamCopyKernel(builder, working_set_bytes=working_set), remaining * 0.5))
        pool.append(_WeightedKernel(
            AccumulateKernel(builder, working_set_bytes=working_set // 2), remaining * 0.5))
        if profile.fp_fraction > 0.0:
            pool.append(_WeightedKernel(
                FPStencilKernel(builder, working_set_bytes=working_set), profile.fp_fraction))
        if profile.pointer_chase > 0.0:
            nodes = max(64, working_set // 64)
            pool.append(_WeightedKernel(
                PointerChaseKernel(builder, nodes=nodes, chains=profile.pointer_chains),
                profile.pointer_chase))
        return pool

    # -- mix solving ------------------------------------------------------------

    @staticmethod
    def _pool_load_rates(pool: Sequence[_WeightedKernel]) -> Tuple[float, float]:
        """Weighted (loads/iteration, forwarding loads/iteration) of a pool."""
        total_weight = sum(item.weight for item in pool)
        if total_weight <= 0.0:
            return 0.0, 0.0
        loads = sum(item.weight * item.kernel.loads_per_iteration for item in pool) / total_weight
        fwd = sum(item.weight * item.kernel.forwarding_loads_per_iteration
                  for item in pool) / total_weight
        return loads, fwd

    def _solve_forwarding_probability(self) -> float:
        """Probability of picking a forwarding-kernel iteration so the
        load-weighted forwarding fraction matches the profile target."""
        target = self.profile.forward_rate
        if target <= 0.0 or not self._forwarding_pool:
            return 0.0
        fwd_loads, fwd_forwarding = self._pool_load_rates(self._forwarding_pool)
        bg_loads, _ = self._pool_load_rates(self._background_pool)
        if fwd_forwarding <= 0.0:
            return 0.0
        # target = q*Ff / (q*Lf + (1-q)*Ln)  =>  q = t*Ln / (Ff - t*Lf + t*Ln)
        denom = fwd_forwarding - target * fwd_loads + target * bg_loads
        if denom <= 0.0:
            return 1.0
        return min(1.0, max(0.0, target * bg_loads / denom))

    # -- composition ------------------------------------------------------------

    def _pick(self, pool: Sequence[_WeightedKernel]) -> Kernel:
        weights = [item.weight for item in pool]
        choice = self._rng.choices(pool, weights=weights, k=1)[0]
        return choice.kernel

    def compose(self, instructions: int) -> DynamicTrace:
        """Emit kernel iterations until at least ``instructions`` micro-ops."""
        if instructions <= 0:
            raise ValueError("instruction budget must be positive")
        profile = self.profile
        while len(self.builder) < instructions:
            if self._forwarding_pool and self._rng.random() < self._forward_prob:
                self._pick(self._forwarding_pool).emit()
            elif self._background_pool:
                self._pick(self._background_pool).emit()
            if profile.branchy > 0.0 and self._rng.random() < profile.branchy:
                self._branchy.emit()
        trace = self.builder.finish()
        trace.uops = trace.uops[:instructions]
        return trace


# ---------------------------------------------------------------------------
# Segmented composition
# ---------------------------------------------------------------------------

def _segment_seed(seed: int, index: int) -> int:
    """Deterministic per-segment seed; segment 0 keeps the user's seed so
    single-segment traces are bit-identical to the unsegmented scheme."""
    if index == 0:
        return seed
    return (seed ^ (0x9E3779B97F4A7C15 * index)) & 0x7FFF_FFFF_FFFF_FFFF


#: Per-process segment memo: (name, seed, segment index, length) -> uops.
#: Sampling jobs for the same workload (across configurations) re-touch the
#: same segments; memoising them keeps window regeneration cheap.
_SEGMENT_CACHE: Dict[Tuple[str, int, int, int], List] = {}
_SEGMENT_CACHE_LIMIT = 12


def _segment_disk_store():
    """The on-disk segment memo (None when checkpointing is disabled).

    Composed segments are expensive relative to unpickling, and sampling
    jobs across processes, configurations, and runs re-touch the same
    segments; the checkpoint store memoises them content-addressed (keyed
    over the workload-source fingerprint, so edits invalidate).  Imported
    lazily: the workloads package must not depend on the sampling package
    at import time.
    """
    from repro.sampling.checkpoints import segment_store

    return segment_store()


def _compose_segment(name: str, seed: int, index: int, length: int,
                     disk_memo: bool = False) -> List:
    """Compose (and memoise) segment ``index`` of a workload, truncated to
    ``length`` micro-ops (composition is prefix-stable, so a shorter final
    segment equals the prefix of the full segment)."""
    key = (name, seed, index, length)
    uops = _SEGMENT_CACHE.get(key)
    if uops is None:
        store = _segment_disk_store() if disk_memo else None
        disk_key = None
        if store is not None:
            from repro.sampling.checkpoints import segment_key

            disk_key = segment_key(name, seed, index, length)
            uops = store.get(disk_key)
        if uops is None:
            profile = get_profile(name)
            composer = WorkloadComposer(profile, seed=_segment_seed(seed, index))
            uops = composer.compose(length).uops
            if store is not None:
                store.put(disk_key, uops)
        while len(_SEGMENT_CACHE) >= _SEGMENT_CACHE_LIMIT:
            _SEGMENT_CACHE.pop(next(iter(_SEGMENT_CACHE)))
        _SEGMENT_CACHE[key] = uops
    return uops


def build_workload_window(name: str, instructions: int, seed: int,
                          start: int, stop: int,
                          disk_memo: bool = False) -> List:
    """Micro-ops ``[start, stop)`` of the workload's trace, composing only
    the segments that overlap the window.

    Equivalent to ``build_workload(name, instructions, seed).uops[start:stop]``
    but with cost proportional to the window's segment span rather than to
    ``instructions``; this is what lets interval-sampling jobs regenerate
    their slice of a 10M-instruction trace without materialising it.

    ``disk_memo=True`` additionally memoises the touched segments in the
    checkpoint store (when ``REPRO_CHECKPOINTS`` enables it) — an explicit
    opt-in for callers that re-read the same segments across processes or
    runs.  It stays off by default: a library call must not write stores
    into the caller's working directory as a side effect, streaming
    single-pass consumers (checkpoint generation, full-trace builds) would
    flood the store with segments nothing re-reads, and one-shot windows
    cost more to write through than the memo can repay — checkpointed
    interval jobs use the store's per-interval *window* memo instead
    (:func:`repro.sampling.checkpoints.window_key`), which is what removed
    the window-regeneration hot loop.
    """
    if not 0 <= start <= stop <= instructions:
        raise ValueError(f"window [{start}, {stop}) outside trace [0, {instructions})")
    segment = TRACE_SEGMENT_UOPS
    uops: List = []
    for index in range(start // segment, (max(stop - 1, start)) // segment + 1):
        seg_base = index * segment
        seg_len = min(segment, instructions - seg_base)
        if seg_len <= 0:
            break
        seg_uops = _compose_segment(name, seed, index, seg_len,
                                    disk_memo=disk_memo)
        lo = max(start - seg_base, 0)
        hi = min(stop - seg_base, seg_len)
        if hi > lo:
            uops.extend(seg_uops[lo:hi] if (lo, hi) != (0, seg_len) else seg_uops)
    return uops


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def workload_names(suite: Optional[str] = None) -> List[str]:
    """Names of all proxy workloads, optionally restricted to one suite."""
    if suite is None:
        return [profile.name for profile in PROFILES]
    return [profile.name for profile in PROFILES if profile.suite == suite]


def sensitivity_workloads() -> List[str]:
    """The nine benchmarks used by the Figure 5 sensitivity study."""
    return list(SENSITIVITY_BENCHMARKS)


def build_workload(name: str, instructions: int = DEFAULT_INSTRUCTIONS,
                   seed: int = 1) -> DynamicTrace:
    """Build the proxy trace for one named benchmark.

    The trace is the concatenation of its ``TRACE_SEGMENT_UOPS``-long
    segments (see the module docstring); traces that fit in one segment are
    bit-identical to a direct single compose.
    """
    if instructions <= 0:
        raise ValueError("instruction budget must be positive")
    # Full-trace materialisation streams every segment exactly once; bypass
    # the disk segment memo so full-detail runs don't flood the checkpoint
    # store with segments only sampling windows ever re-read.
    return DynamicTrace(
        name=name,
        uops=build_workload_window(name, instructions, seed, 0, instructions,
                                   disk_memo=False))


def build_suite(suite: str, instructions: int = DEFAULT_INSTRUCTIONS,
                seed: int = 1) -> Dict[str, DynamicTrace]:
    """Build every workload in a suite; returns name -> trace."""
    return {name: build_workload(name, instructions=instructions, seed=seed)
            for name in workload_names(suite)}

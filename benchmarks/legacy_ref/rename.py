# Frozen seed reference (src/repro/pipeline/rename.py @ PR 4) — see legacy_ref/__init__.py.
"""Register alias table (RAT).

The RAT maps each architectural register to the dynamic sequence number of
the in-flight instruction that produces it (or to "architectural state" when
no in-flight producer exists).  It is checkpoint-free: every rename records
the previous mapping in the renamed instruction, and a pipeline flush
restores mappings by walking the squashed instructions youngest-first —
the same log-based repair the paper describes for the SAT.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from legacy_ref.registers import REG_ZERO, TOTAL_REG_COUNT, validate_reg

#: Sentinel producer meaning "value lives in the architectural register file".
ARCH_READY = -1


class RegisterAliasTable:
    """Architectural register -> producing-instruction map with log repair."""

    def __init__(self) -> None:
        self._map: List[int] = [ARCH_READY] * TOTAL_REG_COUNT

    def producer_of(self, reg: int) -> int:
        """Sequence number of the in-flight producer of ``reg``.

        Returns :data:`ARCH_READY` when the register's value is already
        architectural (no in-flight producer) — including always for the
        zero register.
        """
        validate_reg(reg)
        if reg == REG_ZERO:
            return ARCH_READY
        return self._map[reg]

    def rename_dest(self, reg: Optional[int], seq: int) -> Optional[Tuple[int, int]]:
        """Rename a destination register to producer ``seq``.

        Returns an undo record ``(reg, previous_producer)`` or ``None`` when
        the instruction has no destination (or writes the zero register).
        """
        if reg is None:
            return None
        validate_reg(reg)
        if reg == REG_ZERO:
            return None
        previous = self._map[reg]
        self._map[reg] = seq
        return (reg, previous)

    def retire_dest(self, reg: Optional[int], seq: int) -> None:
        """At commit, clear the mapping if this instruction is still the
        youngest producer of its destination."""
        if reg is None or reg == REG_ZERO:
            return
        if self._map[reg] == seq:
            self._map[reg] = ARCH_READY

    def undo(self, record: Optional[Tuple[int, int]]) -> None:
        """Undo one rename (applied to squashed instructions youngest-first)."""
        if record is None:
            return
        reg, previous = record
        self._map[reg] = previous

    def snapshot(self) -> List[int]:
        return list(self._map)

    def clear(self) -> None:
        self._map = [ARCH_READY] * TOTAL_REG_COUNT

# Frozen seed reference (src/repro/memory/tlb.py @ PR 4) — see legacy_ref/__init__.py.
"""TLB model.

The simulator uses identity translation (virtual address == physical
address), so the TLB contributes only latency and statistics.  A TLB miss
adds a fixed page-walk latency to the memory access that caused it, matching
the coarse treatment in the paper's configuration (128-entry, 4-way TLBs).
"""

from __future__ import annotations

from dataclasses import dataclass

from legacy_ref.cache import Cache, CacheConfig, CacheStats


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry and miss penalty."""

    entries: int = 128
    assoc: int = 4
    page_bytes: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ValueError("TLB geometry parameters must be positive")
        if self.entries % self.assoc != 0:
            raise ValueError("TLB entries must be divisible by associativity")
        if self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")


class TLB:
    """A TLB modelled as a small set-associative cache of page numbers."""

    def __init__(self, config: TLBConfig = TLBConfig()) -> None:
        self.config = config
        # Reuse the cache machinery: one "line" per page.
        cache_config = CacheConfig(
            name="TLB",
            size_bytes=config.entries * config.page_bytes,
            assoc=config.assoc,
            line_bytes=config.page_bytes,
            latency=1,
        )
        self._cache = Cache(cache_config)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def access(self, addr: int) -> int:
        """Access the TLB for ``addr``; returns the added latency (0 on hit)."""
        hit = self._cache.access(addr)
        return 0 if hit else self.config.miss_penalty

    def reset_stats(self) -> None:
        self._cache.reset_stats()

    def flush(self) -> None:
        self._cache.flush()

    def state_signature(self) -> tuple:
        """Hashable snapshot of the cached page numbers (with LRU order)."""
        return self._cache.state_signature()

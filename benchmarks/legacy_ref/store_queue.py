# Frozen seed reference (src/repro/lsu/store_queue.py @ PR 4) — see legacy_ref/__init__.py.
"""Age-ordered store queue.

The SQ holds one entry per in-flight store in program (age) order.  Each
entry records the store's PC, SSN, physical address, size, value, and an
``executed`` flag (the address/value become known when the store executes).
The structure supports the three operations described in Section 2:

* indexed writes for store execution (:meth:`StoreQueue.write_execute`),
* indexed reads for store commit (:meth:`StoreQueue.release`), and
* the load-execution access, which is either a fully-associative
  search-and-read (:meth:`StoreQueue.associative_search`) or — in the
  paper's design — a direct indexed read of a single predicted entry
  (:meth:`StoreQueue.read_indexed`).

Physical slots are addressed by ``ssn % size`` exactly as in the paper
(Section 3.1), so an indexed read of a predicted SSN whose store has already
committed may observe a *different* store occupying the slot; the address
comparison (and ultimately load re-execution) makes that safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from legacy_ref.ssn import sq_index


@dataclass
class StoreQueueEntry:
    """One in-flight store."""

    ssn: int
    pc: int
    seq: int                      # dynamic sequence number of the store
    addr: Optional[int] = None    # unknown until the store executes
    size: int = 0
    value: int = 0
    executed: bool = False

    def covers(self, addr: int, size: int) -> bool:
        """True if this (executed) store's write fully covers [addr, addr+size)."""
        if not self.executed or self.addr is None:
            return False
        return self.addr <= addr and addr + size <= self.addr + self.size

    def overlaps(self, addr: int, size: int) -> bool:
        """True if this (executed) store's write overlaps [addr, addr+size)."""
        if not self.executed or self.addr is None:
            return False
        return self.addr < addr + size and addr < self.addr + self.size

    def extract(self, addr: int, size: int) -> int:
        """Extract ``size`` bytes at ``addr`` from this store's value."""
        if not self.covers(addr, size):
            raise ValueError("extract() requires a covering store")
        offset = addr - self.addr
        mask = (1 << (8 * size)) - 1
        return (self.value >> (8 * offset)) & mask


@dataclass
class StoreQueueStats:
    """SQ activity counters."""

    allocations: int = 0
    releases: int = 0
    squashes: int = 0
    associative_searches: int = 0
    indexed_reads: int = 0
    full_stalls: int = 0


class StoreQueue:
    """Circular, age-ordered store queue."""

    def __init__(self, size: int = 64) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("SQ size must be a positive power of two")
        self.size = size
        self.stats = StoreQueueStats()
        self._slots: List[Optional[StoreQueueEntry]] = [None] * size
        # SSN bounds of occupied entries: (oldest_ssn, youngest_ssn], both inclusive
        # via the ordered list below.
        self._entries: List[StoreQueueEntry] = []   # in age order (oldest first)

    # -- capacity ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def is_empty(self) -> bool:
        return not self._entries

    # -- lifecycle --------------------------------------------------------------

    def allocate(self, ssn: int, pc: int, seq: int) -> StoreQueueEntry:
        """Allocate an entry for a renamed store (program order)."""
        if self.is_full():
            raise RuntimeError("store queue overflow; caller must check is_full()")
        if self._entries and ssn <= self._entries[-1].ssn:
            raise ValueError("stores must be allocated in increasing SSN order")
        entry = StoreQueueEntry(ssn=ssn, pc=pc, seq=seq)
        self._entries.append(entry)
        self._slots[sq_index(ssn, self.size)] = entry
        self.stats.allocations += 1
        return entry

    def write_execute(self, ssn: int, addr: int, size: int, value: int) -> StoreQueueEntry:
        """Store execution: fill in the address/value of the entry for ``ssn``."""
        entry = self._slots[sq_index(ssn, self.size)]
        if entry is None or entry.ssn != ssn:
            raise KeyError(f"store SSN {ssn} is not in the SQ")
        entry.addr = addr
        entry.size = size
        entry.value = value
        entry.executed = True
        return entry

    def release(self, ssn: int) -> StoreQueueEntry:
        """Store commit: remove the oldest entry (must have SSN ``ssn``)."""
        if not self._entries:
            raise RuntimeError("release from an empty store queue")
        entry = self._entries[0]
        if entry.ssn != ssn:
            raise ValueError(f"stores must commit in order: head SSN {entry.ssn}, got {ssn}")
        self._entries.pop(0)
        slot = sq_index(ssn, self.size)
        if self._slots[slot] is entry:
            self._slots[slot] = None
        self.stats.releases += 1
        return entry

    def squash_younger(self, ssn: int) -> List[StoreQueueEntry]:
        """Remove all entries with SSN greater than ``ssn`` (pipeline flush).

        Returns the squashed entries, youngest first, so callers can undo SAT
        updates in the correct order.
        """
        squashed: List[StoreQueueEntry] = []
        while self._entries and self._entries[-1].ssn > ssn:
            entry = self._entries.pop()
            slot = sq_index(entry.ssn, self.size)
            if self._slots[slot] is entry:
                self._slots[slot] = None
            squashed.append(entry)
            self.stats.squashes += 1
        return squashed

    # -- load access ------------------------------------------------------------

    def read_indexed(self, ssn: int) -> Optional[StoreQueueEntry]:
        """Indexed (direct) read of the slot named by ``ssn``'s low-order bits.

        This is the paper's speculative access: the returned entry may belong
        to a different store than the one predicted (or the slot may be
        empty); the caller performs the address match.
        """
        self.stats.indexed_reads += 1
        return self._slots[sq_index(ssn, self.size)]

    def lookup_ssn(self, ssn: int) -> Optional[StoreQueueEntry]:
        """Return the entry whose SSN is exactly ``ssn`` if it is in flight."""
        entry = self._slots[sq_index(ssn, self.size)]
        if entry is not None and entry.ssn == ssn:
            return entry
        return None

    def associative_search(self, addr: int, size: int, before_ssn: int) -> Optional[StoreQueueEntry]:
        """Fully-associative search for the youngest matching older store.

        Considers only stores with ``ssn <= before_ssn`` (i.e. older than the
        load) whose addresses are known (executed) and that fully cover the
        load's bytes.  Returns the youngest such entry or ``None``.
        """
        self.stats.associative_searches += 1
        for entry in reversed(self._entries):
            if entry.ssn > before_ssn:
                continue
            if entry.covers(addr, size):
                return entry
        return None

    def youngest_overlapping(self, addr: int, size: int, before_ssn: int) -> Optional[StoreQueueEntry]:
        """Youngest older executed store that overlaps (not necessarily covers)."""
        for entry in reversed(self._entries):
            if entry.ssn > before_ssn:
                continue
            if entry.overlaps(addr, size):
                return entry
        return None

    def entries_in_order(self) -> List[StoreQueueEntry]:
        """All entries, oldest first (diagnostics and tests)."""
        return list(self._entries)

# Frozen seed reference (src/repro/isa/trace.py @ PR 4) — see legacy_ref/__init__.py.
"""Dynamic trace containers and a simple on-disk format.

A :class:`DynamicTrace` is a materialised list of :class:`~legacy_ref.uop.MicroOp`
records in program order, plus summary statistics.  Workload generators can
either stream micro-ops lazily into the simulator or materialise them into a
trace for inspection, serialisation, and reuse across configurations (the
same trace must be fed to every store-queue configuration for the Figure 4
comparison to be meaningful, which is why the harness materialises traces
once per workload).

The on-disk format is a line-oriented text format, chosen for debuggability
over density; traces used by the benchmarks are small (tens of thousands of
micro-ops).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from legacy_ref.uop import MemAccess, MicroOp, OpClass


@dataclass
class TraceStats:
    """Summary statistics over a dynamic trace."""

    total: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    int_ops: int = 0
    fp_ops: int = 0
    unique_pcs: int = 0
    unique_load_pcs: int = 0
    unique_store_pcs: int = 0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.total if self.total else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0


def compute_stats(uops: Sequence[MicroOp]) -> TraceStats:
    """Compute :class:`TraceStats` over a sequence of micro-ops."""
    stats = TraceStats(total=len(uops))
    pcs = set()
    load_pcs = set()
    store_pcs = set()
    for uop in uops:
        pcs.add(uop.pc)
        if uop.is_load:
            stats.loads += 1
            load_pcs.add(uop.pc)
        elif uop.is_store:
            stats.stores += 1
            store_pcs.add(uop.pc)
        elif uop.is_branch:
            stats.branches += 1
            if uop.is_taken:
                stats.taken_branches += 1
        elif uop.op_class.is_fp:
            stats.fp_ops += 1
        elif uop.op_class.is_int:
            stats.int_ops += 1
    stats.unique_pcs = len(pcs)
    stats.unique_load_pcs = len(load_pcs)
    stats.unique_store_pcs = len(store_pcs)
    return stats


@dataclass
class DynamicTrace:
    """A materialised dynamic instruction trace.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"vortex"`` or ``"mesa.t"``).
    uops:
        Micro-ops in program order.
    """

    name: str
    uops: List[MicroOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    def __getitem__(self, idx: int) -> MicroOp:
        return self.uops[idx]

    @property
    def stats(self) -> TraceStats:
        return compute_stats(self.uops)

    def extend(self, uops: Iterable[MicroOp]) -> None:
        self.uops.extend(uops)

    def truncated(self, max_uops: int) -> "DynamicTrace":
        """Return a copy limited to the first ``max_uops`` micro-ops."""
        return DynamicTrace(name=self.name, uops=list(self.uops[:max_uops]))


class TraceWriter:
    """Incrementally builds a :class:`DynamicTrace`.

    Workload kernels append micro-ops through this class; it performs light
    validation (every store carries a value, sizes are legal) because
    :class:`~legacy_ref.uop.MicroOp` validates on construction.
    """

    def __init__(self, name: str) -> None:
        self._trace = DynamicTrace(name=name)

    def append(self, uop: MicroOp) -> None:
        self._trace.uops.append(uop)

    def extend(self, uops: Iterable[MicroOp]) -> None:
        self._trace.uops.extend(uops)

    def finish(self) -> DynamicTrace:
        return self._trace

    def __len__(self) -> int:
        return len(self._trace)


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

_FORMAT_VERSION = 1


def _format_uop(uop: MicroOp) -> str:
    fields = [
        f"{uop.pc:x}",
        uop.op_class.name,
        str(uop.dest) if uop.dest is not None else "-",
        ",".join(str(s) for s in uop.srcs) if uop.srcs else "-",
    ]
    if uop.mem is not None:
        mem = f"{uop.mem.addr:x}:{uop.mem.size}"
        if uop.mem.value is not None:
            mem += f":{uop.mem.value:x}"
        fields.append(mem)
    else:
        fields.append("-")
    if uop.is_branch:
        flags = "T" if uop.is_taken else "N"
        if uop.hint_call:
            flags += "C"
        if uop.hint_return:
            flags += "R"
        fields.append(flags)
        fields.append(f"{uop.target:x}" if uop.target is not None else "-")
    else:
        fields.append("-")
        fields.append("-")
    return " ".join(fields)


def _parse_uop(line: str) -> MicroOp:
    parts = line.split()
    if len(parts) != 7:
        raise ValueError(f"malformed trace line: {line!r}")
    pc = int(parts[0], 16)
    op_class = OpClass[parts[1]]
    dest = None if parts[2] == "-" else int(parts[2])
    srcs = () if parts[3] == "-" else tuple(int(s) for s in parts[3].split(","))
    mem: Optional[MemAccess] = None
    if parts[4] != "-":
        mem_parts = parts[4].split(":")
        addr = int(mem_parts[0], 16)
        size = int(mem_parts[1])
        value = int(mem_parts[2], 16) if len(mem_parts) > 2 else None
        mem = MemAccess(addr=addr, size=size, value=value)
    is_taken = False
    hint_call = False
    hint_return = False
    target = None
    if parts[5] != "-":
        is_taken = "T" in parts[5]
        hint_call = "C" in parts[5]
        hint_return = "R" in parts[5]
        if parts[6] != "-":
            target = int(parts[6], 16)
    return MicroOp(pc=pc, op_class=op_class, dest=dest, srcs=srcs, mem=mem,
                   is_taken=is_taken, target=target, hint_call=hint_call, hint_return=hint_return)


def write_trace(trace: DynamicTrace, stream: io.TextIOBase) -> None:
    """Serialise a trace to a text stream."""
    stream.write(f"# repro-trace v{_FORMAT_VERSION}\n")
    stream.write(f"# name {trace.name}\n")
    stream.write(f"# uops {len(trace)}\n")
    for uop in trace.uops:
        stream.write(_format_uop(uop))
        stream.write("\n")


def read_trace(stream: io.TextIOBase) -> DynamicTrace:
    """Deserialise a trace written by :func:`write_trace`."""
    name = "trace"
    uops: List[MicroOp] = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) >= 2 and parts[0] == "name":
                name = parts[1]
            continue
        uops.append(_parse_uop(line))
    return DynamicTrace(name=name, uops=uops)

# Frozen seed reference (src/repro/memory/image.py @ PR 4) — see legacy_ref/__init__.py.
"""Byte-addressable memory image.

The memory image holds the *architectural* (committed) memory state.  Stores
update it at commit; value-based re-execution reads it at load commit to
obtain the correct load value (all older stores have committed by then, so
the image is exactly the state the load should observe).

The image is sparse: only bytes that have been written are stored.  Unwritten
bytes read as a deterministic per-address background pattern so that two
independent simulations of the same trace observe identical "uninitialised"
values (important when comparing the speculative value read at execute time
against the re-executed value at commit time).
"""

from __future__ import annotations

from typing import Dict


def _background_byte(addr: int) -> int:
    """Deterministic pseudo-random background value for an unwritten byte.

    A cheap integer hash keeps different addresses from aliasing to the same
    value too often, which would mask mis-forwardings in tests.
    """
    x = (addr * 0x9E3779B97F4A7C15) & 0xFFFF_FFFF_FFFF_FFFF
    x ^= x >> 29
    return (x * 0xBF58476D1CE4E5B9 >> 56) & 0xFF


class MemoryImage:
    """Sparse byte-addressable memory."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def write(self, addr: int, size: int, value: int) -> None:
        """Write ``size`` bytes of ``value`` (little-endian) at ``addr``."""
        if size <= 0:
            raise ValueError("write size must be positive")
        if value < 0:
            raise ValueError("write value must be non-negative")
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes (little-endian) at ``addr``."""
        if size <= 0:
            raise ValueError("read size must be positive")
        value = 0
        for i in range(size):
            byte = self._bytes.get(addr + i)
            if byte is None:
                byte = _background_byte(addr + i)
            value |= byte << (8 * i)
        return value

    def read_byte(self, addr: int) -> int:
        """Read a single byte."""
        byte = self._bytes.get(addr)
        if byte is None:
            return _background_byte(addr)
        return byte

    def is_written(self, addr: int) -> bool:
        """True if the byte at ``addr`` has been explicitly written."""
        return addr in self._bytes

    def written_byte_count(self) -> int:
        """Number of bytes explicitly written."""
        return len(self._bytes)

    def copy(self) -> "MemoryImage":
        """Deep copy of the image (used by the functional trace checker)."""
        clone = MemoryImage()
        clone._bytes = dict(self._bytes)
        return clone

    def clear(self) -> None:
        """Discard all written bytes."""
        self._bytes.clear()

    def state_signature(self) -> tuple:
        """Hashable snapshot of every explicitly written byte."""
        return tuple(sorted(self._bytes.items()))

# Frozen seed reference (src/repro/core/fsp.py @ PR 4) — see legacy_ref/__init__.py.
"""Forwarding Store Predictor (FSP).

Section 3.2: the FSP maps each load PC to a small set of store PCs from which
the load recently forwarded.  It is a PC-indexed, set-associative table; each
entry holds a valid bit, a partial tag, a partial store PC, and a short
saturating counter.  The associativity determines both how many loads can
share a set and how many store dependences a single load can represent; the
paper finds 2-way associativity adequate.

The FSP is trained at load commit by every committing load (both positively
and negatively); the per-entry counter weighs positive training against
negative with a default ratio of 8:1.  The decision of *when* to train
positively or negatively (correct forwarding, mis-forwarding with an
unpredicted store PC, distance larger than the SQ, not-most-recent
forwarding) lives in the indexed-SQ policy
(:mod:`legacy_ref.policies`); this class provides the mechanical operations:
lookup, strengthen, weaken, and insert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from legacy_ref.predictors import FSPConfig


@dataclass
class FSPEntry:
    """One FSP entry."""

    valid: bool = False
    tag: int = 0
    store_pc: int = 0          # partial store PC (SAT index bits)
    full_store_pc: int = 0     # full PC retained for statistics/debugging only
    counter: int = 0
    lru: int = 0


@dataclass
class FSPStats:
    """FSP activity counters."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    strengthens: int = 0
    weakens: int = 0
    invalidations: int = 0


class ForwardingStorePredictor:
    """PC-indexed set-associative load-PC -> store-PC predictor."""

    def __init__(self, config: Optional[FSPConfig] = None) -> None:
        self.config = config or FSPConfig()
        self.stats = FSPStats()
        self._sets: List[List[FSPEntry]] = [
            [FSPEntry() for _ in range(self.config.assoc)] for _ in range(self.config.sets)
        ]
        self._set_mask = self.config.sets - 1
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._store_pc_mask = (1 << self.config.store_pc_bits) - 1
        self._counter_max = (1 << self.config.counter_bits) - 1
        self._lru_clock = 0

    # -- indexing helpers -------------------------------------------------------

    def _index(self, load_pc: int) -> int:
        return (load_pc >> 2) & self._set_mask

    def _tag(self, load_pc: int) -> int:
        return ((load_pc >> 2) >> (self.config.sets.bit_length() - 1)) & self._tag_mask

    def partial_store_pc(self, store_pc: int) -> int:
        """Partial store PC as stored in an entry (and used to index the SAT)."""
        return (store_pc >> 2) & self._store_pc_mask

    # -- prediction -------------------------------------------------------------

    def lookup(self, load_pc: int) -> List[FSPEntry]:
        """Return the (up to ``assoc``) matching entries for a load PC.

        Only entries whose counter is non-negative... all matching valid
        entries are returned; the counter is used for replacement decisions
        and is consulted by callers that want to ignore weak entries.
        """
        self.stats.lookups += 1
        index = self._index(load_pc)
        tag = self._tag(load_pc)
        matches = [e for e in self._sets[index] if e.valid and e.tag == tag]
        if matches:
            self.stats.hits += 1
            self._lru_clock += 1
            for entry in matches:
                entry.lru = self._lru_clock
        return matches

    def predicted_store_pcs(self, load_pc: int) -> List[int]:
        """Partial store PCs predicted for this load (for chained SAT access)."""
        return [e.store_pc for e in self.lookup(load_pc)]

    # -- training ---------------------------------------------------------------

    def _find(self, load_pc: int, store_pc: int) -> Optional[FSPEntry]:
        index = self._index(load_pc)
        tag = self._tag(load_pc)
        partial = self.partial_store_pc(store_pc)
        for entry in self._sets[index]:
            if entry.valid and entry.tag == tag and entry.store_pc == partial:
                return entry
        return None

    def strengthen(self, load_pc: int, store_pc: int) -> None:
        """Positive training: reinforce (or create) the load->store dependence."""
        entry = self._find(load_pc, store_pc)
        if entry is None:
            self.insert(load_pc, store_pc)
            return
        self.stats.strengthens += 1
        entry.counter = min(self._counter_max, entry.counter + self.config.positive_weight)
        self._lru_clock += 1
        entry.lru = self._lru_clock

    def weaken(self, load_pc: int, store_pc: int) -> None:
        """Negative training: weaken the dependence; invalidate when exhausted."""
        entry = self._find(load_pc, store_pc)
        if entry is None:
            return
        self.stats.weakens += 1
        entry.counter -= self.config.negative_weight
        if entry.counter < 0:
            entry.valid = False
            entry.counter = 0
            self.stats.invalidations += 1

    def weaken_all(self, load_pc: int) -> None:
        """Weaken every dependence recorded for this load PC."""
        index = self._index(load_pc)
        tag = self._tag(load_pc)
        for entry in self._sets[index]:
            if entry.valid and entry.tag == tag:
                self.stats.weakens += 1
                entry.counter -= self.config.negative_weight
                if entry.counter < 0:
                    entry.valid = False
                    entry.counter = 0
                    self.stats.invalidations += 1

    def insert(self, load_pc: int, store_pc: int) -> None:
        """Install a new load->store dependence, evicting the weakest way."""
        index = self._index(load_pc)
        tag = self._tag(load_pc)
        partial = self.partial_store_pc(store_pc)
        ways = self._sets[index]
        self.stats.inserts += 1
        self._lru_clock += 1
        # Reuse an invalid way first.
        for entry in ways:
            if not entry.valid:
                entry.valid = True
                entry.tag = tag
                entry.store_pc = partial
                entry.full_store_pc = store_pc
                entry.counter = self.config.positive_weight
                entry.lru = self._lru_clock
                return
        # Evict the entry with the smallest counter (ties broken by LRU).
        victim = min(ways, key=lambda e: (e.counter, e.lru))
        self.stats.evictions += 1
        victim.tag = tag
        victim.store_pc = partial
        victim.full_store_pc = store_pc
        victim.counter = self.config.positive_weight
        victim.lru = self._lru_clock

    def invalidate_all(self) -> None:
        """Clear the predictor (SSN wrap handling clears SSN-free state too
        conservatively; provided mainly for tests and wrap modelling)."""
        for ways in self._sets:
            for entry in ways:
                entry.valid = False
                entry.counter = 0

    def occupancy(self) -> int:
        """Number of valid entries (for diagnostics)."""
        return sum(1 for ways in self._sets for e in ways if e.valid)

    def state_signature(self) -> frozenset:
        """The set of (set index, tag, partial store PC) dependences held.

        Counter and LRU values are excluded: they steer replacement, not
        prediction, and functional warming trains them at a different rate
        than detailed execution.  Warming tests compare dependence *sets*.
        """
        return frozenset(
            (index, entry.tag, entry.store_pc)
            for index, ways in enumerate(self._sets)
            for entry in ways if entry.valid)

    def storage_bits(self) -> int:
        """Approximate storage cost in bits (Section 4.1 sizing discussion)."""
        per_entry = 1 + self.config.tag_bits + self.config.store_pc_bits + self.config.counter_bits
        return per_entry * self.config.entries

# Frozen seed reference (src/repro/memory/hierarchy.py @ PR 4) — see legacy_ref/__init__.py.
"""Two-level cache hierarchy with flat main memory.

Composes an L1 data cache, a unified L2, a data TLB, and main memory into a
single ``load latency`` / ``store commit`` interface used by the load-store
unit.  Latencies follow Section 4.1 of the paper: 3-cycle L1, 10-cycle L2,
150-cycle memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from legacy_ref.cache import Cache, CacheConfig, DEFAULT_L1_CONFIG, DEFAULT_L2_CONFIG
from legacy_ref.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Configuration of the full memory hierarchy."""

    l1: CacheConfig = DEFAULT_L1_CONFIG
    l2: CacheConfig = DEFAULT_L2_CONFIG
    tlb: TLBConfig = TLBConfig()
    memory_latency: int = 150
    model_tlb: bool = True

    def __post_init__(self) -> None:
        if self.memory_latency < 1:
            raise ValueError("memory latency must be at least one cycle")


@dataclass
class HierarchyStats:
    """Aggregate statistics for the hierarchy."""

    load_accesses: int = 0
    store_accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    tlb_misses: int = 0

    def l1_miss_rate(self) -> float:
        total = self.load_accesses + self.store_accesses
        return self.l1_misses / total if total else 0.0


class MemoryHierarchy:
    """L1 + L2 + memory latency model with an optional TLB."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.tlb = TLB(self.config.tlb)
        self.stats = HierarchyStats()

    @property
    def l1_latency(self) -> int:
        """The load-to-use latency of an L1 hit (the scheduler's assumption)."""
        return self.config.l1.latency

    def load_latency(self, addr: int) -> int:
        """Latency of a load to ``addr``, updating cache/TLB state."""
        self.stats.load_accesses += 1
        return self._access_latency(addr)

    def store_touch(self, addr: int) -> int:
        """Model a store commit touching the hierarchy; returns latency.

        Store commit latency is off the critical path (stores retire into a
        write buffer), so the returned latency is informational only, but the
        line allocation keeps subsequent loads to the same line warm.
        """
        self.stats.store_accesses += 1
        return self._access_latency(addr)

    def _access_latency(self, addr: int) -> int:
        latency = self.config.l1.latency
        if self.config.model_tlb:
            tlb_penalty = self.tlb.access(addr)
            if tlb_penalty:
                self.stats.tlb_misses += 1
                latency += tlb_penalty
        if self.l1.access(addr):
            return latency
        self.stats.l1_misses += 1
        latency += self.config.l2.latency
        if self.l2.access(addr):
            return latency
        self.stats.l2_misses += 1
        return latency + self.config.memory_latency

    def warm(self, addr: int) -> None:
        """Pre-install the line holding ``addr`` into L1 and L2 (warm-up)."""
        self.l1.touch_line(addr)
        self.l2.touch_line(addr)

    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.tlb.reset_stats()

    def state_signature(self) -> tuple:
        """Hashable snapshot of L1 + L2 + TLB contents (exact, LRU order
        included); used by the checkpoint round-trip tests."""
        return (self.l1.state_signature(), self.l2.state_signature(),
                self.tlb.state_signature())

# Frozen seed reference (src/repro/pipeline/config.py @ PR 4) — see legacy_ref/__init__.py.
"""Processor configuration.

Defaults reproduce the machine described in Section 4.1 of the paper:

* 512-entry reorder buffer, 300-entry issue queue, 128-entry load queue,
  64-entry store queue;
* 19-stage pipeline (3 fetch, 2 decode, 2 rename, 2 schedule, 3 register
  read, 1 execute, 1 writeback, 1 SVW, 3 re-execute, 1 commit);
* fetch up to 12 instructions per cycle past a single taken branch;
* decode/rename/issue/commit 8 instructions per cycle with an issue mix of
  6 integer, 4 FP, 1 branch, 2 store, and 2 loads per cycle;
* 3-cycle 64 KB L1, 10-cycle 1 MB L2, 150-cycle memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from legacy_ref.hierarchy import MemoryHierarchyConfig
from legacy_ref.branch_predictor import BranchPredictorConfig


@dataclass(frozen=True)
class IssueLimits:
    """Per-cycle issue bandwidth by operation class (Section 4.1 issue mix)."""

    total: int = 8
    int_ops: int = 6
    fp_ops: int = 4
    branches: int = 1
    loads: int = 2
    stores: int = 2

    def __post_init__(self) -> None:
        for value in (self.total, self.int_ops, self.fp_ops, self.branches, self.loads, self.stores):
            if value <= 0:
                raise ValueError("issue limits must be positive")


@dataclass(frozen=True)
class CoreConfig:
    """Full core configuration."""

    # Window sizes.
    rob_size: int = 512
    issue_queue_size: int = 300
    load_queue_size: int = 128
    store_queue_size: int = 64

    # Widths.
    fetch_width: int = 12
    rename_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    taken_branches_per_cycle: int = 1
    issue_limits: IssueLimits = field(default_factory=IssueLimits)

    # Pipeline depths / penalties (cycles).
    frontend_depth: int = 9          # fetch(3)+decode(2)+rename(2)+schedule(2)
    backend_commit_delay: int = 5    # writeback(1)+SVW(1)+re-execute(3)
    branch_redirect_penalty: int = 9  # refill the front end after a mispredict
    flush_penalty: int = 10          # refetch redirect after a re-execution flush
    replay_penalty: int = 3          # scheduler replay of mis-woken dependants
    ssn_wrap_drain_penalty: int = 40  # pipeline drain when 16-bit SSNs wrap

    # Memory system.
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    branch_predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    # SSN width (hardware wrap modelling).
    ssn_bits: int = 16
    model_ssn_wrap: bool = True

    # Simulator fast path: fast-forward the clock over cycles in which
    # nothing can issue, dispatch, complete, or commit.  Cycle-exact and
    # statistics-identical to the straight-line loop; disable to A/B-check
    # the event-aware loop against the original one-cycle-at-a-time loop.
    idle_skip: bool = True

    # Safety valve for the cycle loop.
    max_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rob_size <= 0 or self.issue_queue_size <= 0:
            raise ValueError("window sizes must be positive")
        if self.store_queue_size & (self.store_queue_size - 1):
            raise ValueError("store queue size must be a power of two")
        for width in (self.fetch_width, self.rename_width, self.issue_width, self.commit_width):
            if width <= 0:
                raise ValueError("pipeline widths must be positive")
        if self.flush_penalty < 0 or self.branch_redirect_penalty < 0 or self.replay_penalty < 0:
            raise ValueError("penalties must be non-negative")


def small_test_config(**overrides) -> CoreConfig:
    """A scaled-down configuration for fast unit tests.

    Keeps the structural relationships of the default machine (SQ smaller
    than LQ smaller than ROB) while making tests that need to fill windows
    run quickly.
    """
    params = dict(
        rob_size=64,
        issue_queue_size=32,
        load_queue_size=16,
        store_queue_size=8,
        fetch_width=4,
        rename_width=4,
        issue_width=4,
        commit_width=4,
    )
    params.update(overrides)
    return CoreConfig(**params)

# Frozen seed reference (src/repro/isa/uop.py @ PR 4) — see legacy_ref/__init__.py.
"""Dynamic micro-op model.

A :class:`MicroOp` is one dynamic instruction as seen by the timing model.
Workload generators (:mod:`repro.workloads`) produce streams of micro-ops;
the out-of-order core (:mod:`legacy_ref.core`) consumes them.

The model is deliberately register-transfer-level only: a micro-op names its
architectural source and destination registers, its operation class (which
determines execution latency and functional-unit usage), and — for memory
operations — its effective address, access size, and (for stores) the value
written.  Loads do not carry a value; the correct value of a load is defined
by the memory image maintained by the simulator (initial memory contents plus
all older committed stores), exactly as in value-based re-execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpClass(enum.IntEnum):
    """Operation classes recognised by the timing model.

    The class determines the execution latency and which per-cycle issue
    budget the operation draws from (see
    :class:`legacy_ref.config.IssueLimits`).
    """

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    FP_DIV = 4
    LOAD = 5
    STORE = 6
    BRANCH = 7
    NOP = 8

    @property
    def is_load(self) -> bool:
        return self is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self is OpClass.LOAD or self is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV)

    @property
    def is_int(self) -> bool:
        return self in (OpClass.INT_ALU, OpClass.INT_MUL)


#: Default execution latencies (cycles) per operation class.  These follow
#: the configuration in Section 4.1 of the paper (single-cycle integer ALU,
#: pipelined multiplier, multi-cycle FP).  Load latency is *not* listed here:
#: it is computed dynamically from the cache hierarchy and store queue.
DEFAULT_LATENCIES = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP_ALU: 4,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.LOAD: 1,      # address generation only; cache/SQ latency is added
    OpClass.STORE: 1,     # address generation / data movement into the SQ
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

#: Legal memory access sizes in bytes (the paper assumes a maximum of 8).
VALID_ACCESS_SIZES = (1, 2, 4, 8)

#: Maximum access size; the SSBF/SPCT are banked this many ways (Section 3.2).
MAX_ACCESS_SIZE = 8


@dataclass(frozen=True)
class MemAccess:
    """Memory access descriptor attached to loads and stores.

    Attributes
    ----------
    addr:
        Byte address of the access (full 64-bit virtual address space; the
        simulator performs identity translation, so this is also the
        physical address).
    size:
        Access width in bytes; one of :data:`VALID_ACCESS_SIZES`.
    value:
        For stores, the value written (an unsigned integer fitting in
        ``size`` bytes).  For loads the field is ``None``: load values are
        defined by the memory image plus older stores.
    """

    addr: int
    size: int
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid access size {self.size}; expected one of {VALID_ACCESS_SIZES}")
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr:#x}")
        if self.value is not None:
            limit = 1 << (8 * self.size)
            if not (0 <= self.value < limit):
                raise ValueError(f"store value {self.value:#x} does not fit in {self.size} bytes")

    @property
    def byte_range(self) -> range:
        """Range of byte addresses touched by this access."""
        return range(self.addr, self.addr + self.size)

    def overlaps(self, other: "MemAccess") -> bool:
        """True if the byte ranges of the two accesses intersect."""
        return self.addr < other.addr + other.size and other.addr < self.addr + self.size

    def contains(self, other: "MemAccess") -> bool:
        """True if this access fully covers ``other``'s byte range."""
        return self.addr <= other.addr and other.addr + other.size <= self.addr + self.size


@dataclass
class MicroOp:
    """One dynamic instruction.

    Attributes
    ----------
    pc:
        Static program counter of the instruction.  Forwarding and delay
        predictors are indexed by this value, so the workload generators are
        careful to give each *static* instruction a stable PC across its
        dynamic instances.
    op_class:
        The :class:`OpClass` of the operation.
    dest:
        Destination architectural register index, or ``None`` if the
        operation produces no register result (stores, branches, nops).
    srcs:
        Tuple of source architectural register indices.
    mem:
        :class:`MemAccess` for loads and stores, ``None`` otherwise.
    is_taken:
        For branches, whether the branch is taken in this dynamic instance.
    target:
        For taken branches, the target PC (used by the BTB model).
    hint_call / hint_return:
        Call/return hints driving the return-address-stack model.
    """

    pc: int
    op_class: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = field(default_factory=tuple)
    mem: Optional[MemAccess] = None
    is_taken: bool = False
    target: Optional[int] = None
    hint_call: bool = False
    hint_return: bool = False

    # Convenience predicates, cached as plain attributes at construction: the
    # simulator consults them several times per dynamic instruction, and a
    # chained property lookup is measurably slower than an attribute read.
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_memory: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        op_class = self.op_class
        self.is_load = op_class is OpClass.LOAD
        self.is_store = op_class is OpClass.STORE
        self.is_memory = self.is_load or self.is_store
        self.is_branch = op_class is OpClass.BRANCH
        if self.is_memory and self.mem is None:
            raise ValueError(f"{op_class.name} at pc={self.pc:#x} requires a MemAccess")
        if not self.is_memory and self.mem is not None:
            raise ValueError(f"{op_class.name} at pc={self.pc:#x} must not carry a MemAccess")
        if self.is_store and self.mem is not None and self.mem.value is None:
            raise ValueError(f"store at pc={self.pc:#x} requires a value")
        if self.is_branch and self.is_taken and self.target is None:
            raise ValueError(f"taken branch at pc={self.pc:#x} requires a target")
        if self.dest is not None and self.dest < 0:
            raise ValueError("destination register index must be non-negative")

    @property
    def addr(self) -> Optional[int]:
        return self.mem.addr if self.mem is not None else None

    @property
    def size(self) -> Optional[int]:
        return self.mem.size if self.mem is not None else None

    def describe(self) -> str:
        """Human-readable one-line description (used in examples and error text)."""
        parts = [f"pc={self.pc:#x}", self.op_class.name]
        if self.dest is not None:
            parts.append(f"dest=r{self.dest}")
        if self.srcs:
            parts.append("srcs=" + ",".join(f"r{s}" for s in self.srcs))
        if self.mem is not None:
            mem = f"[{self.mem.addr:#x}+{self.mem.size}]"
            if self.mem.value is not None:
                mem += f"={self.mem.value:#x}"
            parts.append(mem)
        if self.is_branch:
            parts.append("taken" if self.is_taken else "not-taken")
        return " ".join(parts)


def make_load(pc: int, dest: int, addr: int, size: int = 8, srcs: Tuple[int, ...] = ()) -> MicroOp:
    """Convenience constructor for a load micro-op."""
    return MicroOp(pc=pc, op_class=OpClass.LOAD, dest=dest, srcs=srcs, mem=MemAccess(addr, size))


def make_store(pc: int, addr: int, value: int, size: int = 8, srcs: Tuple[int, ...] = ()) -> MicroOp:
    """Convenience constructor for a store micro-op."""
    return MicroOp(pc=pc, op_class=OpClass.STORE, srcs=srcs, mem=MemAccess(addr, size, value))


def make_alu(pc: int, dest: int, srcs: Tuple[int, ...] = (), op_class: OpClass = OpClass.INT_ALU) -> MicroOp:
    """Convenience constructor for a register-to-register micro-op."""
    return MicroOp(pc=pc, op_class=op_class, dest=dest, srcs=srcs)


def make_branch(pc: int, taken: bool, target: Optional[int] = None, srcs: Tuple[int, ...] = (),
                call: bool = False, ret: bool = False) -> MicroOp:
    """Convenience constructor for a branch micro-op."""
    if taken and target is None:
        target = pc + 64  # synthetic forward target
    return MicroOp(pc=pc, op_class=OpClass.BRANCH, srcs=srcs, is_taken=taken, target=target,
                   hint_call=call, hint_return=ret)

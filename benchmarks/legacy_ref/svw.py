# Frozen seed reference (src/repro/core/svw.py @ PR 4) — see legacy_ref/__init__.py.
"""Store Vulnerability Window (SVW) support structures.

Section 2 reviews SVW-filtered load re-execution (Roth, ISCA'05), which the
paper's design relies on to detect forwarding mis-predictions and to train
its predictors:

* The **Store Sequence Bloom Filter (SSBF)** is an address-indexed table that
  tracks the SSN of the most recent *committed* store to each (byte)
  address.  A load re-executes only if the SSN in the SSBF entry for its
  address is greater than the SSN recorded in its LQ entry (the SSN of the
  youngest older store to which the load is *not* vulnerable).
* The **Store PC Table (SPCT)** holds the PC of the last committed store to
  write each (byte) address, so a committing load can determine the PC of the
  store it should have forwarded from and train the FSP/DDP.

Both structures are implemented at 1-byte granularity (wide stores make
multiple writes, wide loads multiple reads), which the paper notes can be
banked 8 ways.  Because the tables are smaller than memory they alias;
aliasing can only cause extra re-executions (SSBF) or mis-training (SPCT),
never incorrect final values, because re-execution itself is value-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from legacy_ref.predictors import SVWConfig


@dataclass
class SVWStats:
    """SVW filter statistics."""

    loads_checked: int = 0
    loads_reexecuted: int = 0
    ssbf_writes: int = 0
    spct_writes: int = 0

    @property
    def reexecution_rate(self) -> float:
        return self.loads_reexecuted / self.loads_checked if self.loads_checked else 0.0


class StoreSequenceBloomFilter:
    """Address-indexed table of committed-store SSNs (byte granularity)."""

    def __init__(self, entries: int = 2048, banks: int = 8) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("SSBF entries must be a positive power of two")
        self.entries = entries
        self.banks = banks
        self._table: List[int] = [0] * entries
        self._mask = entries - 1

    def _index(self, byte_addr: int) -> int:
        # Simple address hash; the low bits select the bank in hardware.
        return byte_addr & self._mask

    def update(self, addr: int, size: int, ssn: int) -> None:
        """Record that the store with ``ssn`` committed a write to the bytes
        ``[addr, addr+size)``."""
        for offset in range(size):
            self._table[self._index(addr + offset)] = ssn

    def lookup(self, addr: int, size: int) -> int:
        """SSN of the youngest committed store to any byte of the access."""
        return max(self._table[self._index(addr + offset)] for offset in range(size))

    def clear(self) -> None:
        self._table = [0] * self.entries

    def storage_bits(self, ssn_bits: int = 16) -> int:
        return ssn_bits * self.entries


class StorePCTable:
    """Address-indexed table of last-committed-store PCs (byte granularity)."""

    def __init__(self, entries: int = 2048, banks: int = 8) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("SPCT entries must be a positive power of two")
        self.entries = entries
        self.banks = banks
        self._table: List[int] = [0] * entries
        self._mask = entries - 1

    def _index(self, byte_addr: int) -> int:
        return byte_addr & self._mask

    def update(self, addr: int, size: int, store_pc: int) -> None:
        """Record ``store_pc`` as the last committed writer of these bytes."""
        for offset in range(size):
            self._table[self._index(addr + offset)] = store_pc

    def lookup(self, addr: int, size: int) -> int:
        """PC of a committed store that wrote one of the access's bytes.

        When different bytes were last written by different stores, the PC of
        the first byte is returned (hardware reads one bank per byte and the
        training logic uses the youngest; pairing with the SSBF via
        :class:`SVWFilter` provides the youngest-writer variant).
        """
        return self._table[self._index(addr)]

    def clear(self) -> None:
        self._table = [0] * self.entries

    def storage_bits(self, pc_bits: int = 8) -> int:
        return pc_bits * self.entries


class SVWFilter:
    """Combined SSBF + SPCT with the SVW re-execution filter logic."""

    def __init__(self, config: Optional[SVWConfig] = None) -> None:
        self.config = config or SVWConfig()
        self.ssbf = StoreSequenceBloomFilter(self.config.ssbf_entries, self.config.banks)
        self.spct = StorePCTable(self.config.spct_entries, self.config.banks)
        self.stats = SVWStats()

    # -- store commit -----------------------------------------------------------

    def store_committed(self, addr: int, size: int, ssn: int, store_pc: int) -> None:
        """Update both tables when a store commits."""
        self.ssbf.update(addr, size, ssn)
        self.spct.update(addr, size, store_pc)
        self.stats.ssbf_writes += 1
        self.stats.spct_writes += 1

    # -- load re-execution filter -----------------------------------------------

    def needs_reexecution(self, addr: int, size: int, load_svw_ssn: int) -> bool:
        """SVW filter check performed before the re-execution stage.

        ``load_svw_ssn`` is the SSN recorded in the load's LQ entry at
        execution: the SSN of the forwarding store if the load forwarded,
        otherwise the SSN of the youngest committed store at that time.  The
        load re-executes only if a store it is vulnerable to has since
        committed a write to one of its bytes.
        """
        self.stats.loads_checked += 1
        if self.ssbf.lookup(addr, size) > load_svw_ssn:
            self.stats.loads_reexecuted += 1
            return True
        return False

    # -- predictor training helpers ---------------------------------------------

    def last_writer(self, addr: int, size: int) -> Tuple[int, int]:
        """(SSN, PC) of the youngest committed store writing any accessed byte.

        Used at load commit to train the FSP (store PC) and the DDP
        (distance = ``SSNcmt - SSN``).  The byte whose SSBF SSN is largest
        identifies the youngest writer; the SPCT entry for that byte supplies
        the PC.
        """
        best_ssn = -1
        best_pc = 0
        for offset in range(size):
            byte_addr = addr + offset
            ssn = self.ssbf._table[self.ssbf._index(byte_addr)]
            if ssn > best_ssn:
                best_ssn = ssn
                best_pc = self.spct._table[self.spct._index(byte_addr)]
        return max(best_ssn, 0), best_pc

    def clear(self) -> None:
        """Clear both tables (SSN wrap handling)."""
        self.ssbf.clear()
        self.spct.clear()

    def state_signature(self) -> tuple:
        """Hashable snapshot of both tables.

        The SSBF/SPCT are updated only at store commit (program order), so a
        functional replay of a trace prefix must reproduce the detailed
        core's tables *exactly*; the warming unit tests assert this.
        """
        return (tuple(self.ssbf._table), tuple(self.spct._table))

# Frozen seed reference (src/repro/workloads/profiles.py @ PR 4) — see legacy_ref/__init__.py.
"""Per-benchmark workload profiles.

The paper evaluates 47 programs: 18 MediaBench runs, 16 SPECint runs, and 13
SPECfp runs (Table 3 lists all of them).  Each :class:`WorkloadProfile`
below describes the store-load forwarding structure of one of those programs
as a set of knobs the suite composer (:mod:`legacy_ref.suites`) turns
into a kernel mix:

* ``forward_rate`` — target fraction of dynamic loads that forward, taken
  directly from the first column of Table 3.
* ``not_most_recent`` — share of forwarding loads exhibiting
  not-most-recent-instance forwarding (the ``X[i] = A*X[i-2]`` pathology);
  set high for the programs the paper calls out (mesa.texgen, bzip2, ammp,
  equake, wupwise, sixtrack).
* ``fsp_pressure`` — share of forwarding loads whose producer rotates over
  many static stores (FSP conflict pressure; eon, vortex, gs).
* ``wide_narrow`` — share of forwarding loads forwarded from a wider store
  (upper-half loads cannot be captured by indexed forwarding).
* ``pointer_chase`` — share of non-forwarding loads that are serially
  dependent over a large working set (mcf, art, ammp, parser...).
* ``working_set_kb`` — streaming working set size, which sets the cache-miss
  profile and therefore how long commits (and hence DDP delays) take.
* ``fp_fraction`` — floating-point share of the non-forwarding work.
* ``branchy`` / ``branch_taken_prob`` — weight and bias of the
  data-dependent-branch kernel (branch misprediction background).

The knob values are calibration targets, not measurements of the original
binaries: forwarding rates follow Table 3 exactly, while the qualitative
knobs follow the behaviours the paper attributes to each program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Suite identifiers (match the grouping in Table 3 / Figure 4).
MEDIA = "media"
INT = "int"
FP = "fp"


@dataclass(frozen=True)
class WorkloadProfile:
    """Forwarding-structure description of one proxy benchmark."""

    name: str
    suite: str
    forward_rate: float
    not_most_recent: float = 0.05
    fsp_pressure: float = 0.05
    wide_narrow: float = 0.02
    pointer_chase: float = 0.10
    pointer_chains: int = 6           # independent chase chains (memory-level parallelism)
    working_set_kb: int = 128
    fp_fraction: float = 0.10
    branchy: float = 0.10
    branch_taken_prob: float = 0.7
    forwarding_distance: int = 4      # globals in the RMW kernel (store distance)
    stack_slots: int = 4              # spill/fill depth in the call kernel

    def __post_init__(self) -> None:
        for field_name in ("forward_rate", "not_most_recent", "fsp_pressure",
                           "wide_narrow", "pointer_chase", "fp_fraction", "branchy",
                           "branch_taken_prob"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field_name}={value} outside [0, 1]")
        if self.suite not in (MEDIA, INT, FP):
            raise ValueError(f"{self.name}: unknown suite {self.suite!r}")
        if self.working_set_kb <= 0:
            raise ValueError(f"{self.name}: working set must be positive")


def _p(name: str, suite: str, fwd_pct: float, **kwargs) -> WorkloadProfile:
    """Shorthand constructor taking the forwarding rate in percent (as printed
    in Table 3)."""
    return WorkloadProfile(name=name, suite=suite, forward_rate=fwd_pct / 100.0, **kwargs)


#: All 47 benchmark profiles, in the order of Table 3.
PROFILES: List[WorkloadProfile] = [
    # ----------------------------------------------------------- MediaBench --
    _p("adpcm.d", MEDIA, 0.0, working_set_kb=16, fp_fraction=0.0, branchy=0.20,
       pointer_chase=0.0),
    _p("adpcm.e", MEDIA, 0.0, working_set_kb=16, fp_fraction=0.0, branchy=0.20,
       pointer_chase=0.0),
    _p("epic.e", MEDIA, 8.6, working_set_kb=64, fp_fraction=0.30),
    _p("epic.d", MEDIA, 19.2, working_set_kb=64, fp_fraction=0.30, stack_slots=5),
    _p("g721.d", MEDIA, 7.4, working_set_kb=32, fp_fraction=0.05, branchy=0.15),
    _p("g721.e", MEDIA, 10.5, working_set_kb=32, fp_fraction=0.05, branchy=0.15),
    _p("gs.d", MEDIA, 26.5, fsp_pressure=0.10, working_set_kb=256, branchy=0.15,
       not_most_recent=0.10),
    _p("gsm.d", MEDIA, 3.0, working_set_kb=32, wide_narrow=0.10, not_most_recent=0.15),
    _p("gsm.e", MEDIA, 7.2, working_set_kb=32, not_most_recent=0.15, wide_narrow=0.05),
    _p("jpeg.d", MEDIA, 1.7, working_set_kb=96, wide_narrow=0.10, not_most_recent=0.10,
       fp_fraction=0.15),
    _p("jpeg.e", MEDIA, 14.3, working_set_kb=96, wide_narrow=0.05, fp_fraction=0.15),
    _p("mesa.m", MEDIA, 43.6, working_set_kb=128, fp_fraction=0.40, stack_slots=6),
    _p("mesa.o", MEDIA, 39.2, working_set_kb=128, fp_fraction=0.40, stack_slots=6),
    _p("mesa.t", MEDIA, 35.9, not_most_recent=0.45, working_set_kb=256, fp_fraction=0.40,
       stack_slots=6),
    _p("mpeg2.d", MEDIA, 25.2, working_set_kb=128, fp_fraction=0.20, stack_slots=5),
    _p("mpeg2.e", MEDIA, 4.8, working_set_kb=128, fp_fraction=0.25),
    _p("pegwit.d", MEDIA, 8.4, working_set_kb=64, not_most_recent=0.15),
    _p("pegwit.e", MEDIA, 9.2, working_set_kb=64, not_most_recent=0.15),
    # -------------------------------------------------------------- SPECint --
    _p("bzip2", INT, 11.7, not_most_recent=0.20, working_set_kb=512, pointer_chase=0.20,
       branchy=0.15),
    _p("crafty", INT, 7.0, fsp_pressure=0.06, working_set_kb=256, branchy=0.25,
       branch_taken_prob=0.6),
    _p("eon.c", INT, 28.4, fsp_pressure=0.14, working_set_kb=128, branchy=0.15,
       fp_fraction=0.15, stack_slots=6),
    _p("eon.k", INT, 21.0, fsp_pressure=0.14, working_set_kb=128, branchy=0.15,
       fp_fraction=0.15, stack_slots=6),
    _p("eon.r", INT, 24.2, fsp_pressure=0.14, working_set_kb=128, branchy=0.15,
       fp_fraction=0.15, stack_slots=6),
    _p("gap", INT, 9.5, pointer_chase=0.30, working_set_kb=512, branchy=0.10),
    _p("gcc", INT, 9.2, working_set_kb=512, branchy=0.25, branch_taken_prob=0.6,
       pointer_chase=0.20, not_most_recent=0.10),
    _p("gzip", INT, 19.6, working_set_kb=256, branchy=0.15, not_most_recent=0.05),
    _p("mcf", INT, 2.6, pointer_chase=0.80, pointer_chains=2, working_set_kb=4096,
       branchy=0.10, not_most_recent=0.15),
    _p("parser", INT, 14.0, pointer_chase=0.40, working_set_kb=512, branchy=0.20,
       not_most_recent=0.15, branch_taken_prob=0.6),
    _p("perl.d", INT, 10.8, fsp_pressure=0.04, working_set_kb=256, branchy=0.20),
    _p("perl.s", INT, 12.7, fsp_pressure=0.04, working_set_kb=256, branchy=0.20),
    _p("twolf", INT, 9.7, pointer_chase=0.30, working_set_kb=512, branchy=0.20,
       not_most_recent=0.15, branch_taken_prob=0.6),
    _p("vortex", INT, 24.5, fsp_pressure=0.10, working_set_kb=512, branchy=0.10,
       stack_slots=6),
    _p("vpr.p", INT, 8.4, pointer_chase=0.25, working_set_kb=256, branchy=0.20,
       branch_taken_prob=0.6, not_most_recent=0.15),
    _p("vpr.r", INT, 18.9, pointer_chase=0.30, working_set_kb=1024, branchy=0.15,
       not_most_recent=0.10),
    # --------------------------------------------------------------- SPECfp --
    _p("ammp", FP, 13.7, not_most_recent=0.20, pointer_chase=0.50, working_set_kb=2048,
       fp_fraction=0.60, branchy=0.03),
    _p("applu", FP, 13.1, working_set_kb=1024, fp_fraction=0.70, branchy=0.02),
    _p("apsi", FP, 6.9, working_set_kb=4096, fp_fraction=0.70, branchy=0.02,
       not_most_recent=0.20, pointer_chase=0.20),
    _p("art", FP, 2.0, pointer_chase=0.70, pointer_chains=3, working_set_kb=8192,
       fp_fraction=0.50, branchy=0.03),
    _p("equake", FP, 4.2, not_most_recent=0.25, pointer_chase=0.40, working_set_kb=2048,
       fp_fraction=0.60, branchy=0.03),
    _p("facerec", FP, 2.0, working_set_kb=1024, fp_fraction=0.70, branchy=0.02),
    _p("galgel", FP, 1.7, working_set_kb=512, fp_fraction=0.75, branchy=0.02),
    _p("lucas", FP, 0.0, working_set_kb=2048, fp_fraction=0.80, branchy=0.01,
       pointer_chase=0.0),
    _p("mesa", FP, 25.4, not_most_recent=0.20, working_set_kb=1024, fp_fraction=0.50,
       branchy=0.05, stack_slots=6),
    _p("mgrid", FP, 5.5, working_set_kb=1024, fp_fraction=0.75, branchy=0.02),
    _p("sixtrack", FP, 33.9, not_most_recent=0.22, fsp_pressure=0.06, working_set_kb=512,
       fp_fraction=0.60, branchy=0.03, stack_slots=6),
    _p("swim", FP, 3.2, working_set_kb=4096, fp_fraction=0.75, branchy=0.01),
    _p("wupwise", FP, 18.4, not_most_recent=0.25, working_set_kb=1024, fp_fraction=0.65,
       branchy=0.02),
]

#: Profiles keyed by name.
PROFILE_INDEX: Dict[str, WorkloadProfile] = {profile.name: profile for profile in PROFILES}

#: The nine programs used for the Figure 5 sensitivity study (three per suite).
SENSITIVITY_BENCHMARKS: List[str] = [
    "jpeg.d", "mesa.t", "mpeg2.d",       # MediaBench
    "eon.c", "vortex", "vpr.r",          # SPECint
    "apsi", "equake", "wupwise",         # SPECfp
]


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name."""
    try:
        return PROFILE_INDEX[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(PROFILE_INDEX)}") from None


def profiles_for_suite(suite: str) -> List[WorkloadProfile]:
    """All profiles in one suite (``'media'``, ``'int'``, or ``'fp'``)."""
    if suite not in (MEDIA, INT, FP):
        raise ValueError(f"unknown suite {suite!r}")
    return [profile for profile in PROFILES if profile.suite == suite]

# Frozen seed reference (src/repro/frontend/btb.py @ PR 4) — see legacy_ref/__init__.py.
"""Branch target buffer.

A 2K-entry, 4-way set-associative BTB (paper configuration).  The BTB maps a
branch PC to its most recent taken target; a taken branch whose target is not
in the BTB cannot redirect fetch in time and is charged as a misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BTBConfig:
    """BTB geometry."""

    entries: int = 2048
    assoc: int = 4

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ValueError("BTB geometry parameters must be positive")
        if self.entries % self.assoc != 0:
            raise ValueError("BTB entries must be divisible by associativity")
        n_sets = self.entries // self.assoc
        if n_sets & (n_sets - 1):
            raise ValueError("BTB set count must be a power of two")


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, config: Optional[BTBConfig] = None) -> None:
        self.config = config or BTBConfig()
        self._set_mask = (self.config.entries // self.config.assoc) - 1
        # Per-set list of (tag, target) pairs in LRU order.
        self._sets: Dict[int, List[Tuple[int, int]]] = {}
        self.lookups = 0
        self.hits = 0

    def _index_tag(self, pc: int) -> Tuple[int, int]:
        word = pc >> 2
        return word & self._set_mask, word

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for ``pc`` or ``None`` on a miss."""
        self.lookups += 1
        index, tag = self._index_tag(pc)
        ways = self._sets.get(index)
        if not ways:
            return None
        for i, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                self.hits += 1
                ways.insert(0, ways.pop(i))
                return target
        return None

    def insert(self, pc: int, target: int) -> None:
        """Install or refresh the target for ``pc``."""
        index, tag = self._index_tag(pc)
        ways = self._sets.setdefault(index, [])
        for i, (entry_tag, _) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self.config.assoc:
            ways.pop()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def state_signature(self) -> tuple:
        """Hashable snapshot of the full BTB contents (tags, targets, LRU
        order); used by the checkpoint round-trip tests."""
        return tuple(sorted((index, tuple(ways))
                            for index, ways in self._sets.items() if ways))

# Frozen seed reference (src/repro/isa/registers.py @ PR 4) — see legacy_ref/__init__.py.
"""Architectural register model.

The trace ISA uses a flat architectural register space: integer registers
``0 .. INT_REG_COUNT-1`` and floating-point registers
``INT_REG_COUNT .. INT_REG_COUNT+FP_REG_COUNT-1``.  Register ``REG_ZERO`` is
a hard-wired zero register (reads are always ready, writes are discarded),
mirroring the Alpha's ``r31``.
"""

from __future__ import annotations

from typing import Iterator, List

#: Number of architectural integer registers.
INT_REG_COUNT = 32

#: Number of architectural floating-point registers.
FP_REG_COUNT = 32

#: Total architectural register count.
TOTAL_REG_COUNT = INT_REG_COUNT + FP_REG_COUNT

#: The hard-wired zero register (never creates a dependence).
REG_ZERO = 31


def is_int_reg(reg: int) -> bool:
    """True if ``reg`` names an integer architectural register."""
    return 0 <= reg < INT_REG_COUNT


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point architectural register."""
    return INT_REG_COUNT <= reg < TOTAL_REG_COUNT


def validate_reg(reg: int) -> int:
    """Validate a register index, returning it unchanged.

    Raises
    ------
    ValueError
        If the index is outside the architectural register space.
    """
    if not 0 <= reg < TOTAL_REG_COUNT:
        raise ValueError(f"register index {reg} outside architectural space [0, {TOTAL_REG_COUNT})")
    return reg


class ArchRegisterFile:
    """Architectural register file holding 64-bit values.

    The timing model does not need register *values* for correctness of the
    forwarding study (memory values are what matter), but the workload
    generators use this class to keep generated value streams self-consistent
    and the functional checker in the tests uses it to validate traces.
    """

    def __init__(self) -> None:
        self._values: List[int] = [0] * TOTAL_REG_COUNT

    def read(self, reg: int) -> int:
        """Read a register; the zero register always reads 0."""
        validate_reg(reg)
        if reg == REG_ZERO:
            return 0
        return self._values[reg]

    def write(self, reg: int, value: int) -> None:
        """Write a register; writes to the zero register are discarded."""
        validate_reg(reg)
        if reg == REG_ZERO:
            return
        self._values[reg] = value & 0xFFFF_FFFF_FFFF_FFFF

    def snapshot(self) -> List[int]:
        """Return a copy of all register values."""
        return list(self._values)

    def restore(self, snapshot: List[int]) -> None:
        """Restore register values from a snapshot taken by :meth:`snapshot`."""
        if len(snapshot) != TOTAL_REG_COUNT:
            raise ValueError(f"snapshot length {len(snapshot)} != {TOTAL_REG_COUNT}")
        self._values = list(snapshot)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __len__(self) -> int:
        return TOTAL_REG_COUNT

# Frozen seed reference (src/repro/workloads/kernels.py @ PR 4) — see legacy_ref/__init__.py.
"""Workload kernels.

Each kernel is a small static code fragment exhibiting one of the store-load
forwarding (or non-forwarding) behaviours discussed in the paper:

* :class:`StackSpillKernel` — register save/restore across a call: loads
  forward from the most recent instance of nearby static stores (the common,
  FSP-friendly case).
* :class:`GlobalRMWKernel` — read-modify-write of a small set of globals,
  each with its own static load/store pair: most-recent forwarding at a
  configurable store distance.
* :class:`NotMostRecentKernel` — the paper's ``X[i] = A * X[i-2]`` loop: the
  load forwards from a store instance that is *not* the most recent instance
  of its static store, the case the FSP cannot capture and the DDP exists
  for (Section 3.3).
* :class:`ManyStoreDepKernel` — one static load that forwards from many
  different static stores, creating FSP associativity/conflict pressure (the
  eon/vortex behaviour described in Section 4.4).
* :class:`WideNarrowKernel` — a wide store forwarded to narrow loads; the
  upper-half load has a different address than the store and therefore
  cannot be captured by indexed forwarding (an occasional pathology).
* :class:`StreamCopyKernel`, :class:`AccumulateKernel`,
  :class:`FPStencilKernel` — streaming loads/stores with no forwarding and a
  configurable working-set size (cache behaviour).
* :class:`PointerChaseKernel` — serially dependent loads over a large
  working set (mcf/art-like memory-bound behaviour, no forwarding).
* :class:`BranchyKernel` — data-dependent branches with configurable
  predictability (branch misprediction background noise).
"""

from __future__ import annotations

from typing import List

from legacy_ref.uop import OpClass
from legacy_ref.program import Kernel, ProgramBuilder


class StackSpillKernel(Kernel):
    """Call-site register save/restore; every restore load forwards."""

    def __init__(self, builder: ProgramBuilder, slots: int = 4, work_ops: int = 4) -> None:
        super().__init__(builder)
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.slots = slots
        self.work_ops = work_ops
        self.loads_per_iteration = float(slots)
        self.forwarding_loads_per_iteration = float(slots)

        self._stack = builder.alloc_region(slots * 8)
        self._regs = builder.alloc_int_regs(min(slots, 6))
        self._work_regs = builder.alloc_int_regs(2)
        self._call_pc = builder.alloc_pc()
        self._store_pcs = builder.alloc_pcs(slots)
        self._work_pcs = builder.alloc_pcs(work_ops)
        self._load_pcs = builder.alloc_pcs(slots)
        self._ret_pc = builder.alloc_pc()

    def emit(self) -> None:
        b = self.builder
        b.branch(self._call_pc, taken=True, target=self._store_pcs[0], call=True)
        for i in range(self.slots):
            src = self._regs[i % len(self._regs)]
            b.store(self._store_pcs[i], self._stack + 8 * i, b.value(8), size=8, srcs=(src,))
        for i in range(self.work_ops):
            dest = self._work_regs[i % 2]
            src = self._work_regs[(i + 1) % 2]
            b.alu(self._work_pcs[i], dest, (src,))
        for i in range(self.slots):
            dest = self._regs[i % len(self._regs)]
            b.load(self._load_pcs[i], dest, self._stack + 8 * i, size=8)
        b.branch(self._ret_pc, taken=True, target=self._call_pc + 4, ret=True)


class GlobalRMWKernel(Kernel):
    """Read-modify-write of ``n_globals`` globals, round-robin.

    Each global has its own static load/store pair, so every load forwards
    from the *most recent* instance of its static store, at a distance of
    ``n_globals`` dynamic stores.
    """

    def __init__(self, builder: ProgramBuilder, n_globals: int = 4, work_ops: int = 2) -> None:
        super().__init__(builder)
        if n_globals <= 0:
            raise ValueError("n_globals must be positive")
        self.n_globals = n_globals
        self.work_ops = work_ops
        self.loads_per_iteration = 1.0
        self.forwarding_loads_per_iteration = 1.0

        self._region = builder.alloc_region(n_globals * 8)
        self._reg = builder.alloc_int_reg()
        self._tmp = builder.alloc_int_reg()
        self._load_pcs = builder.alloc_pcs(n_globals)
        self._work_pcs = builder.alloc_pcs(work_ops)
        self._store_pcs = builder.alloc_pcs(n_globals)
        self._branch_pc = builder.alloc_pc()
        self._index = 0
        self._primed = [False] * n_globals

    def emit(self) -> None:
        b = self.builder
        j = self._index % self.n_globals
        self._index += 1
        addr = self._region + 8 * j
        if not self._primed[j]:
            # First visit: initialise the global so later loads read written data.
            b.store(self._store_pcs[j], addr, b.value(8), size=8, srcs=(self._tmp,))
            self._primed[j] = True
            return
        b.load(self._load_pcs[j], self._reg, addr, size=8)
        for i in range(self.work_ops):
            b.alu(self._work_pcs[i], self._tmp, (self._reg, self._tmp))
        b.store(self._store_pcs[j], addr, b.value(8), size=8, srcs=(self._tmp,))
        b.branch(self._branch_pc, taken=True, target=self._load_pcs[0])


class NotMostRecentKernel(Kernel):
    """The paper's ``X[i] = A * X[i-lag]`` loop (Section 3.2/3.3).

    The load of ``X[i-lag]`` forwards from the store executed ``lag``
    iterations earlier — not the most recent instance of that static store —
    so the FSP/SAT cannot capture it and the DDP must delay it instead.
    """

    def __init__(self, builder: ProgramBuilder, lag: int = 2, elements: int = 4096,
                 fp: bool = True) -> None:
        super().__init__(builder)
        if lag <= 0:
            raise ValueError("lag must be positive")
        self.lag = lag
        self.elements = elements
        self.fp = fp
        self.loads_per_iteration = 1.0
        self.forwarding_loads_per_iteration = 1.0

        self._region = builder.alloc_region(elements * 8)
        self._reg = builder.alloc_fp_reg() if fp else builder.alloc_int_reg()
        self._coef = builder.alloc_fp_reg() if fp else builder.alloc_int_reg()
        self._load_pc = builder.alloc_pc()
        self._mul_pc = builder.alloc_pc()
        self._store_pc = builder.alloc_pc()
        self._branch_pc = builder.alloc_pc()
        self._i = 0

    def emit(self) -> None:
        b = self.builder
        i = self._i
        self._i += 1
        if i < self.lag:
            # Prologue: initialise the first `lag` elements with stores only.
            b.store(self._store_pc, self._region + 8 * (i % self.elements), b.value(8),
                    size=8, srcs=(self._reg,))
            return
        load_addr = self._region + 8 * ((i - self.lag) % self.elements)
        store_addr = self._region + 8 * (i % self.elements)
        b.load(self._load_pc, self._reg, load_addr, size=8)
        op = OpClass.FP_MUL if self.fp else OpClass.INT_MUL
        b.alu(self._mul_pc, self._reg, (self._reg, self._coef), op_class=op)
        b.store(self._store_pc, store_addr, b.value(8), size=8, srcs=(self._reg,))
        b.branch(self._branch_pc, taken=True, target=self._load_pc)


class ManyStoreDepKernel(Kernel):
    """One static load forwarding from many different static stores.

    With more producer store PCs than FSP associativity the load's FSP set
    thrashes, which (without delay prediction) causes frequent flushes — the
    eon/vortex behaviour noted in Section 4.4.
    """

    def __init__(self, builder: ProgramBuilder, n_stores: int = 4, work_ops: int = 3) -> None:
        super().__init__(builder)
        if n_stores <= 0:
            raise ValueError("n_stores must be positive")
        self.n_stores = n_stores
        self.work_ops = max(1, work_ops)
        self.loads_per_iteration = 1.0
        self.forwarding_loads_per_iteration = 1.0

        self._addr = builder.alloc_region(8)
        self._reg = builder.alloc_int_reg()
        self._tmp = builder.alloc_int_reg()
        self._store_pcs = builder.alloc_pcs(n_stores)
        self._work_pcs = builder.alloc_pcs(self.work_ops)
        self._load_pc = builder.alloc_pc()
        self._branch_pc = builder.alloc_pc()
        self._index = 0

    def emit(self) -> None:
        b = self.builder
        k = self._index % self.n_stores
        self._index += 1
        b.store(self._store_pcs[k], self._addr, b.value(8), size=8, srcs=(self._tmp,))
        # A short dependent chain between the store and the load, which the
        # load's address computation consumes.  This mirrors real code (the
        # reload is separated from the producer by address arithmetic) and
        # means the *associative* SQ finds the already-executed store, while
        # the indexed SQ still mis-forwards whenever the FSP's limited
        # associativity fails to name the right producer.
        for i in range(self.work_ops):
            b.alu(self._work_pcs[i], self._tmp, (self._tmp,))
        b.load(self._load_pc, self._reg, self._addr, size=8, srcs=(self._tmp,))
        b.branch(self._branch_pc, taken=True, target=self._store_pcs[0])


class WideNarrowKernel(Kernel):
    """Wide store forwarded to narrow loads.

    The low-half load has the same address as the store and forwards through
    the indexed SQ; the high-half load has a different address and cannot,
    making it a guaranteed indexed-forwarding pathology.
    """

    def __init__(self, builder: ProgramBuilder, work_ops: int = 3) -> None:
        super().__init__(builder)
        self.work_ops = work_ops
        self.loads_per_iteration = 2.0
        self.forwarding_loads_per_iteration = 2.0

        self._addr = builder.alloc_region(8)
        self._reg_lo = builder.alloc_int_reg()
        self._reg_hi = builder.alloc_int_reg()
        self._tmp = builder.alloc_int_reg()
        self._store_pc = builder.alloc_pc()
        self._work_pcs = builder.alloc_pcs(work_ops)
        self._load_lo_pc = builder.alloc_pc()
        self._load_hi_pc = builder.alloc_pc()
        self._branch_pc = builder.alloc_pc()

    def emit(self) -> None:
        b = self.builder
        b.store(self._store_pc, self._addr, b.value(8), size=8, srcs=(self._tmp,))
        for i in range(self.work_ops):
            b.alu(self._work_pcs[i], self._tmp, (self._tmp,))
        b.load(self._load_lo_pc, self._reg_lo, self._addr, size=4)
        b.load(self._load_hi_pc, self._reg_hi, self._addr + 4, size=4)
        b.branch(self._branch_pc, taken=True, target=self._store_pc)


class StreamCopyKernel(Kernel):
    """Streaming copy ``B[i] = f(A[i])``; no store-load forwarding."""

    def __init__(self, builder: ProgramBuilder, working_set_bytes: int = 64 * 1024,
                 stride: int = 8) -> None:
        super().__init__(builder)
        self.stride = stride
        self.elements = max(1, working_set_bytes // (2 * stride))
        self.loads_per_iteration = 1.0
        self.forwarding_loads_per_iteration = 0.0

        self._src = builder.alloc_region(self.elements * stride)
        self._dst = builder.alloc_region(self.elements * stride)
        self._reg = builder.alloc_int_reg()
        self._tmp = builder.alloc_int_reg()
        self._load_pc = builder.alloc_pc()
        self._alu_pc = builder.alloc_pc()
        self._store_pc = builder.alloc_pc()
        self._branch_pc = builder.alloc_pc()
        self._i = 0

    def emit(self) -> None:
        b = self.builder
        offset = (self._i % self.elements) * self.stride
        self._i += 1
        b.load(self._load_pc, self._reg, self._src + offset, size=8)
        b.alu(self._alu_pc, self._tmp, (self._reg,))
        b.store(self._store_pc, self._dst + offset, b.value(8), size=8, srcs=(self._tmp,))
        b.branch(self._branch_pc, taken=True, target=self._load_pc)


class AccumulateKernel(Kernel):
    """Load-and-accumulate over an array; no stores at all."""

    def __init__(self, builder: ProgramBuilder, working_set_bytes: int = 32 * 1024,
                 unroll: int = 2) -> None:
        super().__init__(builder)
        self.unroll = max(1, unroll)
        self.elements = max(1, working_set_bytes // 8)
        self.loads_per_iteration = float(self.unroll)
        self.forwarding_loads_per_iteration = 0.0

        self._src = builder.alloc_region(self.elements * 8)
        self._acc = builder.alloc_int_reg()
        self._regs = builder.alloc_int_regs(self.unroll)
        self._load_pcs = builder.alloc_pcs(self.unroll)
        self._add_pcs = builder.alloc_pcs(self.unroll)
        self._branch_pc = builder.alloc_pc()
        self._i = 0

    def emit(self) -> None:
        b = self.builder
        for u in range(self.unroll):
            offset = ((self._i + u) % self.elements) * 8
            b.load(self._load_pcs[u], self._regs[u], self._src + offset, size=8)
            b.alu(self._add_pcs[u], self._acc, (self._acc, self._regs[u]))
        self._i += self.unroll
        b.branch(self._branch_pc, taken=True, target=self._load_pcs[0])


class FPStencilKernel(Kernel):
    """Three-point FP stencil ``b[i] = f(a[i-1], a[i], a[i+1])``; no forwarding."""

    def __init__(self, builder: ProgramBuilder, working_set_bytes: int = 128 * 1024) -> None:
        super().__init__(builder)
        self.elements = max(4, working_set_bytes // 16)
        self.loads_per_iteration = 3.0
        self.forwarding_loads_per_iteration = 0.0

        self._src = builder.alloc_region(self.elements * 8)
        self._dst = builder.alloc_region(self.elements * 8)
        self._regs = builder.alloc_fp_regs(3)
        self._acc = builder.alloc_fp_reg()
        self._load_pcs = builder.alloc_pcs(3)
        self._fp_pcs = builder.alloc_pcs(2)
        self._store_pc = builder.alloc_pc()
        self._branch_pc = builder.alloc_pc()
        self._i = 1

    def emit(self) -> None:
        b = self.builder
        i = self._i
        self._i += 1
        for k, delta in enumerate((-1, 0, 1)):
            offset = ((i + delta) % self.elements) * 8
            b.load(self._load_pcs[k], self._regs[k], self._src + offset, size=8)
        b.alu(self._fp_pcs[0], self._acc, (self._regs[0], self._regs[1]), op_class=OpClass.FP_ALU)
        b.alu(self._fp_pcs[1], self._acc, (self._acc, self._regs[2]), op_class=OpClass.FP_MUL)
        b.store(self._store_pc, self._dst + (i % self.elements) * 8, b.value(8),
                size=8, srcs=(self._acc,))
        b.branch(self._branch_pc, taken=True, target=self._load_pcs[0])


class PointerChaseKernel(Kernel):
    """Serially dependent loads over shuffled node lists (no forwarding).

    ``chains`` independent traversals are interleaved round-robin: each chain
    is serialised on itself (the load consumes the register the previous load
    of the same chain produced), while separate chains provide memory-level
    parallelism, the way real pointer-chasing code (mcf, ammp) overlaps
    several list walks per outer-loop iteration.
    """

    def __init__(self, builder: ProgramBuilder, nodes: int = 4096, node_bytes: int = 64,
                 chains: int = 6) -> None:
        super().__init__(builder)
        self.nodes = max(2, nodes)
        self.node_bytes = node_bytes
        self.chains = max(1, chains)
        self.loads_per_iteration = 1.0
        self.forwarding_loads_per_iteration = 0.0

        self._region = builder.alloc_region(self.nodes * node_bytes)
        self._ptr_regs = builder.alloc_int_regs(self.chains)
        self._load_pcs = builder.alloc_pcs(self.chains)
        self._alu_pcs = builder.alloc_pcs(self.chains)
        self._order = list(range(self.nodes))
        builder.rng.shuffle(self._order)
        self._pos = 0
        self._chain = 0

    def emit(self) -> None:
        b = self.builder
        node = self._order[self._pos % self.nodes]
        self._pos += 1
        chain = self._chain
        self._chain = (self._chain + 1) % self.chains
        addr = self._region + node * self.node_bytes
        reg = self._ptr_regs[chain]
        # The load consumes the previous pointer value of its own chain and
        # produces the next one, serialising each chain on itself.
        b.load(self._load_pcs[chain], reg, addr, size=8, srcs=(reg,))
        b.alu(self._alu_pcs[chain], reg, (reg,))


class BranchyKernel(Kernel):
    """ALU work plus a data-dependent branch with configurable predictability."""

    def __init__(self, builder: ProgramBuilder, taken_prob: float = 0.5, work_ops: int = 2) -> None:
        super().__init__(builder)
        if not 0.0 <= taken_prob <= 1.0:
            raise ValueError("taken_prob must be within [0, 1]")
        self.taken_prob = taken_prob
        self.work_ops = work_ops
        self.loads_per_iteration = 0.0
        self.forwarding_loads_per_iteration = 0.0

        self._regs = builder.alloc_int_regs(2)
        self._work_pcs = builder.alloc_pcs(work_ops)
        self._branch_pc = builder.alloc_pc()
        self._target = builder.alloc_pc()

    def emit(self) -> None:
        b = self.builder
        for i in range(self.work_ops):
            b.alu(self._work_pcs[i], self._regs[i % 2], (self._regs[(i + 1) % 2],))
        taken = b.rng.random() < self.taken_prob
        b.branch(self._branch_pc, taken=taken, target=self._target, srcs=(self._regs[0],))


#: All kernel classes, exported for tests that want to iterate over them.
ALL_KERNELS: List[type] = [
    StackSpillKernel,
    GlobalRMWKernel,
    NotMostRecentKernel,
    ManyStoreDepKernel,
    WideNarrowKernel,
    StreamCopyKernel,
    AccumulateKernel,
    FPStencilKernel,
    PointerChaseKernel,
    BranchyKernel,
]

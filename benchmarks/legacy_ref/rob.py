# Frozen seed reference (src/repro/pipeline/rob.py @ PR 4) — see legacy_ref/__init__.py.
"""Reorder buffer.

The ROB is the in-order window of in-flight instructions.  The timing model
keeps the rich per-instruction state in its own records; the ROB class
tracks program order, occupancy (structural stalls), and the head/commit
interface, and supports squashing everything younger than a given entry on a
flush.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, TypeVar

T = TypeVar("T")


class ReorderBuffer:
    """Bounded in-order buffer of in-flight instruction records."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("ROB size must be positive")
        self.size = size
        self._entries: Deque = deque()
        self.allocations = 0
        self.full_stalls = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def is_empty(self) -> bool:
        return not self._entries

    def push(self, record) -> None:
        """Append a newly renamed instruction (program order)."""
        if self.is_full():
            raise RuntimeError("ROB overflow; caller must check is_full()")
        self._entries.append(record)
        self.allocations += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)

    def head(self):
        """The oldest in-flight instruction, or ``None`` if empty."""
        return self._entries[0] if self._entries else None

    def pop_head(self):
        """Remove and return the oldest instruction (commit)."""
        if not self._entries:
            raise RuntimeError("pop from an empty ROB")
        return self._entries.popleft()

    def squash_younger_than(self, seq: int) -> List:
        """Remove all records with ``record.seq > seq``; returns them
        youngest-first (the order repair logs must be replayed in)."""
        squashed: List = []
        while self._entries and self._entries[-1].seq > seq:
            squashed.append(self._entries.pop())
        return squashed

    def __iter__(self) -> Iterator:
        return iter(self._entries)

# Frozen seed reference (src/repro/workloads/program.py @ PR 4) — see legacy_ref/__init__.py.
"""Program builder: the substrate workload kernels are written against.

A :class:`ProgramBuilder` manages the resources a synthetic program needs —
stable static PCs (so the PC-indexed predictors see the same static
instruction across dynamic instances), architectural registers, disjoint
memory regions, and deterministic pseudo-random values — and provides typed
emit helpers that append :class:`~legacy_ref.uop.MicroOp` records to the
trace being built.

A :class:`Kernel` is a small static code fragment: it allocates its PCs,
registers, and memory regions once at construction and then emits one loop
iteration's worth of dynamic micro-ops every time :meth:`Kernel.emit` is
called.  Workload composers interleave iterations of several kernels to
approximate a target benchmark profile.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from legacy_ref.registers import FP_REG_COUNT, INT_REG_COUNT, REG_ZERO
from legacy_ref.trace import DynamicTrace
from legacy_ref.uop import MemAccess, MicroOp, OpClass

#: Base of the synthetic code segment; static PCs are allocated upward from here.
CODE_BASE = 0x0040_0000

#: Base of the synthetic data segment; memory regions are allocated upward.
DATA_BASE = 0x1000_0000

#: Region alignment (keeps independently allocated regions on distinct cache lines).
REGION_ALIGN = 64


class ProgramBuilder:
    """Builds one synthetic program / dynamic trace."""

    def __init__(self, name: str, seed: int = 1) -> None:
        self.name = name
        self.rng = random.Random(seed)
        self.uops: List[MicroOp] = []
        self._next_pc = CODE_BASE
        self._next_data = DATA_BASE
        self._next_int_reg = 1          # r0 reserved as a generic source
        self._next_fp_reg = INT_REG_COUNT

    # -- resource allocation ----------------------------------------------------

    def alloc_pc(self) -> int:
        """Allocate a new static instruction address."""
        pc = self._next_pc
        self._next_pc += 4
        return pc

    def alloc_pcs(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive static instruction addresses."""
        return [self.alloc_pc() for _ in range(count)]

    def alloc_region(self, size_bytes: int) -> int:
        """Allocate a data region of at least ``size_bytes`` bytes."""
        if size_bytes <= 0:
            raise ValueError("region size must be positive")
        base = self._next_data
        rounded = (size_bytes + REGION_ALIGN - 1) // REGION_ALIGN * REGION_ALIGN
        self._next_data += rounded + REGION_ALIGN
        return base

    def alloc_int_reg(self) -> int:
        """Allocate an integer register (wraps around, excluding the zero reg)."""
        reg = self._next_int_reg
        self._next_int_reg += 1
        if self._next_int_reg >= REG_ZERO:
            self._next_int_reg = 1
        return reg

    def alloc_fp_reg(self) -> int:
        """Allocate a floating-point register (wraps around)."""
        reg = self._next_fp_reg
        self._next_fp_reg += 1
        if self._next_fp_reg >= INT_REG_COUNT + FP_REG_COUNT:
            self._next_fp_reg = INT_REG_COUNT
        return reg

    def alloc_int_regs(self, count: int) -> List[int]:
        return [self.alloc_int_reg() for _ in range(count)]

    def alloc_fp_regs(self, count: int) -> List[int]:
        return [self.alloc_fp_reg() for _ in range(count)]

    def value(self, size: int = 8) -> int:
        """A deterministic pseudo-random store value of the given width."""
        return self.rng.getrandbits(8 * size)

    # -- emit helpers -----------------------------------------------------------

    def load(self, pc: int, dest: int, addr: int, size: int = 8,
             srcs: Sequence[int] = ()) -> MicroOp:
        uop = MicroOp(pc=pc, op_class=OpClass.LOAD, dest=dest, srcs=tuple(srcs),
                      mem=MemAccess(addr=addr, size=size))
        self.uops.append(uop)
        return uop

    def store(self, pc: int, addr: int, value: int, size: int = 8,
              srcs: Sequence[int] = ()) -> MicroOp:
        uop = MicroOp(pc=pc, op_class=OpClass.STORE, srcs=tuple(srcs),
                      mem=MemAccess(addr=addr, size=size, value=value))
        self.uops.append(uop)
        return uop

    def alu(self, pc: int, dest: int, srcs: Sequence[int] = (),
            op_class: OpClass = OpClass.INT_ALU) -> MicroOp:
        uop = MicroOp(pc=pc, op_class=op_class, dest=dest, srcs=tuple(srcs))
        self.uops.append(uop)
        return uop

    def branch(self, pc: int, taken: bool, target: Optional[int] = None,
               srcs: Sequence[int] = (), call: bool = False, ret: bool = False) -> MicroOp:
        if taken and target is None:
            target = pc + 64
        uop = MicroOp(pc=pc, op_class=OpClass.BRANCH, srcs=tuple(srcs),
                      is_taken=taken, target=target, hint_call=call, hint_return=ret)
        self.uops.append(uop)
        return uop

    def nop(self, pc: int) -> MicroOp:
        uop = MicroOp(pc=pc, op_class=OpClass.NOP)
        self.uops.append(uop)
        return uop

    # -- finishing --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.uops)

    def finish(self) -> DynamicTrace:
        """Materialise the trace built so far."""
        return DynamicTrace(name=self.name, uops=self.uops)


class Kernel:
    """Base class for workload kernels.

    A kernel allocates its static resources (PCs, registers, memory regions)
    once in ``__init__`` and emits one dynamic iteration per :meth:`emit`
    call.  Subclasses report how many loads and how many *forwarding* loads
    a typical iteration contains so composers can mix kernels to hit a target
    forwarding rate.
    """

    #: Loads emitted per iteration (approximate, used for mix planning).
    loads_per_iteration: float = 0.0
    #: Loads per iteration expected to forward from an in-flight store.
    forwarding_loads_per_iteration: float = 0.0

    def __init__(self, builder: ProgramBuilder) -> None:
        self.builder = builder

    def emit(self) -> None:
        """Emit one dynamic iteration of the kernel."""
        raise NotImplementedError

    @property
    def forwarding_fraction(self) -> float:
        """Fraction of this kernel's loads that forward."""
        if self.loads_per_iteration == 0:
            return 0.0
        return self.forwarding_loads_per_iteration / self.loads_per_iteration

# Frozen seed reference (src/repro/core/predictors.py @ PR 4) — see legacy_ref/__init__.py.
"""Configuration dataclasses for the prediction structures.

Defaults follow Section 4.1 of the paper: 4K-entry 2-way FSP and DDP, a
256-entry untagged SAT, a 2K-entry byte-granularity SSBF and SPCT, 16-bit
SSNs, an FSP positive:negative training ratio of 8:1 and a DDP ratio of 4:1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _require_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class FSPConfig:
    """Forwarding Store Predictor configuration.

    Attributes
    ----------
    entries:
        Total number of entries (sets * associativity).
    assoc:
        Set associativity; also the maximum number of store dependences a
        single load can represent (Section 3.2).
    tag_bits:
        Width of the partial tag stored per entry (1 byte in the paper).
    store_pc_bits:
        Width of the partial store PC stored per entry.  The paper stores
        1 byte because the SAT is indexed with only 8 bits.
    counter_bits:
        Width of the per-entry saturating counter.
    positive_weight / negative_weight:
        Training ratio: a positive (learning) event moves the counter up by
        ``positive_weight`` while a negative (unlearning) event moves it down
        by ``negative_weight``.  The paper's default ratio is 8:1.
    """

    entries: int = 4096
    assoc: int = 2
    tag_bits: int = 8
    store_pc_bits: int = 8
    counter_bits: int = 4
    positive_weight: int = 8
    negative_weight: int = 1

    def __post_init__(self) -> None:
        _require_power_of_two("FSP entries", self.entries)
        if self.assoc <= 0 or self.entries % self.assoc != 0:
            raise ValueError("FSP associativity must divide the entry count")
        _require_power_of_two("FSP sets", self.entries // self.assoc)
        if self.counter_bits < 1:
            raise ValueError("FSP counter must have at least one bit")
        if self.positive_weight < 0 or self.negative_weight < 0:
            raise ValueError("training weights must be non-negative")

    @property
    def sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class SATConfig:
    """Store Alias Table configuration.

    The SAT is untagged and indexed by a partial store PC; the paper uses
    256 entries (8 index bits) and supports 4 checkpoints for repair.
    """

    entries: int = 256
    checkpoints: int = 4
    repair: str = "log"  # one of "log", "checkpoint", "none"

    def __post_init__(self) -> None:
        _require_power_of_two("SAT entries", self.entries)
        if self.checkpoints < 0:
            raise ValueError("checkpoint count must be non-negative")
        if self.repair not in ("log", "checkpoint", "none"):
            raise ValueError(f"unknown SAT repair mode {self.repair!r}")

    @property
    def index_bits(self) -> int:
        return self.entries.bit_length() - 1


@dataclass(frozen=True)
class DDPConfig:
    """Delay Distance Predictor configuration.

    ``positive_weight``/``negative_weight`` encode the training ratio studied
    in Figure 5 (bottom); the paper's default is 4:1.  ``future_interval`` is
    the number of load instances between promotions of the "future" distance
    field into the "current" field (8 in the paper), which allows delay
    distances to be unlearned.
    """

    entries: int = 4096
    assoc: int = 2
    tag_bits: int = 8
    counter_bits: int = 4
    counter_threshold: int = 8
    positive_weight: int = 4
    negative_weight: int = 1
    future_interval: int = 8

    def __post_init__(self) -> None:
        _require_power_of_two("DDP entries", self.entries)
        if self.assoc <= 0 or self.entries % self.assoc != 0:
            raise ValueError("DDP associativity must divide the entry count")
        _require_power_of_two("DDP sets", self.entries // self.assoc)
        if self.counter_bits < 1:
            raise ValueError("DDP counter must have at least one bit")
        if not 0 <= self.counter_threshold <= (1 << self.counter_bits) - 1:
            raise ValueError("DDP counter threshold out of range")
        if self.future_interval < 1:
            raise ValueError("future interval must be at least 1")

    @property
    def sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class SVWConfig:
    """SVW filter configuration (SSBF + SPCT geometry, SSN width)."""

    ssbf_entries: int = 2048
    spct_entries: int = 2048
    ssn_bits: int = 16
    banks: int = 8

    def __post_init__(self) -> None:
        _require_power_of_two("SSBF entries", self.ssbf_entries)
        _require_power_of_two("SPCT entries", self.spct_entries)
        if not 4 <= self.ssn_bits <= 64:
            raise ValueError("SSN width must be between 4 and 64 bits")
        _require_power_of_two("SVW banks", self.banks)


@dataclass(frozen=True)
class StoreSetsConfig:
    """Original Store Sets predictor configuration (SSIT + LFST)."""

    ssit_entries: int = 1024
    lfst_entries: int = 256
    counter_bits: int = 2

    def __post_init__(self) -> None:
        _require_power_of_two("SSIT entries", self.ssit_entries)
        _require_power_of_two("LFST entries", self.lfst_entries)


@dataclass(frozen=True)
class PredictorSuiteConfig:
    """Bundle of all predictor configurations used by one SQ policy."""

    fsp: FSPConfig = field(default_factory=FSPConfig)
    sat: SATConfig = field(default_factory=SATConfig)
    ddp: DDPConfig = field(default_factory=DDPConfig)
    svw: SVWConfig = field(default_factory=SVWConfig)
    store_sets: StoreSetsConfig = field(default_factory=StoreSetsConfig)

    def scaled_fsp_ddp(self, entries: int) -> "PredictorSuiteConfig":
        """Return a copy with FSP and DDP capacity set to ``entries``.

        Used by the Figure 5 (top) capacity sweep, which varies FSP and DDP
        capacity in conjunction.
        """
        return PredictorSuiteConfig(
            fsp=FSPConfig(entries=entries, assoc=self.fsp.assoc, tag_bits=self.fsp.tag_bits,
                          store_pc_bits=self.fsp.store_pc_bits, counter_bits=self.fsp.counter_bits,
                          positive_weight=self.fsp.positive_weight,
                          negative_weight=self.fsp.negative_weight),
            sat=self.sat,
            ddp=DDPConfig(entries=entries, assoc=self.ddp.assoc, tag_bits=self.ddp.tag_bits,
                          counter_bits=self.ddp.counter_bits,
                          counter_threshold=self.ddp.counter_threshold,
                          positive_weight=self.ddp.positive_weight,
                          negative_weight=self.ddp.negative_weight,
                          future_interval=self.ddp.future_interval),
            svw=self.svw,
            store_sets=self.store_sets,
        )

    def with_fsp_assoc(self, assoc: int) -> "PredictorSuiteConfig":
        """Return a copy with the FSP associativity changed (Figure 5 middle)."""
        return PredictorSuiteConfig(
            fsp=FSPConfig(entries=self.fsp.entries, assoc=assoc, tag_bits=self.fsp.tag_bits,
                          store_pc_bits=self.fsp.store_pc_bits, counter_bits=self.fsp.counter_bits,
                          positive_weight=self.fsp.positive_weight,
                          negative_weight=self.fsp.negative_weight),
            sat=self.sat, ddp=self.ddp, svw=self.svw, store_sets=self.store_sets,
        )

    def with_ddp_ratio(self, positive: int, negative: int) -> "PredictorSuiteConfig":
        """Return a copy with the DDP training ratio changed (Figure 5 bottom)."""
        return PredictorSuiteConfig(
            fsp=self.fsp, sat=self.sat,
            ddp=DDPConfig(entries=self.ddp.entries, assoc=self.ddp.assoc,
                          tag_bits=self.ddp.tag_bits, counter_bits=self.ddp.counter_bits,
                          counter_threshold=self.ddp.counter_threshold,
                          positive_weight=positive, negative_weight=negative,
                          future_interval=self.ddp.future_interval),
            svw=self.svw, store_sets=self.store_sets,
        )

# Frozen seed reference (src/repro/lsu/policies.py @ PR 4) — see legacy_ref/__init__.py.
"""Store queue access policies.

A policy encapsulates everything that differs between the store-queue
configurations compared in the paper (Table 1, Figure 4):

* how loads are scheduled (which store a load waits for, and whether it is
  additionally delayed until some store *commits*),
* how the load obtains a value from the SQ at execution (fully-associative
  search vs. speculative indexed read of one predicted entry),
* what latency the scheduler assumes when waking a load's dependants, and
* how the predictors are trained at load/store commit.

The cycle-level core (:class:`legacy_ref.core.OutOfOrderCore`) is policy
agnostic: it calls the methods below at decode/rename, execute, and commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from legacy_ref.fsp import ForwardingStorePredictor
from legacy_ref.ddp import DelayDistancePredictor
from legacy_ref.predictors import PredictorSuiteConfig
from legacy_ref.sat import SATUndoRecord, StoreAliasTable
from legacy_ref.store_sets import StoreSetsPredictor
from legacy_ref.svw import SVWFilter
from legacy_ref.store_queue import StoreQueue, StoreQueueEntry


@dataclass
class LoadPrediction:
    """Per-dynamic-load predictions generated at decode/rename.

    ``fwd_ssn`` is the paper's ``SSNfwd`` (0 means "no relevant store");
    ``dly_ssn`` is ``SSNdly`` (0 means "no delay").  ``predicted_store_pc``
    is the partial store PC the FSP produced (``None`` if the FSP missed) and
    is used at commit to drive training.  ``predict_forward`` is the
    scheduler hint used by the forwarding-prediction variant of the 5-cycle
    associative SQ.
    """

    fwd_ssn: int = 0
    dly_ssn: int = 0
    predicted_store_pc: Optional[int] = None
    predict_forward: bool = False


@dataclass
class ForwardDecision:
    """Outcome of the SQ access performed when a load executes."""

    forwarded: bool = False
    value: Optional[int] = None
    forward_ssn: int = 0
    from_entry: Optional[StoreQueueEntry] = None


@dataclass
class LoadCommitInfo:
    """Information available when a load commits (drives training)."""

    pc: int
    addr: int
    size: int
    spec_value: int
    correct_value: int
    forwarded: bool
    forward_ssn: int
    prediction: LoadPrediction
    ssn_at_rename: int
    ssn_cmt: int
    violation: bool


@dataclass
class PolicyStats:
    """Counters common to all policies."""

    loads_predicted: int = 0
    loads_predicted_forwarding: int = 0
    fsp_correct_pc: int = 0
    fsp_wrong_pc: int = 0
    delay_predictions: int = 0


class SQPolicy:
    """Base class for SQ access policies.

    Subclasses override the prediction, forwarding, and training hooks; this
    base class owns the structures shared by every configuration (the SVW
    filter used for re-execution filtering and predictor training).
    """

    #: Human-readable configuration name (matches Figure 4 labels).
    name: str = "base"
    #: SQ access latency in cycles (Table 2).
    sq_latency: int = 3

    def __init__(self, sq_size: int = 64,
                 predictors: Optional[PredictorSuiteConfig] = None) -> None:
        self.sq_size = sq_size
        self.predictor_config = predictors or PredictorSuiteConfig()
        self.svw = SVWFilter(self.predictor_config.svw)
        self.stats = PolicyStats()

    # -- decode / rename --------------------------------------------------------

    def predict_load(self, load_pc: int, ssn_ren: int, ssn_cmt: int,
                     oracle_dep_ssn: int = 0) -> LoadPrediction:
        """Generate the load's forwarding/delay predictions."""
        raise NotImplementedError

    def store_renamed(self, store_pc: int, ssn: int) -> Optional[SATUndoRecord]:
        """Note a renamed store (SAT/LFST update); returns an undo token."""
        return None

    def store_squashed(self, store_pc: int, ssn: int, token: Optional[SATUndoRecord]) -> None:
        """Undo the effect of :meth:`store_renamed` for a squashed store."""

    def store_dependence(self, store_pc: int, ssn: int) -> int:
        """SSN of an older store this store must wait for (0 = none).

        Only the original Store Sets formulation serialises stores within a
        set; every other policy returns 0.
        """
        return 0

    # -- execute ----------------------------------------------------------------

    def assumed_load_latency(self, prediction: LoadPrediction, l1_latency: int) -> int:
        """Latency the scheduler assumes when speculatively waking dependants."""
        return l1_latency

    def forwarded_load_latency(self, l1_latency: int) -> int:
        """Latency of a load that obtains its value from the SQ."""
        return max(self.sq_latency, l1_latency)

    def forward(self, addr: int, size: int, older_than_ssn: int,
                prediction: LoadPrediction, store_queue: StoreQueue) -> ForwardDecision:
        """Access the SQ on behalf of an executing load."""
        raise NotImplementedError

    # -- commit -----------------------------------------------------------------

    def store_committed(self, store_pc: int, ssn: int, addr: int, size: int) -> None:
        """Update SVW structures (and any policy state) when a store commits."""
        self.svw.store_committed(addr, size, ssn, store_pc)

    def needs_reexecution(self, addr: int, size: int, svw_ssn: int) -> bool:
        """SVW filter decision for a load about to commit."""
        return self.svw.needs_reexecution(addr, size, svw_ssn)

    def load_committed(self, info: LoadCommitInfo) -> None:
        """Train predictors with the outcome of a committed load."""

    # -- functional warming ------------------------------------------------------

    def warm_store_renamed(self, store_pc: int, ssn: int) -> None:
        """Functional-warming analogue of :meth:`store_renamed`.

        Stores retire instantly during functional replay, so policies that
        keep per-in-flight-store bookkeeping (undo logs, store-set
        serialisation maps) update only their long-lived tables here.  The
        default delegates to :meth:`store_renamed` and discards the undo
        token.
        """
        self.store_renamed(store_pc, ssn)

    def warm_load(self, load_pc: int, addr: int, size: int, dep_ssn: int,
                  dep_pc: int, would_forward: bool, ssn_cmt: int) -> None:
        """Train PC-indexed predictors for one functionally retired load.

        ``dep_ssn``/``dep_pc`` name the youngest older store writing any
        byte of the access (0 when none); ``would_forward`` is the
        functional replay's in-flight-window approximation: the store is
        close enough (in committed stores and in dynamic instructions) that
        the detailed machine would plausibly have forwarded.  The base
        policy trains nothing — the SVW tables are warmed by store commits.
        """

    # -- state snapshots --------------------------------------------------------

    def state_signature(self) -> tuple:
        """Hashable snapshot of the policy's long-lived predictor state.

        Subclasses extend the tuple with their own structures; the
        checkpoint round-trip tests assert that serialising and re-importing
        warmed state preserves the signature exactly.
        """
        return (self.name, self.svw.state_signature())

    # -- wrap handling ----------------------------------------------------------

    def clear_ssn_state(self) -> None:
        """Clear all structures that hold SSNs (hardware SSN wrap event)."""
        self.svw.clear()


# ---------------------------------------------------------------------------
# Oracle-scheduled associative SQ (the idealised Figure 4 baseline)
# ---------------------------------------------------------------------------

class OracleAssociativePolicy(SQPolicy):
    """Ideal associative SQ with oracle load scheduling.

    The load waits exactly until the store it actually depends on (the
    youngest older store writing its address) has executed, then performs an
    associative search.  There are no forwarding mis-predictions and no
    unnecessary delays; this is the configuration every Figure 4 bar is
    normalised against.
    """

    name = "oracle-associative-3"

    def __init__(self, sq_size: int = 64, sq_latency: int = 3,
                 predictors: Optional[PredictorSuiteConfig] = None) -> None:
        super().__init__(sq_size=sq_size, predictors=predictors)
        self.sq_latency = sq_latency

    def predict_load(self, load_pc: int, ssn_ren: int, ssn_cmt: int,
                     oracle_dep_ssn: int = 0) -> LoadPrediction:
        self.stats.loads_predicted += 1
        return LoadPrediction(fwd_ssn=oracle_dep_ssn, predict_forward=oracle_dep_ssn > ssn_cmt)

    def forward(self, addr: int, size: int, older_than_ssn: int,
                prediction: LoadPrediction, store_queue: StoreQueue) -> ForwardDecision:
        entry = store_queue.associative_search(addr, size, older_than_ssn)
        if entry is None:
            return ForwardDecision(forwarded=False)
        return ForwardDecision(forwarded=True, value=entry.extract(addr, size),
                               forward_ssn=entry.ssn, from_entry=entry)


# ---------------------------------------------------------------------------
# Associative SQ with Store Sets scheduling (realistic baselines)
# ---------------------------------------------------------------------------

class AssociativeStoreSetsPolicy(SQPolicy):
    """Associative SQ scheduled by Store Sets.

    ``formulation='reformulated'`` uses the paper's FSP/SAT (PC/SSN) version
    of Store Sets; ``formulation='original'`` uses the SSIT/LFST version
    (first row of Table 1).  ``scheduling`` controls how the 5-cycle variant
    wakes dependants:

    * ``'optimistic'`` — assume cache latency for every load; forwarding
      causes dependant replays,
    * ``'predictive'`` — use the dependence predictor to guess whether the
      load forwards and assume the SQ latency for predicted-forwarding loads.
    """

    def __init__(self, sq_size: int = 64, sq_latency: int = 3,
                 scheduling: str = "predictive", formulation: str = "reformulated",
                 predictors: Optional[PredictorSuiteConfig] = None) -> None:
        super().__init__(sq_size=sq_size, predictors=predictors)
        if scheduling not in ("optimistic", "predictive"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        if formulation not in ("original", "reformulated"):
            raise ValueError(f"unknown Store Sets formulation {formulation!r}")
        self.sq_latency = sq_latency
        self.scheduling = scheduling
        self.formulation = formulation
        self.name = f"associative-{sq_latency}-{scheduling}"
        self.fsp = ForwardingStorePredictor(self.predictor_config.fsp)
        self.sat = StoreAliasTable(self.predictor_config.sat)
        self.store_sets = StoreSetsPredictor(self.predictor_config.store_sets)
        # Original-formulation only: store SSN -> SSN of the previous store in
        # its set (captured at rename time, consumed by store_dependence()).
        self._store_set_deps: dict = {}

    # -- decode / rename --------------------------------------------------------

    def predict_load(self, load_pc: int, ssn_ren: int, ssn_cmt: int,
                     oracle_dep_ssn: int = 0) -> LoadPrediction:
        self.stats.loads_predicted += 1
        if self.formulation == "original":
            ssn = self.store_sets.load_renamed(load_pc) or 0
            predict_forward = ssn > ssn_cmt
            if predict_forward:
                self.stats.loads_predicted_forwarding += 1
            return LoadPrediction(fwd_ssn=ssn, predict_forward=predict_forward)

        entries = self.fsp.lookup(load_pc)
        best_ssn = 0
        best_pc: Optional[int] = None
        for entry in entries:
            ssn = self.sat.lookup_partial(entry.store_pc)
            if ssn > best_ssn:
                best_ssn = ssn
                best_pc = entry.store_pc
        predict_forward = best_ssn > ssn_cmt
        if predict_forward:
            self.stats.loads_predicted_forwarding += 1
        return LoadPrediction(fwd_ssn=best_ssn, predicted_store_pc=best_pc,
                              predict_forward=predict_forward)

    def store_renamed(self, store_pc: int, ssn: int) -> Optional[SATUndoRecord]:
        if self.formulation == "original":
            previous = self.store_sets.store_renamed(store_pc, ssn)
            self._store_set_deps[ssn] = previous or 0
            return None
        return self.sat.update(store_pc, ssn)

    def store_squashed(self, store_pc: int, ssn: int, token: Optional[SATUndoRecord]) -> None:
        if self.formulation == "original":
            self._store_set_deps.pop(ssn, None)
        if token is not None and self.predictor_config.sat.repair == "log":
            self.sat.undo(token)

    def store_dependence(self, store_pc: int, ssn: int) -> int:
        """Original Store Sets serialises stores within a set."""
        if self.formulation != "original":
            return 0
        return self._store_set_deps.get(ssn, 0)

    # -- execute ----------------------------------------------------------------

    def assumed_load_latency(self, prediction: LoadPrediction, l1_latency: int) -> int:
        if self.sq_latency <= l1_latency:
            return l1_latency
        if self.scheduling == "predictive" and prediction.predict_forward:
            return self.sq_latency
        return l1_latency

    def forward(self, addr: int, size: int, older_than_ssn: int,
                prediction: LoadPrediction, store_queue: StoreQueue) -> ForwardDecision:
        entry = store_queue.associative_search(addr, size, older_than_ssn)
        if entry is None:
            return ForwardDecision(forwarded=False)
        return ForwardDecision(forwarded=True, value=entry.extract(addr, size),
                               forward_ssn=entry.ssn, from_entry=entry)

    # -- commit -----------------------------------------------------------------

    def store_committed(self, store_pc: int, ssn: int, addr: int, size: int) -> None:
        super().store_committed(store_pc, ssn, addr, size)
        if self.formulation == "original":
            self.store_sets.store_committed(store_pc, ssn)

    def load_committed(self, info: LoadCommitInfo) -> None:
        """Train the scheduler only when re-execution found a violation
        (Table 1, first and second configurations)."""
        if not info.violation:
            return
        _, last_pc = self.svw.last_writer(info.addr, info.size)
        if last_pc == 0:
            return
        if self.formulation == "original":
            self.store_sets.train_violation(info.pc, last_pc)
        else:
            self.fsp.insert(info.pc, last_pc)

    # -- functional warming ------------------------------------------------------

    def warm_store_renamed(self, store_pc: int, ssn: int) -> None:
        """Update the SAT (or SSIT/LFST) without per-store undo bookkeeping."""
        if self.formulation == "original":
            self.store_sets.store_renamed(store_pc, ssn)
        else:
            self.sat.update(store_pc, ssn)

    def warm_load(self, load_pc: int, addr: int, size: int, dep_ssn: int,
                  dep_pc: int, would_forward: bool, ssn_cmt: int) -> None:
        """Learn the dependences detailed-mode violations would have taught.

        In detailed mode this policy trains only when re-execution catches a
        violation, i.e. on loads whose producing store was in flight and
        unpredicted.  ``would_forward`` identifies exactly those loads during
        functional replay, so the warmed tables converge to the same
        dependence set without simulating the violations.
        """
        if not would_forward or dep_pc == 0:
            return
        if self.formulation == "original":
            self.store_sets.train_violation(load_pc, dep_pc)
        else:
            self.fsp.strengthen(load_pc, dep_pc)

    def clear_ssn_state(self) -> None:
        super().clear_ssn_state()
        self.sat.clear()

    def state_signature(self) -> tuple:
        if self.formulation == "original":
            return super().state_signature() + (
                self.store_sets.ssit_signature(),)
        return super().state_signature() + (
            self.fsp.state_signature(), self.sat.state_signature())


# ---------------------------------------------------------------------------
# The paper's contribution: the speculative indexed SQ
# ---------------------------------------------------------------------------

class IndexedSQPolicy(SQPolicy):
    """Speculative indexed SQ access via FSP/SAT, optionally guarded by the DDP.

    ``use_delay=False`` corresponds to the ``indexed-3-fwd`` configuration in
    Figure 4 and the ``Fwd`` column of Table 3; ``use_delay=True`` adds the
    delay index predictor (``indexed-3-fwd+dly`` / ``Fwd+Dly``).
    """

    def __init__(self, sq_size: int = 64, sq_latency: int = 2, use_delay: bool = True,
                 predictors: Optional[PredictorSuiteConfig] = None) -> None:
        super().__init__(sq_size=sq_size, predictors=predictors)
        self.sq_latency = sq_latency
        self.use_delay = use_delay
        self.name = "indexed-3-fwd+dly" if use_delay else "indexed-3-fwd"
        self.fsp = ForwardingStorePredictor(self.predictor_config.fsp)
        self.sat = StoreAliasTable(self.predictor_config.sat)
        self.ddp = DelayDistancePredictor(self.predictor_config.ddp, sq_size=sq_size)

    # -- decode / rename --------------------------------------------------------

    def predict_load(self, load_pc: int, ssn_ren: int, ssn_cmt: int,
                     oracle_dep_ssn: int = 0) -> LoadPrediction:
        self.stats.loads_predicted += 1
        entries = self.fsp.lookup(load_pc)
        best_ssn = 0
        best_pc: Optional[int] = None
        for entry in entries:
            ssn = self.sat.lookup_partial(entry.store_pc)
            if ssn > best_ssn:
                best_ssn = ssn
                best_pc = entry.store_pc
        predict_forward = best_ssn > ssn_cmt
        if predict_forward:
            self.stats.loads_predicted_forwarding += 1

        dly_ssn = 0
        if self.use_delay:
            dly_ssn = self.ddp.delay_ssn(load_pc, ssn_ren)
            if dly_ssn > ssn_cmt:
                self.stats.delay_predictions += 1
            else:
                dly_ssn = 0

        return LoadPrediction(fwd_ssn=best_ssn, dly_ssn=dly_ssn,
                              predicted_store_pc=best_pc, predict_forward=predict_forward)

    def store_renamed(self, store_pc: int, ssn: int) -> Optional[SATUndoRecord]:
        return self.sat.update(store_pc, ssn)

    def store_squashed(self, store_pc: int, ssn: int, token: Optional[SATUndoRecord]) -> None:
        if token is not None and self.predictor_config.sat.repair == "log":
            self.sat.undo(token)

    # -- execute ----------------------------------------------------------------

    def assumed_load_latency(self, prediction: LoadPrediction, l1_latency: int) -> int:
        # Indexed SQ latency is below cache latency, so the scheduler can
        # ignore the forward/no-forward distinction entirely (Section 4.2).
        return l1_latency

    def forward(self, addr: int, size: int, older_than_ssn: int,
                prediction: LoadPrediction, store_queue: StoreQueue) -> ForwardDecision:
        if prediction.fwd_ssn == 0:
            return ForwardDecision(forwarded=False)
        entry = store_queue.read_indexed(prediction.fwd_ssn)
        if entry is None or not entry.executed or entry.addr is None:
            return ForwardDecision(forwarded=False)
        if entry.ssn > older_than_ssn:
            # The predicted slot now holds a *younger* store (the predicted
            # store committed and the slot was reused); forwarding from it
            # would violate program order, so the load uses the cache.
            return ForwardDecision(forwarded=False)
        if entry.addr != addr or size > entry.size:
            return ForwardDecision(forwarded=False)
        mask = (1 << (8 * size)) - 1
        return ForwardDecision(forwarded=True, value=entry.value & mask,
                               forward_ssn=entry.ssn, from_entry=entry)

    # -- commit -----------------------------------------------------------------

    def load_committed(self, info: LoadCommitInfo) -> None:
        """FSP and DDP training per Sections 3.2 and 3.3."""
        last_ssn, last_pc = self.svw.last_writer(info.addr, info.size)
        distance = info.ssn_cmt - last_ssn
        could_forward = last_ssn > 0 and distance < self.sq_size
        predicted_pc = info.prediction.predicted_store_pc
        predicted_pc_correct = (predicted_pc is not None and last_pc != 0 and
                                predicted_pc == self.fsp.partial_store_pc(last_pc))

        if predicted_pc_correct:
            self.stats.fsp_correct_pc += 1
        elif predicted_pc is not None:
            self.stats.fsp_wrong_pc += 1

        # ---- FSP training -----------------------------------------------------
        # Section 3.2: learn dependences on correct forwarding (reinforce) and
        # on mis-forwardings where even the store PC was unpredicted (create
        # new dependences); unlearn when the dependence cannot be useful
        # (writer further away than the SQ) or when the store PC is right but
        # the dynamic instance is not (not-most-recent forwarding).  New
        # dependences are created only from *violations* so that SSBF/SPCT
        # aliasing on non-forwarding loads cannot poison the predictor.
        if info.forwarded and not info.violation:
            # Correct forwarding: reinforce the dependence known to be useful.
            if last_pc != 0:
                self.fsp.strengthen(info.pc, last_pc)
        elif info.violation and not predicted_pc_correct and last_pc != 0:
            # Mis-forwarding where we failed to predict even the store PC:
            # create a new, potentially useful dependence.
            self.fsp.insert(info.pc, last_pc)
        elif info.violation and predicted_pc_correct:
            # Right store PC, wrong dynamic instance *and* it cost a flush:
            # reinforce anyway (the dependence is real) — the delay predictor
            # is the mechanism that prevents the next flush.
            self.fsp.strengthen(info.pc, last_pc)
        elif (predicted_pc_correct and not info.forwarded and could_forward
              and info.prediction.fwd_ssn != last_ssn):
            # Correct store PC but wrong dynamic instance (not-most-recent
            # forwarding): there is no point waiting on the predicted
            # instance, so unlearn.
            self.fsp.weaken(info.pc, last_pc)
        elif predicted_pc is not None and not could_forward:
            # The load and the most recent store to its address are further
            # apart than the SQ: no forwarding is possible, unlearn so the
            # load stops waiting on its predicted store.
            self.fsp.weaken_all(info.pc)

        # ---- DDP training -----------------------------------------------------
        if not self.use_delay:
            return
        # A load is a candidate for delay only if it is "difficult": it either
        # flushed (mis-forwarding) or it carried a forwarding prediction that
        # named the wrong dynamic store.  Loads with no prediction and no
        # violation are left alone — SSBF aliasing would otherwise make every
        # streaming load look like it had a nearby writer.
        wrong_prediction = info.prediction.fwd_ssn != last_ssn
        if info.violation or (info.prediction.fwd_ssn != 0 and wrong_prediction):
            self.ddp.train_wrong_prediction(info.pc, max(distance, 0))
        elif not wrong_prediction:
            self.ddp.train_correct_prediction(info.pc)

    # -- functional warming ------------------------------------------------------

    def warm_load(self, load_pc: int, addr: int, size: int, dep_ssn: int,
                  dep_pc: int, would_forward: bool, ssn_cmt: int) -> None:
        """FSP/DDP warming through the *detailed* training rules.

        A commit-time info record is synthesised as the detailed core would
        have seen it — ``forwarded`` approximated by the replay's
        ``would_forward`` signal, no violation (functional replay cannot
        mis-speculate) — and fed to :meth:`load_committed`.  Strengthening
        *and* the weakening rules (not-most-recent instances, writers
        further away than the SQ) therefore apply exactly as in detailed
        mode, which keeps the warmed FSP from over-predicting; new
        dependences are created because ``strengthen`` inserts on a miss,
        standing in for the violation-driven inserts of detailed mode.
        """
        prediction = self.predict_load(load_pc, ssn_cmt, ssn_cmt, dep_ssn)
        info = LoadCommitInfo(
            pc=load_pc, addr=addr, size=size,
            spec_value=0, correct_value=0,
            forwarded=would_forward,
            forward_ssn=dep_ssn if would_forward else 0,
            prediction=prediction,
            ssn_at_rename=ssn_cmt, ssn_cmt=ssn_cmt,
            violation=False,
        )
        self.load_committed(info)

    def clear_ssn_state(self) -> None:
        super().clear_ssn_state()
        self.sat.clear()

    def state_signature(self) -> tuple:
        return super().state_signature() + (
            self.fsp.state_signature(), self.sat.state_signature(),
            self.ddp.state_signature())

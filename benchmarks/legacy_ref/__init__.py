"""Frozen seed simulator: the *before* leg of the core-throughput bench.

The complete pre-refactor detailed-simulation stack — trace ISA, workload
composer, predictors, LSU, memory system, and the attribute-probing
out-of-order core — exactly as it stood at the PR 4 seed, with only module
paths rewritten (``repro.*`` -> ``legacy_ref.*``).  It is fully
self-contained, so substrate optimisations landing in ``src/repro`` can
never leak into the "before" measurement.

``bench_core_throughput.py`` runs this package against the production
two-plane stack on the same machine at bench time, so the recorded
before-vs-after ratio is hardware-independent — and asserts the two stacks
produce bit-identical statistics.

Benchmark-only reference code: never imported by ``src/repro``, never
maintained for new features.  If simulator semantics change intentionally,
regenerate these files from the then-current sources (and regenerate the
golden files) rather than patching them piecemeal.
"""

from legacy_ref.core import OutOfOrderCore
from legacy_ref.policies import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    OracleAssociativePolicy,
)
from legacy_ref.suites import build_workload

__all__ = [
    "AssociativeStoreSetsPolicy",
    "IndexedSQPolicy",
    "OracleAssociativePolicy",
    "OutOfOrderCore",
    "build_workload",
]

# Frozen seed reference (src/repro/pipeline/core.py @ PR 4) — see legacy_ref/__init__.py.
"""Cycle-level out-of-order core.

The core replays a dynamic micro-op trace through a model of the paper's
machine: an 8-wide rename/issue/commit pipeline with a 512-entry ROB,
300-entry issue queue, 128-entry load queue, and 64-entry store queue
(Section 4.1).  The store-queue access behaviour — associative vs. indexed,
ideal vs. realistic latency, with or without delay prediction — is supplied
by an :class:`~legacy_ref.policies.SQPolicy`.

Modelling notes (and deliberate simplifications, shared by *all*
configurations so relative comparisons are preserved):

* The model is trace driven: wrong-path instructions are not fetched.  A
  mispredicted branch instead blocks fetch until the branch resolves plus a
  front-end redirect penalty, the standard trace-driven treatment.
* Scheduler replay is modelled as a penalty added to a load's value-broadcast
  time whenever its actual latency exceeds the latency the scheduler assumed
  when speculatively waking dependants (cache misses, and SQ forwarding when
  the SQ is slower than the cache), plus a replay counter.
* Re-execution-detected violations (memory-ordering violations and the
  indexed SQ's mis-forwardings) flush everything younger than the offending
  load; the load itself commits with the re-executed (correct) value.
* Fetch and decode are folded into dispatch: up to ``rename_width`` trace
  micro-ops enter the window per cycle, at most one taken branch per cycle,
  provided no redirect is pending and no structure is full.  The explicit
  front-end depth appears only in the redirect/flush penalties.

Performance notes (PR 1): the cycle loop is event-aware.  When nothing is
ready to issue and dispatch cannot make progress, the clock jumps directly
to the next cycle at which anything can happen (a pending completion, the
commit-delay expiry of the ROB head, or the fetch-redirect resume point);
the skipped cycles are attributed to the same stall counters the
straight-line loop would have charged, so statistics are bit-identical
(``CoreConfig.idle_skip`` disables the fast-forward for A/B checking).
The ready queue is split into one heap per issue class so that entries
blocked only by a per-class bandwidth limit are never popped and re-pushed
cycle after cycle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from legacy_ref.branch_predictor import BranchUnit
from legacy_ref.trace import DynamicTrace
from legacy_ref.uop import DEFAULT_LATENCIES, MicroOp, OpClass
from legacy_ref.load_queue import LoadQueue
from legacy_ref.policies import LoadCommitInfo, LoadPrediction, SQPolicy
from legacy_ref.store_queue import StoreQueue
from legacy_ref.hierarchy import MemoryHierarchy
from legacy_ref.image import MemoryImage
from legacy_ref.ssn import SSNAllocator
from legacy_ref.config import CoreConfig
from legacy_ref.rename import ARCH_READY, RegisterAliasTable
from legacy_ref.rob import ReorderBuffer
from legacy_ref.stats import SimStats


#: Issue-bandwidth class of each op class (budget buckets of ``IssueLimits``).
_ISSUE_CLASS = {
    OpClass.INT_ALU: "int",
    OpClass.INT_MUL: "int",
    OpClass.NOP: "int",
    OpClass.FP_ALU: "fp",
    OpClass.FP_MUL: "fp",
    OpClass.FP_DIV: "fp",
    OpClass.BRANCH: "branch",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
}

_ISSUE_CLASS_KEYS = ("int", "fp", "branch", "load", "store")


class _Inflight:
    """Per-dynamic-instruction record (kept lean; this is the hot structure)."""

    __slots__ = (
        "seq", "uop", "squashed", "issue_class",
        # scheduling state
        "wait_srcs", "wait_fwd", "wait_dly", "issued", "completed",
        "consumers", "ready_pushed",
        # timing
        "dispatch_cycle", "other_ready_cycle", "dly_clear_cycle",
        "issue_cycle", "completion_cycle",
        # rename repair
        "rat_undo",
        # store state
        "ssn", "sat_undo", "oracle_undo",
        # load state
        "prediction", "ssn_at_rename", "oracle_dep_ssn",
        "spec_value", "forwarded", "forward_ssn", "svw_ssn", "should_forward",
        "fwd_waiters", "delay_cycles",
        # branch state
        "mispredicted",
    )

    def __init__(self, seq: int, uop: MicroOp) -> None:
        self.seq = seq
        self.uop = uop
        self.issue_class = _ISSUE_CLASS[uop.op_class]
        self.squashed = False
        self.wait_srcs = 0
        self.wait_fwd = False
        self.wait_dly = False
        self.issued = False
        self.completed = False
        self.consumers: List["_Inflight"] = []
        self.ready_pushed = False
        self.dispatch_cycle = 0
        self.other_ready_cycle = -1
        self.dly_clear_cycle = -1
        self.issue_cycle = -1
        self.completion_cycle = -1
        self.rat_undo: Optional[Tuple[int, int]] = None
        self.ssn = 0
        self.sat_undo = None
        self.oracle_undo: Optional[Dict[int, Optional[Tuple[int, int]]]] = None
        self.prediction: Optional[LoadPrediction] = None
        self.ssn_at_rename = 0
        self.oracle_dep_ssn = 0
        self.spec_value = 0
        self.forwarded = False
        self.forward_ssn = 0
        self.svw_ssn = 0
        self.should_forward = False
        self.fwd_waiters: List["_Inflight"] = []
        self.delay_cycles = 0
        self.mispredicted = False


@dataclass
class SimulationResult:
    """Result of simulating one trace under one SQ configuration."""

    workload: str
    policy: str
    stats: SimStats
    config: CoreConfig
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class OutOfOrderCore:
    """Trace-driven cycle-level model of the paper's processor."""

    #: Abort if no instruction commits for this many consecutive cycles.
    DEADLOCK_LIMIT = 50_000

    def __init__(self, config: CoreConfig, policy: SQPolicy) -> None:
        self.config = config
        self.policy = policy
        self.stats = SimStats()

        self.hierarchy = MemoryHierarchy(config.memory)
        self.memory = MemoryImage()
        self.branch_unit = BranchUnit(config.branch_predictor)
        self.rat = RegisterAliasTable()
        self.rob = ReorderBuffer(config.rob_size)
        self.load_queue = LoadQueue(config.load_queue_size)
        self.store_queue = StoreQueue(config.store_queue_size)
        self.ssn_alloc = SSNAllocator(bits=config.ssn_bits)

        # Dynamic state.
        self._cycle = 0
        self._fetch_seq = 0
        self._fetch_resume_cycle = 0
        self._fetch_blocked_on: Optional[_Inflight] = None
        self._iq_occupancy = 0
        self._records: Dict[int, _Inflight] = {}
        self._store_by_ssn: Dict[int, _Inflight] = {}
        self._dly_waiters: Dict[int, List[_Inflight]] = {}
        # One ready heap per issue class; entries blocked only by per-class
        # bandwidth stay put instead of being popped and re-pushed every cycle.
        self._ready: Dict[str, List[Tuple[int, int, _Inflight]]] = {
            key: [] for key in _ISSUE_CLASS_KEYS}
        self._ready_tiebreak = 0
        self._completions: Dict[int, List[_Inflight]] = {}
        # Oracle last-writer tracker: byte address -> (seq, ssn) of the
        # youngest dispatched store writing that byte.
        self._last_writer: Dict[int, Tuple[int, int]] = {}

        self._trace: Sequence[MicroOp] = ()

    # ---------------------------------------------------------- state import --

    def import_state(self, state) -> None:
        """Adopt functionally warmed machine state before a detailed run.

        ``state`` is a :class:`~repro.sampling.functional.FunctionalState`:
        its branch unit, memory hierarchy, memory image, SSN counters, and
        policy replace this core's freshly constructed ones, and its exact
        last-writer map seeds the oracle dependence tracker (with a sentinel
        sequence number of ``-1`` so flush repair can never confuse an
        imported writer with an in-flight store).  Statistics *counters* on
        the imported components are reset so a subsequent run reports only
        its own activity; the predictive/tag state itself stays warm.
        """
        from legacy_ref.policies import PolicyStats
        from legacy_ref.svw import SVWStats

        self.hierarchy = state.hierarchy
        self.memory = state.memory
        self.branch_unit = state.branch_unit
        self.ssn_alloc = state.ssn_alloc
        self.policy = state.policy
        self._last_writer = {
            byte_addr: (-1, entry[0]) for byte_addr, entry in state.last_writer.items()}
        self.hierarchy.reset_stats()
        self.branch_unit.reset_stats()
        self.policy.stats = PolicyStats()
        self.policy.svw.stats = SVWStats()

    def export_state(self):
        """Export the core's long-lived state, symmetric to :meth:`import_state`.

        Returns a :class:`~repro.sampling.functional.FunctionalState` bundling
        the live branch unit, memory hierarchy, memory image, SSN counters,
        policy, and oracle last-writer map — everything a subsequent
        :meth:`import_state` (on this or another core) adopts.  Serialising
        the bundle (the checkpoint store pickles it) freezes a copy.

        Intended for a *drained* core (between runs): in-flight window state
        (ROB/IQ/LQ/SQ occupancy, pending completions) is short-lived by
        design and is not exported.  The exported last-writer map keeps each
        byte's youngest writer SSN; the writer's PC and dynamic index are
        not tracked per byte by the detailed core and are exported as
        ``(0, -1)`` sentinels — :meth:`import_state` only consumes the SSN.
        """
        from repro.sampling.functional import FunctionalState

        return FunctionalState(
            config=self.config,
            branch_unit=self.branch_unit,
            hierarchy=self.hierarchy,
            memory=self.memory,
            ssn_alloc=self.ssn_alloc,
            policy=self.policy,
            last_writer={byte_addr: (entry[1], 0, -1)
                         for byte_addr, entry in self._last_writer.items()},
            instructions_warmed=self.stats.committed,
        )

    # ------------------------------------------------------------------ run --

    def run(self, trace: DynamicTrace, warm_memory: bool = True,
            stats_warmup_fraction: float = 0.0,
            stats_warmup_instructions: Optional[int] = None,
            stats_measure_instructions: Optional[int] = None) -> SimulationResult:
        """Simulate ``trace`` to completion and return the result.

        ``stats_warmup_fraction`` discards the statistics accumulated over the
        first fraction of committed instructions (while keeping all
        microarchitectural state: caches, predictors, branch history), the
        same role the paper's 8% warm-up plays for its samples.  The reported
        ``cycles`` likewise cover only the measured region.

        ``stats_warmup_instructions`` is the exact-count form of the same
        knob (used by the sampling subsystem, whose detailed warm-up is
        specified in instructions); it overrides the fraction when given.

        ``stats_measure_instructions`` stops the simulation once that many
        *post-warm-up* instructions have committed, leaving younger
        instructions in flight.  Interval sampling uses this so a measured
        region ends mid-steady-state (window still full) instead of
        charging the interval for the pipeline drain that a full run would
        have overlapped with subsequent instructions.
        """
        if not 0.0 <= stats_warmup_fraction < 1.0:
            raise ValueError("stats_warmup_fraction must be in [0, 1)")
        self._trace = trace.uops
        if warm_memory:
            self._warm_caches(trace)

        total = len(self._trace)
        if stats_warmup_instructions is not None:
            if not 0 <= stats_warmup_instructions < max(total, 1):
                raise ValueError("stats_warmup_instructions must be in [0, len(trace))")
            warmup_committed = stats_warmup_instructions
        else:
            warmup_committed = int(total * stats_warmup_fraction)
        stop_committed = total
        if stats_measure_instructions is not None:
            if stats_measure_instructions <= 0:
                raise ValueError("stats_measure_instructions must be positive")
            stop_committed = min(total, warmup_committed + stats_measure_instructions)
        warmup_done = warmup_committed == 0
        warmup_cycle_offset = 0
        warmup_instr_offset = 0
        warmup_l1_misses = 0
        warmup_l2_misses = 0
        last_commit_cycle = 0
        max_cycles = self.config.max_cycles
        idle_skip = self.config.idle_skip

        while self.stats.committed < stop_committed:
            if idle_skip and self._ready_is_empty():
                self._skip_idle_cycles(total, max_cycles)
            self._cycle += 1
            self.stats.cycles = self._cycle - warmup_cycle_offset

            self._process_completions()
            committed_now = self._commit_stage()
            self._issue_stage()
            self._dispatch_stage()

            if not warmup_done and self.stats.committed >= warmup_committed:
                # Reset the counters; keep every piece of machine state warm.
                warmup_done = True
                warmup_cycle_offset = self._cycle
                warmup_instr_offset = self.stats.committed
                warmup_l1_misses = self.hierarchy.stats.l1_misses
                warmup_l2_misses = self.hierarchy.stats.l2_misses
                preserved_committed = self.stats.committed
                self.stats = SimStats()
                self.stats.committed = preserved_committed
                self.stats.cycles = 0

            if committed_now:
                last_commit_cycle = self._cycle
            elif self._cycle - last_commit_cycle > self.DEADLOCK_LIMIT:
                ready = sum(len(heap) for heap in self._ready.values())
                raise RuntimeError(
                    f"simulation deadlock at cycle {self._cycle}: "
                    f"{self.stats.committed}/{total} committed, ROB={len(self.rob)}, "
                    f"ready={ready}, fetch_seq={self._fetch_seq}")
            if max_cycles is not None and self._cycle >= max_cycles:
                break

        # Report only the measured (post-warm-up) region — the miss
        # counters subtract the warm-up share so every SimStats field
        # covers exactly the same instructions (the hierarchy's own stats
        # stay cumulative for the run and feed the l1_miss_rate extra).
        self.stats.committed -= warmup_instr_offset
        self.stats.l1_misses = self.hierarchy.stats.l1_misses - warmup_l1_misses
        self.stats.l2_misses = self.hierarchy.stats.l2_misses - warmup_l2_misses
        extra = {
            "branch_misprediction_rate": self.branch_unit.misprediction_rate,
            "svw_reexecution_rate": self.policy.svw.stats.reexecution_rate,
            "l1_miss_rate": self.hierarchy.stats.l1_miss_rate(),
            "rob_max_occupancy": float(self.rob.max_occupancy),
        }
        return SimulationResult(workload=trace.name, policy=self.policy.name,
                                stats=self.stats, config=self.config, extra=extra)

    def _warm_caches(self, trace: DynamicTrace) -> None:
        """Pre-touch the lines referenced by the first portion of the trace.

        The paper warms caches/predictors for 8% of each sample; touching the
        first few thousand accesses approximates starting from a warm state
        without perturbing the timing statistics."""
        budget = min(len(trace), 4000)
        for uop in trace.uops[:budget]:
            if uop.mem is not None:
                self.hierarchy.warm(uop.mem.addr)

    # ------------------------------------------------------------- fast-forward --

    def _ready_is_empty(self) -> bool:
        """True when no un-issued, un-squashed entry is ready (purges stale heads)."""
        for heap in self._ready.values():
            while heap:
                record = heap[0][2]
                if record.squashed or record.issued:
                    heapq.heappop(heap)
                else:
                    break
            if heap:
                return False
        return True

    def _skip_idle_cycles(self, total: int, max_cycles: Optional[int]) -> None:
        """Advance the clock to just before the next cycle anything can happen.

        Called only when the ready heaps are empty.  If dispatch also cannot
        make progress next cycle, the machine state is frozen until one of:

        * a scheduled completion (``self._completions``),
        * the ROB head's commit-delay expiry, or
        * the fetch-redirect resume point,

        so the loop may jump straight there.  The skipped cycles are charged
        to the stall counters exactly as the straight-line loop would have
        charged them, keeping every statistic bit-identical.
        """
        nxt = self._cycle + 1
        # Would dispatch make progress at ``nxt``?  If so, no skipping.
        if self._fetch_blocked_on is None and nxt >= self._fetch_resume_cycle \
                and self._fetch_seq < total:
            uop = self._trace[self._fetch_seq]
            if not (self.rob.is_full()
                    or self._iq_occupancy >= self.config.issue_queue_size
                    or (uop.is_load and self.load_queue.is_full())
                    or (uop.is_store and self.store_queue.is_full())):
                return

        target: Optional[int] = None
        if self._completions:
            target = min(self._completions)
        head = self.rob.head()
        if head is not None and head.completed:
            commit_at = head.completion_cycle + self.config.backend_commit_delay
            if target is None or commit_at < target:
                target = commit_at
        if (self._fetch_blocked_on is None and self._fetch_seq < total
                and self._fetch_resume_cycle > nxt):
            if target is None or self._fetch_resume_cycle < target:
                target = self._fetch_resume_cycle
        if target is None:
            return  # genuine deadlock; let the straight-line loop detect it
        if max_cycles is not None and target > max_cycles:
            target = max_cycles
        if target <= nxt:
            return
        self._account_idle(nxt, target - 1, total)
        self._cycle = target - 1

    def _account_idle(self, first: int, last: int, total: int) -> None:
        """Charge skipped cycles ``first..last`` to the stall counters.

        Mirrors what ``_dispatch_stage`` would have counted had each cycle
        been executed: a fetch stall while redirect-blocked, then (with fetch
        available but a structure full) the structural stall the first
        undispatchable micro-op would have hit.  State cannot change inside
        the window, so the attribution is constant apart from the
        redirect-resume boundary.
        """
        n = last - first + 1
        stats = self.stats
        if self._fetch_blocked_on is not None:
            stats.fetch_stall_cycles += n
            return
        fetch_blocked = min(n, max(0, self._fetch_resume_cycle - first))
        stats.fetch_stall_cycles += fetch_blocked
        rest = n - fetch_blocked
        if rest <= 0 or self._fetch_seq >= total:
            return
        if self.rob.is_full():
            stats.rob_stall_cycles += rest
        elif self._iq_occupancy >= self.config.issue_queue_size:
            stats.iq_stall_cycles += rest
        else:
            uop = self._trace[self._fetch_seq]
            if uop.is_load and self.load_queue.is_full():
                stats.lq_stall_cycles += rest
            elif uop.is_store and self.store_queue.is_full():
                stats.sq_stall_cycles += rest

    # ------------------------------------------------------------ completions --

    def _process_completions(self) -> None:
        ops = self._completions.pop(self._cycle, None)
        if not ops:
            return
        for record in ops:
            if record.squashed:
                continue
            record.completed = True
            uop = record.uop
            if uop.is_store:
                mem = uop.mem
                self.store_queue.write_execute(record.ssn, mem.addr, mem.size, mem.value)
                for waiter in record.fwd_waiters:
                    self._clear_fwd_wait(waiter)
                record.fwd_waiters = []
            if record.mispredicted and self._fetch_blocked_on is record:
                self._fetch_blocked_on = None
                self._fetch_resume_cycle = max(self._fetch_resume_cycle,
                                               self._cycle + self.config.branch_redirect_penalty)
            for consumer in record.consumers:
                if consumer.squashed:
                    continue
                consumer.wait_srcs -= 1
                self._maybe_ready(consumer)
            record.consumers = []

    def _clear_fwd_wait(self, record: _Inflight) -> None:
        if record.squashed or not record.wait_fwd:
            return
        record.wait_fwd = False
        self._maybe_ready(record)

    def _maybe_ready(self, record: _Inflight) -> None:
        if record.squashed or record.issued or record.ready_pushed:
            return
        if record.wait_srcs == 0 and not record.wait_fwd:
            if record.other_ready_cycle < 0:
                record.other_ready_cycle = self._cycle
            if not record.wait_dly:
                record.ready_pushed = True
                self._ready_tiebreak += 1
                heapq.heappush(self._ready[record.issue_class],
                               (record.seq, self._ready_tiebreak, record))

    # ----------------------------------------------------------------- commit --

    def _commit_stage(self) -> int:
        committed = 0
        delay = self.config.backend_commit_delay
        while committed < self.config.commit_width:
            record = self.rob.head()
            if record is None or not record.completed:
                break
            if record.completion_cycle + delay > self._cycle:
                break
            self.rob.pop_head()
            committed += 1
            self.stats.committed += 1
            self._records.pop(record.seq, None)
            uop = record.uop
            self.rat.retire_dest(uop.dest, record.seq)

            if uop.is_store:
                self._commit_store(record)
            elif uop.is_load:
                flushed = self._commit_load(record)
                if flushed:
                    break
            elif uop.is_branch:
                self.stats.committed_branches += 1
        return committed

    def _commit_store(self, record: _Inflight) -> None:
        uop = record.uop
        mem = uop.mem
        self.stats.committed_stores += 1
        self.memory.write(mem.addr, mem.size, mem.value)
        self.ssn_alloc.commit(record.ssn)
        self.store_queue.release(record.ssn)
        self._store_by_ssn.pop(record.ssn, None)
        self.policy.store_committed(uop.pc, record.ssn, mem.addr, mem.size)
        self.hierarchy.store_touch(mem.addr)
        waiters = self._dly_waiters.pop(record.ssn, None)
        if waiters:
            for waiter in waiters:
                if waiter.squashed or not waiter.wait_dly:
                    continue
                waiter.wait_dly = False
                waiter.dly_clear_cycle = self._cycle
                self._maybe_ready(waiter)

    def _commit_load(self, record: _Inflight) -> bool:
        """Commit a load; returns True if a flush was triggered."""
        uop = record.uop
        mem = uop.mem
        self.stats.committed_loads += 1
        self.load_queue.release(record.seq)

        correct_value = self.memory.read(mem.addr, mem.size)
        needs_reexec = self.policy.needs_reexecution(mem.addr, mem.size, record.svw_ssn)
        if needs_reexec:
            self.stats.loads_reexecuted += 1
        violation = record.spec_value != correct_value
        if violation and not needs_reexec:
            raise AssertionError(
                f"SVW filter missed a violation at pc={uop.pc:#x} seq={record.seq}: "
                f"spec={record.spec_value:#x} correct={correct_value:#x}")

        if record.should_forward:
            self.stats.loads_should_forward += 1
        if record.forwarded:
            self.stats.loads_forwarded += 1
        if record.delay_cycles > 0:
            self.stats.loads_delayed += 1
            self.stats.total_delay_cycles += record.delay_cycles

        info = LoadCommitInfo(
            pc=uop.pc, addr=mem.addr, size=mem.size,
            spec_value=record.spec_value, correct_value=correct_value,
            forwarded=record.forwarded, forward_ssn=record.forward_ssn,
            prediction=record.prediction or LoadPrediction(),
            ssn_at_rename=record.ssn_at_rename,
            ssn_cmt=self.ssn_alloc.ssn_commit,
            violation=violation,
        )
        self.policy.load_committed(info)

        if violation:
            self.stats.ordering_violations += 1
            if record.should_forward:
                self.stats.mis_forwardings += 1
            self._flush_after(record)
            return True
        return False

    # ------------------------------------------------------------------ flush --

    def _flush_after(self, record: _Inflight) -> None:
        """Squash everything younger than ``record`` and redirect fetch."""
        self.stats.flushes += 1
        squashed = self.rob.squash_younger_than(record.seq)
        for victim in squashed:
            victim.squashed = True
            self.stats.squashed_uops += 1
            self._records.pop(victim.seq, None)
            self.rat.undo(victim.rat_undo)
            if not victim.issued:
                self._iq_occupancy -= 1
            uop = victim.uop
            if uop.is_store:
                self.policy.store_squashed(uop.pc, victim.ssn, victim.sat_undo)
                self._store_by_ssn.pop(victim.ssn, None)
                self._undo_last_writer(victim)
            if victim.prediction is not None and victim.prediction.dly_ssn:
                waiters = self._dly_waiters.get(victim.prediction.dly_ssn)
                if waiters and victim in waiters:
                    waiters.remove(victim)

        # Squash SQ/LQ entries younger than the flush point.
        self.store_queue.squash_younger(record.ssn_at_rename)
        self.load_queue.squash_younger(record.seq)
        self.ssn_alloc.rewind_rename(max(record.ssn_at_rename, self.ssn_alloc.ssn_commit))

        # Redirect fetch.
        self._fetch_seq = record.seq + 1
        self._fetch_resume_cycle = self._cycle + self.config.flush_penalty
        if self._fetch_blocked_on is not None and self._fetch_blocked_on.squashed:
            self._fetch_blocked_on = None

    def _undo_last_writer(self, store_record: _Inflight) -> None:
        undo = store_record.oracle_undo
        if undo is None:
            return
        last_writer = self._last_writer
        seq = store_record.seq
        for byte_addr, previous in undo.items():
            current = last_writer.get(byte_addr)
            if current is not None and current[0] == seq:
                if previous is None:
                    del last_writer[byte_addr]
                else:
                    last_writer[byte_addr] = previous

    # ------------------------------------------------------------------ issue --

    def _issue_stage(self) -> None:
        """Issue the oldest ready micro-ops, respecting per-class bandwidth.

        Selection order matches the single-heap formulation (globally oldest
        first among classes with remaining budget); entries whose class budget
        is exhausted simply stay in their heap instead of being popped and
        re-pushed every cycle.
        """
        limits = self.config.issue_limits
        budget = {
            "int": limits.int_ops,
            "fp": limits.fp_ops,
            "branch": limits.branches,
            "load": limits.loads,
            "store": limits.stores,
        }
        total_budget = self.config.issue_width
        heaps = self._ready
        while total_budget > 0:
            best_heap = None
            best_key = None
            best_seq = -1
            for key in _ISSUE_CLASS_KEYS:
                if budget[key] <= 0:
                    continue
                heap = heaps[key]
                while heap:
                    record = heap[0][2]
                    if record.squashed or record.issued:
                        heapq.heappop(heap)
                    else:
                        break
                if heap and (best_heap is None or heap[0][0] < best_seq):
                    best_heap = heap
                    best_key = key
                    best_seq = heap[0][0]
            if best_heap is None:
                break
            _, _, record = heapq.heappop(best_heap)
            budget[best_key] -= 1
            total_budget -= 1
            self._execute(record)

    def _execute(self, record: _Inflight) -> None:
        record.issued = True
        record.issue_cycle = self._cycle
        self._iq_occupancy -= 1
        uop = record.uop

        if uop.is_load:
            latency = self._execute_load(record)
        else:
            latency = DEFAULT_LATENCIES[uop.op_class]

        record.completion_cycle = self._cycle + latency
        self._completions.setdefault(record.completion_cycle, []).append(record)

        # Delay accounting: the DDP delayed this load for the interval between
        # the cycle it was otherwise ready and the cycle its delay cleared.
        if uop.is_load and record.dly_clear_cycle >= 0 and record.other_ready_cycle >= 0:
            record.delay_cycles = max(0, record.dly_clear_cycle - record.other_ready_cycle)

    def _execute_load(self, record: _Inflight) -> int:
        uop = record.uop
        mem = uop.mem
        prediction = record.prediction or LoadPrediction()
        l1_latency = self.hierarchy.l1_latency

        record.should_forward = record.oracle_dep_ssn > self.ssn_alloc.ssn_commit

        decision = self.policy.forward(mem.addr, mem.size, record.ssn_at_rename,
                                       prediction, self.store_queue)
        cache_latency = self.hierarchy.load_latency(mem.addr)

        if decision.forwarded:
            record.forwarded = True
            record.forward_ssn = decision.forward_ssn
            record.spec_value = decision.value if decision.value is not None else 0
            record.svw_ssn = decision.forward_ssn
            actual = self.policy.forwarded_load_latency(l1_latency)
        else:
            record.spec_value = self.memory.read(mem.addr, mem.size)
            record.svw_ssn = self.ssn_alloc.ssn_commit
            actual = cache_latency

        self.load_queue.record_execution(record.seq, mem.addr, mem.size, record.spec_value,
                                         record.svw_ssn, record.forwarded)

        assumed = self.policy.assumed_load_latency(prediction, l1_latency)
        if actual > assumed:
            self.stats.replays += 1
            actual += self.config.replay_penalty
        return actual

    # --------------------------------------------------------------- dispatch --

    def _dispatch_stage(self) -> None:
        if self._cycle < self._fetch_resume_cycle or self._fetch_blocked_on is not None:
            self.stats.fetch_stall_cycles += 1
            return
        trace = self._trace
        total = len(trace)
        taken_budget = self.config.taken_branches_per_cycle
        dispatched = 0

        while dispatched < self.config.rename_width and self._fetch_seq < total:
            uop = trace[self._fetch_seq]

            if self.rob.is_full():
                self.stats.rob_stall_cycles += 1
                return
            if self._iq_occupancy >= self.config.issue_queue_size:
                self.stats.iq_stall_cycles += 1
                return
            if uop.is_load and self.load_queue.is_full():
                self.stats.lq_stall_cycles += 1
                return
            if uop.is_store and self.store_queue.is_full():
                self.stats.sq_stall_cycles += 1
                return

            record = _Inflight(self._fetch_seq, uop)
            record.dispatch_cycle = self._cycle
            self._fetch_seq += 1
            dispatched += 1
            self._dispatch_record(record)

            if uop.is_branch:
                if record.mispredicted:
                    self._fetch_blocked_on = record
                    return
                if uop.is_taken:
                    taken_budget -= 1
                    if taken_budget <= 0:
                        return

    def _dispatch_record(self, record: _Inflight) -> None:
        uop = record.uop
        self._records[record.seq] = record
        self.rob.push(record)
        self._iq_occupancy += 1

        # Register dependences.
        for src in uop.srcs:
            producer_seq = self.rat.producer_of(src)
            if producer_seq == ARCH_READY:
                continue
            producer = self._records.get(producer_seq)
            if producer is None or producer.completed or producer.squashed:
                continue
            record.wait_srcs += 1
            producer.consumers.append(record)

        record.rat_undo = self.rat.rename_dest(uop.dest, record.seq)

        if uop.is_branch:
            record.mispredicted = self.branch_unit.predict_and_resolve(
                uop.pc, uop.is_taken, uop.target, uop.hint_call, uop.hint_return)
            if record.mispredicted:
                self.stats.branch_mispredictions += 1
        elif uop.is_store:
            self._dispatch_store(record)
        elif uop.is_load:
            self._dispatch_load(record)

        self._maybe_ready(record)

    def _dispatch_store(self, record: _Inflight) -> None:
        uop = record.uop
        ssn = self.ssn_alloc.allocate()
        record.ssn = ssn
        if self.config.model_ssn_wrap and self.ssn_alloc.wrapped(ssn):
            self.stats.ssn_wraps += 1
            self._fetch_resume_cycle = max(self._fetch_resume_cycle,
                                           self._cycle + self.config.ssn_wrap_drain_penalty)
        self.store_queue.allocate(ssn, uop.pc, record.seq)
        self._store_by_ssn[ssn] = record
        record.sat_undo = self.policy.store_renamed(uop.pc, ssn)

        # Oracle last-writer tracking: touched-byte dict with the previous
        # entries recorded alongside for flush repair.
        mem = uop.mem
        last_writer = self._last_writer
        entry = (record.seq, ssn)
        undo: Dict[int, Optional[Tuple[int, int]]] = {}
        for byte_addr in range(mem.addr, mem.addr + mem.size):
            undo[byte_addr] = last_writer.get(byte_addr)
            last_writer[byte_addr] = entry
        record.oracle_undo = undo

        # Store-store serialisation (original Store Sets only).
        dep_ssn = self.policy.store_dependence(uop.pc, ssn)
        if dep_ssn:
            dep = self._store_by_ssn.get(dep_ssn)
            if dep is not None and not dep.completed and not dep.squashed:
                record.wait_fwd = True
                dep.fwd_waiters.append(record)

    def _dispatch_load(self, record: _Inflight) -> None:
        uop = record.uop
        mem = uop.mem
        record.ssn_at_rename = self.ssn_alloc.ssn_rename
        self.load_queue.allocate(record.seq, uop.pc)

        # Oracle dependence: youngest older dispatched store writing any byte.
        last_writer = self._last_writer
        oracle_ssn = 0
        for byte_addr in range(mem.addr, mem.addr + mem.size):
            entry = last_writer.get(byte_addr)
            if entry is not None and entry[1] > oracle_ssn:
                oracle_ssn = entry[1]
        record.oracle_dep_ssn = oracle_ssn

        prediction = self.policy.predict_load(uop.pc, self.ssn_alloc.ssn_rename,
                                              self.ssn_alloc.ssn_commit, oracle_ssn)
        record.prediction = prediction

        # Scheduling constraint 1: predicted forwarding store must have executed.
        if prediction.fwd_ssn and prediction.fwd_ssn > self.ssn_alloc.ssn_commit:
            store = self._store_by_ssn.get(prediction.fwd_ssn)
            if store is not None and not store.completed and not store.squashed:
                record.wait_fwd = True
                store.fwd_waiters.append(record)
                self.stats.loads_waited_on_prediction += 1

        # Scheduling constraint 2: the delay-index store must have committed.
        if prediction.dly_ssn and prediction.dly_ssn > self.ssn_alloc.ssn_commit:
            record.wait_dly = True
            self._dly_waiters.setdefault(prediction.dly_ssn, []).append(record)

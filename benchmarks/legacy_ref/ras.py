# Frozen seed reference (src/repro/frontend/ras.py @ PR 4) — see legacy_ref/__init__.py.
"""Return address stack.

A fixed-depth circular return-address stack (32 entries in the paper's
configuration).  Pushes beyond the capacity overwrite the oldest entry; pops
of an empty stack return ``None`` and are counted as underflows.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth RAS with overflow wrap-around."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        """Push a return address, discarding the oldest entry on overflow."""
        self.pushes += 1
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)
            self.overflows += 1

    def pop(self) -> Optional[int]:
        """Pop the predicted return address, or ``None`` if the stack is empty."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()

    def state_signature(self) -> tuple:
        """Hashable snapshot of the stack contents (oldest first)."""
        return tuple(self._stack)

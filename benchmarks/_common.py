"""Shared benchmark plumbing (no pytest dependency).

Everything here is imported both by the pytest benchmarks (via
``conftest.py``, which adds the fixtures on top) and by the plain-script
entry points — ``run_all.py`` and the ``repro-bench`` console command —
which must work in environments without pytest installed.

Environment knobs:

``REPRO_BENCH_INSTRUCTIONS``
    Dynamic instructions per workload trace (default 8000).  The paper uses
    10M-instruction samples; the default here keeps the full 47-workload
    sweep to a few minutes while preserving the qualitative shape.  The
    sampling subsystem (``REPRO_BENCH_SAMPLING_INSTRUCTIONS`` /
    ``REPRO_BENCH_SAMPLED_INSTRUCTIONS``, see
    ``bench_sampling_speedup.py``) is how paper-scale lengths are reached.
``REPRO_BENCH_WORKLOADS``
    Comma-separated subset of workload names (default: all 47 for Table 3 /
    Figure 4, the paper's nine for Figure 5).
``REPRO_JOBS``
    Worker-process count for the experiment engine.  Benchmarks default to
    one worker per CPU; values <= 0 also mean "all CPUs".
``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    Set ``REPRO_CACHE=0`` to disable result memoization; ``REPRO_CACHE_DIR``
    moves the cache (default ``.repro-cache/``, safe to delete any time).
"""

import datetime
import json
import os
from pathlib import Path

from repro.exec import available_cpus
from repro.exec.dispatch import scheduler_counters
from repro.exec.resilience import counters_snapshot
from repro.pipeline.vector import resolve_kernel

#: Repository root (benchmarks/ lives directly under it); the BENCH_*.json
#: trajectory files are written here so successive PRs can diff them.
REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))

_workloads_env = os.environ.get("REPRO_BENCH_WORKLOADS", "").strip()
WORKLOAD_SUBSET = [w.strip() for w in _workloads_env.split(",") if w.strip()] or None

#: Benchmarks exercise the parallel path by default: REPRO_JOBS if set,
#: otherwise one worker per *available* CPU (affinity/cgroup aware —
#: ``os.cpu_count()`` oversubscribes restricted CI runners).
DEFAULT_JOBS = int(os.environ.get("REPRO_JOBS", "0") or "0") or available_cpus()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_environment() -> dict:
    """The machine/knob context of a benchmark run.

    Recorded in every trajectory file so a number can be interpreted later:
    CPU count (the engine fan-out ceiling) and every ``REPRO_*`` environment
    knob that was set (trace length, workload subset, jobs, cache, sampling
    overrides).
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "cpus_available": available_cpus(),
        "env": {key: value for key, value in sorted(os.environ.items())
                if key.startswith("REPRO_")},
    }


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one machine-readable ``BENCH_<name>.json`` at the repo root.

    Every trajectory file carries the same envelope (UTC timestamp, trace
    length, CPU count, the ``REPRO_*`` knobs in effect, the effective
    detailed-core ``kernel`` the run's simulations executed on, the process's
    resilience counters — retries, quarantined blobs, degradations — so a
    wall time achieved *through* recovery work is never mistaken for a
    clean one, and the process's scheduler counters — dispatch runs, jobs,
    steals, dispatcher overhead — so the execution-backend seam's cost is
    visible in every file) plus bench-specific metrics, so tooling can
    track the performance trajectory across PRs without parsing pytest
    output.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    envelope = {
        "bench": name,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "instructions": DEFAULT_INSTRUCTIONS,
        "kernel": resolve_kernel(),
        "resilience": counters_snapshot(),
        "scheduler": scheduler_counters(),
    }
    envelope.update(run_environment())
    envelope.update(payload)
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path

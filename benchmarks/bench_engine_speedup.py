"""Benchmark: serial vs parallel vs cached execution of the Figure 4 sweep.

Runs the same Figure 4 sweep three ways through the experiment engine —
serial (one in-process worker), parallel (a ``multiprocessing`` fan-out),
and twice against an on-disk result cache (cold, then fully warm) — and
verifies that all of them produce *identical* statistics before reporting
wall-clock ratios.  The measurements land in ``BENCH_engine.json`` at the
repo root so the engine's performance trajectory is machine-readable.

The parallel assertion scales with the hardware: a >= 2x speedup is required
only when at least four CPUs are actually available (the paper-sweep target
box); on smaller machines the run still checks bit-identity and records the
measured ratio.  The warm-cache re-run must always be a large win — it
simulates nothing.
"""

import os
import time

from _common import DEFAULT_INSTRUCTIONS, write_bench_json

from repro.exec import ExperimentEngine, ResultCache, available_cpus
from repro.harness.figure4 import run_figure4
from repro.harness.runner import ExperimentSettings

#: A cross-suite subset (media / int / fp, forwarding-heavy and quiet,
#: cache-friendly and memory-bound) big enough to amortise pool start-up.
SPEEDUP_WORKLOADS = ("gzip", "mesa.m", "swim", "vortex", "mcf", "eon.c")


def _signature(result):
    """Everything that must be identical across execution strategies."""
    return [(row.name, row.baseline_cycles,
             tuple(sorted(row.relative_time.items()))) for row in result.rows]


def measure_engine_speedup(cache_dir, instructions=None, workloads=SPEEDUP_WORKLOADS,
                           parallel_jobs=None):
    """Measure serial / parallel / cached wall times for one Figure 4 sweep.

    Returns a dict of measurements (also asserting bit-identity of the three
    execution strategies); reused by ``run_all.py``.
    """
    instructions = instructions or DEFAULT_INSTRUCTIONS
    cpus = available_cpus()
    if parallel_jobs is None:
        parallel_jobs = max(4, cpus) if cpus >= 4 else max(2, cpus)
    settings = ExperimentSettings(instructions=instructions, stats_warmup_fraction=0.25)
    names = list(workloads)

    serial_engine = ExperimentEngine(jobs=1, cache=False)
    start = time.perf_counter()
    serial = run_figure4(workloads=names, settings=settings, engine=serial_engine)
    serial_s = time.perf_counter() - start

    # The parallel leg runs supervised (the default execution path: per-job
    # deadlines, crash detection, retries) — its wall time is what users get.
    parallel_engine = ExperimentEngine(jobs=parallel_jobs, cache=False)
    start = time.perf_counter()
    parallel = run_figure4(workloads=names, settings=settings, engine=parallel_engine)
    parallel_s = time.perf_counter() - start

    # A/B overhead leg: the same sweep on the raw (unsupervised) pool via
    # the REPRO_SUPERVISE=0 escape hatch, so BENCH_engine.json records what
    # supervision actually costs on a fault-free run (the < 3% guard).
    prior_supervise = os.environ.get("REPRO_SUPERVISE")
    os.environ["REPRO_SUPERVISE"] = "0"
    try:
        raw_engine = ExperimentEngine(jobs=parallel_jobs, cache=False)
        start = time.perf_counter()
        raw = run_figure4(workloads=names, settings=settings, engine=raw_engine)
        raw_s = time.perf_counter() - start
    finally:
        if prior_supervise is None:
            os.environ.pop("REPRO_SUPERVISE", None)
        else:
            os.environ["REPRO_SUPERVISE"] = prior_supervise

    cached_engine = ExperimentEngine(jobs=1, cache=ResultCache(cache_dir))
    cold = run_figure4(workloads=names, settings=settings, engine=cached_engine)
    cold_stats = dict(cached_engine.last_run_stats)
    start = time.perf_counter()
    warm = run_figure4(workloads=names, settings=settings, engine=cached_engine)
    warm_s = time.perf_counter() - start
    warm_stats = dict(cached_engine.last_run_stats)

    reference = _signature(serial)
    assert _signature(parallel) == reference, "parallel run diverged from serial"
    assert _signature(raw) == reference, "unsupervised run diverged from serial"
    assert _signature(cold) == reference, "cache-populating run diverged from serial"
    assert _signature(warm) == reference, "cache-hit run diverged from serial"
    assert warm_stats["cache_hits"] == warm_stats["total"], warm_stats

    return {
        "workloads": names,
        "cpus": cpus,
        "parallel_jobs": parallel_jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "raw_parallel_s": round(raw_s, 3),
        "supervision_overhead_pct": round(
            100.0 * (parallel_s - raw_s) / raw_s, 2) if raw_s else 0.0,
        "warm_cache_s": round(warm_s, 4),
        "warm_cache_speedup": round(serial_s / warm_s, 1) if warm_s else 0.0,
        "cold_cache_stats": cold_stats,
        "warm_cache_stats": warm_stats,
        "gmean_indexed_fwd_dly": round(serial.gmean("indexed-3-fwd+dly"), 4),
    }


def assert_supervision_overhead(data):
    """The fault-free overhead guard: supervision (on by default) must cost
    < 3% of raw-pool throughput.

    Like the parallel-speedup bar, the band is hardware-gated: on a
    single-CPU box the supervisor, both workers, and the OS contend for
    one core and identical runs swing far more than 3% either way, so the
    measurement is recorded (``supervision_overhead_pct`` is the
    trajectory number) but only enforced where it is meaningful.  A small
    absolute slack absorbs timer noise on sweeps short enough that 3% is
    milliseconds.
    """
    if data["cpus"] < 2:
        return
    assert data["parallel_s"] <= data["raw_parallel_s"] * 1.03 + 0.75, (
        f"supervised parallel sweep {data['parallel_s']}s exceeds raw "
        f"{data['raw_parallel_s']}s by more than 3% (+0.75s slack): "
        f"{data['supervision_overhead_pct']}%")


def test_engine_speedup(tmp_path):
    data = measure_engine_speedup(cache_dir=tmp_path / "cache")
    path = write_bench_json("engine", {"wall_time_s": data["serial_s"], **data})
    print(f"\nengine speedup: serial {data['serial_s']}s, "
          f"parallel x{data['parallel_speedup']} ({data['parallel_jobs']} workers, "
          f"{data['cpus']} CPUs), warm cache x{data['warm_cache_speedup']}, "
          f"supervision overhead {data['supervision_overhead_pct']}% "
          f"-> {path.name}")

    # Supervision is on by default; it must be nearly free when no faults fire.
    assert_supervision_overhead(data)

    # The warm cache simulates nothing; it must be a large win everywhere.
    assert data["warm_cache_speedup"] >= 5.0, data

    # The parallel bar scales with the hardware the run actually has.
    if data["cpus"] >= 4:
        assert data["parallel_speedup"] >= 2.0, data
    elif data["cpus"] >= 2:
        assert data["parallel_speedup"] >= 1.1, data
    # Single-CPU boxes: fan-out cannot beat serial; bit-identity (asserted
    # inside the measurement) is the contract under test.

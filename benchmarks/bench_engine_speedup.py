"""Benchmark: serial vs parallel vs cached execution of the Figure 4 sweep.

Runs the same Figure 4 sweep three ways through the experiment engine —
serial (one in-process worker), parallel (a ``multiprocessing`` fan-out),
and twice against an on-disk result cache (cold, then fully warm) — and
verifies that all of them produce *identical* statistics before reporting
wall-clock ratios.  The measurements land in ``BENCH_engine.json`` at the
repo root so the engine's performance trajectory is machine-readable.

The parallel assertion scales with the hardware: a >= 2x speedup is required
only when at least four CPUs are actually available (the paper-sweep target
box); on smaller machines the run still checks bit-identity and records the
measured ratio.  The warm-cache re-run must always be a large win — it
simulates nothing.

The ``backend_matrix`` leg times the same sweep through each execution
backend (``REPRO_BACKEND=serial`` / ``supervised-pool`` / ``local-cluster``)
and A/B-measures the dispatcher seam itself: the identical job list through
the frozen :func:`repro.exec.resilience.run_supervised` collector versus
through :func:`repro.exec.dispatch.dispatch` over ``SupervisedPoolBackend``.
The seam must cost < 3% fault-free (>= 2 CPUs) and ``local-cluster`` must
reach >= 1.3x over serial where the hardware can show it (>= 4 CPUs);
bit-identity across every leg is asserted unconditionally.
"""

import os
import time

from _common import DEFAULT_INSTRUCTIONS, write_bench_json

from repro.exec import (
    DispatchJob,
    ExperimentEngine,
    JobSpec,
    ResultCache,
    SupervisedPoolBackend,
    available_cpus,
    dispatch,
    run_job,
    run_supervised,
)
from repro.harness.figure4 import run_figure4
from repro.harness.runner import ExperimentSettings

#: A cross-suite subset (media / int / fp, forwarding-heavy and quiet,
#: cache-friendly and memory-bound) big enough to amortise pool start-up.
SPEEDUP_WORKLOADS = ("gzip", "mesa.m", "swim", "vortex", "mcf", "eon.c")

#: Every selectable execution backend, swept by ``measure_backend_matrix``.
MATRIX_BACKENDS = ("serial", "supervised-pool", "local-cluster")

#: Scheduler-observability keys recorded per matrix leg (the same set the
#: engine folds into ``last_run_stats``).
_SCHEDULER_KEYS = ("backend", "queue_depth_peak", "inflight_peak",
                   "steals", "dispatch_overhead_ns")


def _signature(result):
    """Everything that must be identical across execution strategies."""
    return [(row.name, row.baseline_cycles,
             tuple(sorted(row.relative_time.items()))) for row in result.rows]


def measure_engine_speedup(cache_dir, instructions=None, workloads=SPEEDUP_WORKLOADS,
                           parallel_jobs=None):
    """Measure serial / parallel / cached wall times for one Figure 4 sweep.

    Returns a dict of measurements (also asserting bit-identity of the three
    execution strategies); reused by ``run_all.py``.
    """
    instructions = instructions or DEFAULT_INSTRUCTIONS
    cpus = available_cpus()
    if parallel_jobs is None:
        parallel_jobs = max(4, cpus) if cpus >= 4 else max(2, cpus)
    settings = ExperimentSettings(instructions=instructions, stats_warmup_fraction=0.25)
    names = list(workloads)

    serial_engine = ExperimentEngine(jobs=1, cache=False)
    start = time.perf_counter()
    serial = run_figure4(workloads=names, settings=settings, engine=serial_engine)
    serial_s = time.perf_counter() - start

    # The parallel leg runs supervised (the default execution path: per-job
    # deadlines, crash detection, retries) — its wall time is what users get.
    parallel_engine = ExperimentEngine(jobs=parallel_jobs, cache=False)
    start = time.perf_counter()
    parallel = run_figure4(workloads=names, settings=settings, engine=parallel_engine)
    parallel_s = time.perf_counter() - start

    # A/B overhead leg: the same sweep on the raw (unsupervised) pool via
    # the REPRO_SUPERVISE=0 escape hatch, so BENCH_engine.json records what
    # supervision actually costs on a fault-free run (the < 3% guard).
    prior_supervise = os.environ.get("REPRO_SUPERVISE")
    os.environ["REPRO_SUPERVISE"] = "0"
    try:
        raw_engine = ExperimentEngine(jobs=parallel_jobs, cache=False)
        start = time.perf_counter()
        raw = run_figure4(workloads=names, settings=settings, engine=raw_engine)
        raw_s = time.perf_counter() - start
    finally:
        if prior_supervise is None:
            os.environ.pop("REPRO_SUPERVISE", None)
        else:
            os.environ["REPRO_SUPERVISE"] = prior_supervise

    cached_engine = ExperimentEngine(jobs=1, cache=ResultCache(cache_dir))
    cold = run_figure4(workloads=names, settings=settings, engine=cached_engine)
    cold_stats = dict(cached_engine.last_run_stats)
    start = time.perf_counter()
    warm = run_figure4(workloads=names, settings=settings, engine=cached_engine)
    warm_s = time.perf_counter() - start
    warm_stats = dict(cached_engine.last_run_stats)

    reference = _signature(serial)
    assert _signature(parallel) == reference, "parallel run diverged from serial"
    assert _signature(raw) == reference, "unsupervised run diverged from serial"
    assert _signature(cold) == reference, "cache-populating run diverged from serial"
    assert _signature(warm) == reference, "cache-hit run diverged from serial"
    assert warm_stats["cache_hits"] == warm_stats["total"], warm_stats

    return {
        "workloads": names,
        "cpus": cpus,
        "parallel_jobs": parallel_jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "raw_parallel_s": round(raw_s, 3),
        "supervision_overhead_pct": round(
            100.0 * (parallel_s - raw_s) / raw_s, 2) if raw_s else 0.0,
        "warm_cache_s": round(warm_s, 4),
        "warm_cache_speedup": round(serial_s / warm_s, 1) if warm_s else 0.0,
        "cold_cache_stats": cold_stats,
        "warm_cache_stats": warm_stats,
        "gmean_indexed_fwd_dly": round(serial.gmean("indexed-3-fwd+dly"), 4),
    }


def measure_backend_matrix(instructions=None, workloads=SPEEDUP_WORKLOADS,
                           jobs=None):
    """Time one Figure 4 sweep through every execution backend.

    Returns a dict with one leg per ``MATRIX_BACKENDS`` entry (wall time
    plus the engine's scheduler counters) and the dispatcher A/B numbers:
    the identical job list through the frozen ``run_supervised`` collector
    and through ``dispatch()`` over ``SupervisedPoolBackend``.  Asserts
    bit-identity of every leg unconditionally; the hardware-gated speed
    bars live in :func:`assert_backend_matrix`.
    """
    instructions = instructions or DEFAULT_INSTRUCTIONS
    cpus = available_cpus()
    if jobs is None:
        jobs = max(4, cpus) if cpus >= 4 else max(2, cpus)
    settings = ExperimentSettings(instructions=instructions,
                                  stats_warmup_fraction=0.25)
    names = list(workloads)

    legs = {}
    reference = None
    prior_backend = os.environ.get("REPRO_BACKEND")
    try:
        for backend_name in MATRIX_BACKENDS:
            os.environ["REPRO_BACKEND"] = backend_name
            engine = ExperimentEngine(
                jobs=1 if backend_name == "serial" else jobs, cache=False)
            start = time.perf_counter()
            result = run_figure4(workloads=names, settings=settings,
                                 engine=engine)
            wall = time.perf_counter() - start
            if reference is None:
                reference = _signature(result)
            else:
                assert _signature(result) == reference, \
                    f"{backend_name} sweep diverged from serial"
            stats = engine.last_run_stats
            legs[backend_name] = {
                "wall_s": round(wall, 3),
                "scheduler": {key: stats[key] for key in _SCHEDULER_KEYS},
            }
    finally:
        if prior_backend is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = prior_backend

    # Dispatcher A/B on identical (fn, payloads): the frozen run_supervised
    # collector is the pre-seam reference implementation, so the difference
    # is exactly what the dispatch() event loop adds.
    specs = [JobSpec(workload, config, settings)
             for workload in names
             for config in ("indexed-3-fwd+dly", "associative-5-predictive")]
    start = time.perf_counter()
    frozen_records, _stats = run_supervised(run_job, specs, jobs,
                                            scope="job", chunksize=1)
    frozen_s = time.perf_counter() - start

    dispatch_jobs = [DispatchJob(index=position, payload=spec,
                                 label=f"{spec.workload}:{spec.config_name}")
                     for position, spec in enumerate(specs)]
    start = time.perf_counter()
    dispatched_records, _stats = dispatch(SupervisedPoolBackend(jobs),
                                          run_job, dispatch_jobs,
                                          scope="job", chunksize=1)
    dispatched_s = time.perf_counter() - start

    assert [record.result.stats.as_dict() for record in dispatched_records] \
        == [record.result.stats.as_dict() for record in frozen_records], \
        "dispatched records diverged from the frozen run_supervised path"

    serial_s = legs["serial"]["wall_s"]
    cluster_s = legs["local-cluster"]["wall_s"]
    return {
        "workloads": names,
        "cpus": cpus,
        "jobs": jobs,
        "legs": legs,
        "frozen_supervised_s": round(frozen_s, 3),
        "dispatched_supervised_s": round(dispatched_s, 3),
        "dispatch_overhead_pct": round(
            100.0 * (dispatched_s - frozen_s) / frozen_s, 2)
        if frozen_s else 0.0,
        "cluster_speedup": round(serial_s / cluster_s, 3) if cluster_s else 0.0,
    }


def assert_backend_matrix(data):
    """Hardware-gated bars for the backend matrix.

    Bit-identity across every leg is asserted unconditionally inside
    ``measure_backend_matrix``; the speed bars below only fire where the
    hardware can express them (same gating rationale as
    :func:`assert_supervision_overhead` — on a starved box identical runs
    swing more than the band either way, so the trajectory number is
    recorded but not enforced).  A small absolute slack absorbs timer
    noise on sweeps short enough that 3% is milliseconds.
    """
    if data["cpus"] >= 2:
        assert data["dispatched_supervised_s"] <= \
            data["frozen_supervised_s"] * 1.03 + 0.75, (
                f"dispatcher seam {data['dispatched_supervised_s']}s exceeds "
                f"frozen run_supervised {data['frozen_supervised_s']}s by "
                f"more than 3% (+0.75s slack): "
                f"{data['dispatch_overhead_pct']}%")
    if data["cpus"] >= 4:
        assert data["cluster_speedup"] >= 1.3, (
            f"local-cluster x{data['cluster_speedup']} under the 1.3x bar "
            f"over serial on {data['cpus']} CPUs", data["legs"])


def assert_supervision_overhead(data):
    """The fault-free overhead guard: supervision (on by default) must cost
    < 3% of raw-pool throughput.

    Like the parallel-speedup bar, the band is hardware-gated: on a
    single-CPU box the supervisor, both workers, and the OS contend for
    one core and identical runs swing far more than 3% either way, so the
    measurement is recorded (``supervision_overhead_pct`` is the
    trajectory number) but only enforced where it is meaningful.  A small
    absolute slack absorbs timer noise on sweeps short enough that 3% is
    milliseconds.
    """
    if data["cpus"] < 2:
        return
    assert data["parallel_s"] <= data["raw_parallel_s"] * 1.03 + 0.75, (
        f"supervised parallel sweep {data['parallel_s']}s exceeds raw "
        f"{data['raw_parallel_s']}s by more than 3% (+0.75s slack): "
        f"{data['supervision_overhead_pct']}%")


def test_engine_speedup(tmp_path):
    data = measure_engine_speedup(cache_dir=tmp_path / "cache")
    matrix = measure_backend_matrix()
    path = write_bench_json("engine", {"wall_time_s": data["serial_s"],
                                       "backend_matrix": matrix, **data})
    print(f"\nengine speedup: serial {data['serial_s']}s, "
          f"parallel x{data['parallel_speedup']} ({data['parallel_jobs']} workers, "
          f"{data['cpus']} CPUs), warm cache x{data['warm_cache_speedup']}, "
          f"supervision overhead {data['supervision_overhead_pct']}%, "
          f"dispatcher overhead {matrix['dispatch_overhead_pct']}%, "
          f"cluster x{matrix['cluster_speedup']} "
          f"-> {path.name}")

    # Supervision is on by default; it must be nearly free when no faults fire.
    assert_supervision_overhead(data)

    # The dispatcher seam must be nearly free too, and local-cluster must
    # pay for itself where the hardware can show it.
    assert_backend_matrix(matrix)

    # The warm cache simulates nothing; it must be a large win everywhere.
    assert data["warm_cache_speedup"] >= 5.0, data

    # The parallel bar scales with the hardware the run actually has.
    if data["cpus"] >= 4:
        assert data["parallel_speedup"] >= 2.0, data
    elif data["cpus"] >= 2:
        assert data["parallel_speedup"] >= 1.1, data
    # Single-CPU boxes: fan-out cannot beat serial; bit-identity (asserted
    # inside the measurement) is the contract under test.

"""Benchmark: statistical sampling vs full-detail simulation.

Three measurements, all recorded in ``BENCH_sampling.json``:

* **Matched-count speedup** — one workload/configuration simulated twice at
  the *same* instruction count (default 1M; ``REPRO_BENCH_SAMPLING_INSTRUCTIONS``):
  once in full detail and once through the sampling subsystem with
  *bounded* functional warming (the ``O(sampled)`` fast path; checkpoints
  explicitly off so the number keeps tracking that mode).  Sampling must be
  >= ~10x faster at paper-relevant counts while keeping the CPI estimate
  close; the bound scales down for reduced counts (where the per-interval
  fixed costs are not amortised).
* **Checkpointed sweep** — a multi-configuration sweep over one workload
  (default 400k instructions; ``REPRO_BENCH_CHECKPOINT_INSTRUCTIONS``) run
  twice: with bounded warming (each interval re-warms its gap) and with the
  checkpoint store (one O(N) functional pass, snapshots shared by every
  configuration).  With >= 2 configurations sharing the workload the
  amortised pass must win: the checkpointed sweep's speedup over any
  common baseline is at least the bounded sweep's (equivalently, its wall
  time is no larger), while carrying *full* warming history (the bounded
  mode's lukewarm bias collapses to detailed-warmup-only error).  Serial,
  parallel, and cached checkpointed runs are asserted bit-identical.
* **Paper-scale sampled artifact** — a 10M-instruction
  (``REPRO_BENCH_SAMPLED_INSTRUCTIONS``) Figure-4 cell: the ideal-baseline
  and indexed-SQ configurations simulated *sampled only* (full detail at
  10M is exactly what sampling exists to avoid), reporting the relative
  execution time with its confidence interval.  Runs checkpointed by
  default (both configurations share one warming pass), i.e. the recorded
  cell is paper-faithful full-history warming.
* **Sharded generation** — the checkpoint-generation stage of the same
  sweep run twice against cold private stores: one unsharded pass per
  workload group (the PR 3 scheme) vs the sharded (trace-chunk x
  policy-group) stitched fan-out.  Every snapshot is asserted
  bit-identical between the two stores (shared signatures and policy
  signatures, per interval), the merged sweep results are asserted
  bit-identical too, and the wall-time ratio — the parallelisation of the
  last O(N) serial stage inside a single workload — is recorded; >= 1.5x
  is asserted when >= 4 CPUs are available at the default sweep scale.
"""

import dataclasses
import os
import tempfile
import time

from repro.exec import ExperimentEngine, JobSpec, ResultCache, available_cpus
from repro.harness.runner import BASELINE_CONFIG, ExperimentSettings
from repro.sampling import SamplingPlan
from repro.sampling.checkpoints import resolve_checkpointed
from repro.sampling.driver import run_sampled_workload
from repro.workloads.suites import build_workload

SPEEDUP_WORKLOAD = "vortex"
SPEEDUP_CONFIG = "indexed-3-fwd+dly"

#: Instruction count for the matched-count comparison (full detail at this
#: length is simulated, so it must stay laptop-feasible).
MATCHED_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_SAMPLING_INSTRUCTIONS", str(1_000_000)))

#: Instruction count for the sampled-only paper-scale artifact.
ARTIFACT_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_SAMPLED_INSTRUCTIONS", str(10_000_000)))

#: Instruction count for the checkpointed-sweep comparison (both modes are
#: simulated end to end, so it stays below the paper scale by default).
CHECKPOINT_SWEEP_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_CHECKPOINT_INSTRUCTIONS", str(400_000)))

#: The sweep configurations sharing one workload's checkpoints (a Figure-4
#: mini-column: ideal baseline, realistic associative, both indexed modes).
CHECKPOINT_SWEEP_CONFIGS = (BASELINE_CONFIG, "associative-5-predictive",
                            "indexed-3-fwd", "indexed-3-fwd+dly")


def _matched_plan(instructions: int) -> SamplingPlan:
    """A ~10-interval bounded-warming plan for the given trace length."""
    period = max(instructions // 10, 4_000)
    return SamplingPlan(interval_length=1_000, detailed_warmup=1_000,
                        period=period, functional_warmup=8_000, seed=0)


def artifact_plan(instructions: int) -> SamplingPlan:
    """The paper-scale plan: ~25 intervals of 2k instructions."""
    period = max(instructions // 25, 8_000)
    return SamplingPlan(interval_length=2_000, detailed_warmup=2_000,
                        period=period, functional_warmup=30_000, seed=0)


def measure_sampling_speedup(instructions: int = None,
                             workload: str = SPEEDUP_WORKLOAD,
                             config: str = SPEEDUP_CONFIG) -> dict:
    """Time full-detail vs sampled simulation at one instruction count."""
    instructions = instructions or MATCHED_INSTRUCTIONS
    plan = _matched_plan(instructions)
    full_settings = ExperimentSettings(instructions=instructions,
                                       stats_warmup_fraction=0.0)
    # Bounded warming, explicitly: this entry tracks the O(sampled) fast
    # path; the checkpointed mode is measured by the sweep entry below.
    sampled_settings = ExperimentSettings(instructions=instructions,
                                          stats_warmup_fraction=0.0,
                                          sampling=plan, checkpoints=False)

    # Full detail: trace materialisation + cycle-accurate simulation (the
    # trace build is part of the cost a sampled run avoids re-paying).
    from repro.harness.runner import run_workload

    start = time.perf_counter()
    trace = build_workload(workload, instructions, seed=full_settings.seed)
    full_record = run_workload(trace, config, full_settings)
    full_s = time.perf_counter() - start
    full_stats = full_record.result.stats
    full_cpi = full_stats.cycles / full_stats.committed
    del trace, full_record

    # Best of two: the sampled leg is short enough (seconds) that allocator
    # and scheduler noise after the 1M-uop trace build above swings a single
    # measurement by tens of percent; the faster repeat is the steady-state
    # cost (per-process segment caches warm, exactly as inside a sweep).
    # Both runs are asserted bit-identical first.
    sampled_s = None
    sampled_record = None
    for _ in range(2):
        start = time.perf_counter()
        record = run_sampled_workload(workload, config, sampled_settings)
        elapsed = time.perf_counter() - start
        if sampled_record is not None:
            assert (record.result.stats.as_dict()
                    == sampled_record.result.stats.as_dict()), \
                "sampled repeat diverged"
        if sampled_s is None or elapsed < sampled_s:
            sampled_s = elapsed
        sampled_record = record
    sampled = sampled_record.result.sampled

    cpi_error = abs(sampled.cpi_mean - full_cpi) / full_cpi
    return {
        "workload": workload,
        "config": config,
        "matched_instructions": instructions,
        "full_detail_s": round(full_s, 3),
        "sampled_s": round(sampled_s, 3),
        "speedup": round(full_s / sampled_s, 2) if sampled_s else 0.0,
        "full_cpi": round(full_cpi, 5),
        "sampled_cpi": round(sampled.cpi_mean, 5),
        "cpi_relative_error": round(cpi_error, 4),
        "sampling": {key: round(value, 6) if isinstance(value, float) else value
                     for key, value in sampled.summary().items()},
    }


def _sweep_signature(records) -> list:
    """Everything that must be identical across execution strategies."""
    return [(record.workload, record.config_name,
             tuple(sorted(record.result.stats.as_dict().items())))
            for record in records]


def measure_checkpointed_sweep(instructions: int = None,
                               workload: str = SPEEDUP_WORKLOAD,
                               configs=CHECKPOINT_SWEEP_CONFIGS) -> dict:
    """Bounded vs checkpointed execution of one multi-configuration sweep.

    Both modes run the same plan serially end to end (cold caches), so the
    wall-time ratio is the amortisation win of sharing one O(N) functional
    pass across the sweep's configurations; the checkpointed result is
    additionally verified bit-identical across serial, parallel, and cached
    execution (reusing the store populated by the timed run).
    """
    instructions = instructions or CHECKPOINT_SWEEP_INSTRUCTIONS
    period = max(instructions // 20, 4_000)
    # The bounded baseline warms (nearly) the whole inter-interval gap —
    # the configuration a user who cares about accuracy would run, and the
    # cost the checkpoint store amortises away.
    plan = SamplingPlan(interval_length=1_000, detailed_warmup=1_000,
                        period=period,
                        functional_warmup=max(period - 2_000, 1_000), seed=0)
    bounded_settings = ExperimentSettings(instructions=instructions,
                                          stats_warmup_fraction=0.0,
                                          sampling=plan, checkpoints=False)
    checkpointed_settings = dataclasses.replace(bounded_settings,
                                                checkpoints=True)
    def specs(settings):
        return [JobSpec(workload, config, settings) for config in configs]

    # The whole measurement runs against a private store: both arms see
    # identical cold segment-memo state, and neither reads from nor writes
    # into the user's (environment-located) global store.
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as root:
        saved_dir = os.environ.get("REPRO_CHECKPOINT_DIR")
        os.environ["REPRO_CHECKPOINT_DIR"] = os.path.join(root, "store")
        try:
            from repro.workloads import suites

            suites._SEGMENT_CACHE.clear()
            start = time.perf_counter()
            bounded_records = ExperimentEngine(jobs=1, cache=False).run(
                specs(bounded_settings))
            bounded_s = time.perf_counter() - start

            # Each timed arm starts from cold in-process segment caches too,
            # so neither inherits compose work the other (or an earlier
            # bench in the same process) already paid for.
            suites._SEGMENT_CACHE.clear()
            engine = ExperimentEngine(jobs=1, cache=False)
            start = time.perf_counter()
            checkpointed_records = engine.run(specs(checkpointed_settings))
            checkpointed_s = time.perf_counter() - start
            cold_stats = dict(engine.last_run_stats)

            # Bit-identity of the checkpointed mode across execution
            # strategies (the warm store makes these re-runs cheap).
            reference = _sweep_signature(checkpointed_records)
            parallel = ExperimentEngine(jobs=2, cache=False).run(
                specs(checkpointed_settings))
            assert _sweep_signature(parallel) == reference, \
                "parallel checkpointed sweep diverged"
            cached_engine = ExperimentEngine(
                jobs=1, cache=ResultCache(os.path.join(root, "results")))
            cold = cached_engine.run(specs(checkpointed_settings))
            warm = cached_engine.run(specs(checkpointed_settings))
            warm_stats = dict(cached_engine.last_run_stats)
            assert _sweep_signature(cold) == reference, \
                "cache-populating checkpointed sweep diverged"
            assert _sweep_signature(warm) == reference, \
                "cache-hit checkpointed sweep diverged"
            assert warm_stats["cache_hits"] == warm_stats["total"], warm_stats
        finally:
            if saved_dir is None:
                os.environ.pop("REPRO_CHECKPOINT_DIR", None)
            else:
                os.environ["REPRO_CHECKPOINT_DIR"] = saved_dir

    bounded_cpi = {r.config_name: r.result.sampled.cpi_mean
                   for r in bounded_records}
    checkpointed_cpi = {r.config_name: r.result.sampled.cpi_mean
                        for r in checkpointed_records}
    return {
        "workload": workload,
        "configs": list(configs),
        "sweep_instructions": instructions,
        "intervals": checkpointed_records[0].result.sampled.num_intervals,
        "bounded_sweep_s": round(bounded_s, 3),
        "checkpointed_sweep_s": round(checkpointed_s, 3),
        # checkpointed time <= bounded time <=> against any common baseline
        # the amortised speedup >= the bounded-warming speedup.
        "amortised_speedup_vs_bounded": round(bounded_s / checkpointed_s, 3)
        if checkpointed_s else 0.0,
        "checkpoint_stats": cold_stats,
        "bounded_cpi": {k: round(v, 5) for k, v in bounded_cpi.items()},
        "checkpointed_cpi": {k: round(v, 5)
                             for k, v in checkpointed_cpi.items()},
    }


def assert_checkpointed_sweep(data: dict) -> None:
    """>= 2 configurations share one workload: the single amortised O(N)
    pass must be at least as fast as per-interval bounded re-warming.

    The wall-time bar applies from the default sweep scale upward: below
    ~300k instructions the bounded arm's per-interval warming horizon (a
    fraction of the period) is too short for the full pass to amortise
    against, mirroring how ``assert_speedup`` scales its bound down for
    reduced ``REPRO_BENCH_*`` runs.
    """
    assert len(data["configs"]) >= 2, data
    assert data["checkpoint_stats"]["checkpoint_passes"] == 1, data
    if data["sweep_instructions"] >= 300_000:
        assert data["amortised_speedup_vs_bounded"] >= 1.0, data


def measure_sharded_generation(instructions: int = None,
                               workload: str = SPEEDUP_WORKLOAD,
                               configs=CHECKPOINT_SWEEP_CONFIGS) -> dict:
    """Unsharded vs sharded checkpoint generation on cold private stores.

    Times only the generation stage (the remaining O(N) serial cost inside
    a single workload), asserts the sharded store's snapshots are
    bit-identical to the single pass's (shared and policy signatures, per
    interval), and asserts the sweeps simulated from the two stores merge
    bit-identically.  Both arms start from cold in-process segment caches
    and write only into private stores.
    """
    from repro.sampling.checkpoints import (
        CheckpointStore,
        execute_generation,
        plan_generation,
        policy_key,
        resolve_checkpoint_shards,
        run_checkpoint_job,
        shared_key,
        shared_signature,
    )
    from repro.sampling.driver import expand_sampled_spec
    from repro.workloads import suites

    instructions = instructions or CHECKPOINT_SWEEP_INSTRUCTIONS
    period = max(instructions // 20, 4_000)
    plan = SamplingPlan(interval_length=1_000, detailed_warmup=1_000,
                        period=period,
                        functional_warmup=max(period - 2_000, 1_000), seed=0)
    settings = ExperimentSettings(instructions=instructions,
                                  stats_warmup_fraction=0.0,
                                  sampling=plan, checkpoints=True)
    cpus = available_cpus()
    # Honour an explicit REPRO_CHECKPOINT_SHARDS; otherwise one chunk per
    # CPU (at least 2), so the recorded artifact always exercises the
    # stitched path even on auto-sized runs.
    shards = resolve_checkpoint_shards(settings) or max(2, cpus)
    sharded_settings = dataclasses.replace(settings, checkpoint_shards=shards)
    windows = plan.intervals(instructions)
    identities = [(config, settings.sq_size, None) for config in configs]

    def interval_specs(store, run_settings):
        specs = []
        for config in configs:
            specs.extend(expand_sampled_spec(
                JobSpec(workload, config, run_settings), checkpointed=True,
                checkpoint_dir=str(store.directory)))
        return specs

    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as root:
        single_store = CheckpointStore(os.path.join(root, "single"))
        sharded_store = CheckpointStore(os.path.join(root, "sharded"))

        # Baseline: the PR 3 scheme, one unsharded in-process pass per
        # workload group (deliberately not routed through the sharded
        # executor, whatever the environment says).
        suites._SEGMENT_CACHE.clear()
        requests, _ = plan_generation(
            single_store, interval_specs(single_store, settings))
        start = time.perf_counter()
        for request in requests:
            run_checkpoint_job(request)
        single_s = time.perf_counter() - start
        single_passes = len(requests)

        suites._SEGMENT_CACHE.clear()
        requests, _ = plan_generation(
            sharded_store, interval_specs(sharded_store, sharded_settings))
        start = time.perf_counter()
        sharded_stats = execute_generation(sharded_store, requests,
                                           jobs=max(2, cpus))
        sharded_s = time.perf_counter() - start

        # Snapshot-level bit-identity, every interval of every configuration.
        for window in windows:
            single_shared = single_store.get(
                shared_key(workload, settings, window.index))
            sharded_shared = sharded_store.get(
                shared_key(workload, sharded_settings, window.index))
            assert single_shared is not None and sharded_shared is not None, \
                f"missing shared snapshot at interval {window.index}"
            assert (shared_signature(single_shared)
                    == shared_signature(sharded_shared)), \
                f"shared snapshot diverged at interval {window.index}"
            for identity in identities:
                single_policy = single_store.get(
                    policy_key(workload, settings, identity, window.index))
                sharded_policy = sharded_store.get(
                    policy_key(workload, sharded_settings, identity,
                               window.index))
                assert single_policy is not None and sharded_policy is not None, \
                    f"missing policy snapshot {identity[0]}/{window.index}"
                assert (single_policy.state_signature()
                        == sharded_policy.state_signature()), \
                    f"policy snapshot diverged {identity[0]}/{window.index}"

        # Merged-result bit-identity: the sweep simulated from either store
        # is the same sweep.
        def sweep(store, run_settings):
            engine = ExperimentEngine(jobs=1, cache=False,
                                      checkpoint_dir=store.directory)
            return engine.run([JobSpec(workload, config, run_settings)
                               for config in configs])

        assert (_sweep_signature(sweep(single_store, settings))
                == _sweep_signature(sweep(sharded_store, sharded_settings))), \
            "sweep from sharded store diverged from single-pass store"

    return {
        "workload": workload,
        "configs": list(configs),
        "sweep_instructions": instructions,
        "intervals": len(windows),
        "cpus": cpus,
        "shards": shards,
        "single_pass_s": round(single_s, 3),
        "single_passes": single_passes,
        "sharded_s": round(sharded_s, 3),
        "sharded_stats": dict(sharded_stats),
        "generation_speedup": round(single_s / sharded_s, 3) if sharded_s else 0.0,
        "snapshots_identical": True,
        "merged_identical": True,
    }


def assert_sharded_generation(data: dict) -> None:
    """Bit-identity always; the >= 1.5x generation-stage bar applies on
    multi-CPU hardware at the default sweep scale (below it, per-pass fixed
    costs and pool start-up are not amortised)."""
    assert data["snapshots_identical"] and data["merged_identical"], data
    assert data["sharded_stats"]["checkpoint_shard_jobs"] > 1, data
    if data["cpus"] >= 4 and data["sweep_instructions"] >= 300_000:
        assert data["generation_speedup"] >= 1.5, data


def measure_sampled_artifact(instructions: int = None,
                             workload: str = SPEEDUP_WORKLOAD) -> dict:
    """A paper-scale Figure-4 cell (relative time + CI), sampled only."""
    instructions = instructions or ARTIFACT_INSTRUCTIONS
    plan = artifact_plan(instructions)
    settings = ExperimentSettings(instructions=instructions,
                                  stats_warmup_fraction=0.0, sampling=plan,
                                  jobs=None)
    engine = ExperimentEngine.from_settings(settings, cache=False)
    start = time.perf_counter()
    baseline_rec, indexed_rec = engine.run([
        JobSpec(workload, BASELINE_CONFIG, settings),
        JobSpec(workload, SPEEDUP_CONFIG, settings),
    ])
    wall_s = time.perf_counter() - start
    baseline = baseline_rec.result.sampled
    indexed = indexed_rec.result.sampled
    relative_time = indexed.cpi_mean / baseline.cpi_mean
    # First-order CI of the ratio: relative half-widths add in quadrature.
    ratio_ci = relative_time * (
        (baseline.relative_ci ** 2 + indexed.relative_ci ** 2) ** 0.5)
    return {
        "workload": workload,
        "artifact_instructions": instructions,
        "checkpointed": resolve_checkpointed(settings),
        "wall_s": round(wall_s, 3),
        "baseline_config": BASELINE_CONFIG,
        "config": SPEEDUP_CONFIG,
        "baseline_cpi": round(baseline.cpi_mean, 5),
        "baseline_ci_halfwidth": round(baseline.cpi_ci_halfwidth, 5),
        "indexed_cpi": round(indexed.cpi_mean, 5),
        "indexed_ci_halfwidth": round(indexed.cpi_ci_halfwidth, 5),
        "relative_time": round(relative_time, 4),
        "relative_time_ci_halfwidth": round(ratio_ci, 4),
        "intervals": indexed.num_intervals,
        "sampling": {key: round(value, 6) if isinstance(value, float) else value
                     for key, value in indexed.summary().items()},
    }


def assert_speedup(data: dict) -> None:
    """The speedup bar scales with how much work sampling can amortise."""
    if data["matched_instructions"] >= 800_000:
        assert data["speedup"] >= 10.0, data
    elif data["matched_instructions"] >= 200_000:
        assert data["speedup"] >= 3.0, data
    else:
        assert data["speedup"] >= 1.0, data
    # Bounded functional warming cannot reproduce machine history older
    # than its horizon, and at paper-scale counts the long L2 warm-up of
    # these workloads makes full-detail runs "warmer" than any bounded
    # sample (see ROADMAP).  The tight ±3% validation bound is enforced by
    # tests/integration/test_sampled_accuracy.py under full warming; here
    # the bounded estimate must stay the right magnitude.
    assert data["cpi_relative_error"] <= 0.35, data


def test_sampling_speedup():
    # Measures and asserts only; BENCH_sampling.json has a single producer
    # (run_all.py's bench_sampling, which adds the paper-scale artifact) so
    # the trajectory file keeps one schema regardless of which entry ran.
    data = measure_sampling_speedup()
    print(f"\nsampling speedup: full {data['full_detail_s']}s vs sampled "
          f"{data['sampled_s']}s = x{data['speedup']} at "
          f"{data['matched_instructions']} instructions "
          f"(CPI err {data['cpi_relative_error']:.2%})")
    assert_speedup(data)

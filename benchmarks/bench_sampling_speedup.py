"""Benchmark: statistical sampling vs full-detail simulation.

Two measurements, both recorded in ``BENCH_sampling.json``:

* **Matched-count speedup** — one workload/configuration simulated twice at
  the *same* instruction count (default 1M; ``REPRO_BENCH_SAMPLING_INSTRUCTIONS``):
  once in full detail and once through the sampling subsystem.  Sampling
  must be >= ~10x faster at paper-relevant counts while keeping the CPI
  estimate close; the bound scales down for reduced counts (where the
  per-interval fixed costs are not amortised).
* **Paper-scale sampled artifact** — a 10M-instruction
  (``REPRO_BENCH_SAMPLED_INSTRUCTIONS``) Figure-4 cell: the ideal-baseline
  and indexed-SQ configurations simulated *sampled only* (full detail at
  10M is exactly what sampling exists to avoid), reporting the relative
  execution time with its confidence interval.
"""

import os
import time

from repro.exec import ExperimentEngine, JobSpec
from repro.harness.runner import BASELINE_CONFIG, ExperimentSettings
from repro.sampling import SamplingPlan
from repro.sampling.driver import run_sampled_workload
from repro.workloads.suites import build_workload

SPEEDUP_WORKLOAD = "vortex"
SPEEDUP_CONFIG = "indexed-3-fwd+dly"

#: Instruction count for the matched-count comparison (full detail at this
#: length is simulated, so it must stay laptop-feasible).
MATCHED_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_SAMPLING_INSTRUCTIONS", str(1_000_000)))

#: Instruction count for the sampled-only paper-scale artifact.
ARTIFACT_INSTRUCTIONS = int(
    os.environ.get("REPRO_BENCH_SAMPLED_INSTRUCTIONS", str(10_000_000)))


def _matched_plan(instructions: int) -> SamplingPlan:
    """A ~10-interval bounded-warming plan for the given trace length."""
    period = max(instructions // 10, 4_000)
    return SamplingPlan(interval_length=1_000, detailed_warmup=1_000,
                        period=period, functional_warmup=8_000, seed=0)


def artifact_plan(instructions: int) -> SamplingPlan:
    """The paper-scale plan: ~25 intervals of 2k instructions."""
    period = max(instructions // 25, 8_000)
    return SamplingPlan(interval_length=2_000, detailed_warmup=2_000,
                        period=period, functional_warmup=30_000, seed=0)


def measure_sampling_speedup(instructions: int = None,
                             workload: str = SPEEDUP_WORKLOAD,
                             config: str = SPEEDUP_CONFIG) -> dict:
    """Time full-detail vs sampled simulation at one instruction count."""
    instructions = instructions or MATCHED_INSTRUCTIONS
    plan = _matched_plan(instructions)
    full_settings = ExperimentSettings(instructions=instructions,
                                       stats_warmup_fraction=0.0)
    sampled_settings = ExperimentSettings(instructions=instructions,
                                          stats_warmup_fraction=0.0,
                                          sampling=plan)

    # Full detail: trace materialisation + cycle-accurate simulation (the
    # trace build is part of the cost a sampled run avoids re-paying).
    from repro.harness.runner import run_workload

    start = time.perf_counter()
    trace = build_workload(workload, instructions, seed=full_settings.seed)
    full_record = run_workload(trace, config, full_settings)
    full_s = time.perf_counter() - start
    full_stats = full_record.result.stats
    full_cpi = full_stats.cycles / full_stats.committed
    del trace, full_record

    start = time.perf_counter()
    sampled_record = run_sampled_workload(workload, config, sampled_settings)
    sampled_s = time.perf_counter() - start
    sampled = sampled_record.result.sampled

    cpi_error = abs(sampled.cpi_mean - full_cpi) / full_cpi
    return {
        "workload": workload,
        "config": config,
        "matched_instructions": instructions,
        "full_detail_s": round(full_s, 3),
        "sampled_s": round(sampled_s, 3),
        "speedup": round(full_s / sampled_s, 2) if sampled_s else 0.0,
        "full_cpi": round(full_cpi, 5),
        "sampled_cpi": round(sampled.cpi_mean, 5),
        "cpi_relative_error": round(cpi_error, 4),
        "sampling": {key: round(value, 6) if isinstance(value, float) else value
                     for key, value in sampled.summary().items()},
    }


def measure_sampled_artifact(instructions: int = None,
                             workload: str = SPEEDUP_WORKLOAD) -> dict:
    """A paper-scale Figure-4 cell (relative time + CI), sampled only."""
    instructions = instructions or ARTIFACT_INSTRUCTIONS
    plan = artifact_plan(instructions)
    settings = ExperimentSettings(instructions=instructions,
                                  stats_warmup_fraction=0.0, sampling=plan,
                                  jobs=None)
    engine = ExperimentEngine.from_settings(settings, cache=False)
    start = time.perf_counter()
    baseline_rec, indexed_rec = engine.run([
        JobSpec(workload, BASELINE_CONFIG, settings),
        JobSpec(workload, SPEEDUP_CONFIG, settings),
    ])
    wall_s = time.perf_counter() - start
    baseline = baseline_rec.result.sampled
    indexed = indexed_rec.result.sampled
    relative_time = indexed.cpi_mean / baseline.cpi_mean
    # First-order CI of the ratio: relative half-widths add in quadrature.
    ratio_ci = relative_time * (
        (baseline.relative_ci ** 2 + indexed.relative_ci ** 2) ** 0.5)
    return {
        "workload": workload,
        "artifact_instructions": instructions,
        "wall_s": round(wall_s, 3),
        "baseline_config": BASELINE_CONFIG,
        "config": SPEEDUP_CONFIG,
        "baseline_cpi": round(baseline.cpi_mean, 5),
        "baseline_ci_halfwidth": round(baseline.cpi_ci_halfwidth, 5),
        "indexed_cpi": round(indexed.cpi_mean, 5),
        "indexed_ci_halfwidth": round(indexed.cpi_ci_halfwidth, 5),
        "relative_time": round(relative_time, 4),
        "relative_time_ci_halfwidth": round(ratio_ci, 4),
        "intervals": indexed.num_intervals,
        "sampling": {key: round(value, 6) if isinstance(value, float) else value
                     for key, value in indexed.summary().items()},
    }


def assert_speedup(data: dict) -> None:
    """The speedup bar scales with how much work sampling can amortise."""
    if data["matched_instructions"] >= 800_000:
        assert data["speedup"] >= 10.0, data
    elif data["matched_instructions"] >= 200_000:
        assert data["speedup"] >= 3.0, data
    else:
        assert data["speedup"] >= 1.0, data
    # Bounded functional warming cannot reproduce machine history older
    # than its horizon, and at paper-scale counts the long L2 warm-up of
    # these workloads makes full-detail runs "warmer" than any bounded
    # sample (see ROADMAP).  The tight ±3% validation bound is enforced by
    # tests/integration/test_sampled_accuracy.py under full warming; here
    # the bounded estimate must stay the right magnitude.
    assert data["cpi_relative_error"] <= 0.35, data


def test_sampling_speedup():
    # Measures and asserts only; BENCH_sampling.json has a single producer
    # (run_all.py's bench_sampling, which adds the paper-scale artifact) so
    # the trajectory file keeps one schema regardless of which entry ran.
    data = measure_sampling_speedup()
    print(f"\nsampling speedup: full {data['full_detail_s']}s vs sampled "
          f"{data['sampled_s']}s = x{data['speedup']} at "
          f"{data['matched_instructions']} instructions "
          f"(CPI err {data['cpi_relative_error']:.2%})")
    assert_speedup(data)

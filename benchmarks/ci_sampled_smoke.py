#!/usr/bin/env python
"""CI smoke test: a tiny sampled Figure-4 sweep through the cached engine.

Runs a 2-workload x 2-configuration (plus baseline) Figure-4 grid with a
tiny sampling plan, twice against the same result cache, and asserts:

* the sampled sweep completes and produces confidence intervals,
* the second run is served entirely from the cache, and
* both runs merge to bit-identical results.

Designed for the GitHub Actions job (see ``.github/workflows/ci.yml``),
where ``.repro-cache/`` is shared across the job via ``actions/cache`` so
re-runs on an unchanged simulator skip the simulation entirely.  Exits
nonzero on any failure.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.exec import ExperimentEngine  # noqa: E402
from repro.harness.figure4 import run_figure4  # noqa: E402
from repro.harness.runner import ExperimentSettings  # noqa: E402
from repro.sampling import SamplingPlan  # noqa: E402

WORKLOADS = ("gzip", "swim")
CONFIGS = ("associative-5-predictive", "indexed-3-fwd+dly")

PLAN = SamplingPlan(interval_length=800, detailed_warmup=800, period=8_000,
                    functional_warmup=4_000, seed=0)
SETTINGS = ExperimentSettings(instructions=32_000, stats_warmup_fraction=0.0,
                              sampling=PLAN)


def _signature(result):
    return [(row.name, row.baseline_cycles, tuple(sorted(row.relative_time.items())))
            for row in result.rows]


def main() -> int:
    engine = ExperimentEngine.from_settings(SETTINGS, cache=True)

    start = time.perf_counter()
    cold = run_figure4(workloads=list(WORKLOADS), settings=SETTINGS,
                       configs=CONFIGS, engine=engine)
    cold_s = time.perf_counter() - start
    cold_stats = dict(engine.last_run_stats)

    start = time.perf_counter()
    warm = run_figure4(workloads=list(WORKLOADS), settings=SETTINGS,
                       configs=CONFIGS, engine=engine)
    warm_s = time.perf_counter() - start
    warm_stats = dict(engine.last_run_stats)

    assert _signature(cold) == _signature(warm), "cached re-run diverged"
    assert warm_stats["cache_hits"] == warm_stats["total"], warm_stats
    assert warm_stats["sampled_specs"] == len(WORKLOADS) * (len(CONFIGS) + 1)

    intervals = PLAN.num_intervals(SETTINGS.instructions)
    for row in cold.rows:
        for config in CONFIGS:
            assert row.relative_time[config] > 0.0, row
    print(f"sampled Figure-4 smoke: {len(cold.rows)} workloads x "
          f"{len(CONFIGS)} configs, {intervals} intervals each; "
          f"cold {cold_s:.1f}s ({cold_stats['simulated']} simulated), "
          f"warm {warm_s:.1f}s ({warm_stats['cache_hits']} cache hits)")
    for row in cold.rows:
        rel = ", ".join(f"{c}={row.relative_time[c]:.3f}" for c in CONFIGS)
        print(f"  {row.name}: {rel}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: regenerate Table 2 (SQ latency) and the Section 4.2 energy claim.

Prints the associative-vs-indexed SQ load-latency table (ns and cycles at
3 GHz) for 16-256 entries and 1-2 load ports, plus the D$ bank / TLB
reference rows, with the paper's values alongside.  Asserts only the
qualitative shape: the indexed SQ is always faster, its latency stays at or
below the data-cache bank latency, and the associative SQ's latency grows
super-linearly enough to exceed the cache for large windows (the paper's
motivating observation).
"""

from conftest import run_once

from repro.harness.paper_data import TABLE2_SQ
from repro.harness.table2 import run_table2
from repro.timing.cacti import dcache_bank_access


def test_table2_sq_latency(benchmark, bench_engine):
    result = run_once(benchmark, run_table2, engine=bench_engine)
    print()
    print(result.render())

    dcache_cycles = dcache_bank_access(32, load_ports=2).cycles

    for row in result.sq_rows:
        # Shape: indexed always beats associative, and matches the paper's
        # cycle counts at every design point.
        assert row.indexed_ns < row.associative_ns
        paper = TABLE2_SQ[(row.entries, row.load_ports)]
        assert row.associative_cycles == paper[1]
        assert row.indexed_cycles == paper[3]
        if row.load_ports == 2:
            assert row.indexed_cycles <= dcache_cycles

    # The paper's headline point: a 64-entry 2-port associative SQ is slower
    # than the 32KB data-cache bank, while the indexed SQ is not.
    headline = result.row(64, 2)
    assert headline.associative_cycles > dcache_cycles
    assert headline.indexed_cycles < dcache_cycles

    benchmark.extra_info["assoc_64_2port_ns"] = round(headline.associative_ns, 3)
    benchmark.extra_info["indexed_64_2port_ns"] = round(headline.indexed_ns, 3)


def test_energy_comparison(benchmark, bench_engine):
    result = run_once(benchmark, run_table2, engine=bench_engine)
    savings = result.energy.indexed_savings
    print(f"\nIndexed SQ per-access energy saving at 64 entries / 2 load ports: "
          f"{100 * savings:.1f}% (paper: ~30%)")
    assert 0.15 <= savings <= 0.45
    benchmark.extra_info["indexed_energy_savings"] = round(savings, 3)

"""Benchmark: regenerate Figure 5 (predictor sensitivity sweeps).

Reproduces the three sensitivity studies over the paper's nine benchmarks
(three per suite): FSP/DDP capacity (top), FSP associativity (middle), and
DDP training ratio (bottom), each reported as execution time of the
``indexed-3-fwd+dly`` configuration relative to the ideal associative SQ.

Assertions follow the paper's qualitative findings:

* capacity: the default 4K-entry tables are adequate — shrinking to 512
  entries degrades some programs, growing to 8K changes little;
* associativity: direct-mapped FSPs hurt noticeably, while associativities
  above 2 buy little;
* DDP training ratio: 0:1 (never delay) behaves like the raw ``Fwd``
  configuration; some benchmarks prefer aggressive delay, and the default
  4:1 ratio is a good compromise.
"""

from conftest import run_once

from repro.harness.figure5 import run_figure5
from repro.harness.runner import geometric_mean
from repro.workloads.suites import sensitivity_workloads


def _gmean_at(series_list, label):
    return geometric_mean(series.points[label] for series in series_list)


def test_fsp_ddp_capacity(benchmark, bench_settings, bench_workloads, bench_engine):
    names = bench_workloads or sensitivity_workloads()
    result = run_once(benchmark, run_figure5, workloads=names, settings=bench_settings,
                      associativities=(), ddp_ratios=(), engine=bench_engine)
    print()
    print(result.render())

    small = _gmean_at(result.capacity, "512")
    default = _gmean_at(result.capacity, "4096")
    large = _gmean_at(result.capacity, "8192")

    # Smaller tables trade performance; the default is near the knee; growing
    # past the default changes little (paper: 4K is over-provisioned).
    assert small >= default - 0.01
    assert abs(large - default) < 0.03
    for series in result.capacity:
        for value in series.points.values():
            assert 0.9 < value < 1.6

    benchmark.extra_info.update({"gmean_512": round(small, 4),
                                 "gmean_4096": round(default, 4),
                                 "gmean_8192": round(large, 4)})


def test_fsp_associativity(benchmark, bench_settings, bench_workloads, bench_engine):
    names = bench_workloads or sensitivity_workloads()
    result = run_once(benchmark, run_figure5, workloads=names, settings=bench_settings,
                      capacities=(), ddp_ratios=(), engine=bench_engine)
    print()
    print(result.render())

    direct_mapped = _gmean_at(result.associativity, "1")
    default = _gmean_at(result.associativity, "2")
    wide = _gmean_at(result.associativity, "32")

    # Direct-mapped FSPs lose dependences per load; 2-way is adequate; very
    # high associativity buys little (paper, Figure 5 middle).
    assert direct_mapped >= default - 0.01
    assert abs(wide - default) < 0.05

    benchmark.extra_info.update({"gmean_assoc1": round(direct_mapped, 4),
                                 "gmean_assoc2": round(default, 4),
                                 "gmean_assoc32": round(wide, 4)})


def test_ddp_training_ratio(benchmark, bench_settings, bench_workloads, bench_engine):
    names = bench_workloads or sensitivity_workloads()
    result = run_once(benchmark, run_figure5, workloads=names, settings=bench_settings,
                      capacities=(), associativities=(), engine=bench_engine)
    print()
    print(result.render())

    never_delay = _gmean_at(result.ddp_ratio, "0:1")
    default = _gmean_at(result.ddp_ratio, "4:1")
    always_delay = _gmean_at(result.ddp_ratio, "1:0")

    # The default ratio is no worse than never delaying (it exists to fix the
    # pathological programs), and never-unlearning is not catastrophic.
    assert default <= never_delay + 0.02
    assert always_delay < 1.25
    for series in result.ddp_ratio:
        for value in series.points.values():
            assert 0.9 < value < 1.6

    benchmark.extra_info.update({"gmean_ratio_0_1": round(never_delay, 4),
                                 "gmean_ratio_4_1": round(default, 4),
                                 "gmean_ratio_1_0": round(always_delay, 4)})

"""Benchmark: regenerate Table 3 (SQ index prediction diagnostics).

For every proxy workload this runs the indexed SQ without (``Fwd``) and with
(``Fwd+Dly``) delay prediction and reports: load forwarding rate,
mis-forwardings per 1000 loads for both configurations, the percentage of
loads delayed, and the average delay, with the paper's numbers alongside.

Assertions check the qualitative claims of Section 4.3:

* forwarding rates track the per-benchmark profile (Table 3 column 1);
* the raw predictor already mis-forwards rarely (a few per 1000 loads on
  average);
* adding delay prediction cuts the mis-forwarding rate by a large factor at
  the cost of delaying a small fraction of loads;
* the per-benchmark pathologies (mesa.texgen, eon, sixtrack) stand out in
  the Fwd column and are suppressed in the Fwd+Dly column.
"""

from conftest import run_once

from repro.harness.paper_data import TABLE3
from repro.harness.table3 import run_table3
from repro.workloads.suites import workload_names


def test_table3_prediction_diagnostics(benchmark, bench_settings, bench_workloads, bench_engine):
    names = bench_workloads or workload_names()
    result = run_once(benchmark, run_table3, workloads=names, settings=bench_settings,
                      engine=bench_engine)
    print()
    print(result.render())

    # --- per-benchmark shape -------------------------------------------------
    for row in result.rows:
        paper_fwd = TABLE3[row.name][0]
        # Forwarding rate within a loose absolute band of the paper's value.
        assert abs(row.forward_rate_pct - paper_fwd) <= max(6.0, 0.5 * paper_fwd), row.name
        # Delay prediction never makes mis-forwarding dramatically worse.
        assert row.mis_per_1000_fwd_dly <= row.mis_per_1000_fwd + 2.0, row.name

    # --- aggregate shape (Section 4.3) ---------------------------------------
    overall = result.suite_average("all")
    assert 5.0 <= overall.forward_rate_pct <= 25.0        # paper: 12.9%
    assert overall.mis_per_1000_fwd <= 25.0               # paper: 1.8
    assert overall.mis_per_1000_fwd_dly <= 5.0            # paper: 0.3
    assert overall.mis_per_1000_fwd_dly < overall.mis_per_1000_fwd
    assert overall.percent_delayed <= 15.0                # paper: 2.3%

    benchmark.extra_info.update({
        "avg_forward_rate_pct": round(overall.forward_rate_pct, 2),
        "avg_mis_per_1000_fwd": round(overall.mis_per_1000_fwd, 2),
        "avg_mis_per_1000_fwd_dly": round(overall.mis_per_1000_fwd_dly, 2),
        "avg_percent_delayed": round(overall.percent_delayed, 2),
        "avg_delay_cycles": round(overall.avg_delay_cycles, 1),
    })


def test_suite_averages(benchmark, bench_settings, bench_engine):
    """Section 4.3 headline: delay prediction helps the pathological programs
    most (checked on a representative subset to keep this bench short)."""
    subset = ["mesa.t", "eon.c", "sixtrack", "gzip", "adpcm.d", "swim"]
    result = run_once(benchmark, run_table3, workloads=subset, settings=bench_settings,
                      engine=bench_engine)
    print()
    print(result.render())

    pathological = result.row("mesa.t")
    quiet = result.row("adpcm.d")
    # mesa.texgen has one of the highest raw mis-forwarding rates and delay
    # prediction reduces it by a large factor (paper: 12.3 -> 0.8).
    assert pathological.mis_per_1000_fwd > 2.0
    assert pathological.mis_per_1000_fwd_dly < 0.5 * pathological.mis_per_1000_fwd
    # adpcm never forwards, never mis-forwards, and is never delayed.
    assert quiet.forward_rate_pct < 1.0
    assert quiet.mis_per_1000_fwd == 0.0
    assert quiet.percent_delayed < 0.5

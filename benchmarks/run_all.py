#!/usr/bin/env python
"""Run every reproduction benchmark and write BENCH_*.json trajectory files.

This is the CI / tooling entry point: it regenerates each of the paper's
artifacts through the experiment engine, applies the load-bearing sanity
assertions, and writes one machine-readable ``BENCH_<name>.json`` per
artifact (timestamp, instructions, wall time, headline metrics) at the repo
root.  The exit status is nonzero if any artifact fails its assertions, so
the performance *and* fidelity trajectory is checkable from PR 1 onward:

    PYTHONPATH=src python benchmarks/run_all.py

Honours the same environment knobs as the pytest benchmarks
(``REPRO_BENCH_INSTRUCTIONS``, ``REPRO_BENCH_WORKLOADS``, ``REPRO_JOBS``,
``REPRO_CACHE``, ``REPRO_CACHE_DIR``; see ``benchmarks/conftest.py``) plus
the sampling-bench lengths (``REPRO_BENCH_SAMPLING_INSTRUCTIONS`` for the
matched-count speedup comparison, ``REPRO_BENCH_CHECKPOINT_INSTRUCTIONS``
for the checkpointed-sweep comparison, and
``REPRO_BENCH_SAMPLED_INSTRUCTIONS`` for the paper-scale sampled artifact).
``REPRO_BENCH_ONLY`` (comma-separated bench names, e.g.
``REPRO_BENCH_ONLY=sampling,engine``) regenerates a subset of the
trajectory files without paying for the rest.  Every ``BENCH_*.json``
records the CPU count and the ``REPRO_*`` knobs in effect alongside its
metrics.
"""

import os
import sys
import tempfile
import time
import traceback

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _common import (  # noqa: E402
    DEFAULT_INSTRUCTIONS,
    DEFAULT_JOBS,
    WORKLOAD_SUBSET,
    write_bench_json,
)
from bench_core_throughput import (  # noqa: E402
    assert_core_throughput,
    measure_core_throughput,
)
from bench_engine_speedup import (  # noqa: E402
    assert_backend_matrix,
    assert_supervision_overhead,
    measure_backend_matrix,
    measure_engine_speedup,
)
from bench_memory_mlp import (  # noqa: E402
    assert_memory_mlp,
    measure_memory_mlp,
)
from bench_sampling_speedup import (  # noqa: E402
    assert_checkpointed_sweep,
    assert_sharded_generation,
    assert_speedup,
    measure_checkpointed_sweep,
    measure_sampled_artifact,
    measure_sampling_speedup,
    measure_sharded_generation,
)

from repro.exec import EnvKnobError, ExperimentEngine  # noqa: E402
from repro.harness.figure4 import run_figure4  # noqa: E402
from repro.harness.figure5 import run_figure5  # noqa: E402
from repro.harness.runner import ExperimentSettings, geometric_mean  # noqa: E402
from repro.harness.table2 import run_table2  # noqa: E402
from repro.harness.table3 import run_table3  # noqa: E402
from repro.workloads.suites import sensitivity_workloads, workload_names  # noqa: E402


def _settings() -> ExperimentSettings:
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS,
                              stats_warmup_fraction=0.25, jobs=DEFAULT_JOBS)


#: Absolute fidelity bands are calibrated against the full 47-workload sweep
#: at the default trace length; reduced runs (REPRO_BENCH_WORKLOADS /
#: shorter REPRO_BENCH_INSTRUCTIONS) still check structural orderings but
#: skip the bands, so a quick subset run does not fail spuriously.
FULL_FIDELITY = WORKLOAD_SUBSET is None and DEFAULT_INSTRUCTIONS >= 8000


def bench_table2(engine: ExperimentEngine) -> dict:
    result = run_table2(engine=engine)
    headline = result.row(64, 2)
    assert headline.indexed_ns < headline.associative_ns
    assert 0.15 <= result.energy.indexed_savings <= 0.45
    return {
        "assoc_64_2port_ns": round(headline.associative_ns, 3),
        "indexed_64_2port_ns": round(headline.indexed_ns, 3),
        "indexed_energy_savings": round(result.energy.indexed_savings, 3),
    }


def bench_table3(engine: ExperimentEngine) -> dict:
    names = WORKLOAD_SUBSET or workload_names()
    result = run_table3(workloads=names, settings=_settings(), engine=engine)
    overall = result.suite_average("all")
    assert overall.mis_per_1000_fwd_dly <= overall.mis_per_1000_fwd
    if FULL_FIDELITY:
        assert overall.mis_per_1000_fwd_dly < overall.mis_per_1000_fwd
        assert overall.percent_delayed <= 15.0
    return {
        "workloads": len(names),
        "avg_forward_rate_pct": round(overall.forward_rate_pct, 2),
        "avg_mis_per_1000_fwd": round(overall.mis_per_1000_fwd, 2),
        "avg_mis_per_1000_fwd_dly": round(overall.mis_per_1000_fwd_dly, 2),
        "avg_percent_delayed": round(overall.percent_delayed, 2),
        "engine": dict(engine.last_run_stats),
    }


def bench_figure4(engine: ExperimentEngine) -> dict:
    names = WORKLOAD_SUBSET or workload_names()
    result = run_figure4(workloads=names, settings=_settings(), engine=engine)
    gmeans = result.gmeans()["all"]
    assert gmeans["indexed-3-fwd+dly"] < gmeans["indexed-3-fwd"]
    if FULL_FIDELITY:
        for config, value in gmeans.items():
            assert 0.9 < value < 1.15, (config, value)
    return {
        "workloads": len(names),
        "gmeans": {k: round(v, 4) for k, v in gmeans.items()},
        "engine": dict(engine.last_run_stats),
    }


def bench_figure5(engine: ExperimentEngine) -> dict:
    names = WORKLOAD_SUBSET or sensitivity_workloads()
    result = run_figure5(workloads=names, settings=_settings(), engine=engine)

    def gmean_at(series_list, label):
        return geometric_mean(s.points[label] for s in series_list)

    default_capacity = gmean_at(result.capacity, "4096")
    if FULL_FIDELITY:
        assert 0.9 < default_capacity < 1.6
    return {
        "workloads": len(names),
        "gmean_capacity_4096": round(default_capacity, 4),
        "gmean_assoc_2": round(gmean_at(result.associativity, "2"), 4),
        "gmean_ratio_4_1": round(gmean_at(result.ddp_ratio, "4:1"), 4),
        "engine": dict(engine.last_run_stats),
    }


def bench_core(_engine: ExperimentEngine) -> dict:
    """Detailed-path throughput: frozen seed stack vs the two-plane core.

    Asserts bit-identical statistics across the three legs and the >= 1.5x
    before-vs-after bar on the Figure-4 cell (serial, idle_skip on).
    """
    data = measure_core_throughput()
    assert_core_throughput(data)
    return data


def bench_engine(_engine: ExperimentEngine) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        data = measure_engine_speedup(cache_dir=cache_dir)
    data["backend_matrix"] = measure_backend_matrix()
    assert_supervision_overhead(data)
    assert_backend_matrix(data["backend_matrix"])
    assert data["warm_cache_speedup"] >= 5.0, data
    if data["cpus"] >= 4:
        assert data["parallel_speedup"] >= 2.0, data
    return data


def bench_memory(_engine: ExperimentEngine) -> dict:
    """MLP-aware memory sweep: MSHR entries x SQ policy x prefetch.

    Asserts the degeneracy anchor (mshr=1 == blocking, bit for bit,
    through the full engine path), measurable CPI separation across MSHR
    entry counts, prefetcher sanity, serial/parallel/cached bit-identity,
    and a checkpointed sampled leg (cold vs warm vs parallel identical).
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-memory-") as cache_dir:
        data = measure_memory_mlp(cache_dir=cache_dir)
    assert_memory_mlp(data)
    return data


def bench_sampling(_engine: ExperimentEngine) -> dict:
    """Sampling speedup, the checkpointed sweep, sharded generation, and
    the paper-scale artifact.

    The matched-count half simulates the same (workload, configuration)
    both ways and asserts the >= ~10x win of bounded-warming sampling; the
    checkpointed-sweep half runs a multi-configuration sweep bounded vs
    checkpointed and asserts the amortised single-pass warming is at least
    as fast (while carrying full history); the sharded-generation half
    re-runs that sweep's generation stage unsharded vs sharded on cold
    stores, asserts snapshot- and merged-result bit-identity, and records
    the stage speedup (>= 1.5x asserted at >= 4 CPUs); the artifact half
    runs a 10M-instruction Figure-4 cell sampled-only (relative time with
    a confidence interval) — the scale the subsystem exists to reach.
    """
    speedup = measure_sampling_speedup()
    assert_speedup(speedup)
    checkpointed_sweep = measure_checkpointed_sweep()
    assert_checkpointed_sweep(checkpointed_sweep)
    sharded_generation = measure_sharded_generation()
    assert_sharded_generation(sharded_generation)
    artifact = measure_sampled_artifact()
    assert artifact["intervals"] >= 2, artifact
    assert artifact["relative_time_ci_halfwidth"] > 0.0, artifact
    if artifact["artifact_instructions"] >= 2_000_000:
        # Paper-scale bars; reduced REPRO_BENCH_SAMPLED_INSTRUCTIONS runs
        # still record the numbers but skip the absolute bands (mirroring
        # FULL_FIDELITY above).
        assert artifact["intervals"] >= 10, artifact
        assert artifact["relative_time_ci_halfwidth"] < 0.25 * artifact["relative_time"], artifact
        assert 0.7 < artifact["relative_time"] < 1.4, artifact
    return {"speedup": speedup, "checkpointed_sweep": checkpointed_sweep,
            "sharded_generation": sharded_generation, "artifact": artifact}


BENCHES = (
    ("table2", bench_table2),
    ("table3", bench_table3),
    ("figure4", bench_figure4),
    ("figure5", bench_figure5),
    ("core", bench_core),
    ("engine", bench_engine),
    ("memory", bench_memory),
    ("sampling", bench_sampling),
)


def main() -> int:
    # The trajectory files exist to track *simulator speed*: benches are
    # timed against a cache-disabled engine so wall times measure the cost
    # of regenerating each artifact, not the state of .repro-cache/.  The
    # caching win is measured explicitly (and its bit-identity asserted) by
    # the "engine" bench below.
    try:
        engine = ExperimentEngine.from_settings(_settings(), cache=False)
    except EnvKnobError as exc:
        # Misconfigured REPRO_* knobs are operator errors, not bench
        # failures: one actionable line, distinct exit status, no traceback.
        print(f"invalid environment: {exc}", file=sys.stderr)
        return 2
    only = {name.strip() for name in
            os.environ.get("REPRO_BENCH_ONLY", "").split(",") if name.strip()}
    benches = [(name, bench) for name, bench in BENCHES
               if not only or name in only]
    valid = [name for name, _ in BENCHES]
    unknown = only - set(valid)
    if unknown:
        # Fail fast: a typo must not silently regenerate everything (or
        # nothing) with exit 0.
        print(f"REPRO_BENCH_ONLY names unknown benches {sorted(unknown)}; "
              f"valid names: {', '.join(valid)}", file=sys.stderr)
        return 1
    failures = 0
    for name, bench in benches:
        start = time.perf_counter()
        try:
            metrics = bench(engine)
            ok = True
        except Exception:
            traceback.print_exc()
            metrics = {"error": traceback.format_exc(limit=3)}
            ok = False
            failures += 1
        wall = round(time.perf_counter() - start, 3)
        path = write_bench_json(name, {"ok": ok, "wall_time_s": wall, **metrics})
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {name}: {wall}s -> {path.name}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

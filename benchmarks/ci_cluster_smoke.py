#!/usr/bin/env python
"""CI smoke test: the local-cluster backend end to end, with clean teardown.

Forces ``REPRO_BACKEND=local-cluster`` (N worker processes pulling jobs
work-stealing-style from a content-addressed spool) through the two
heaviest engine paths and checks it against an unforced serial reference:

* **Sampled smoke** — the tiny sampled Figure-4 grid from
  ``ci_sampled_smoke.py``, cold then warm against a private cache.  The
  cluster run must merge to results bit-identical to the serial reference,
  the warm pass must be all cache hits, and the scheduler counters must
  show the cluster actually ran the jobs (``backend=local-cluster``,
  queue/inflight peaks; steals are opportunistic and recorded, not
  required).
* **Sharded checkpoint generation** — a checkpointed sampled run under
  ``REPRO_CHECKPOINT_SHARDS=4``, where the generation stage's chunk chains
  flow through the same dispatcher seam as explicit job dependencies.
  Must be bit-identical to the serial unsharded reference.

After both legs, teardown is asserted clean: no orphan worker processes,
no stranded ``*.tmp`` blobs, and nothing left under ``REPRO_SPOOL_DIR``
(every spool directory, ticket, claim, and result blob removed).

Designed for the multi-vCPU GitHub Actions job (see
``.github/workflows/ci.yml``); also passes on a single-CPU box — identity
and hygiene are the contract here, speed is ``BENCH_engine.json``'s.
Exits nonzero on any failure.
"""

import multiprocessing
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.exec import ExperimentEngine, ResultCache, available_cpus  # noqa: E402
from repro.harness.figure4 import run_figure4  # noqa: E402
from repro.harness.runner import ExperimentSettings  # noqa: E402
from repro.sampling import SamplingPlan  # noqa: E402

WORKLOADS = ("gzip", "swim")
CONFIGS = ("associative-5-predictive", "indexed-3-fwd+dly")

PLAN = SamplingPlan(interval_length=800, detailed_warmup=800, period=8_000,
                    functional_warmup=4_000, seed=0)
SETTINGS = ExperimentSettings(instructions=32_000, stats_warmup_fraction=0.0,
                              sampling=PLAN)

CKPT_WORKLOAD = "vortex"
CKPT_CONFIGS = ("indexed-3-fwd+dly",)
CKPT_PLAN = SamplingPlan(interval_length=500, detailed_warmup=300,
                         period=10_000, functional_warmup=2_000, seed=3)
CKPT_SETTINGS = ExperimentSettings(instructions=60_000,
                                   stats_warmup_fraction=0.0,
                                   sampling=CKPT_PLAN, checkpoints=True)


def _signature(result):
    return [(row.name, row.baseline_cycles, tuple(sorted(row.relative_time.items())))
            for row in result.rows]


def _run(workloads, configs, settings, cache_dir, *, jobs,
         checkpoint_dir=None):
    engine = ExperimentEngine(jobs=jobs, cache=ResultCache(cache_dir),
                              checkpoint_dir=checkpoint_dir)
    start = time.perf_counter()
    result = run_figure4(workloads=list(workloads), settings=settings,
                         configs=list(configs), engine=engine)
    return result, dict(engine.last_run_stats), time.perf_counter() - start


def _assert_clean_teardown(spool_dir, *dirs):
    for child in multiprocessing.active_children():
        child.join(5.0)
    assert multiprocessing.active_children() == [], "orphan worker processes"
    stranded = sorted(str(p) for p in Path(spool_dir).rglob("*"))
    assert not stranded, f"stranded spool files: {stranded}"
    leftovers = [str(p) for d in dirs for p in Path(d).rglob("*.tmp")]
    assert not leftovers, f"leaked temp files: {leftovers}"


def main() -> int:
    import tempfile

    jobs = max(2, available_cpus())
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as root:
        spool_dir = os.path.join(root, "spool")
        os.environ["REPRO_SPOOL_DIR"] = spool_dir
        os.environ.pop("REPRO_BACKEND", None)
        try:
            # Serial references first, with the backend knob unset: the
            # cluster must reproduce numbers it had no hand in computing.
            reference, _stats, _s = _run(
                WORKLOADS, CONFIGS, SETTINGS,
                os.path.join(root, "ref-cache"), jobs=1,
                checkpoint_dir=os.path.join(root, "ref-smoke-ckpt"))
            ckpt_reference, _stats, _s = _run(
                (CKPT_WORKLOAD,), CKPT_CONFIGS, CKPT_SETTINGS,
                os.path.join(root, "ref-ckpt-cache"), jobs=1,
                checkpoint_dir=os.path.join(root, "ref-ckpt"))

            os.environ["REPRO_BACKEND"] = "local-cluster"

            # Leg 1: sampled smoke, cold then warm.
            cold, cold_stats, cold_s = _run(
                WORKLOADS, CONFIGS, SETTINGS,
                os.path.join(root, "cache"), jobs=jobs,
                checkpoint_dir=os.path.join(root, "smoke-ckpt"))
            warm, warm_stats, warm_s = _run(
                WORKLOADS, CONFIGS, SETTINGS,
                os.path.join(root, "cache"), jobs=jobs,
                checkpoint_dir=os.path.join(root, "smoke-ckpt"))
            assert _signature(cold) == _signature(reference), \
                "local-cluster sampled sweep diverged from serial"
            assert _signature(warm) == _signature(reference), \
                "local-cluster warm re-run diverged"
            assert cold_stats["backend"] == "local-cluster", cold_stats
            # Steals are opportunistic (an idle worker raiding another
            # partition), so they are recorded, not required; the queue
            # counters prove the cluster actually ran the fan-out.
            assert cold_stats.get("queue_depth_peak", 0) >= 1, cold_stats
            assert cold_stats.get("inflight_peak", 0) >= 1, cold_stats
            assert warm_stats["cache_hits"] == warm_stats["total"], warm_stats

            # Leg 2: sharded checkpoint generation through the cluster.
            os.environ["REPRO_CHECKPOINT_SHARDS"] = "4"
            try:
                sharded, sharded_stats, sharded_s = _run(
                    (CKPT_WORKLOAD,), CKPT_CONFIGS, CKPT_SETTINGS,
                    os.path.join(root, "ckpt-cache"), jobs=jobs,
                    checkpoint_dir=os.path.join(root, "ckpt"))
            finally:
                os.environ.pop("REPRO_CHECKPOINT_SHARDS", None)
            assert _signature(sharded) == _signature(ckpt_reference), \
                "sharded cluster generation diverged from serial unsharded"
            assert sharded_stats["backend"] == "local-cluster", sharded_stats
            assert sharded_stats.get("checkpoint_generated", 0) >= 1, \
                sharded_stats
        finally:
            os.environ.pop("REPRO_BACKEND", None)
            os.environ.pop("REPRO_SPOOL_DIR", None)

        _assert_clean_teardown(spool_dir, root)

        print(f"cluster smoke ({jobs} workers, {available_cpus()} CPUs): "
              f"sampled cold {cold_s:.1f}s "
              f"(steals={cold_stats.get('steals', 0)}, "
              f"inflight peak={cold_stats.get('inflight_peak', 0)}), "
              f"warm {warm_s:.1f}s ({warm_stats['cache_hits']} cache hits), "
              f"sharded generation {sharded_s:.1f}s "
              f"({sharded_stats.get('checkpoint_generated', 0)} generated); "
              f"all legs bit-identical to serial, spool + teardown clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: detailed-path throughput, before vs after the two-plane refactor.

Measures serial detailed-simulation throughput (uops/sec, ``idle_skip`` on)
of one Figure-4 cell — the paper's ``vortex`` workload under the
``indexed-3-fwd+dly`` configuration — three ways:

* **legacy** — the frozen seed stack (``legacy_ref/``: pre-refactor
  ``MicroOp``-object trace composer, attribute-probing core loop, and
  pre-optimisation substrate, all verbatim): the *before* leg, re-measured
  on the same machine at bench time so the recorded ratio is
  hardware-independent;
* **object path** — the production core's back-compat path driven by
  materialised :class:`~repro.isa.uop.MicroOp` views;
* **encoded** — the production static-plane fast path
  (:class:`~repro.isa.plane.EncodedOps`): the *after* leg and the headline
  trajectory number.

Each leg's uops/sec covers trace materialisation *plus* simulation (the
detailed path as a user pays for it); all three legs must produce
bit-identical statistics before any ratio is reported.  The measurements
land in ``BENCH_core.json`` at the repo root (envelope records
``cpus_available`` like the other trajectory files).
"""

import gc
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import write_bench_json  # noqa: E402
import legacy_ref  # noqa: E402
from legacy_ref import suites as legacy_suites  # noqa: E402

from repro.harness.runner import ExperimentSettings, make_policy  # noqa: E402
from repro.isa.trace import DynamicTrace  # noqa: E402
from repro.pipeline.core import OutOfOrderCore  # noqa: E402
from repro.workloads.suites import build_workload  # noqa: E402
from repro.workloads import suites  # noqa: E402

#: The Figure-4 cell under test.
WORKLOAD = "vortex"
CONFIG = "indexed-3-fwd+dly"

#: Long enough that per-uop costs dominate fixed overheads; the trace
#: crosses several 16384-uop segment boundaries.
CORE_BENCH_INSTRUCTIONS = 60_000

#: Timed repetitions per leg; the median is recorded (robust against the
#: one-sided wall-clock outliers of shared/throttling machines without
#: rewarding a lucky fastest rep on either side of the ratio).
REPEATS = 3


def _stats_signature(result):
    return tuple(sorted(result.stats.as_dict().items()))


def _timed(leg, repeats=REPEATS):
    """Median-of-N timing with cross-leg GC isolation.

    The collector runs normally *inside* each timed region — allocator and
    collector pressure are part of what the two-plane encoding removes, so
    quiescing the GC would hide a real component of the win.  What must not
    leak between legs is heap debris: survivors of earlier legs would make
    later legs' collections scan ever more memory.  ``gc.freeze()`` parks
    the pre-leg heap outside the collector for the duration of the region,
    so every leg pays exactly its own GC cost.
    """
    times = []
    result = None
    for _ in range(repeats):
        gc.collect()
        gc.freeze()
        try:
            start = time.perf_counter()
            result = leg()
            times.append(time.perf_counter() - start)
        finally:
            gc.unfreeze()
    return result, statistics.median(times)


def measure_core_throughput(instructions=CORE_BENCH_INSTRUCTIONS, seed=1):
    """Measure the three legs; asserts bit-identity, returns the metrics."""
    settings = ExperimentSettings(instructions=instructions)
    assert settings.core.idle_skip, "bench contract: idle_skip on"

    def legacy_leg():
        # Before: seed composer (per-uop MicroOp construction) + seed core
        # on the seed substrate, verbatim.  Cold segment memo, like the
        # production legs below.
        legacy_suites._SEGMENT_CACHE.clear()
        trace = legacy_ref.build_workload(WORKLOAD, instructions=instructions,
                                          seed=seed)
        core = legacy_ref.OutOfOrderCore(
            settings.core, legacy_ref.IndexedSQPolicy(sq_size=settings.sq_size,
                                                      use_delay=True))
        return core.run(trace,
                        stats_warmup_fraction=settings.stats_warmup_fraction)

    def object_leg():
        # Production core's back-compat loop over materialised MicroOp views.
        suites._SEGMENT_CACHE.clear()
        encoded = build_workload(WORKLOAD, instructions=instructions, seed=seed)
        trace = DynamicTrace(name=WORKLOAD, uops=encoded.uops)
        core = OutOfOrderCore(settings.core,
                              make_policy(CONFIG, sq_size=settings.sq_size))
        return core.run(trace,
                        stats_warmup_fraction=settings.stats_warmup_fraction)

    def encoded_leg():
        # After: static-plane fast path, no per-uop objects anywhere.
        suites._SEGMENT_CACHE.clear()
        encoded = build_workload(WORKLOAD, instructions=instructions, seed=seed)
        core = OutOfOrderCore(settings.core,
                              make_policy(CONFIG, sq_size=settings.sq_size))
        return core.run(encoded,
                        stats_warmup_fraction=settings.stats_warmup_fraction)

    legacy_result, legacy_s = _timed(legacy_leg)
    object_result, object_s = _timed(object_leg)
    encoded_result, encoded_s = _timed(encoded_leg)

    reference = _stats_signature(legacy_result)
    assert _stats_signature(encoded_result) == reference, \
        "two-plane core diverged from the frozen seed stack"
    assert _stats_signature(object_result) == reference, \
        "object path diverged from the frozen seed stack"

    uops = instructions
    return {
        "workload": WORKLOAD,
        "config": CONFIG,
        "core_instructions": instructions,
        "legacy_s": round(legacy_s, 3),
        "object_path_s": round(object_s, 3),
        "encoded_s": round(encoded_s, 3),
        "legacy_uops_per_sec": round(uops / legacy_s, 1),
        "object_path_uops_per_sec": round(uops / object_s, 1),
        "encoded_uops_per_sec": round(uops / encoded_s, 1),
        "speedup_vs_legacy": round(legacy_s / encoded_s, 3),
        "speedup_vs_object_path": round(object_s / encoded_s, 3),
    }


def assert_core_throughput(data):
    """The acceptance bar: the two-plane detailed path is >= 1.5x the frozen
    seed stack on the Figure-4 cell (bit-identity is asserted inside the
    measurement)."""
    assert data["speedup_vs_legacy"] >= 1.5, data


def test_core_throughput():
    data = measure_core_throughput()
    assert_core_throughput(data)
    path = write_bench_json("core", {"wall_time_s": data["legacy_s"]
                                     + data["object_path_s"]
                                     + data["encoded_s"], **data})
    print(f"\ncore throughput: encoded {data['encoded_uops_per_sec']:,.0f} uops/s, "
          f"legacy {data['legacy_uops_per_sec']:,.0f} uops/s "
          f"(x{data['speedup_vs_legacy']} vs pre-refactor seed, "
          f"x{data['speedup_vs_object_path']} vs object path) -> {path.name}")


if __name__ == "__main__":
    test_core_throughput()

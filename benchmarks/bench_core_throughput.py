"""Benchmark: detailed-path throughput across the in-tree core kernels.

Measures serial detailed-simulation throughput (uops/sec, ``idle_skip`` on)
of one Figure-4 cell — the paper's ``vortex`` workload under the
``indexed-3-fwd+dly`` configuration — once per leg:

* **legacy** — the frozen seed stack (``legacy_ref/``: pre-refactor
  ``MicroOp``-object trace composer, attribute-probing core loop, and
  pre-optimisation substrate, all verbatim): the *before* leg, re-measured
  on the same machine at bench time so the recorded ratio is
  hardware-independent;
* **object_microop** — the ``object`` kernel's back-compat path driven by
  materialised :class:`~repro.isa.uop.MicroOp` views;
* **object** — the ``object`` kernel on the static-plane fast path
  (:class:`~repro.isa.plane.EncodedOps`);
* **vector** — the struct-of-arrays fused-loop kernel
  (:class:`~repro.pipeline.vector.VectorCore`), pure Python;
* **compiled** — the same fused loop as a native extension, measured only
  when ``tools/build_kernel.py`` has built it on this machine.

Leg names follow the ``REPRO_KERNEL`` kernel names (``kernel_legs`` lists
the ones measured).  Each leg's uops/sec covers trace materialisation
*plus* simulation (the detailed path as a user pays for it); every leg
must produce bit-identical statistics before any ratio is reported.  The
measurements land in ``BENCH_core.json`` at the repo root.

A note on expectations: the object kernel's stage pipeline was already
aggressively flattened by earlier optimisation passes, and a large share
of the remaining runtime is *shared model code* (policies, predictors,
byte-granular memory image, hierarchy) that every kernel pays
identically — so the pure-Python vector kernel's win over the object
kernel is modest; the compiled kernel is where the fused loop's layout
pays off.  The asserted bars below are therefore: unconditional
bit-identity, the historical >= 1.5x of the best kernel over the frozen
seed stack, and no-regression of vector vs the object kernel.
"""

import gc
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import write_bench_json  # noqa: E402
import legacy_ref  # noqa: E402
from legacy_ref import suites as legacy_suites  # noqa: E402

from repro.harness.runner import ExperimentSettings, make_policy  # noqa: E402
from repro.isa.trace import DynamicTrace  # noqa: E402
from repro.pipeline.core import OutOfOrderCore  # noqa: E402
from repro.pipeline.vector import (  # noqa: E402
    CompiledCore,
    VectorCore,
    compiled_kernel_available,
)
from repro.workloads.suites import build_workload  # noqa: E402
from repro.workloads import suites  # noqa: E402

#: The Figure-4 cell under test.
WORKLOAD = "vortex"
CONFIG = "indexed-3-fwd+dly"

#: Long enough that per-uop costs dominate fixed overheads; the trace
#: crosses several 16384-uop segment boundaries.
CORE_BENCH_INSTRUCTIONS = 60_000

#: Timed repetitions per leg; the median is recorded (robust against the
#: one-sided wall-clock outliers of shared/throttling machines without
#: rewarding a lucky fastest rep on either side of the ratio).
REPEATS = 3


def _stats_signature(result):
    return tuple(sorted(result.stats.as_dict().items()))


def _timed_once(leg):
    """One timed execution with GC isolation.

    The collector runs normally *inside* the timed region — allocator and
    collector pressure are part of what the encoded plane and the vector
    layout remove, so quiescing the GC would hide a real component of the
    win.  What must not leak between legs is heap debris: survivors of
    earlier legs would make later legs' collections scan ever more memory.
    ``gc.freeze()`` parks the pre-leg heap outside the collector for the
    duration of the region, so every leg pays exactly its own GC cost.
    """
    gc.collect()
    gc.freeze()
    try:
        start = time.perf_counter()
        result = leg()
        return result, time.perf_counter() - start
    finally:
        gc.unfreeze()


def _timed_interleaved(legs, repeats=REPEATS):
    """Median-of-N per leg, with the repetitions *interleaved* across legs.

    Shared machines drift (CI neighbours, thermal throttling): measuring
    each leg's repetitions back-to-back bakes whatever the machine was
    doing during *that leg's* window into the recorded ratios.  Round-robin
    ordering — every leg once per round — spreads drift evenly over all
    legs, so the per-leg medians move together and the ratios stay stable.
    Returns ``{name: (last_result, median_seconds)}`` in input order.
    """
    times = {name: [] for name, _ in legs}
    results = {}
    for _ in range(repeats):
        for name, leg in legs:
            result, seconds = _timed_once(leg)
            results[name] = result
            times[name].append(seconds)
    return {name: (results[name], statistics.median(times[name]))
            for name, _ in legs}


def measure_core_throughput(instructions=CORE_BENCH_INSTRUCTIONS, seed=1):
    """Measure every available leg; asserts bit-identity, returns metrics."""
    settings = ExperimentSettings(instructions=instructions)
    assert settings.core.idle_skip, "bench contract: idle_skip on"

    def legacy_leg():
        # Before: seed composer (per-uop MicroOp construction) + seed core
        # on the seed substrate, verbatim.  Cold segment memo, like the
        # production legs below.
        legacy_suites._SEGMENT_CACHE.clear()
        trace = legacy_ref.build_workload(WORKLOAD, instructions=instructions,
                                          seed=seed)
        core = legacy_ref.OutOfOrderCore(
            settings.core, legacy_ref.IndexedSQPolicy(sq_size=settings.sq_size,
                                                      use_delay=True))
        return core.run(trace,
                        stats_warmup_fraction=settings.stats_warmup_fraction)

    def kernel_leg(core_cls, encoded_trace=True):
        # One production leg: the named kernel class over a freshly
        # materialised trace (encoded fast path, or MicroOp views for the
        # object kernel's back-compat leg).
        def leg():
            suites._SEGMENT_CACHE.clear()
            trace = build_workload(WORKLOAD, instructions=instructions,
                                   seed=seed)
            if not encoded_trace:
                trace = DynamicTrace(name=WORKLOAD, uops=trace.uops)
            core = core_cls(settings.core,
                            make_policy(CONFIG, sq_size=settings.sq_size))
            return core.run(
                trace, stats_warmup_fraction=settings.stats_warmup_fraction)
        return leg

    kernel_legs = [
        ("object_microop", kernel_leg(OutOfOrderCore, encoded_trace=False)),
        ("object", kernel_leg(OutOfOrderCore)),
        ("vector", kernel_leg(VectorCore)),
    ]
    if compiled_kernel_available():
        kernel_legs.append(("compiled", kernel_leg(CompiledCore)))

    measured = _timed_interleaved([("legacy", legacy_leg)] + kernel_legs)
    legacy_result, legacy_s = measured["legacy"]
    reference = _stats_signature(legacy_result)

    uops = instructions
    data = {
        "workload": WORKLOAD,
        "config": CONFIG,
        "core_instructions": instructions,
        "kernel_legs": [name for name, _ in kernel_legs],
        "compiled_kernel_built": compiled_kernel_available(),
        "legacy_s": round(legacy_s, 3),
        "legacy_uops_per_sec": round(uops / legacy_s, 1),
    }
    seconds = {}
    for name, _ in kernel_legs:
        result, leg_s = measured[name]
        assert _stats_signature(result) == reference, \
            f"{name} kernel diverged from the frozen seed stack"
        seconds[name] = leg_s
        data[f"{name}_s"] = round(leg_s, 3)
        data[f"{name}_uops_per_sec"] = round(uops / leg_s, 1)

    # The headline ratio: the fastest measured kernel vs the frozen seed.
    best = min(seconds, key=seconds.get)
    data["best_kernel"] = best
    data["speedup_vs_legacy"] = round(legacy_s / seconds[best], 3)
    data["speedup_vs_object_path"] = round(
        seconds["object_microop"] / seconds[best], 3)
    data["vector_speedup_vs_object"] = round(
        seconds["object"] / seconds["vector"], 3)
    if "compiled" in seconds:
        data["compiled_speedup_vs_object"] = round(
            seconds["object"] / seconds["compiled"], 3)
    return data


def assert_core_throughput(data):
    """The acceptance bars.

    * bit-identity of every leg is asserted inside the measurement;
    * the best kernel keeps the historical >= 1.5x over the frozen seed
      stack on the Figure-4 cell;
    * the vector kernel does not regress materially vs the object kernel
      (>= 0.9x allows for timing noise on shared machines; in practice it
      measures at or slightly above parity — the compiled kernel is where
      the struct-of-arrays layout converts into a large win).
    """
    assert data["speedup_vs_legacy"] >= 1.5, data
    assert data["vector_speedup_vs_object"] >= 0.9, data


def test_core_throughput():
    data = measure_core_throughput()
    assert_core_throughput(data)
    wall = data["legacy_s"] + sum(
        data[f"{name}_s"] for name in data["kernel_legs"])
    path = write_bench_json("core", {"wall_time_s": round(wall, 3), **data})
    print(f"\ncore throughput: vector {data['vector_uops_per_sec']:,.0f} uops/s, "
          f"object {data['object_uops_per_sec']:,.0f} uops/s, "
          f"legacy {data['legacy_uops_per_sec']:,.0f} uops/s "
          f"(best kernel {data['best_kernel']}: "
          f"x{data['speedup_vs_legacy']} vs pre-refactor seed) -> {path.name}")


if __name__ == "__main__":
    test_core_throughput()

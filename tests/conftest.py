"""Test-suite-wide configuration.

The experiment engine memoizes simulation results under ``.repro-cache/``
by default.  Tests must not read or write a cache that persists across test
runs (hidden coupling; stale results could mask regressions), so caching is
switched off for the whole suite unless the developer explicitly opts in by
exporting ``REPRO_CACHE`` themselves.  Tests that exercise the cache pass an
explicit ``cache_dir`` / ``ResultCache`` (an explicit opt-in that overrides
the switch) pointed at ``tmp_path``.
"""

import os

os.environ.setdefault("REPRO_CACHE", "0")

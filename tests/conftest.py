"""Test-suite-wide configuration.

The experiment engine memoizes simulation results under ``.repro-cache/``
by default.  Tests must not read or write a cache that persists across test
runs (hidden coupling; stale results could mask regressions), so caching is
switched off for the whole suite unless the developer explicitly opts in by
exporting ``REPRO_CACHE`` themselves.  Tests that exercise the cache pass an
explicit ``cache_dir`` / ``ResultCache`` (an explicit opt-in that overrides
the switch) pointed at ``tmp_path``.

The checkpoint store (``.repro-checkpoints/``, ``REPRO_CHECKPOINTS``) is
switched off the same way and for the same reason — and so that the many
pre-existing sampled tests keep exercising the bounded-warming path they
were written against.  Checkpoint tests opt in per run with
``ExperimentSettings(checkpoints=True)`` and a ``tmp_path`` store.
"""

import os

os.environ.setdefault("REPRO_CACHE", "0")
os.environ.setdefault("REPRO_CHECKPOINTS", "0")

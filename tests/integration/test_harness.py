"""Integration tests of the experiment harness (small, fast settings)."""

import pytest

from repro.harness import (
    ExperimentSettings,
    geometric_mean,
    make_policy,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
)
from repro.harness.runner import BASELINE_CONFIG, FIGURE4_CONFIGS
from repro.lsu.policies import AssociativeStoreSetsPolicy, IndexedSQPolicy, OracleAssociativePolicy

FAST = ExperimentSettings(instructions=2500, stats_warmup_fraction=0.2)
SMALL_WORKLOADS = ["gzip", "mesa.m", "swim"]


class TestRunnerHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_make_policy_types(self):
        assert isinstance(make_policy(BASELINE_CONFIG), OracleAssociativePolicy)
        assert isinstance(make_policy("associative-5-optimistic"), AssociativeStoreSetsPolicy)
        assert isinstance(make_policy("indexed-3-fwd+dly"), IndexedSQPolicy)
        assert make_policy("associative-5-optimistic").sq_latency == 5
        assert make_policy("indexed-3-fwd").use_delay is False
        with pytest.raises(ValueError):
            make_policy("nonsense")

    def test_figure4_config_list(self):
        assert "indexed-3-fwd+dly" in FIGURE4_CONFIGS
        assert BASELINE_CONFIG not in FIGURE4_CONFIGS


class TestTable2Harness:
    def test_runs_and_renders(self):
        result = run_table2()
        assert len(result.sq_rows) == 10
        text = result.render()
        assert "Table 2" in text
        assert "64" in text

    def test_row_lookup(self):
        result = run_table2()
        row = result.row(64, 2)
        assert row.indexed_cycles == 2 and row.associative_cycles == 5
        with pytest.raises(KeyError):
            result.row(13, 2)

    def test_energy_headline(self):
        result = run_table2()
        assert 0.2 <= result.energy.indexed_savings <= 0.4


class TestTable3Harness:
    def test_small_run(self):
        result = run_table3(workloads=SMALL_WORKLOADS, settings=FAST)
        assert len(result.rows) == 3
        row = result.row("mesa.m")
        assert row.forward_rate_pct > 10.0
        assert row.mis_per_1000_fwd >= row.mis_per_1000_fwd_dly - 1.0
        text = result.render()
        assert "mesa.m" in text

    def test_suite_average(self):
        result = run_table3(workloads=SMALL_WORKLOADS, settings=FAST)
        avg = result.suite_average("all")
        assert avg.forward_rate_pct > 0.0
        with pytest.raises(ValueError):
            result.suite_average("bogus")

    def test_unknown_row(self):
        result = run_table3(workloads=["gzip"], settings=FAST)
        with pytest.raises(KeyError):
            result.row("vortex")


class TestFigure4Harness:
    def test_small_run(self):
        result = run_figure4(workloads=SMALL_WORKLOADS, settings=FAST)
        assert len(result.rows) == 3
        for row in result.rows:
            for config in FIGURE4_CONFIGS:
                assert 0.7 < row.relative_time[config] < 2.5
        gmeans = result.gmeans()
        assert "all" in gmeans
        text = result.render()
        assert "geometric means" in text.lower() or "Figure 4" in text

    def test_wins_accounting(self):
        result = run_figure4(workloads=SMALL_WORKLOADS, settings=FAST)
        counts = result.wins_vs("indexed-3-fwd+dly", "associative-5-predictive")
        assert counts["wins"] + counts["ties"] + counts["losses"] == 3


class TestFigure5Harness:
    def test_small_sweep(self):
        result = run_figure5(workloads=["mesa.m"], settings=FAST,
                             capacities=(512, 4096),
                             associativities=(1, 2),
                             ddp_ratios=((0, 1), (4, 1)))
        assert len(result.capacity) == 1
        assert set(result.capacity[0].points) == {"512", "4096"}
        assert set(result.associativity[0].points) == {"1", "2"}
        assert set(result.ddp_ratio[0].points) == {"0:1", "4:1"}
        for series in (result.capacity, result.associativity, result.ddp_ratio):
            for point in series[0].points.values():
                assert 0.7 < point < 2.5
        assert "Figure 5" in result.render()

"""Validation guardrail for the sampling subsystem.

Asserts the acceptance contract of `repro.sampling`: on a small trace the
sampled CPI estimate must land within a stated error bound (±3%) of the
full-detail CPI for at least two store-queue configurations, the reported
confidence interval must cover the full-detail value, and every execution
path (serial driver, engine expansion, pre-materialised trace) must agree
bit for bit.

The validation plan uses *full* functional warming (``functional_warmup``
covering the whole trace) — the faithful SMARTS configuration in which the
only error sources are interval sampling variance (covered by the CI) and
the in-flight-window approximation at interval boundaries.  Bounded
functional warming trades a little accuracy for O(sampled) cost and is
exercised by the cheaper smoke assertions below.

Checkpointed warming (PR 3, ``TestCheckpointedAccuracy``) must reach the
same ±3% bound *without* a covering per-interval warm-up: its one O(N)
functional pass per workload carries full history into every interval, so
its measured bias must be strictly smaller than bounded warming's on the
same plan, and its serial/parallel/cached executions bit-identical.
"""

import dataclasses

import pytest

from repro.exec import ExperimentEngine, JobSpec, ResultCache
from repro.harness.runner import ExperimentSettings, run_workload
from repro.sampling import SamplingPlan
from repro.sampling.driver import run_sampled_workload
from repro.workloads.suites import build_workload

WORKLOAD = "vortex"
INSTRUCTIONS = 80_000

#: The two SQ configurations the guardrail validates (the paper's
#: contribution and the realistic associative baseline).
CONFIGS = ("indexed-3-fwd+dly", "associative-5-predictive")

#: Stated validation bound: sampled CPI within ±3% of full detail.
CPI_ERROR_BOUND = 0.03

FULL_PLAN = SamplingPlan(interval_length=2_000, detailed_warmup=1_000,
                         period=6_000, functional_warmup=INSTRUCTIONS, seed=0)


@pytest.fixture(scope="module")
def trace():
    return build_workload(WORKLOAD, INSTRUCTIONS, seed=1)


@pytest.fixture(scope="module", params=CONFIGS)
def config_name(request):
    return request.param


@pytest.fixture(scope="module")
def full_detail_cpi(trace, config_name):
    settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                  stats_warmup_fraction=0.0)
    record = run_workload(trace, config_name, settings)
    stats = record.result.stats
    return stats.cycles / stats.committed


@pytest.fixture(scope="module")
def sampled_record(trace, config_name):
    settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                  stats_warmup_fraction=0.0,
                                  sampling=FULL_PLAN)
    return run_workload(trace, config_name, settings)


class TestSampledAccuracy:
    def test_cpi_within_bound(self, sampled_record, full_detail_cpi, config_name):
        sampled = sampled_record.result.sampled
        error = abs(sampled.cpi_mean - full_detail_cpi) / full_detail_cpi
        assert error <= CPI_ERROR_BOUND, (
            f"{config_name}: sampled CPI {sampled.cpi_mean:.4f} vs full "
            f"{full_detail_cpi:.4f} ({error:.1%} > {CPI_ERROR_BOUND:.0%})")

    def test_confidence_interval_covers_true_value(self, sampled_record,
                                                   full_detail_cpi, config_name):
        sampled = sampled_record.result.sampled
        lo, hi = sampled.cpi_ci
        assert lo <= full_detail_cpi <= hi, (
            f"{config_name}: CI [{lo:.4f}, {hi:.4f}] misses full-detail CPI "
            f"{full_detail_cpi:.4f}")
        # The CI must be informative, not vacuous.
        assert sampled.relative_ci < 0.25

    def test_enough_intervals_for_inference(self, sampled_record):
        sampled = sampled_record.result.sampled
        assert sampled.num_intervals >= 5
        assert sampled.cpi_ci_halfwidth > 0.0


class TestExecutionPathEquivalence:
    """Serial driver, engine expansion, and trace-slicing paths agree."""

    SETTINGS = ExperimentSettings(
        instructions=30_000, stats_warmup_fraction=0.0,
        sampling=SamplingPlan(interval_length=1_000, detailed_warmup=500,
                              period=6_000, functional_warmup=4_000, seed=0))

    def test_engine_serial_and_trace_paths_identical(self):
        config = "indexed-3-fwd+dly"
        engine_record, = ExperimentEngine(jobs=1, cache=False).run(
            [JobSpec(WORKLOAD, config, self.SETTINGS)])
        serial_record = run_sampled_workload(WORKLOAD, config, self.SETTINGS)
        trace = build_workload(WORKLOAD, 30_000, seed=1)
        trace_record = run_workload(trace, config, self.SETTINGS)
        reference = engine_record.result.stats.as_dict()
        assert serial_record.result.stats.as_dict() == reference
        assert trace_record.result.stats.as_dict() == reference
        assert (engine_record.result.sampled.cpi_values
                == trace_record.result.sampled.cpi_values)

    def test_parallel_matches_serial(self):
        config = "indexed-3-fwd+dly"
        serial, = ExperimentEngine(jobs=1, cache=False).run(
            [JobSpec(WORKLOAD, config, self.SETTINGS)])
        parallel, = ExperimentEngine(jobs=2, cache=False).run(
            [JobSpec(WORKLOAD, config, self.SETTINGS)])
        assert serial.result.stats.as_dict() == parallel.result.stats.as_dict()


#: The checkpointed-accuracy plan: same layout as FULL_PLAN but with a
#: bounded per-interval warm-up horizon nowhere near covering the trace —
#: checkpointed warming must make up the missing history from its snapshots.
CHECKPOINT_PLAN = dataclasses.replace(FULL_PLAN, functional_warmup=2_000)


@pytest.fixture(scope="module")
def checkpoint_store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("checkpoint-store"))


@pytest.fixture(scope="module")
def checkpointed_record(config_name, checkpoint_store_dir):
    settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                  stats_warmup_fraction=0.0,
                                  sampling=CHECKPOINT_PLAN, checkpoints=True)
    return run_sampled_workload(WORKLOAD, config_name, settings,
                                checkpoint_dir=checkpoint_store_dir)


@pytest.fixture(scope="module")
def bounded_record(config_name):
    settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                  stats_warmup_fraction=0.0,
                                  sampling=CHECKPOINT_PLAN, checkpoints=False)
    return run_sampled_workload(WORKLOAD, config_name, settings)


class TestCheckpointedAccuracy:
    """Acceptance contract of the checkpoint subsystem (PR 3)."""

    def test_cpi_within_bound_without_covering_warmup(
            self, checkpointed_record, full_detail_cpi, config_name):
        assert CHECKPOINT_PLAN.functional_warmup < INSTRUCTIONS // 10
        sampled = checkpointed_record.result.sampled
        error = abs(sampled.cpi_mean - full_detail_cpi) / full_detail_cpi
        assert error <= CPI_ERROR_BOUND, (
            f"{config_name}: checkpointed CPI {sampled.cpi_mean:.4f} vs full "
            f"{full_detail_cpi:.4f} ({error:.1%} > {CPI_ERROR_BOUND:.0%})")

    def test_bias_strictly_smaller_than_bounded_warming(
            self, checkpointed_record, bounded_record, full_detail_cpi,
            config_name):
        checkpointed_bias = abs(
            checkpointed_record.result.sampled.cpi_mean - full_detail_cpi)
        bounded_bias = abs(
            bounded_record.result.sampled.cpi_mean - full_detail_cpi)
        assert checkpointed_bias < bounded_bias, (
            f"{config_name}: checkpointed bias {checkpointed_bias:.4f} not "
            f"below bounded-warming bias {bounded_bias:.4f}")

    def test_equals_full_functional_warming(self, checkpointed_record,
                                            sampled_record):
        # Snapshots carry the whole prefix's history, so a checkpointed run
        # over a bounded plan is bit-identical to the same plan with
        # functional_warmup covering the trace (the faithful SMARTS mode).
        assert (checkpointed_record.result.stats.as_dict()
                == sampled_record.result.stats.as_dict())

    def test_materialised_trace_path_bit_identical(self, checkpointed_record,
                                                   trace, config_name):
        # run_workload over a materialised trace implements checkpointing
        # in memory (one cumulative warming pass, serialised snapshots);
        # it must equal the store-backed driver bit for bit.
        settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                      stats_warmup_fraction=0.0,
                                      sampling=CHECKPOINT_PLAN,
                                      checkpoints=True)
        trace_record = run_workload(trace, config_name, settings)
        assert (trace_record.result.stats.as_dict()
                == checkpointed_record.result.stats.as_dict())

    def test_serial_parallel_cached_bit_identical(
            self, checkpointed_record, config_name, checkpoint_store_dir,
            tmp_path):
        settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                      stats_warmup_fraction=0.0,
                                      sampling=CHECKPOINT_PLAN,
                                      checkpoints=True)
        spec = JobSpec(WORKLOAD, config_name, settings)
        reference = checkpointed_record.result.stats.as_dict()
        parallel, = ExperimentEngine(
            jobs=2, cache=False,
            checkpoint_dir=checkpoint_store_dir).run([spec])
        assert parallel.result.stats.as_dict() == reference
        cached_engine = ExperimentEngine(
            jobs=1, cache=ResultCache(tmp_path / "cache"),
            checkpoint_dir=checkpoint_store_dir)
        cold, = cached_engine.run([spec])
        warm, = cached_engine.run([spec])
        assert cached_engine.last_run_stats["cache_hits"] \
            == cached_engine.last_run_stats["total"]
        assert cold.result.stats.as_dict() == reference
        assert warm.result.stats.as_dict() == reference


class TestBoundedWarmingSmoke:
    """Bounded functional warming (the O(sampled) fast path) stays sane:
    same order of magnitude and same cross-configuration ordering."""

    def test_bounded_plan_close_to_full_plan(self):
        bounded = dataclasses.replace(FULL_PLAN, functional_warmup=16_000)
        settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                      stats_warmup_fraction=0.0,
                                      sampling=bounded)
        record = run_sampled_workload(WORKLOAD, "indexed-3-fwd+dly", settings)
        full_settings = dataclasses.replace(settings, sampling=FULL_PLAN)
        full_record = run_sampled_workload(WORKLOAD, "indexed-3-fwd+dly",
                                           full_settings)
        bounded_cpi = record.result.sampled.cpi_mean
        full_cpi = full_record.result.sampled.cpi_mean
        assert abs(bounded_cpi - full_cpi) / full_cpi <= 0.10

    def test_sampled_figure4_ordering_preserved(self):
        # The delay predictor must still show its benefit under sampling.
        plan = SamplingPlan(interval_length=2_000, detailed_warmup=1_000,
                            period=8_000, functional_warmup=20_000, seed=0)
        settings = ExperimentSettings(instructions=INSTRUCTIONS,
                                      stats_warmup_fraction=0.0, sampling=plan)
        engine = ExperimentEngine(jobs=1, cache=False)
        records = engine.run([
            JobSpec(WORKLOAD, "indexed-3-fwd", settings),
            JobSpec(WORKLOAD, "indexed-3-fwd+dly", settings),
        ])
        fwd, fwd_dly = (r.result.sampled.cpi_mean for r in records)
        assert fwd_dly <= fwd * 1.02, (fwd, fwd_dly)

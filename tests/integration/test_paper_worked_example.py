"""Executable version of the paper's Figure 3 worked example.

Figure 3 walks one static store (Z), one older static store (Y), and one
static load (W) through two phases:

1. a *training* sequence in which W is not predicted to forward, reads a
   stale value from the cache, is caught by re-execution (flush), and the
   FSP learns the W -> Z dependence from the SPCT; and
2. a *speculative forwarding* sequence in which the FSP/SAT chain predicts
   the SQ entry of Z's new instance, the indexed SQ access finds a matching
   address, and W forwards correctly (re-execution finds no violation).

The test drives the same scenario through the real structures (FSP, SAT,
SQ, SVW filter, memory image) rather than the cycle-level core, making every
intermediate state visible and checkable.
"""

import pytest

from repro.core.predictors import PredictorSuiteConfig, FSPConfig, SATConfig, SVWConfig, DDPConfig
from repro.lsu.policies import IndexedSQPolicy, LoadCommitInfo
from repro.lsu.store_queue import StoreQueue
from repro.memory.image import MemoryImage

PC_STORE_Y = 0x900
PC_STORE_Z = 0x904
PC_LOAD_W = 0x908

ADDR_A = 0x2000
ADDR_B = 0x2008


@pytest.fixture
def setup():
    predictors = PredictorSuiteConfig(
        fsp=FSPConfig(entries=64, assoc=2),
        sat=SATConfig(entries=64),
        ddp=DDPConfig(entries=64, assoc=2),
        svw=SVWConfig(ssbf_entries=256, spct_entries=256),
    )
    policy = IndexedSQPolicy(sq_size=4, use_delay=True, predictors=predictors)
    return policy, StoreQueue(size=4), MemoryImage()


class TestTrainingSequence:
    """Left-hand side of Figure 3: the predictor learns W -> Z."""

    def test_training_sequence(self, setup):
        policy, sq, memory = setup
        ssn_cmt = 16          # some stores have already committed
        ssn_y, ssn_z = 17, 18

        # Time 1: store Z renames (SSN 18, noted in the SAT); load W decodes
        # and finds no forwarding store in the FSP.
        sq.allocate(ssn_y, PC_STORE_Y, seq=0)
        sq.allocate(ssn_z, PC_STORE_Z, seq=1)
        policy.store_renamed(PC_STORE_Y, ssn_y)
        policy.store_renamed(PC_STORE_Z, ssn_z)
        assert policy.sat.lookup(PC_STORE_Z) == ssn_z
        prediction = policy.predict_load(PC_LOAD_W, ssn_ren=ssn_z, ssn_cmt=ssn_cmt)
        assert prediction.fwd_ssn == 0            # FSP[W] is empty

        # Time 2: store Z executes, writing B/6 into the SQ.
        sq.write_execute(ssn_z, ADDR_B, 8, 6)

        # Time 3: store Y commits (value 5 to address A); load W executes.
        # With no prediction it reads the (stale) value 0 from the cache.
        memory.write(ADDR_A, 8, 5)
        policy.store_committed(PC_STORE_Y, ssn_y, ADDR_A, 8)
        sq.release(ssn_y)
        memory.write(ADDR_B, 8, 0)                # architectural B is still 0
        decision = policy.forward(ADDR_B, 8, older_than_ssn=ssn_z,
                                  prediction=prediction, store_queue=sq)
        assert not decision.forwarded
        spec_value = memory.read(ADDR_B, 8)
        assert spec_value == 0

        # Time 4: store Z commits, writing 6 to B and updating the SPCT.
        memory.write(ADDR_B, 8, 6)
        policy.store_committed(PC_STORE_Z, ssn_z, ADDR_B, 8)
        sq.release(ssn_z)

        # Time 5: load W re-executes: 0 != 6, violation; the FSP learns the
        # W -> Z dependence from the SPCT.
        correct_value = memory.read(ADDR_B, 8)
        assert correct_value == 6
        assert policy.needs_reexecution(ADDR_B, 8, prediction.fwd_ssn) is True
        policy.load_committed(LoadCommitInfo(
            pc=PC_LOAD_W, addr=ADDR_B, size=8,
            spec_value=spec_value, correct_value=correct_value,
            forwarded=False, forward_ssn=0, prediction=prediction,
            ssn_at_rename=ssn_z, ssn_cmt=ssn_z, violation=True))
        learned = policy.fsp.lookup(PC_LOAD_W)
        assert len(learned) == 1
        assert learned[0].store_pc == policy.fsp.partial_store_pc(PC_STORE_Z)


class TestSpeculativeForwardingSequence:
    """Right-hand side of Figure 3: W forwards from the predicted SQ entry."""

    def test_forwarding_sequence(self, setup):
        policy, sq, memory = setup
        # Pre-train the FSP as the training sequence would have.
        policy.fsp.insert(PC_LOAD_W, PC_STORE_Z)

        ssn_cmt = 32
        ssn_y, ssn_z = 33, 34

        # Time 1: store Z renames (SSN 34) and is noted in the SAT.
        sq.allocate(ssn_y, PC_STORE_Y, seq=10)
        sq.allocate(ssn_z, PC_STORE_Z, seq=11)
        policy.store_renamed(PC_STORE_Y, ssn_y)
        policy.store_renamed(PC_STORE_Z, ssn_z)

        # Load W decodes/renames: FSP gives Z, SAT gives SSN 34.
        prediction = policy.predict_load(PC_LOAD_W, ssn_ren=ssn_z, ssn_cmt=ssn_cmt)
        assert prediction.fwd_ssn == ssn_z
        assert prediction.predict_forward

        # Time 2: store Z executes, writing A/8 into its SQ entry.
        sq.write_execute(ssn_z, ADDR_A, 8, 8)

        # Time 3: store Y commits (B=4); load W executes, indexes SQ[34 mod 4]
        # and finds a matching address, forwarding the value 8.
        memory.write(ADDR_B, 8, 4)
        policy.store_committed(PC_STORE_Y, ssn_y, ADDR_B, 8)
        sq.release(ssn_y)
        decision = policy.forward(ADDR_A, 8, older_than_ssn=ssn_z,
                                  prediction=prediction, store_queue=sq)
        assert decision.forwarded
        assert decision.value == 8
        assert decision.forward_ssn == ssn_z

        # Time 4: store Z commits, updating the architectural state of A.
        memory.write(ADDR_A, 8, 8)
        policy.store_committed(PC_STORE_Z, ssn_z, ADDR_A, 8)
        sq.release(ssn_z)

        # Time 5 (paper: time 6): load W re-executes; the forwarded value is
        # correct, so it commits without flushing and the dependence is
        # reinforced.
        correct_value = memory.read(ADDR_A, 8)
        assert correct_value == decision.value
        policy.load_committed(LoadCommitInfo(
            pc=PC_LOAD_W, addr=ADDR_A, size=8,
            spec_value=decision.value, correct_value=correct_value,
            forwarded=True, forward_ssn=ssn_z, prediction=prediction,
            ssn_at_rename=ssn_z, ssn_cmt=ssn_z, violation=False))
        assert len(policy.fsp.lookup(PC_LOAD_W)) == 1

    def test_sq_index_is_ssn_mod_size(self, setup):
        """The paper's 'SQ[34 mod 4]' indexed access."""
        policy, sq, _ = setup
        sq.allocate(34, PC_STORE_Z, seq=11)
        sq.write_execute(34, ADDR_A, 8, 8)
        entry = sq.read_indexed(34)
        assert entry is not None and entry.ssn == 34
        assert sq.entries_in_order()[0] is entry

"""Golden bit-identity regression for the detailed hot path.

``tests/golden/hotpath_golden.json`` pins the *exact* merged counter
dictionaries of fixed-seed full-detail and sampled runs, frozen from the
pre-two-plane (PR 4) simulator.  This and future hot-path refactors diff
against those frozen numbers — not merely against themselves — so a
representation change that silently shifts any statistic fails here even if
it is internally self-consistent.

The same runs are additionally executed through the back-compat *object
path* (materialised :class:`~repro.isa.uop.MicroOp` views), which must stay
bit-identical to the encoded fast path.

The full-detail and bounded-sampled goldens are further parametrised over
the detailed-core kernels (``REPRO_KERNEL``: the per-record ``object``
loop, the struct-of-arrays ``vector`` loop, and — when
``tools/build_kernel.py`` has built it — the native ``compiled`` loop):
every kernel must reproduce the frozen counters bit for bit.

Regenerate the goldens ONLY for intentional trace-content or
simulator-semantics changes: ``python tests/golden/generate_goldens.py``
(see that file's docstring).
"""

import json
import tempfile
from pathlib import Path

import pytest

from repro.harness.runner import ExperimentSettings, run_workload
from repro.isa.trace import DynamicTrace
from repro.pipeline.vector import compiled_kernel_available
from repro.sampling.driver import run_sampled_workload
from repro.sampling.plan import SamplingPlan
from repro.workloads.suites import build_workload

GOLDEN_PATH = (Path(__file__).resolve().parent.parent
               / "golden" / "hotpath_golden.json")

#: Every kernel buildable in this environment must hit the same goldens.
KERNELS = ("object", "vector") + (
    ("compiled",) if compiled_kernel_available() else ())

FULL_DETAIL_WORKLOADS = ("vortex", "mesa.m")
FULL_DETAIL_CONFIGS = ("oracle-associative-3", "associative-5-predictive",
                       "indexed-3-fwd+dly")
FULL_DETAIL_INSTRUCTIONS = 20_000   # crosses the 16384-uop segment boundary

SAMPLED_WORKLOAD = "vortex"
SAMPLED_INSTRUCTIONS = 60_000
SAMPLED_CONFIGS = ("oracle-associative-3", "indexed-3-fwd+dly")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _plan():
    return SamplingPlan(interval_length=500, detailed_warmup=300,
                        period=10_000, functional_warmup=2_000, seed=3)


def _stats_dict(stats) -> dict:
    return {name: value for name, value in sorted(stats.as_dict().items())}


class TestFullDetailGoldens:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("workload", FULL_DETAIL_WORKLOADS)
    def test_encoded_path_matches_frozen_counters(self, golden, workload,
                                                  kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        settings = ExperimentSettings(instructions=FULL_DETAIL_INSTRUCTIONS)
        trace = build_workload(workload,
                               instructions=FULL_DETAIL_INSTRUCTIONS, seed=1)
        for config in FULL_DETAIL_CONFIGS:
            record = run_workload(trace, config, settings)
            want = golden["full_detail"][f"{workload}/{config}"]
            assert _stats_dict(record.result.stats) == want["stats"], config
            assert dict(sorted(record.result.extra.items())) == want["extra"], config

    @pytest.mark.parametrize("workload", FULL_DETAIL_WORKLOADS)
    def test_object_path_matches_frozen_counters(self, golden, workload):
        settings = ExperimentSettings(instructions=FULL_DETAIL_INSTRUCTIONS)
        encoded = build_workload(workload,
                                 instructions=FULL_DETAIL_INSTRUCTIONS, seed=1)
        object_trace = DynamicTrace(name=workload, uops=encoded.uops)
        for config in FULL_DETAIL_CONFIGS:
            record = run_workload(object_trace, config, settings)
            want = golden["full_detail"][f"{workload}/{config}"]
            assert _stats_dict(record.result.stats) == want["stats"], config


class TestSampledGoldens:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("config", SAMPLED_CONFIGS)
    def test_bounded_sampled_run_matches_frozen_counters(self, golden, config,
                                                         kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        settings = ExperimentSettings(instructions=SAMPLED_INSTRUCTIONS,
                                      sampling=_plan(), checkpoints=False)
        record = run_sampled_workload(SAMPLED_WORKLOAD, config, settings)
        want = golden["sampled_bounded"][f"{SAMPLED_WORKLOAD}/{config}"]
        sampled = record.result.sampled
        assert _stats_dict(record.result.stats) == want["stats"]
        assert sampled.cpi_mean == want["cpi_mean"]
        assert [m.cycles for m in sampled.intervals] == want["interval_cycles"]
        assert [m.instructions for m in sampled.intervals] \
            == want["interval_instructions"]

    @pytest.mark.parametrize("config", SAMPLED_CONFIGS)
    def test_checkpointed_sampled_run_matches_frozen_counters(self, golden,
                                                              config):
        settings = ExperimentSettings(instructions=SAMPLED_INSTRUCTIONS,
                                      sampling=_plan(), checkpoints=True)
        with tempfile.TemporaryDirectory(prefix="repro-golden-ckpt-") as ckpt:
            record = run_sampled_workload(SAMPLED_WORKLOAD, config, settings,
                                          checkpoint_dir=ckpt)
        want = golden["sampled_checkpointed"][f"{SAMPLED_WORKLOAD}/{config}"]
        sampled = record.result.sampled
        assert _stats_dict(record.result.stats) == want["stats"]
        assert sampled.cpi_mean == want["cpi_mean"]
        assert [m.cycles for m in sampled.intervals] == want["interval_cycles"]


class TestDegenerateMLPGoldens:
    """The MLP degeneracy anchor, checked against the frozen goldens.

    ``mshr_entries=1`` with the non-blocking L2 and prefetcher off is
    *defined* to be the blocking hierarchy (PR 7), so running the golden
    workloads through a :class:`~repro.memory.mlp.NonBlockingHierarchy` in
    that configuration must reproduce the frozen counters bit for bit —
    including the *absence* of every MSHR statistic from the payload.
    """

    @pytest.mark.parametrize("workload", FULL_DETAIL_WORKLOADS)
    def test_degenerate_config_matches_frozen_counters(self, golden, workload):
        from repro.memory.hierarchy import MemoryHierarchyConfig
        from repro.memory.mshr import MLPConfig
        from repro.pipeline.config import CoreConfig

        degenerate = MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False)
        core = CoreConfig(memory=MemoryHierarchyConfig(mlp=degenerate))
        settings = ExperimentSettings(instructions=FULL_DETAIL_INSTRUCTIONS,
                                      core=core)
        trace = build_workload(workload,
                               instructions=FULL_DETAIL_INSTRUCTIONS, seed=1)
        for config in FULL_DETAIL_CONFIGS:
            record = run_workload(trace, config, settings)
            want = golden["full_detail"][f"{workload}/{config}"]
            assert _stats_dict(record.result.stats) == want["stats"], config
            assert dict(sorted(record.result.extra.items())) == want["extra"], config

"""Chaos integration suite: faulted runs stay bit-identical to goldens.

The headline guarantee of PR 6: a sweep executed under injected worker
crashes, hangs, corrupt/truncated store blobs, damaged boundary handoffs,
and write failures produces **exactly** the merged counters frozen in
``tests/golden/hotpath_golden.json`` — recovery is invisible in the
results, visible only in the resilience counters.  Also covered here:
retries-exhausted structured failure (loud, bounded, never a hang),
interrupt-safe pool teardown (no orphaned workers, no leaked ``*.tmp``),
and concurrent multi-process writers on a shared store.

Every scenario is bounded by explicit deadlines (tight
``REPRO_JOB_TIMEOUT``, shrunk boundary waits, subprocess timeouts) so a
supervision regression fails fast instead of hanging CI.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.exec import ExperimentEngine, ExperimentFailure, JobSpec, ResultCache
from repro.exec import resilience
from repro.harness.runner import ExperimentSettings
from repro.sampling.checkpoints import (
    CheckpointStore,
    execute_generation,
    plan_generation,
    shared_key,
    shared_signature,
)
from repro.sampling.driver import expand_sampled_spec
from repro.sampling.plan import SamplingPlan

GOLDEN_PATH = (Path(__file__).resolve().parent.parent
               / "golden" / "hotpath_golden.json")

#: The frozen sampled-checkpointed golden configuration (see
#: tests/integration/test_golden_regression.py and generate_goldens.py).
WORKLOAD = "vortex"
INSTRUCTIONS = 60_000
CONFIGS = ("oracle-associative-3", "indexed-3-fwd+dly")


def _plan():
    return SamplingPlan(interval_length=500, detailed_warmup=300,
                        period=10_000, functional_warmup=2_000, seed=3)


def _settings():
    return ExperimentSettings(instructions=INSTRUCTIONS, sampling=_plan(),
                              checkpoints=True)


def _stats_dict(stats) -> dict:
    return {name: value for name, value in sorted(stats.as_dict().items())}


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(autouse=True)
def _fresh_resilience_state(monkeypatch):
    from repro.exec import cache as cache_module

    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.setattr(resilience, "_PLAN_CACHE", {})
    monkeypatch.setattr(resilience, "_COUNTERS",
                        type(resilience._COUNTERS)())
    monkeypatch.setattr(cache_module, "_DEGRADED_DIRS", set())
    monkeypatch.setattr(cache_module, "_MEMORY_FALLBACK", {})


def _assert_no_orphans():
    for child in multiprocessing.active_children():
        child.join(10.0)
    assert multiprocessing.active_children() == []


def _run_faulted(tmp_path, monkeypatch, fault_plan, *, jobs=2, timeout=None,
                 shards=None):
    """One engine sweep of the golden sampled grid under ``fault_plan``."""
    monkeypatch.setenv("REPRO_FAULT_PLAN", fault_plan)
    if timeout is not None:
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", str(timeout))
    settings = _settings()
    if shards is not None:
        import dataclasses

        settings = dataclasses.replace(settings, checkpoint_shards=shards)
    specs = [JobSpec(WORKLOAD, config, settings) for config in CONFIGS]
    engine = ExperimentEngine(jobs=jobs, cache_dir=tmp_path / "cache",
                              checkpoint_dir=tmp_path / "ckpt")
    records = engine.run(specs)
    return records, engine


def _assert_matches_golden(records, golden):
    for config, record in zip(CONFIGS, records):
        want = golden["sampled_checkpointed"][f"{WORKLOAD}/{config}"]
        assert _stats_dict(record.result.stats) == want["stats"], config
        assert record.result.sampled.cpi_mean == want["cpi_mean"], config
        assert [m.cycles for m in record.result.sampled.intervals] \
            == want["interval_cycles"], config


class TestFaultedRunsMatchGoldens:
    """Each injected fault class recovers to bit-identical golden counters."""

    def test_worker_crash(self, tmp_path, monkeypatch, golden):
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "worker_crash@job:0,seed=1")
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats["worker_crashes"] == 1
        assert engine.last_run_stats["job_retries"] >= 1
        _assert_no_orphans()

    def test_worker_hang_killed_by_deadline(self, tmp_path, monkeypatch,
                                            golden):
        start = time.monotonic()
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "hang@job:3", timeout=15)
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats["job_timeouts"] == 1
        assert time.monotonic() - start < 120.0
        _assert_no_orphans()

    def test_corrupt_blobs(self, tmp_path, monkeypatch, golden):
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "corrupt_blob@p=0.2,seed=11")
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats.get("injected_corrupt_blobs", 0) > 0

    def test_truncated_checkpoint_snapshots(self, tmp_path, monkeypatch,
                                            golden):
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "truncate_blob@p=0.25,seed=4")
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats.get("injected_truncated_blobs", 0) > 0

    def test_write_errors_enospc_style(self, tmp_path, monkeypatch, golden):
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "write_error@p=0.2,seed=6")
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats.get("injected_write_errors", 0) > 0

    def test_damaged_boundary_handoffs_sharded(self, tmp_path, monkeypatch,
                                               golden):
        """Sharded generation with every blob write corrupted: boundary
        handoffs fail stitch validation and every consumer walks back to an
        exact in-process prefix recompute — slower, still bit-identical."""
        from repro.sampling import checkpoints as checkpoints_module

        monkeypatch.setattr(checkpoints_module, "_BOUNDARY_WAIT_SECONDS", 0.5)
        records, engine = _run_faulted(
            tmp_path, monkeypatch, "corrupt_blob@p=1.0,seed=2",
            jobs=2, shards=3)
        _assert_matches_golden(records, golden)
        assert engine.last_run_stats["blobs_quarantined"] > 0

    def test_combined_chaos(self, tmp_path, monkeypatch, golden):
        """Crashes + a hang + corrupt and truncated blobs, all at once —
        the CI chaos job's plan, asserted against the frozen goldens."""
        records, engine = _run_faulted(
            tmp_path, monkeypatch,
            "worker_crash@job:1,hang@job:5,corrupt_blob@p=0.1,"
            "truncate_blob@p=0.1,seed=13",
            timeout=20)
        _assert_matches_golden(records, golden)
        stats = engine.last_run_stats
        assert stats["worker_crashes"] == 1
        assert stats["job_timeouts"] == 1
        _assert_no_orphans()

    def test_faulted_caches_stay_reusable(self, tmp_path, monkeypatch,
                                          golden):
        """A clean run over the stores a faulted run left behind hits the
        cache and still matches the goldens (no poisoned entries)."""
        _run_faulted(tmp_path, monkeypatch, "corrupt_blob@p=0.3,seed=5")
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        monkeypatch.setattr(resilience, "_PLAN_CACHE", {})
        specs = [JobSpec(WORKLOAD, config, _settings()) for config in CONFIGS]
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache",
                                  checkpoint_dir=tmp_path / "ckpt")
        records = engine.run(specs)
        _assert_matches_golden(records, golden)


class TestRetriesExhausted:
    def test_structured_failure_not_a_hang(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker_crash@job:2*99")
        monkeypatch.setenv("REPRO_RETRIES", "1")
        specs = [JobSpec(WORKLOAD, config, _settings()) for config in CONFIGS]
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path / "cache",
                                  checkpoint_dir=tmp_path / "ckpt")
        start = time.monotonic()
        with pytest.raises(ExperimentFailure) as excinfo:
            engine.run(specs)
        assert time.monotonic() - start < 300.0
        report = excinfo.value.report()
        assert len(report) == 1
        assert report[0]["kind"] == "crash"
        assert report[0]["attempts"] == 2
        assert WORKLOAD in report[0]["label"]
        assert engine.last_run_stats["failures"] == report
        _assert_no_orphans()


_INTERRUPT_SCRIPT = textwrap.dedent("""
    import multiprocessing
    import signal
    import sys
    from pathlib import Path

    from repro.exec import ExperimentEngine, JobSpec
    from repro.harness.runner import ExperimentSettings

    cache_dir = Path(sys.argv[1])

    def on_alarm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGALRM, on_alarm)
    settings = ExperimentSettings(instructions=120_000,
                                  stats_warmup_fraction=0.1)
    specs = [JobSpec(w, c, settings)
             for w in ("gzip", "swim", "vortex", "mcf")
             for c in ("indexed-3-fwd", "associative-5-predictive")]
    engine = ExperimentEngine(jobs=2, cache_dir=cache_dir)
    signal.setitimer(signal.ITIMER_REAL, 1.0)
    try:
        engine.run(specs)
        print("COMPLETED-BEFORE-INTERRUPT")
        sys.exit(2)
    except KeyboardInterrupt:
        signal.setitimer(signal.ITIMER_REAL, 0)
        for child in multiprocessing.active_children():
            child.join(10.0)
        if multiprocessing.active_children():
            print("ORPHANED-WORKERS")
            sys.exit(3)
        strays = list(cache_dir.glob("*.tmp"))
        if strays:
            print("LEAKED-TMP", strays)
            sys.exit(4)
        print("CLEAN-TEARDOWN")
""")


class TestInterruptTeardown:
    def test_keyboard_interrupt_leaves_no_orphans_or_tmp(self, tmp_path):
        """Regression for the pool-teardown satellite: SIGINT mid-grid must
        kill every worker and sweep every stranded ``*.tmp`` blob."""
        script = tmp_path / "interrupt_grid.py"
        script.write_text(_INTERRUPT_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve()
                                .parents[2] / "src")
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "cache")],
            capture_output=True, text=True, timeout=300, env=env)
        assert proc.returncode == 0, (proc.stdout, proc.stderr)
        assert "CLEAN-TEARDOWN" in proc.stdout


def _hammer_cache(directory, prefix, count):
    cache = ResultCache(directory)
    for i in range(count):
        cache.put(f"shared-{i % 8}", {"writer": prefix, "i": i})
        cache.put(f"{prefix}-{i}", i)
        cache.get(f"shared-{i % 8}")


def _clear_repeatedly(directory, rounds):
    cache = ResultCache(directory)
    for _ in range(rounds):
        cache.clear()


class TestConcurrentWriters:
    def test_two_processes_never_corrupt_entries(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        writers = [ctx.Process(target=_hammer_cache,
                               args=(tmp_path, f"w{n}", 200))
                   for n in range(2)]
        for p in writers:
            p.start()
        for p in writers:
            p.join(120)
            assert p.exitcode == 0
        cache = ResultCache(tmp_path)
        # Every entry present decodes cleanly (atomic last-writer-wins,
        # no torn frames), exactly once per key — never double-counted.
        entries = sorted(p.stem for p in tmp_path.glob("*.pkl"))
        assert len(entries) == len(set(entries)) == 8 + 2 * 200
        for i in range(8):
            value = cache.get(f"shared-{i}")
            assert value is not None and value["writer"] in ("w0", "w1")
        for n in range(2):
            for i in range(200):
                assert cache.get(f"w{n}-{i}") == i
        assert resilience.counters_snapshot().get("blobs_quarantined", 0) == 0

    def test_clear_racing_a_writer_is_safe(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(target=_hammer_cache,
                             args=(tmp_path, "w", 400))
        clearer = ctx.Process(target=_clear_repeatedly, args=(tmp_path, 40))
        writer.start()
        clearer.start()
        for p in (writer, clearer):
            p.join(120)
            assert p.exitcode == 0
        # Whatever survived the races decodes cleanly; nothing crashed and
        # nothing was quarantined in this (reading) process.
        cache = ResultCache(tmp_path)
        for path in tmp_path.glob("*.pkl"):
            cache.get(path.stem)
        assert resilience.counters_snapshot().get("blobs_quarantined", 0) == 0

    def test_concurrent_checkpoint_generation_converges(self, tmp_path,
                                                        monkeypatch):
        """Two processes generating the same checkpoint group: last writer
        wins per snapshot, every snapshot valid and identical to serial."""
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        import dataclasses

        plan = SamplingPlan(interval_length=500, detailed_warmup=500,
                            period=5_000, functional_warmup=1_000, seed=0)
        settings = ExperimentSettings(instructions=20_000,
                                      stats_warmup_fraction=0.0,
                                      sampling=plan, checkpoints=True)
        settings = dataclasses.replace(settings, checkpoint_shards=1)

        def generate(directory):
            store = CheckpointStore(directory)
            spec = JobSpec(WORKLOAD, "indexed-3-fwd+dly", settings)
            intervals = expand_sampled_spec(
                spec, checkpointed=True, checkpoint_dir=str(store.directory))
            requests, _ = plan_generation(store, intervals)
            execute_generation(store, requests, jobs=1)

        ctx = multiprocessing.get_context("fork")
        racers = [ctx.Process(target=generate, args=(tmp_path / "shared",))
                  for _ in range(2)]
        for p in racers:
            p.start()
        for p in racers:
            p.join(300)
            assert p.exitcode == 0

        generate(tmp_path / "reference")
        shared_store = CheckpointStore(tmp_path / "shared")
        reference = CheckpointStore(tmp_path / "reference")
        count = plan.num_intervals(settings.instructions)
        assert count > 0
        for index in range(count):
            key = shared_key(WORKLOAD, settings, index)
            ours = shared_store.get(key)
            theirs = reference.get(key)
            assert ours is not None, index
            assert shared_signature(ours) == shared_signature(theirs), index

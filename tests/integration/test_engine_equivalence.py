"""Figure 4 is bit-identical across serial, parallel, and cached execution.

This is the contract the experiment engine exists to uphold: fanning the
``(workload, configuration)`` grid over worker processes, or re-running it
against a warm on-disk cache, must reproduce *exactly* the statistics of a
plain serial run — per-workload cycle counts, IPCs, relative times, and the
geometric means built from them.
"""

import pytest

from repro.exec import ExperimentEngine, ResultCache
from repro.harness.figure4 import run_figure4
from repro.harness.runner import ExperimentSettings

WORKLOADS = ["gzip", "mesa.m", "swim", "adpcm.d"]
SETTINGS = ExperimentSettings(instructions=1500, stats_warmup_fraction=0.2)


def _snapshot(result):
    """Everything Figure 4 reports, in comparable form."""
    return {
        row.name: (row.baseline_cycles, row.baseline_ipc,
                   tuple(sorted(row.relative_time.items())))
        for row in result.rows
    }


@pytest.fixture(scope="module")
def serial_result():
    engine = ExperimentEngine(jobs=1, cache=False)
    result = run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine)
    assert engine.last_run_stats["simulated"] == len(WORKLOADS) * 6
    return result


class TestEngineEquivalence:
    def test_parallel_identical(self, serial_result):
        engine = ExperimentEngine(jobs=2, cache=False)
        parallel = run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine)
        assert engine.last_run_stats["workers"] == 2
        assert _snapshot(parallel) == _snapshot(serial_result)

    def test_cached_rerun_identical(self, serial_result, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        cold = run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine)
        assert engine.last_run_stats["cache_hits"] == 0
        warm = run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine)
        assert engine.last_run_stats["cache_hits"] == len(WORKLOADS) * 6
        assert engine.last_run_stats["simulated"] == 0
        assert _snapshot(cold) == _snapshot(serial_result)
        assert _snapshot(warm) == _snapshot(serial_result)

    def test_cached_partial_rerun_only_simulates_new_cells(self, tmp_path):
        """Changing the sweep (adding one configuration) only simulates the
        new cells; everything else is served from the cache."""
        engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
        run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine,
                    configs=("associative-3",))
        run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine,
                    configs=("associative-3", "indexed-3-fwd"))
        assert engine.last_run_stats["cache_hits"] == len(WORKLOADS) * 2
        assert engine.last_run_stats["simulated"] == len(WORKLOADS)

    def test_gmeans_identical(self, serial_result, tmp_path):
        engine = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path))
        other = run_figure4(workloads=WORKLOADS, settings=SETTINGS, engine=engine)
        assert other.gmeans() == serial_result.gmeans()

"""Integration tests of the cycle-level core across store-queue policies."""

import pytest

from repro import simulate
from repro.core.predictors import PredictorSuiteConfig, FSPConfig, SATConfig, DDPConfig, SVWConfig
from repro.isa.trace import DynamicTrace
from repro.isa.uop import make_alu, make_branch, make_load, make_store
from repro.lsu.policies import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    OracleAssociativePolicy,
)
from repro.pipeline.config import CoreConfig, small_test_config
from repro.pipeline.core import OutOfOrderCore
from repro.workloads.kernels import NotMostRecentKernel, StackSpillKernel, StreamCopyKernel
from repro.workloads.program import ProgramBuilder
from repro.workloads.suites import build_workload


def _small_predictors() -> PredictorSuiteConfig:
    return PredictorSuiteConfig(
        fsp=FSPConfig(entries=256, assoc=2),
        sat=SATConfig(entries=128),
        ddp=DDPConfig(entries=256, assoc=2),
        svw=SVWConfig(ssbf_entries=1024, spct_entries=1024),
    )


def _policies(sq_size=64):
    predictors = _small_predictors()
    return {
        "oracle": OracleAssociativePolicy(sq_size=sq_size, predictors=predictors),
        "associative-3": AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=3,
                                                    predictors=_small_predictors()),
        "associative-5": AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=5,
                                                    predictors=_small_predictors()),
        "indexed-fwd": IndexedSQPolicy(sq_size=sq_size, use_delay=False,
                                       predictors=_small_predictors()),
        "indexed-fwd+dly": IndexedSQPolicy(sq_size=sq_size, use_delay=True,
                                           predictors=_small_predictors()),
    }


def _kernel_trace(kernel_cls, iterations=400, name="kernel", **kwargs) -> DynamicTrace:
    builder = ProgramBuilder(name, seed=11)
    kernel = kernel_cls(builder, **kwargs)
    for _ in range(iterations):
        kernel.emit()
    return builder.finish()


class TestBasicExecution:
    def test_trivial_trace_commits_everything(self):
        uops = [make_alu(0x400 + 4 * i, dest=(i % 8) + 1) for i in range(100)]
        trace = DynamicTrace(name="alu", uops=uops)
        result = simulate(trace, OracleAssociativePolicy())
        assert result.stats.committed == 100
        assert result.stats.cycles > 0
        assert result.stats.flushes == 0

    def test_store_then_load_forwards(self):
        uops = []
        for i in range(64):
            pc = 0x400 + 16 * 0   # stable static PCs
            uops.append(make_store(0x400, addr=0x8000, value=i + 1, size=8, srcs=(1,)))
            uops.append(make_alu(0x404, dest=1, srcs=(1,)))
            uops.append(make_load(0x408, dest=2, addr=0x8000, size=8))
            uops.append(make_branch(0x40C, taken=True, target=0x400))
        trace = DynamicTrace(name="fwd", uops=uops)
        result = simulate(trace, OracleAssociativePolicy())
        assert result.stats.committed == len(uops)
        assert result.stats.loads_forwarded > 0
        assert result.stats.ordering_violations == 0

    def test_ipc_bounded_by_width(self):
        trace = build_workload("gzip", instructions=4000)
        result = simulate(trace, OracleAssociativePolicy())
        assert 0.0 < result.stats.ipc <= 8.0

    def test_dependent_chain_serialises(self):
        uops = [make_alu(0x400, dest=1, srcs=(1,)) for _ in range(200)]
        trace = DynamicTrace(name="chain", uops=uops)
        result = simulate(trace, OracleAssociativePolicy())
        # A fully serial single-cycle chain cannot exceed IPC 1.
        assert result.stats.ipc <= 1.05

    def test_small_config_also_runs(self):
        trace = build_workload("gzip", instructions=2000)
        policy = IndexedSQPolicy(sq_size=8, use_delay=True, predictors=_small_predictors())
        core = OutOfOrderCore(small_test_config(), policy)
        result = core.run(trace)
        assert result.stats.committed == 2000

    def test_stats_warmup_excludes_prefix(self):
        trace = build_workload("gzip", instructions=4000)
        full = simulate(trace, OracleAssociativePolicy())
        core = OutOfOrderCore(CoreConfig(), OracleAssociativePolicy())
        warmed = core.run(trace, stats_warmup_fraction=0.5)
        # The warm-up boundary snaps to a commit-group boundary (up to
        # commit_width instructions of slack).
        assert abs(warmed.stats.committed - 2000) < core.config.commit_width
        assert warmed.stats.cycles < full.stats.cycles

    def test_invalid_warmup_fraction(self):
        trace = build_workload("gzip", instructions=500)
        core = OutOfOrderCore(CoreConfig(), OracleAssociativePolicy())
        with pytest.raises(ValueError):
            core.run(trace, stats_warmup_fraction=1.0)


class TestCorrectnessInvariants:
    """Every policy must produce architecturally identical results."""

    @pytest.mark.parametrize("workload", ["vortex", "mesa.t", "gsm.e", "swim"])
    def test_all_policies_commit_all_instructions(self, workload):
        trace = build_workload(workload, instructions=3000)
        for name, policy in _policies().items():
            result = simulate(trace, policy)
            assert result.stats.committed == 3000, name

    @pytest.mark.parametrize("workload", ["vortex", "mesa.t"])
    def test_final_memory_state_identical_across_policies(self, workload):
        trace = build_workload(workload, instructions=3000)
        images = {}
        for name, policy in _policies().items():
            core = OutOfOrderCore(CoreConfig(), policy)
            core.run(trace)
            footprint = sorted({u.mem.addr for u in trace if u.is_store})[:200]
            images[name] = [core.memory.read(addr, 1) for addr in footprint]
        reference = images.pop("oracle")
        for name, image in images.items():
            assert image == reference, name

    def test_oracle_scheduling_has_no_violations(self):
        for workload in ("vortex", "mesa.t", "eon.c"):
            trace = build_workload(workload, instructions=3000)
            result = simulate(trace, OracleAssociativePolicy(predictors=_small_predictors()))
            assert result.stats.ordering_violations == 0, workload

    def test_load_store_counts_match_trace(self):
        trace = build_workload("gzip", instructions=3000)
        result = simulate(trace, IndexedSQPolicy(predictors=_small_predictors()))
        assert result.stats.committed_loads == trace.stats.loads
        assert result.stats.committed_stores == trace.stats.stores

    def test_svw_filter_never_misses_a_violation(self):
        """The simulator asserts internally that no violation escapes the SVW
        filter; a run completing is the check."""
        trace = build_workload("mesa.t", instructions=4000)
        result = simulate(trace, IndexedSQPolicy(use_delay=False,
                                                 predictors=_small_predictors()))
        assert result.stats.committed == 4000


class TestForwardingBehaviour:
    def test_stack_spill_forwards_heavily(self):
        trace = _kernel_trace(StackSpillKernel, iterations=300, slots=4)
        result = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                 predictors=_small_predictors()))
        assert result.stats.forwarding_rate > 0.5
        # After FSP warm-up nearly all of those loads forward through the
        # predicted SQ entry.
        assert result.stats.loads_forwarded > 0.5 * result.stats.loads_should_forward

    def test_stream_copy_never_forwards(self):
        trace = _kernel_trace(StreamCopyKernel, iterations=400, working_set_bytes=8192)
        result = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                 predictors=_small_predictors()))
        assert result.stats.loads_forwarded == 0
        assert result.stats.mis_forwardings == 0
        assert result.stats.loads_delayed == 0

    def test_not_most_recent_without_delay_flushes(self):
        trace = _kernel_trace(NotMostRecentKernel, iterations=500, lag=2)
        no_delay = simulate(trace, IndexedSQPolicy(use_delay=False,
                                                   predictors=_small_predictors()))
        assert no_delay.stats.mis_forwardings > 0

    def test_delay_prediction_reduces_flushes(self):
        trace = _kernel_trace(NotMostRecentKernel, iterations=500, lag=2)
        no_delay = simulate(trace, IndexedSQPolicy(use_delay=False,
                                                   predictors=_small_predictors()))
        with_delay = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                     predictors=_small_predictors()))
        assert with_delay.stats.mis_forwardings < no_delay.stats.mis_forwardings
        assert with_delay.stats.loads_delayed > 0

    def test_associative_sq_handles_not_most_recent_without_flushing(self):
        """The associative SQ can perform not-most-recent forwarding
        (Section 4.4), so it should see (almost) no violations here."""
        trace = _kernel_trace(NotMostRecentKernel, iterations=500, lag=2)
        result = simulate(trace, AssociativeStoreSetsPolicy(predictors=_small_predictors()))
        assert result.stats.ordering_violations <= 3

    def test_mis_forwarding_rate_is_low_with_delay(self):
        for workload in ("vortex", "mesa.m"):
            trace = build_workload(workload, instructions=4000)
            result = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                     predictors=_small_predictors()))
            assert result.stats.mis_forwardings_per_1000_loads < 20.0


class TestRelativePerformance:
    """Qualitative Figure 4 relationships on a couple of workloads."""

    def test_indexed_with_delay_close_to_oracle(self):
        trace = build_workload("vortex", instructions=6000)
        oracle = simulate(trace, OracleAssociativePolicy(predictors=_small_predictors()))
        indexed = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                  predictors=_small_predictors()))
        relative = indexed.stats.cycles / oracle.stats.cycles
        assert relative < 1.25

    def test_delay_helps_pathological_workload(self):
        trace = build_workload("mesa.t", instructions=6000)
        oracle = simulate(trace, OracleAssociativePolicy(predictors=_small_predictors()))
        no_delay = simulate(trace, IndexedSQPolicy(use_delay=False,
                                                   predictors=_small_predictors()))
        with_delay = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                     predictors=_small_predictors()))
        assert with_delay.stats.cycles < no_delay.stats.cycles
        assert with_delay.stats.cycles >= 0.9 * oracle.stats.cycles

    def test_zero_forwarding_workload_unaffected_by_sq_design(self):
        trace = build_workload("adpcm.d", instructions=4000)
        oracle = simulate(trace, OracleAssociativePolicy(predictors=_small_predictors()))
        indexed = simulate(trace, IndexedSQPolicy(use_delay=True,
                                                  predictors=_small_predictors()))
        assert indexed.stats.cycles == pytest.approx(oracle.stats.cycles, rel=0.02)

"""Backend equivalence: serial ≡ supervised-pool ≡ local-cluster, vs goldens.

The execution backend is a pure scheduling choice, so every backend must
reproduce the **frozen** golden counters (``tests/golden/hotpath_golden.json``)
bit for bit — not merely agree with itself — across:

* cold-cache engine runs (every spec simulated through the backend),
* warm-cache engine runs (every spec served from the store),
* checkpointed sampled runs (generation sharded through the same seam), and
* a chaos leg (``REPRO_FAULT_PLAN`` crash + blob corruption through the
  backend's own workers and stores).

A scheduling bug that reorders, drops, duplicates, or cross-wires a single
record fails here against numbers no backend can influence.
"""

import json
from pathlib import Path

import pytest

from repro.exec import ExperimentEngine, JobSpec
from repro.harness.runner import ExperimentSettings
from repro.sampling.plan import SamplingPlan

GOLDEN_PATH = (Path(__file__).resolve().parent.parent
               / "golden" / "hotpath_golden.json")

BACKENDS = ("serial", "supervised-pool", "local-cluster")

FULL_DETAIL_WORKLOADS = ("vortex", "mesa.m")
FULL_DETAIL_CONFIGS = ("oracle-associative-3", "associative-5-predictive",
                       "indexed-3-fwd+dly")
FULL_DETAIL_INSTRUCTIONS = 20_000

SAMPLED_WORKLOAD = "vortex"
SAMPLED_CONFIG = "indexed-3-fwd+dly"
SAMPLED_INSTRUCTIONS = 60_000

#: Deterministic chaos through the seam: job 1's first attempt dies in a
#: worker, and ~30% of store blobs are corrupted on write (caught by the
#: checksum frame, quarantined, recomputed).
CHAOS_PLAN = "worker_crash@job:1,corrupt_blob@p=0.3,seed=7"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _full_detail_specs():
    settings = ExperimentSettings(instructions=FULL_DETAIL_INSTRUCTIONS)
    return [JobSpec(workload, config, settings)
            for workload in FULL_DETAIL_WORKLOADS
            for config in FULL_DETAIL_CONFIGS]


def _stats_dict(stats) -> dict:
    return {name: value for name, value in sorted(stats.as_dict().items())}


def _assert_full_detail_matches_golden(records, golden):
    for spec_record in records:
        want = golden["full_detail"][
            f"{spec_record.workload}/{spec_record.config_name}"]
        key = f"{spec_record.workload}/{spec_record.config_name}"
        assert _stats_dict(spec_record.result.stats) == want["stats"], key
        assert dict(sorted(spec_record.result.extra.items())) \
            == want["extra"], key


@pytest.mark.parametrize("backend", BACKENDS)
class TestColdWarmEquivalence:
    def test_cold_then_warm_match_frozen_counters(self, golden, tmp_path,
                                                  monkeypatch, backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path / "cache")

        cold = engine.run(_full_detail_specs())
        assert engine.last_run_stats["backend"] == backend
        assert engine.last_run_stats["simulated"] == len(cold)
        _assert_full_detail_matches_golden(cold, golden)

        warm = engine.run(_full_detail_specs())
        assert engine.last_run_stats["cache_hits"] == len(warm)
        assert engine.last_run_stats["simulated"] == 0
        _assert_full_detail_matches_golden(warm, golden)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointedSampledEquivalence:
    def test_sharded_generation_matches_frozen_counters(self, golden, tmp_path,
                                                        monkeypatch, backend):
        """Checkpoint generation *and* the interval fan-out both run
        through the forced backend; the merged record must equal the
        frozen single-pass numbers."""
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_CHECKPOINT_SHARDS", "3")
        plan = SamplingPlan(interval_length=500, detailed_warmup=300,
                            period=10_000, functional_warmup=2_000, seed=3)
        settings = ExperimentSettings(instructions=SAMPLED_INSTRUCTIONS,
                                      sampling=plan, checkpoints=True)
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path / "cache",
                                  checkpoint_dir=tmp_path / "ckpt")
        record = engine.run(
            [JobSpec(SAMPLED_WORKLOAD, SAMPLED_CONFIG, settings)])[0]
        assert engine.last_run_stats["backend"] == backend
        assert engine.last_run_stats["checkpoint_generated"] == 1
        want = golden["sampled_checkpointed"][
            f"{SAMPLED_WORKLOAD}/{SAMPLED_CONFIG}"]
        sampled = record.result.sampled
        assert _stats_dict(record.result.stats) == want["stats"]
        assert sampled.cpi_mean == want["cpi_mean"]
        assert [m.cycles for m in sampled.intervals] == want["interval_cycles"]


@pytest.mark.parametrize("backend", ("supervised-pool", "local-cluster"))
class TestChaosEquivalence:
    def test_faulted_run_matches_frozen_counters(self, golden, tmp_path,
                                                 monkeypatch, backend):
        """Crash-and-corruption chaos through the seam stays bit-identical:
        retries and quarantine-and-recompute are invisible in the records,
        visible only in the resilience counters."""
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_FAULT_PLAN", CHAOS_PLAN)
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path / "cache")
        records = engine.run(_full_detail_specs())
        _assert_full_detail_matches_golden(records, golden)
        stats = engine.last_run_stats
        assert stats["backend"] == backend
        assert stats.get("worker_crashes", 0) >= 1  # the chaos actually bit
        assert stats.get("job_retries", 0) >= 1

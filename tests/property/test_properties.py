"""Property-based tests (hypothesis) on the core data structures and the
end-to-end simulator invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro import simulate
from repro.core.predictors import PredictorSuiteConfig, FSPConfig, SATConfig, DDPConfig, SVWConfig
from repro.core.ssn import SSNAllocator, sq_index
from repro.core.svw import SVWFilter
from repro.isa.trace import DynamicTrace
from repro.isa.uop import make_alu, make_branch, make_load, make_store
from repro.lsu.policies import IndexedSQPolicy, OracleAssociativePolicy
from repro.lsu.store_queue import StoreQueue
from repro.memory.cache import Cache, CacheConfig
from repro.memory.image import MemoryImage
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore

# ---------------------------------------------------------------------------
# Memory image: matches a reference dict-of-bytes model.
# ---------------------------------------------------------------------------

_write_op = st.tuples(
    st.integers(min_value=0, max_value=255),     # offset within a small region
    st.sampled_from([1, 2, 4, 8]),               # size
    st.integers(min_value=0),                    # raw value (masked to size)
)


@given(st.lists(_write_op, max_size=60))
def test_memory_image_matches_reference_model(operations):
    image = MemoryImage()
    reference = {}
    base = 0x7000
    for offset, size, raw in operations:
        value = raw & ((1 << (8 * size)) - 1)
        image.write(base + offset, size, value)
        for i in range(size):
            reference[base + offset + i] = (value >> (8 * i)) & 0xFF
    for addr, expected in reference.items():
        assert image.read_byte(addr) == expected
    # Reads reassemble bytes little-endian.
    for offset, size, _ in operations:
        addr = base + offset
        expected = 0
        for i in range(size):
            expected |= image.read_byte(addr + i) << (8 * i)
        assert image.read(addr, size) == expected


# ---------------------------------------------------------------------------
# Cache: never exceeds capacity, hits only lines previously accessed.
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=200))
def test_cache_hit_implies_previous_access_to_line(addresses):
    cache = Cache(CacheConfig(name="p", size_bytes=1024, assoc=2, line_bytes=64, latency=1))
    seen_lines = set()
    for addr in addresses:
        hit = cache.access(addr)
        line = addr >> 6
        if hit:
            assert line in seen_lines
        seen_lines.add(line)
    assert cache.stats.hits + cache.stats.misses == len(addresses)


# ---------------------------------------------------------------------------
# SSN allocator and SQ indexing.
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from([8, 16, 32, 64, 128, 256]))
def test_sq_index_in_range_and_periodic(ssn, sq_size):
    index = sq_index(ssn, sq_size)
    assert 0 <= index < sq_size
    assert sq_index(ssn + sq_size, sq_size) == index


@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_ssn_allocator_commit_never_passes_rename(operations):
    alloc = SSNAllocator()
    pending = []
    for do_allocate in operations:
        if do_allocate or not pending:
            pending.append(alloc.allocate())
        else:
            alloc.commit(pending.pop(0))
        assert alloc.ssn_commit <= alloc.ssn_rename
        assert alloc.inflight_count() == len(pending)


# ---------------------------------------------------------------------------
# Store queue: associative search agrees with a reference model.
# ---------------------------------------------------------------------------

_store_spec = st.tuples(
    st.integers(min_value=0, max_value=15),      # 8-byte slot within a region
    st.integers(min_value=0, max_value=2 ** 32),
)


@given(st.lists(_store_spec, min_size=1, max_size=32),
       st.integers(min_value=0, max_value=15),
       st.sampled_from([1, 2, 4, 8]))
def test_associative_search_matches_reference(stores, load_slot, load_size):
    sq = StoreQueue(size=64)
    base = 0x9000
    executed = []
    for i, (slot, value) in enumerate(stores):
        ssn = i + 1
        sq.allocate(ssn, pc=0x400 + 4 * i, seq=i)
        sq.write_execute(ssn, base + 8 * slot, 8, value & 0xFFFF_FFFF_FFFF_FFFF)
        executed.append((ssn, base + 8 * slot))
    load_addr = base + 8 * load_slot
    result = sq.associative_search(load_addr, load_size, before_ssn=len(stores))
    expected = None
    for ssn, addr in executed:
        if addr <= load_addr and load_addr + load_size <= addr + 8:
            expected = ssn
    if expected is None:
        assert result is None
    else:
        assert result is not None and result.ssn == expected


@given(st.lists(_store_spec, min_size=1, max_size=32))
def test_indexed_read_returns_slot_occupant(stores):
    sq = StoreQueue(size=8)
    kept = {}
    for i, (slot, value) in enumerate(stores[:8]):
        ssn = i + 1
        sq.allocate(ssn, pc=0x400, seq=i)
        kept[sq_index(ssn, 8)] = ssn
    for probe in range(1, 9):
        entry = sq.read_indexed(probe)
        slot = sq_index(probe, 8)
        if slot in kept:
            assert entry is not None and entry.ssn == kept[slot]
        else:
            assert entry is None


# ---------------------------------------------------------------------------
# SVW filter conservativeness: aliasing may add re-executions but can never
# hide a store that makes the load vulnerable.
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.sampled_from([1, 2, 4, 8])), min_size=1, max_size=64),
       st.integers(min_value=0, max_value=63),
       st.sampled_from([1, 2, 4, 8]),
       st.integers(min_value=0, max_value=64))
def test_ssbf_is_conservative(stores, load_slot, load_size, load_svw_ssn):
    svw = SVWFilter(SVWConfig(ssbf_entries=64, spct_entries=64))
    reference = {}
    base = 0xA000
    for i, (slot, size) in enumerate(stores):
        ssn = i + 1
        addr = base + slot
        svw.store_committed(addr, size, ssn, store_pc=0x400 + 4 * i)
        for b in range(size):
            reference[addr + b] = ssn
    load_addr = base + load_slot
    true_youngest = max((reference.get(load_addr + b, 0) for b in range(load_size)), default=0)
    filter_says = svw.needs_reexecution(load_addr, load_size, load_svw_ssn)
    if true_youngest > load_svw_ssn:
        assert filter_says, "SVW filter must never miss a vulnerable load"


# ---------------------------------------------------------------------------
# FSP/SAT chained prediction never names a store younger than SSNren.
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=30),
                          st.integers(min_value=0, max_value=30)), max_size=60))
def test_fsp_sat_prediction_bounded_by_rename_ssn(events):
    predictors = PredictorSuiteConfig(
        fsp=FSPConfig(entries=64, assoc=2), sat=SATConfig(entries=64),
        ddp=DDPConfig(entries=64, assoc=2),
        svw=SVWConfig(ssbf_entries=256, spct_entries=256))
    policy = IndexedSQPolicy(sq_size=64, predictors=predictors)
    ssn = 0
    for load_sel, store_sel in events:
        store_pc = 0x500 + 4 * store_sel
        load_pc = 0x100 + 4 * load_sel
        ssn += 1
        policy.store_renamed(store_pc, ssn)
        policy.fsp.insert(load_pc, store_pc)
        prediction = policy.predict_load(load_pc, ssn_ren=ssn, ssn_cmt=0)
        assert prediction.fwd_ssn <= ssn
        assert prediction.dly_ssn <= ssn


# ---------------------------------------------------------------------------
# End-to-end simulator properties on random small traces.
# ---------------------------------------------------------------------------

def _random_trace(draw_ops):
    """Build a well-formed trace from a list of (kind, slot, value) tuples."""
    uops = []
    base = 0xB000
    for kind, slot, value in draw_ops:
        addr = base + 8 * slot
        if kind == 0:
            uops.append(make_store(0x400 + 4 * (slot % 16), addr=addr,
                                   value=value & 0xFFFF_FFFF, size=4, srcs=(1,)))
        elif kind == 1:
            uops.append(make_load(0x500 + 4 * (slot % 16), dest=(slot % 8) + 1, addr=addr, size=4))
        elif kind == 2:
            uops.append(make_alu(0x600 + 4 * (slot % 16), dest=(slot % 8) + 1,
                                 srcs=((value % 8) + 1,)))
        else:
            uops.append(make_branch(0x700 + 4 * (slot % 16), taken=bool(value % 2),
                                    target=0x700))
    return DynamicTrace(name="random", uops=uops)


_trace_op = st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=15),
                      st.integers(min_value=0, max_value=1000))


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_trace_op, min_size=10, max_size=250))
def test_simulation_commits_every_instruction(ops):
    trace = _random_trace(ops)
    predictors = PredictorSuiteConfig(
        fsp=FSPConfig(entries=64, assoc=2), sat=SATConfig(entries=64),
        ddp=DDPConfig(entries=64, assoc=2),
        svw=SVWConfig(ssbf_entries=256, spct_entries=256))
    result = simulate(trace, IndexedSQPolicy(sq_size=16, use_delay=True, predictors=predictors))
    assert result.stats.committed == len(trace)
    assert result.stats.committed_loads == trace.stats.loads
    assert result.stats.committed_stores == trace.stats.stores
    assert result.stats.cycles >= len(trace) / 8


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_trace_op, min_size=10, max_size=200))
def test_final_memory_state_matches_program_order_semantics(ops):
    """After simulation, memory equals the result of executing all stores in
    program order, regardless of the speculation that happened in between."""
    trace = _random_trace(ops)
    core = OutOfOrderCore(CoreConfig(), OracleAssociativePolicy())
    core.run(trace)
    reference = MemoryImage()
    for uop in trace:
        if uop.is_store:
            reference.write(uop.mem.addr, uop.mem.size, uop.mem.value)
    for uop in trace:
        if uop.is_memory:
            assert core.memory.read(uop.mem.addr, 8) == reference.read(uop.mem.addr, 8)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_trace_op, min_size=20, max_size=200))
def test_indexed_and_oracle_agree_on_architectural_state(ops):
    trace = _random_trace(ops)
    predictors = PredictorSuiteConfig(
        fsp=FSPConfig(entries=64, assoc=2), sat=SATConfig(entries=64),
        ddp=DDPConfig(entries=64, assoc=2),
        svw=SVWConfig(ssbf_entries=256, spct_entries=256))
    oracle_core = OutOfOrderCore(CoreConfig(), OracleAssociativePolicy())
    oracle_core.run(trace)
    indexed_core = OutOfOrderCore(CoreConfig(),
                                  IndexedSQPolicy(sq_size=16, predictors=predictors))
    indexed_core.run(trace)
    addrs = sorted({u.mem.addr for u in trace if u.is_store})
    for addr in addrs:
        assert oracle_core.memory.read(addr, 4) == indexed_core.memory.read(addr, 4)

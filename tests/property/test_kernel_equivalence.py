"""Seeded-random kernel-equivalence properties.

The kernel seam's whole contract is one sentence — every detailed-core
kernel is bit-identical on every workload — and these properties attack it
with randomized inputs instead of the golden suite's fixed cells: random
``(workload, trace seed, trace length)`` triples crossed with every SQ
policy family, MLP/MSHR hierarchy configurations, and warm-up splits.  For
each draw, the ``object`` and ``vector`` kernels (plus ``compiled`` when
``tools/build_kernel.py`` has built it) must agree on the *complete*
statistics dictionary and the derived ``extra`` metrics.

A second property checks the state hand-off contract the sampling
subsystem depends on: exporting a vector core's long-lived state mid-way
through a workload and importing it into a fresh core of *either* kernel
continues to the same statistics — checkpoints and functional warming ride
any kernel transparently.
"""

import dataclasses
import os

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.harness.runner import ExperimentSettings, make_policy
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.mshr import MLPConfig
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.vector import VectorCore, compiled_kernel_available
from repro.workloads.suites import build_workload

KERNEL_CLASSES = [OutOfOrderCore, VectorCore]
if compiled_kernel_available():  # pragma: no cover - toolchain-dependent
    from repro.pipeline.vector import CompiledCore

    KERNEL_CLASSES.append(CompiledCore)

#: A spread of trace generators: SPEC-proxy and MediaBench-proxy, memory-
#: and branch-heavy alike (each name seeds a different generator mix).
WORKLOADS = ("vortex", "gzip", "mesa.m", "gsm.e", "epic.d", "twolf")

#: Every SQ policy family the paper models.
CONFIGS = ("oracle-associative-3", "associative-3", "associative-5-optimistic",
           "associative-5-predictive", "indexed-3-fwd", "indexed-3-fwd+dly")

#: Hierarchy variants: blocking baseline, modest MSHR file, single-entry
#: degenerate (defined equal to blocking), and a wide non-blocking L2.
MLP_VARIANTS = (
    None,
    MLPConfig(enabled=True, mshr_entries=8),
    MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False),
    MLPConfig(enabled=True, mshr_entries=16),
)


def _core_config(mlp):
    if mlp is None:
        return CoreConfig()
    return CoreConfig(memory=MemoryHierarchyConfig(mlp=mlp))


def _signature(result):
    return (dict(sorted(result.stats.as_dict().items())),
            dict(sorted(result.extra.items())))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    workload=st.sampled_from(WORKLOADS),
    config_name=st.sampled_from(CONFIGS),
    mlp=st.sampled_from(MLP_VARIANTS),
    trace_seed=st.integers(min_value=1, max_value=6),
    instructions=st.sampled_from([700, 1100, 1600]),
    warmup=st.sampled_from([0.0, 0.1, 0.3]),
)
def test_kernels_bit_identical_on_random_draws(workload, config_name, mlp,
                                               trace_seed, instructions,
                                               warmup):
    trace = build_workload(workload, instructions=instructions,
                           seed=trace_seed)
    core_config = _core_config(mlp)
    signatures = {}
    for cls in KERNEL_CLASSES:
        core = cls(core_config, make_policy(config_name))
        result = core.run(trace, stats_warmup_fraction=warmup)
        signatures[cls.kernel_name] = _signature(result)
    reference = signatures["object"]
    for name, signature in signatures.items():
        assert signature == reference, \
            f"{name} kernel diverged on {workload}/{config_name}"


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    workload=st.sampled_from(WORKLOADS),
    config_name=st.sampled_from(("indexed-3-fwd+dly",
                                 "associative-5-predictive")),
    trace_seed=st.integers(min_value=1, max_value=4),
)
def test_vector_state_roundtrip_matches_object(workload, config_name,
                                               trace_seed):
    """Export mid-workload vector state, import into fresh cores of both
    kernels: the continued runs must match the object kernel doing the
    same hand-off — the FunctionalState bundle is kernel-agnostic."""
    first = build_workload(workload, instructions=900, seed=trace_seed)
    second = build_workload(workload, instructions=900, seed=trace_seed + 50)

    def handoff(first_cls, second_cls):
        warm = first_cls(CoreConfig(), make_policy(config_name))
        warm.run(first)
        state = warm.export_state()
        cont = second_cls(CoreConfig(), make_policy(config_name))
        cont.import_state(state)
        # warm_memory=False: the imported hierarchy IS the warm state.
        return _signature(cont.run(second, warm_memory=False))

    reference = handoff(OutOfOrderCore, OutOfOrderCore)
    assert handoff(VectorCore, VectorCore) == reference
    assert handoff(VectorCore, OutOfOrderCore) == reference
    assert handoff(OutOfOrderCore, VectorCore) == reference


def test_mlp_settings_equivalent_through_harness():
    """The harness-level MLP sweep cell (the ``ExperimentSettings`` shape
    the Figure/Table drivers use) agrees across kernels — guarding the
    construction path the engine's workers take, not just bare cores."""
    from repro.harness.runner import run_workload

    settings = ExperimentSettings(
        instructions=1600,
        core=CoreConfig(memory=MemoryHierarchyConfig(
            mlp=MLPConfig(enabled=True, mshr_entries=8))))
    trace = build_workload("vortex", instructions=1600, seed=2)
    results = {}
    for kernel in ("object", "vector"):
        os.environ["REPRO_KERNEL"] = kernel
        try:
            results[kernel] = _signature(
                run_workload(trace, "indexed-3-fwd+dly", settings).result)
        finally:
            os.environ.pop("REPRO_KERNEL", None)
    assert results["object"] == results["vector"]
    assert "mlp_avg" in results["vector"][1]


def test_mlp_variants_are_dataclasses():
    # Guards the MLP_VARIANTS constants against accidental mutation by a
    # future edit: frozen draw inputs keep the properties reproducible.
    for variant in MLP_VARIANTS[1:]:
        assert dataclasses.is_dataclass(variant)

"""Unit tests for the resilience layer (supervision, knobs, fault plans).

The supervised-pool tests use tiny top-level functions as jobs (forked
workers inherit them); every scenario is bounded by explicit timeouts so a
regression fails loudly instead of hanging the suite.
"""

import multiprocessing
import os
import time

import pytest

from repro.exec import resilience
from repro.exec.resilience import (
    EnvKnobError,
    ExperimentFailure,
    backoff_delay,
    parse_fault_plan,
    resolve_job_timeout,
    resolve_retries,
    run_supervised,
    supervision_enabled,
    validate_environment,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.setattr(resilience, "_PLAN_CACHE", {})


def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


def _assert_no_orphans():
    for child in multiprocessing.active_children():
        child.join(5.0)
    assert multiprocessing.active_children() == []


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_RETRIES", "REPRO_JOB_TIMEOUT", "REPRO_SUPERVISE"):
            monkeypatch.delenv(name, raising=False)
        assert resolve_retries() == resilience.DEFAULT_RETRIES
        assert resolve_job_timeout() == resilience.DEFAULT_JOB_TIMEOUT_SECONDS
        assert supervision_enabled()

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_SUPERVISE", "0")
        assert resolve_retries() == 5
        assert resolve_job_timeout() == 12.5
        assert not supervision_enabled()

    @pytest.mark.parametrize("name,value", [
        ("REPRO_RETRIES", "abc"),
        ("REPRO_RETRIES", "-1"),
        ("REPRO_JOB_TIMEOUT", "soon"),
        ("REPRO_JOB_TIMEOUT", "-2"),
    ])
    def test_malformed_values_fail_fast(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(EnvKnobError, match=name):
            validate_environment()

    def test_validate_environment_covers_jobs_and_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(EnvKnobError, match="REPRO_JOBS"):
            validate_environment()
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_CHECKPOINT_SHARDS", "-4")
        with pytest.raises(EnvKnobError, match="REPRO_CHECKPOINT_SHARDS"):
            validate_environment()

    def test_malformed_fault_plan_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "explode@everywhere")
        with pytest.raises(EnvKnobError, match="REPRO_FAULT_PLAN"):
            validate_environment()

    def test_engine_construction_validates(self, monkeypatch):
        from repro.exec import ExperimentEngine

        monkeypatch.setenv("REPRO_RETRIES", "several")
        with pytest.raises(EnvKnobError, match="REPRO_RETRIES"):
            ExperimentEngine(jobs=1, cache=False)

    def test_knob_errors_are_one_line(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.raises(EnvKnobError) as excinfo:
            validate_environment()
        assert "\n" not in str(excinfo.value)
        assert "REPRO_JOB_TIMEOUT" in str(excinfo.value)


class TestBackoff:
    def test_deterministic_and_growing(self):
        assert backoff_delay(1, "a") == backoff_delay(1, "a")
        assert backoff_delay(1, "a") != backoff_delay(1, "b")
        # Exponential envelope: attempt n+2's floor clears attempt n's cap.
        assert backoff_delay(4, "x") > backoff_delay(1, "x")
        assert all(0 < backoff_delay(n, "t") <= 5.0 for n in range(1, 12))


class TestFaultPlanParsing:
    def test_grammar(self):
        plan = parse_fault_plan(
            "worker_crash@job:3,corrupt_blob@p=0.1,hang@shard:1,"
            "worker_crash@job:0*2,seed=42")
        assert plan.seed == 42
        assert plan.job_fault("job", 3, 0) == "worker_crash"
        assert plan.job_fault("job", 3, 1) is None  # first attempt only
        assert plan.job_fault("job", 0, 1) == "worker_crash"  # *2 repeats
        assert plan.job_fault("shard", 1, 0) == "hang"
        assert plan.job_fault("shard", 3, 0) is None  # scope mismatch

    def test_blob_faults_are_seeded_and_fire_once(self):
        plan = parse_fault_plan("corrupt_blob@p=0.25,seed=7")
        keys = [f"key{i}" for i in range(400)]
        hits = [k for k in keys if plan.blob_fault(k)]
        assert 40 < len(hits) < 160  # ~25% of 400, loose bounds
        assert all(plan.blob_fault(k) is None for k in hits)  # fired once
        again = parse_fault_plan("corrupt_blob@p=0.25,seed=7")
        assert [k for k in keys if again.blob_fault(k)] == hits
        other_seed = parse_fault_plan("corrupt_blob@p=0.25,seed=8")
        assert [k for k in keys if other_seed.blob_fault(k)] != hits

    @pytest.mark.parametrize("bad", [
        "worker_crash",            # no selector
        "bogus@job:1",             # unknown kind
        "corrupt_blob@job:2",      # blob fault with job selector
        "hang@p=0.5",              # job fault with probability selector
        "worker_crash@job:x",      # non-integer index
        "worker_crash@job:1*lots", # non-integer repeat
        "seed=zz",                 # non-integer seed
        "corrupt_blob@p=2",        # probability out of range
        "corrupt_blob@p=ten",      # non-numeric probability
    ])
    def test_malformed_plans_rejected(self, bad):
        with pytest.raises(EnvKnobError, match="REPRO_FAULT_PLAN"):
            parse_fault_plan(bad)


class TestSupervisedPool:
    def test_happy_path_order_and_no_overhead_counters(self):
        results, stats = run_supervised(_square, list(range(20)), workers=4,
                                        chunksize=3)
        assert results == [i * i for i in range(20)]
        assert stats == {}
        _assert_no_orphans()

    def test_serial_degenerate_cases(self):
        assert run_supervised(_square, [5], workers=8)[0] == [25]
        assert run_supervised(_square, [1, 2], workers=1)[0] == [1, 4]
        assert run_supervised(_square, [], workers=4)[0] == []

    def test_worker_crash_is_retried_bit_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker_crash@job:2")
        results, stats = run_supervised(_square, list(range(8)), workers=3,
                                        chunksize=2)
        assert results == [i * i for i in range(8)]
        assert stats["worker_crashes"] == 1
        assert stats["pool_respawns"] == 1  # self-healing
        assert stats["job_retries"] >= 1
        _assert_no_orphans()

    def test_hang_is_killed_at_deadline_and_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "hang@job:1")
        start = time.monotonic()
        results, stats = run_supervised(_square, list(range(6)), workers=2,
                                        chunksize=1, timeout=1.5)
        assert results == [i * i for i in range(6)]
        assert stats["job_timeouts"] == 1
        assert time.monotonic() - start < 30.0
        _assert_no_orphans()

    def test_retries_exhausted_is_structured_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker_crash@job:4*9")
        with pytest.raises(ExperimentFailure) as excinfo:
            run_supervised(_square, list(range(6)), workers=2, retries=2,
                           labels=[f"wl/cfg#{i}" for i in range(6)])
        report = excinfo.value.report()
        assert len(report) == 1
        assert report[0]["index"] == 4
        assert report[0]["label"] == "wl/cfg#4"
        assert report[0]["kind"] == "crash"
        assert report[0]["attempts"] == 3  # initial + 2 retries
        assert "wl/cfg#4" in str(excinfo.value)
        _assert_no_orphans()

    def test_job_exception_is_permanent_and_chunkmates_survive(self):
        with pytest.raises(ExperimentFailure) as excinfo:
            run_supervised(_boom_on_three, list(range(8)), workers=2,
                           chunksize=4)
        failures = excinfo.value.failures
        assert [f.index for f in failures] == [3]
        assert failures[0].kind == "exception"
        assert failures[0].attempts == 0  # never retried
        assert "boom on 3" in failures[0].error
        _assert_no_orphans()

    def test_repeated_crashes_degrade_to_serial(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            ",".join(f"worker_crash@job:{i}*9" for i in range(4)))
        results, stats = run_supervised(_square, list(range(10)), workers=2,
                                        retries=8, degrade_after=3)
        # Degraded serial execution runs in-process where crash injection
        # is inert — the jobs complete with the exact same results.
        assert results == [i * i for i in range(10)]
        assert stats["pool_degraded"] == 1
        assert stats["degraded_serial_jobs"] > 0
        assert stats["worker_crashes"] >= 3
        _assert_no_orphans()

    def test_counters_reach_engine_stats(self, monkeypatch, tmp_path):
        from repro.exec import ExperimentEngine, JobSpec
        from repro.harness.runner import ExperimentSettings

        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker_crash@job:0")
        fast = ExperimentSettings(instructions=800, stats_warmup_fraction=0.1)
        specs = [JobSpec("gzip", name, fast)
                 for name in ("oracle-associative-3", "indexed-3-fwd")]
        engine = ExperimentEngine(jobs=2, cache=False)
        faulted = engine.run(specs)
        assert engine.last_run_stats["worker_crashes"] == 1
        assert engine.last_run_stats["job_retries"] >= 1
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        clean = ExperimentEngine(jobs=1, cache=False).run(specs)
        assert [r.result.stats.as_dict() for r in faulted] == \
            [r.result.stats.as_dict() for r in clean]

    def test_failure_report_lands_in_engine_stats(self, monkeypatch):
        from repro.exec import ExperimentEngine, JobSpec
        from repro.harness.runner import ExperimentSettings

        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "worker_crash@job:1*9")
        monkeypatch.setenv("REPRO_RETRIES", "1")
        fast = ExperimentSettings(instructions=800, stats_warmup_fraction=0.1)
        specs = [JobSpec("gzip", name, fast)
                 for name in ("oracle-associative-3", "indexed-3-fwd")]
        engine = ExperimentEngine(jobs=2, cache=False)
        with pytest.raises(ExperimentFailure):
            engine.run(specs)
        report = engine.last_run_stats["failures"]
        assert len(report) == 1
        assert report[0]["label"] == "gzip/indexed-3-fwd"
        assert report[0]["kind"] == "crash"
        _assert_no_orphans()

"""Unit tests for branch predictors, BTB, and RAS."""

import pytest

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    BranchPredictorConfig,
    BranchUnit,
    GSharePredictor,
    HybridPredictor,
    SaturatingCounter,
)
from repro.frontend.btb import BranchTargetBuffer, BTBConfig
from repro.frontend.ras import ReturnAddressStack


class TestSaturatingCounter:
    def test_starts_at_weak_boundary(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 2
        assert counter.predict_taken

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0
        assert counter.is_saturated

    def test_update_direction(self):
        counter = SaturatingCounter(bits=2, initial=0)
        counter.update(True)
        assert counter.value == 1
        counter.update(False)
        assert counter.value == 0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=9)


class TestBimodal:
    def test_learns_taken(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(0x400, False)
        assert predictor.predict(0x400) is False

    def test_independent_pcs(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(0x400, True)
            predictor.update(0x404, False)
        assert predictor.predict(0x400) is True
        assert predictor.predict(0x404) is False


class TestGShare:
    def test_learns_pattern_with_history(self):
        predictor = GSharePredictor(entries=1024, history_bits=4)
        # Alternating pattern T N T N ... becomes predictable with history.
        outcomes = [bool(i % 2) for i in range(200)]
        correct = 0
        for outcome in outcomes:
            if predictor.predict(0x400) == outcome:
                correct += 1
            predictor.update(0x400, outcome)
        # The tail of the run should be predicted nearly perfectly.
        tail_correct = 0
        for outcome in outcomes:
            if predictor.predict(0x400) == outcome:
                tail_correct += 1
            predictor.update(0x400, outcome)
        assert tail_correct > 190

    def test_history_updates(self):
        predictor = GSharePredictor(history_bits=4)
        predictor.update(0x400, True)
        predictor.update(0x400, False)
        assert predictor.history == 0b10


class TestHybrid:
    def test_biased_branch_learned(self):
        predictor = HybridPredictor()
        for _ in range(8):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(bimodal_entries=1000)
        with pytest.raises(ValueError):
            BranchPredictorConfig(history_bits=0)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(BTBConfig(entries=64, assoc=4))
        assert btb.lookup(0x400) is None
        btb.insert(0x400, 0x800)
        assert btb.lookup(0x400) == 0x800

    def test_update_existing_target(self):
        btb = BranchTargetBuffer()
        btb.insert(0x400, 0x800)
        btb.insert(0x400, 0x900)
        assert btb.lookup(0x400) == 0x900

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(BTBConfig(entries=8, assoc=2))
        set_stride = 4 * (8 // 2)   # PCs that map to the same set
        pcs = [0x400 + i * set_stride for i in range(3)]
        for pc in pcs:
            btb.insert(pc, pc + 64)
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) == pcs[1] + 64
        assert btb.lookup(pcs[2]) == pcs[2] + 64

    def test_hit_rate(self):
        btb = BranchTargetBuffer()
        btb.insert(0x400, 0x800)
        btb.lookup(0x400)
        btb.lookup(0x404)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BTBConfig(entries=10, assoc=4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x400)
        ras.push(0x500)
        assert ras.pop() == 0x500
        assert ras.pop() == 0x400

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_clear(self):
        ras = ReturnAddressStack()
        ras.push(1)
        ras.clear()
        assert len(ras) == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestBranchUnit:
    def test_well_predicted_loop_branch(self):
        unit = BranchUnit()
        mispredicts = 0
        for _ in range(50):
            if unit.predict_and_resolve(0x400, taken=True, target=0x300):
                mispredicts += 1
        # After warm-up the always-taken branch with a stable target is predicted.
        assert mispredicts <= 3

    def test_never_taken_branch(self):
        unit = BranchUnit()
        for _ in range(10):
            unit.predict_and_resolve(0x400, taken=False, target=None)
        assert unit.predict_and_resolve(0x400, taken=False, target=None) is False

    def test_call_return_pair_uses_ras(self):
        unit = BranchUnit()
        mispredicted_returns = 0
        for _ in range(20):
            unit.predict_and_resolve(0x400, taken=True, target=0x800, is_call=True)
            if unit.predict_and_resolve(0x880, taken=True, target=0x404, is_return=True):
                mispredicted_returns += 1
        assert mispredicted_returns <= 2

    def test_misprediction_rate(self):
        unit = BranchUnit()
        for _ in range(10):
            unit.predict_and_resolve(0x400, taken=True, target=0x800)
        assert 0.0 <= unit.misprediction_rate <= 1.0
        assert unit.predictions == 10

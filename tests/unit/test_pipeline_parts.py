"""Unit tests for pipeline components: RAT, ROB, configuration, statistics."""

import pytest

from repro.pipeline.config import CoreConfig, IssueLimits, small_test_config
from repro.pipeline.rename import ARCH_READY, RegisterAliasTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats


class _Record:
    def __init__(self, seq):
        self.seq = seq


class TestRAT:
    def test_initially_architectural(self):
        rat = RegisterAliasTable()
        assert rat.producer_of(3) == ARCH_READY

    def test_rename_and_lookup(self):
        rat = RegisterAliasTable()
        rat.rename_dest(3, seq=10)
        assert rat.producer_of(3) == 10

    def test_zero_register_never_renamed(self):
        rat = RegisterAliasTable()
        assert rat.rename_dest(31, seq=10) is None
        assert rat.producer_of(31) == ARCH_READY

    def test_none_dest(self):
        rat = RegisterAliasTable()
        assert rat.rename_dest(None, seq=10) is None

    def test_undo_restores_previous_producer(self):
        rat = RegisterAliasTable()
        rat.rename_dest(3, seq=10)
        undo = rat.rename_dest(3, seq=20)
        rat.undo(undo)
        assert rat.producer_of(3) == 10

    def test_undo_chain_youngest_first(self):
        rat = RegisterAliasTable()
        undo_a = rat.rename_dest(3, seq=10)
        undo_b = rat.rename_dest(3, seq=20)
        undo_c = rat.rename_dest(3, seq=30)
        rat.undo(undo_c)
        rat.undo(undo_b)
        assert rat.producer_of(3) == 10
        rat.undo(undo_a)
        assert rat.producer_of(3) == ARCH_READY

    def test_retire_clears_only_if_still_youngest(self):
        rat = RegisterAliasTable()
        rat.rename_dest(3, seq=10)
        rat.rename_dest(3, seq=20)
        rat.retire_dest(3, seq=10)
        assert rat.producer_of(3) == 20
        rat.retire_dest(3, seq=20)
        assert rat.producer_of(3) == ARCH_READY

    def test_clear(self):
        rat = RegisterAliasTable()
        rat.rename_dest(3, seq=10)
        rat.clear()
        assert rat.producer_of(3) == ARCH_READY

    def test_invalid_register(self):
        rat = RegisterAliasTable()
        with pytest.raises(ValueError):
            rat.producer_of(999)


class TestROB:
    def test_push_and_head(self):
        rob = ReorderBuffer(size=4)
        rob.push(_Record(0))
        rob.push(_Record(1))
        assert rob.head().seq == 0
        assert len(rob) == 2

    def test_overflow(self):
        rob = ReorderBuffer(size=1)
        rob.push(_Record(0))
        assert rob.is_full()
        with pytest.raises(RuntimeError):
            rob.push(_Record(1))

    def test_pop_head(self):
        rob = ReorderBuffer(size=4)
        rob.push(_Record(0))
        assert rob.pop_head().seq == 0
        assert rob.is_empty()

    def test_pop_empty(self):
        with pytest.raises(RuntimeError):
            ReorderBuffer(size=4).pop_head()

    def test_squash_younger_than(self):
        rob = ReorderBuffer(size=8)
        for seq in range(5):
            rob.push(_Record(seq))
        squashed = rob.squash_younger_than(2)
        assert [r.seq for r in squashed] == [4, 3]
        assert len(rob) == 3

    def test_max_occupancy_tracked(self):
        rob = ReorderBuffer(size=8)
        for seq in range(5):
            rob.push(_Record(seq))
        rob.pop_head()
        assert rob.max_occupancy == 5

    def test_head_of_empty(self):
        assert ReorderBuffer(size=4).head() is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ReorderBuffer(size=0)

    def test_iteration_in_order(self):
        rob = ReorderBuffer(size=8)
        for seq in range(3):
            rob.push(_Record(seq))
        assert [r.seq for r in rob] == [0, 1, 2]


class TestCoreConfig:
    def test_defaults_match_paper(self):
        config = CoreConfig()
        assert config.rob_size == 512
        assert config.issue_queue_size == 300
        assert config.load_queue_size == 128
        assert config.store_queue_size == 64
        assert config.rename_width == 8
        assert config.issue_width == 8
        assert config.commit_width == 8
        assert config.fetch_width == 12
        assert config.issue_limits.int_ops == 6
        assert config.issue_limits.fp_ops == 4
        assert config.issue_limits.branches == 1
        assert config.issue_limits.loads == 2
        assert config.issue_limits.stores == 2
        assert config.ssn_bits == 16

    def test_sq_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            CoreConfig(store_queue_size=48)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(flush_penalty=-1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)

    def test_issue_limits_validation(self):
        with pytest.raises(ValueError):
            IssueLimits(loads=0)

    def test_small_test_config(self):
        config = small_test_config()
        assert config.rob_size == 64
        assert config.store_queue_size == 8
        assert config.rob_size > config.load_queue_size > config.store_queue_size

    def test_small_test_config_overrides(self):
        config = small_test_config(rob_size=128)
        assert config.rob_size == 128


class TestSimStats:
    def test_derived_metrics_empty(self):
        stats = SimStats()
        assert stats.ipc == 0.0
        assert stats.forwarding_rate == 0.0
        assert stats.mis_forwardings_per_1000_loads == 0.0
        assert stats.avg_delay_cycles == 0.0

    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == pytest.approx(2.5)

    def test_forwarding_rates(self):
        stats = SimStats(committed_loads=200, loads_should_forward=50, loads_forwarded=40)
        assert stats.forwarding_rate == pytest.approx(0.25)
        assert stats.forwarded_rate == pytest.approx(0.20)

    def test_mis_forwarding_per_1000(self):
        stats = SimStats(committed_loads=2000, mis_forwardings=3)
        assert stats.mis_forwardings_per_1000_loads == pytest.approx(1.5)

    def test_delay_metrics(self):
        stats = SimStats(committed_loads=100, loads_delayed=4, total_delay_cycles=200)
        assert stats.percent_loads_delayed == pytest.approx(4.0)
        assert stats.avg_delay_cycles == pytest.approx(50.0)

    def test_reexecution_rate(self):
        stats = SimStats(committed_loads=50, loads_reexecuted=5)
        assert stats.reexecution_rate == pytest.approx(0.1)

    def test_branch_misprediction_rate(self):
        stats = SimStats(committed_branches=100, branch_mispredictions=7)
        assert stats.branch_misprediction_rate == pytest.approx(0.07)

    def test_as_dict_contains_derived(self):
        stats = SimStats(cycles=10, committed=20)
        data = stats.as_dict()
        assert data["ipc"] == pytest.approx(2.0)
        assert "mis_forwardings_per_1000_loads" in data
        assert "percent_loads_delayed" in data

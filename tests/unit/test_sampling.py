"""Unit tests for the statistical sampling subsystem.

Covers the plan math (interval layout, t critical values, CI aggregation),
the functional warmer's state fidelity against the detailed core, the
determinism of interval jobs, window regeneration, and the exec-layer
integration (interval cache keys, sampled-spec expansion).
"""

import dataclasses
import math
import pickle

import pytest

from repro.exec import ExperimentEngine, IntervalJobSpec, JobSpec, job_key
from repro.harness.runner import ExperimentSettings, make_policy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.stats import SimStats
from repro.sampling import (
    IntervalMeasurement,
    SampledResult,
    SamplingPlan,
    student_t_two_sided,
)
from repro.sampling.driver import (
    expand_sampled_spec,
    run_interval_job,
    run_sampled_workload,
)
from repro.sampling.functional import FunctionalWarmer
from repro.workloads.suites import (
    TRACE_SEGMENT_UOPS,
    build_workload,
    build_workload_window,
)

WORKLOAD = "vortex"
PLAN = SamplingPlan(interval_length=500, detailed_warmup=500, period=5_000,
                    functional_warmup=3_000, seed=0)
SETTINGS = ExperimentSettings(instructions=20_000, stats_warmup_fraction=0.0,
                              sampling=PLAN)


class TestStudentT:
    def test_exact_small_df(self):
        # df=1: t = tan(pi * c / 2); df=2: closed form.
        assert student_t_two_sided(0.90, 1) == pytest.approx(6.3138, abs=1e-3)
        assert student_t_two_sided(0.95, 2) == pytest.approx(4.3027, abs=1e-3)

    def test_matches_standard_tables(self):
        # Reference values from standard t tables (3 decimal places).
        assert student_t_two_sided(0.95, 3) == pytest.approx(3.182, abs=2e-3)
        assert student_t_two_sided(0.95, 4) == pytest.approx(2.776, abs=2e-3)
        assert student_t_two_sided(0.95, 10) == pytest.approx(2.228, abs=2e-3)
        assert student_t_two_sided(0.95, 30) == pytest.approx(2.042, abs=2e-3)
        assert student_t_two_sided(0.99, 20) == pytest.approx(2.845, abs=2e-3)
        assert student_t_two_sided(0.90, 5) == pytest.approx(2.015, abs=2e-3)

    def test_large_df_approaches_normal(self):
        assert student_t_two_sided(0.95, 10_000) == pytest.approx(1.96, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            student_t_two_sided(1.5, 4)
        with pytest.raises(ValueError):
            student_t_two_sided(0.95, 0)


class TestSamplingPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(interval_length=0)
        with pytest.raises(ValueError):
            SamplingPlan(interval_length=100, period=50)
        with pytest.raises(ValueError):
            SamplingPlan(detailed_warmup=-1)
        with pytest.raises(ValueError):
            SamplingPlan(confidence=1.0)

    def test_layout_is_ordered_and_in_bounds(self):
        windows = PLAN.intervals(20_000)
        assert len(windows) >= 2
        for w in windows:
            assert 0 <= w.functional_start <= w.detailed_start \
                <= w.measure_start < w.measure_end <= 20_000
            assert w.measure_length == PLAN.interval_length
        starts = [w.measure_start for w in windows]
        assert starts == sorted(starts)
        assert all(b - a == PLAN.period for a, b in zip(starts, starts[1:]))

    def test_first_offset_is_seeded_phase(self):
        assert 0 <= PLAN.first_offset() <= PLAN.period - PLAN.interval_length
        other = dataclasses.replace(PLAN, seed=7)
        # Identical plans give identical layouts; the phase is seed-derived.
        assert PLAN.intervals(20_000) == PLAN.intervals(20_000)
        assert PLAN.first_offset() == PLAN.first_offset()
        assert isinstance(other.first_offset(), int)

    def test_short_trace_pins_one_interval(self):
        plan = SamplingPlan(interval_length=1_000, period=50_000,
                            detailed_warmup=500, functional_warmup=500)
        windows = plan.intervals(2_000)
        assert len(windows) == 1
        assert windows[0].measure_end <= 2_000
        with pytest.raises(ValueError):
            plan.intervals(500)

    def test_sampled_fraction(self):
        frac = PLAN.sampled_fraction(20_000)
        assert 0.0 < frac < 1.0


class TestSampledResultMath:
    @staticmethod
    def _result(cpis, confidence=0.95):
        plan = dataclasses.replace(PLAN, confidence=confidence)
        intervals = []
        for i, cpi in enumerate(cpis):
            stats = SimStats()
            stats.committed = 1000
            stats.cycles = int(cpi * 1000)
            intervals.append(IntervalMeasurement(
                index=i, measure_start=i * plan.period, instructions=1000,
                cycles=stats.cycles, stats=stats))
        return SampledResult(workload="w", config_name="c", plan=plan,
                             total_instructions=100_000, intervals=intervals)

    def test_mean_and_ci(self):
        result = self._result([0.5, 0.6, 0.7, 0.6])
        assert result.cpi_mean == pytest.approx(0.6)
        # s = sqrt(sum((x-mean)^2)/3), CI = t(0.95, 3) * s / 2
        std = math.sqrt((0.01 + 0.0 + 0.01 + 0.0) / 3)
        t = student_t_two_sided(0.95, 3)
        assert result.cpi_std == pytest.approx(std)
        assert result.cpi_ci_halfwidth == pytest.approx(t * std / 2, rel=1e-6)
        lo, hi = result.cpi_ci
        assert lo < result.cpi_mean < hi
        assert result.estimated_total_cycles == pytest.approx(0.6 * 100_000)

    def test_single_interval_has_zero_halfwidth(self):
        result = self._result([0.5])
        assert result.cpi_ci_halfwidth == 0.0

    def test_merged_stats_are_sums(self):
        result = self._result([0.5, 0.7])
        merged = result.merged_stats()
        assert merged.committed == 2000
        assert merged.cycles == 500 + 700


class TestWindowRegeneration:
    def test_window_equals_full_trace_slice_across_segments(self):
        total = TRACE_SEGMENT_UOPS + 10_000
        full = build_workload(WORKLOAD, total, seed=3)
        lo = TRACE_SEGMENT_UOPS - 2_000
        hi = TRACE_SEGMENT_UOPS + 2_000
        assert build_workload_window(WORKLOAD, total, 3, lo, hi) == full[lo:hi]

    def test_single_segment_matches_direct_compose(self):
        from repro.workloads.profiles import get_profile
        from repro.workloads.suites import WorkloadComposer

        direct = WorkloadComposer(get_profile(WORKLOAD), seed=1).compose(4_000)
        assert build_workload(WORKLOAD, 4_000, seed=1).uops == direct.uops

    def test_window_bounds_validated(self):
        with pytest.raises(ValueError):
            build_workload_window(WORKLOAD, 1_000, 1, 500, 1_500)
        with pytest.raises(ValueError):
            build_workload_window(WORKLOAD, 1_000, 1, -1, 500)


class TestFunctionalWarming:
    """Functional replay of a prefix must reproduce the detailed core's
    long-lived state (exactly where the update sequence is program-order,
    approximately where it is execution-order)."""

    PREFIX = 6_000

    def _detailed(self, config_name):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        policy = make_policy(config_name, sq_size=64)
        core = OutOfOrderCore(CoreConfig(), policy)
        result = core.run(trace, warm_memory=False)
        return core, result

    def _functional(self, config_name):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        policy = make_policy(config_name, sq_size=64)
        warmer = FunctionalWarmer(CoreConfig(), policy)
        warmer.warm(trace.uops)
        return warmer.state

    def test_svw_and_ssn_state_exact_without_flushes(self):
        # The oracle policy never flushes, so every commit-path structure
        # must match bit for bit.
        core, result = self._detailed("oracle-associative-3")
        assert result.stats.flushes == 0
        state = self._functional("oracle-associative-3")
        assert state.policy.svw.state_signature() == core.policy.svw.state_signature()
        assert state.ssn_alloc.ssn_commit == core.ssn_alloc.ssn_commit
        assert state.ssn_alloc.ssn_rename == core.ssn_alloc.ssn_rename

    def test_branch_direction_state_exact_without_flushes(self):
        core, result = self._detailed("oracle-associative-3")
        assert result.stats.flushes == 0
        state = self._functional("oracle-associative-3")
        assert (state.branch_unit.direction_state_signature()
                == core.branch_unit.direction_state_signature())

    def test_memory_image_exact(self):
        core, _ = self._detailed("oracle-associative-3")
        state = self._functional("oracle-associative-3")
        assert state.memory._bytes == core.memory._bytes

    def test_cache_residency_close(self):
        core, _ = self._detailed("oracle-associative-3")
        state = self._functional("oracle-associative-3")
        detailed = core.hierarchy.l1.resident_lines()
        functional = state.hierarchy.l1.resident_lines()
        overlap = len(detailed & functional) / max(len(detailed | functional), 1)
        assert overlap >= 0.8, f"L1 residency overlap only {overlap:.2f}"

    def test_fsp_dependences_cover_detailed(self):
        # The warmed FSP must know (at least) the dependences the detailed
        # run learned through violations; warming may know a few more
        # (register-serialised dependences never violate in detail).
        core, _ = self._detailed("indexed-3-fwd+dly")
        state = self._functional("indexed-3-fwd+dly")
        detailed = core.policy.fsp.state_signature()
        warmed = state.policy.fsp.state_signature()
        if detailed:
            covered = len(detailed & warmed) / len(detailed)
            assert covered >= 0.7, f"warmed FSP covers only {covered:.2f}"

    def test_last_writer_matches_oracle_tracker(self):
        core, _ = self._detailed("oracle-associative-3")
        state = self._functional("oracle-associative-3")
        detailed_ssns = {addr: entry[1] for addr, entry in core._last_writer.items()}
        functional_ssns = {addr: entry[0] for addr, entry in state.last_writer.items()}
        assert functional_ssns == detailed_ssns


class TestIntervalJobs:
    def test_interval_job_deterministic(self):
        spec = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 1)
        first = run_interval_job(spec)
        second = run_interval_job(spec)
        assert first.result.stats.as_dict() == second.result.stats.as_dict()

    def test_plan_seed_moves_the_phase(self):
        moved = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, seed=12345))
        if moved.sampling.first_offset() == PLAN.first_offset():
            pytest.skip("seeds alias to the same phase")
        a = run_interval_job(IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 1))
        b = run_interval_job(IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", moved, 1))
        assert a.result.stats.as_dict() != b.result.stats.as_dict()

    def test_measured_region_is_interval_length(self):
        record = run_interval_job(
            IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 1))
        committed = record.result.stats.committed
        # The final commit cycle may overshoot by up to commit_width - 1.
        assert PLAN.interval_length <= committed \
            < PLAN.interval_length + SETTINGS.core.commit_width

    def test_expansion(self):
        spec = JobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)
        intervals = expand_sampled_spec(spec)
        assert len(intervals) == PLAN.num_intervals(SETTINGS.instructions)
        assert [s.interval_index for s in intervals] == list(range(len(intervals)))
        plain = JobSpec(WORKLOAD, "indexed-3-fwd+dly",
                        dataclasses.replace(SETTINGS, sampling=None))
        with pytest.raises(ValueError):
            expand_sampled_spec(plain)

    def test_spec_and_record_picklable(self):
        spec = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 0)
        assert pickle.loads(pickle.dumps(spec)) == spec
        record = run_sampled_workload(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)
        clone = pickle.loads(pickle.dumps(record))
        assert clone.result.sampled.cpi_mean == record.result.sampled.cpi_mean


class TestCacheKeys:
    def test_interval_index_in_key(self):
        a = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 0)
        b = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 1)
        base = JobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)
        assert len({job_key(a), job_key(b), job_key(base)}) == 3
        assert job_key(a) == job_key(
            IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 0))

    def test_plan_change_changes_key(self):
        a = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS, 0)
        changed = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, interval_length=600))
        b = IntervalJobSpec(WORKLOAD, "indexed-3-fwd+dly", changed, 0)
        assert job_key(a) != job_key(b)

    def test_sampled_and_plain_settings_differ(self):
        plain = dataclasses.replace(SETTINGS, sampling=None)
        assert job_key(JobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)) \
            != job_key(JobSpec(WORKLOAD, "indexed-3-fwd+dly", plain))


class TestEngineIntegration:
    def test_sampled_spec_expands_and_merges(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        spec = JobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)
        record, = engine.run([spec])
        expected = PLAN.num_intervals(SETTINGS.instructions)
        assert engine.last_run_stats["total"] == expected
        assert engine.last_run_stats["sampled_specs"] == 1
        assert record.result.sampled is not None
        assert record.result.sampled.num_intervals == expected

        # Second run: every interval is a cache hit, merge is identical.
        again, = engine.run([spec])
        assert engine.last_run_stats["cache_hits"] == expected
        assert again.result.stats.as_dict() == record.result.stats.as_dict()

    def test_engine_matches_serial_driver(self):
        engine = ExperimentEngine(jobs=1, cache=False)
        record, = engine.run([JobSpec(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)])
        serial = run_sampled_workload(WORKLOAD, "indexed-3-fwd+dly", SETTINGS)
        assert record.result.stats.as_dict() == serial.result.stats.as_dict()
        assert record.result.sampled.cpi_values == serial.result.sampled.cpi_values

"""Unit tests for the trace ISA: micro-ops, registers, traces."""

import io

import pytest

from repro.isa.registers import (
    ArchRegisterFile,
    FP_REG_COUNT,
    INT_REG_COUNT,
    REG_ZERO,
    TOTAL_REG_COUNT,
    is_fp_reg,
    is_int_reg,
    validate_reg,
)
from repro.isa.trace import DynamicTrace, TraceWriter, compute_stats, read_trace, write_trace
from repro.isa.uop import (
    DEFAULT_LATENCIES,
    MemAccess,
    MicroOp,
    OpClass,
    make_alu,
    make_branch,
    make_load,
    make_store,
)


# ---------------------------------------------------------------------------
# OpClass
# ---------------------------------------------------------------------------

class TestOpClass:
    def test_load_predicates(self):
        assert OpClass.LOAD.is_load
        assert OpClass.LOAD.is_memory
        assert not OpClass.LOAD.is_store
        assert not OpClass.LOAD.is_branch

    def test_store_predicates(self):
        assert OpClass.STORE.is_store
        assert OpClass.STORE.is_memory
        assert not OpClass.STORE.is_load

    def test_branch_predicates(self):
        assert OpClass.BRANCH.is_branch
        assert not OpClass.BRANCH.is_memory

    def test_fp_classification(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MUL.is_fp
        assert OpClass.FP_DIV.is_fp
        assert not OpClass.INT_ALU.is_fp

    def test_int_classification(self):
        assert OpClass.INT_ALU.is_int
        assert OpClass.INT_MUL.is_int
        assert not OpClass.FP_ALU.is_int

    def test_every_class_has_latency(self):
        for op_class in OpClass:
            assert op_class in DEFAULT_LATENCIES
            assert DEFAULT_LATENCIES[op_class] >= 1


# ---------------------------------------------------------------------------
# MemAccess
# ---------------------------------------------------------------------------

class TestMemAccess:
    def test_valid_sizes(self):
        for size in (1, 2, 4, 8):
            access = MemAccess(addr=0x1000, size=size)
            assert access.size == size

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MemAccess(addr=0x1000, size=3)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemAccess(addr=-8, size=8)

    def test_value_width_checked(self):
        with pytest.raises(ValueError):
            MemAccess(addr=0, size=1, value=256)
        MemAccess(addr=0, size=1, value=255)

    def test_byte_range(self):
        access = MemAccess(addr=0x100, size=4)
        assert list(access.byte_range) == [0x100, 0x101, 0x102, 0x103]

    def test_overlaps_true(self):
        a = MemAccess(addr=0x100, size=8)
        b = MemAccess(addr=0x104, size=8)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_overlaps_false_adjacent(self):
        a = MemAccess(addr=0x100, size=8)
        b = MemAccess(addr=0x108, size=8)
        assert not a.overlaps(b)

    def test_contains(self):
        wide = MemAccess(addr=0x100, size=8)
        narrow = MemAccess(addr=0x104, size=4)
        assert wide.contains(narrow)
        assert not narrow.contains(wide)

    def test_contains_requires_full_cover(self):
        a = MemAccess(addr=0x100, size=4)
        b = MemAccess(addr=0x102, size=4)
        assert not a.contains(b)


# ---------------------------------------------------------------------------
# MicroOp
# ---------------------------------------------------------------------------

class TestMicroOp:
    def test_load_requires_mem(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400, op_class=OpClass.LOAD, dest=1)

    def test_store_requires_value(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400, op_class=OpClass.STORE, mem=MemAccess(addr=8, size=8))

    def test_alu_must_not_carry_mem(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400, op_class=OpClass.INT_ALU, dest=1, mem=MemAccess(addr=8, size=8))

    def test_taken_branch_requires_target(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400, op_class=OpClass.BRANCH, is_taken=True)

    def test_make_load(self):
        uop = make_load(0x400, dest=3, addr=0x1000, size=4)
        assert uop.is_load and uop.dest == 3 and uop.addr == 0x1000 and uop.size == 4

    def test_make_store(self):
        uop = make_store(0x404, addr=0x1000, value=0xAB, size=1)
        assert uop.is_store and uop.mem.value == 0xAB

    def test_make_alu(self):
        uop = make_alu(0x408, dest=5, srcs=(1, 2))
        assert uop.op_class is OpClass.INT_ALU and uop.srcs == (1, 2)

    def test_make_branch_default_target(self):
        uop = make_branch(0x40C, taken=True)
        assert uop.is_branch and uop.is_taken and uop.target is not None

    def test_describe_contains_pc_and_class(self):
        uop = make_load(0x400, dest=3, addr=0x1000)
        text = uop.describe()
        assert "0x400" in text and "LOAD" in text

    def test_describe_branch_direction(self):
        taken = make_branch(0x400, taken=True)
        not_taken = make_branch(0x404, taken=False)
        assert "taken" in taken.describe()
        assert "not-taken" in not_taken.describe()


# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------

class TestRegisters:
    def test_counts(self):
        assert TOTAL_REG_COUNT == INT_REG_COUNT + FP_REG_COUNT

    def test_classification(self):
        assert is_int_reg(0)
        assert is_int_reg(INT_REG_COUNT - 1)
        assert is_fp_reg(INT_REG_COUNT)
        assert not is_fp_reg(0)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_reg(TOTAL_REG_COUNT)
        with pytest.raises(ValueError):
            validate_reg(-1)

    def test_zero_register_reads_zero(self):
        regfile = ArchRegisterFile()
        regfile.write(REG_ZERO, 0xDEAD)
        assert regfile.read(REG_ZERO) == 0

    def test_write_read_roundtrip(self):
        regfile = ArchRegisterFile()
        regfile.write(5, 0x1234)
        assert regfile.read(5) == 0x1234

    def test_write_masks_to_64_bits(self):
        regfile = ArchRegisterFile()
        regfile.write(4, 1 << 70)
        assert regfile.read(4) == 0

    def test_snapshot_restore(self):
        regfile = ArchRegisterFile()
        regfile.write(3, 7)
        snap = regfile.snapshot()
        regfile.write(3, 9)
        regfile.restore(snap)
        assert regfile.read(3) == 7

    def test_restore_rejects_bad_length(self):
        regfile = ArchRegisterFile()
        with pytest.raises(ValueError):
            regfile.restore([0, 1, 2])

    def test_len_and_iter(self):
        regfile = ArchRegisterFile()
        assert len(regfile) == TOTAL_REG_COUNT
        assert len(list(regfile)) == TOTAL_REG_COUNT


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

def _small_trace() -> DynamicTrace:
    writer = TraceWriter("unit")
    writer.append(make_load(0x400, dest=1, addr=0x1000, size=8))
    writer.append(make_alu(0x404, dest=2, srcs=(1,)))
    writer.append(make_store(0x408, addr=0x1000, value=0x55, size=1, srcs=(2,)))
    writer.append(make_branch(0x40C, taken=True, target=0x400, call=True))
    writer.append(make_branch(0x410, taken=False))
    return writer.finish()


class TestTrace:
    def test_writer_builds_in_order(self):
        trace = _small_trace()
        assert len(trace) == 5
        assert trace[0].is_load and trace[2].is_store

    def test_stats_counts(self):
        stats = _small_trace().stats
        assert stats.total == 5
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.branches == 2
        assert stats.taken_branches == 1

    def test_stats_unique_pcs(self):
        stats = _small_trace().stats
        assert stats.unique_pcs == 5
        assert stats.unique_load_pcs == 1
        assert stats.unique_store_pcs == 1

    def test_stats_fractions(self):
        stats = _small_trace().stats
        assert stats.load_fraction == pytest.approx(0.2)
        assert stats.store_fraction == pytest.approx(0.2)
        assert stats.branch_fraction == pytest.approx(0.4)

    def test_empty_trace_stats(self):
        stats = compute_stats([])
        assert stats.total == 0
        assert stats.load_fraction == 0.0

    def test_truncated(self):
        trace = _small_trace()
        short = trace.truncated(2)
        assert len(short) == 2 and len(trace) == 5

    def test_serialisation_roundtrip(self):
        trace = _small_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        assert restored.name == trace.name
        assert len(restored) == len(trace)
        for original, loaded in zip(trace, restored):
            assert original.pc == loaded.pc
            assert original.op_class == loaded.op_class
            assert original.dest == loaded.dest
            assert original.srcs == loaded.srcs
            assert (original.mem is None) == (loaded.mem is None)
            if original.mem is not None:
                assert original.mem.addr == loaded.mem.addr
                assert original.mem.size == loaded.mem.size
                assert original.mem.value == loaded.mem.value
            assert original.is_taken == loaded.is_taken
            assert original.hint_call == loaded.hint_call

    def test_read_trace_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO("garbage line\n"))

    def test_extend(self):
        trace = _small_trace()
        trace.extend([make_alu(0x500, dest=3)])
        assert len(trace) == 6

"""Unit tests for harness components (reporting, paper reference data) and
small ablations of design choices called out in DESIGN.md."""

from repro.core.predictors import (
    DDPConfig,
    FSPConfig,
    PredictorSuiteConfig,
    SATConfig,
    SVWConfig,
)
from repro.harness import paper_data
from repro.harness.reporting import format_comparison, format_table
from repro.harness.runner import make_policy
from repro.lsu.policies import AssociativeStoreSetsPolicy, IndexedSQPolicy
from repro.workloads.profiles import PROFILES
from repro.workloads.suites import build_workload
from repro import simulate


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["longer", 7]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert "1.235" in text          # floats rendered with three decimals
        assert "longer" in text

    def test_format_table_without_title(self):
        text = format_table(["x"], [[1]])
        assert text.splitlines()[0].startswith("x")

    def test_format_comparison(self):
        line = format_comparison("metric", 1.234, 1.2, unit="ns")
        assert "1.234 ns" in line and "paper" in line


class TestPaperData:
    def test_table3_covers_all_workloads(self):
        assert set(paper_data.TABLE3) == {p.name for p in PROFILES}

    def test_table3_row_shapes(self):
        for name, row in paper_data.TABLE3.items():
            assert len(row) == 5
            fwd, mis_fwd, mis_dly, delayed, avg_delay = row
            assert 0.0 <= fwd <= 100.0
            assert mis_dly <= mis_fwd + 0.5, name    # delay never makes it much worse
            assert avg_delay >= 0.0

    def test_table2_covers_full_sweep(self):
        assert set(paper_data.TABLE2_SQ) == {(e, p) for e in (16, 32, 64, 128, 256)
                                             for p in (1, 2)}

    def test_table2_paper_trends(self):
        for (entries, ports), (assoc_ns, _, idx_ns, _) in paper_data.TABLE2_SQ.items():
            assert idx_ns < assoc_ns

    def test_figure4_gmeans_ordering(self):
        for suite, values in paper_data.FIGURE4_GMEANS.items():
            assert values["indexed-3-fwd+dly"] < values["indexed-3-fwd"]
            assert values["associative-3"] <= values["indexed-3-fwd+dly"]

    def test_headline_consistency(self):
        headline = paper_data.HEADLINE
        assert headline["mis_forwardings_per_1000_fwd_dly"] < headline["mis_forwardings_per_1000_fwd"]
        assert headline["slowdown_vs_realistic_pct"] < headline["slowdown_vs_ideal_pct"]

    def test_figure5_sweep_points(self):
        assert 4096 in paper_data.FIGURE5_CAPACITIES
        assert 2 in paper_data.FIGURE5_ASSOCIATIVITIES
        assert (4, 1) in paper_data.FIGURE5_DDP_RATIOS


class TestPolicyFactory:
    def test_all_named_configs_construct(self):
        for name in ("oracle-associative-3", "associative-3", "associative-5-optimistic",
                     "associative-5-predictive", "associative-original-storesets",
                     "indexed-3-fwd", "indexed-3-fwd+dly"):
            policy = make_policy(name, sq_size=32)
            assert policy.sq_size == 32

    def test_original_store_sets_policy(self):
        policy = make_policy("associative-original-storesets")
        assert isinstance(policy, AssociativeStoreSetsPolicy)
        assert policy.formulation == "original"

    def test_custom_predictor_config_propagates(self):
        predictors = PredictorSuiteConfig(fsp=FSPConfig(entries=512, assoc=4))
        policy = make_policy("indexed-3-fwd+dly", predictors=predictors)
        assert isinstance(policy, IndexedSQPolicy)
        assert policy.fsp.config.entries == 512
        assert policy.fsp.config.assoc == 4


class TestDesignAblations:
    """Small versions of the ablations listed in DESIGN.md section 6."""

    def _predictors(self, sat_repair="log"):
        return PredictorSuiteConfig(
            fsp=FSPConfig(entries=256, assoc=2),
            sat=SATConfig(entries=128, repair=sat_repair),
            ddp=DDPConfig(entries=256, assoc=2),
            svw=SVWConfig(ssbf_entries=1024, spct_entries=1024),
        )

    def test_sat_repair_is_performance_only(self):
        """Disabling SAT repair must not change architectural results; it can
        only change prediction accuracy (the paper's 'repair only for
        performance, not correctness')."""
        trace = build_workload("mesa.t", instructions=2500)
        with_repair = simulate(trace, IndexedSQPolicy(predictors=self._predictors("log")))
        without_repair = simulate(trace, IndexedSQPolicy(predictors=self._predictors("none")))
        assert with_repair.stats.committed == without_repair.stats.committed == 2500

    def test_fsp_associativity_bounds_dependences_per_load(self):
        """Associativity = number of representable store dependences per load
        (the paper's stated Store Sets difference)."""
        one_way = IndexedSQPolicy(predictors=PredictorSuiteConfig(
            fsp=FSPConfig(entries=256, assoc=1)))
        four_way = IndexedSQPolicy(predictors=PredictorSuiteConfig(
            fsp=FSPConfig(entries=256, assoc=4)))
        for policy in (one_way, four_way):
            for i in range(6):
                policy.fsp.insert(0x400, 0x500 + 4 * i)
        assert len(one_way.fsp.lookup(0x400)) == 1
        assert len(four_way.fsp.lookup(0x400)) == 4

    def test_distance_based_delay_vs_sat_based_delay(self):
        """The paper argues for distances (not the SAT) to compute delays:
        the SAT can only name the most recent instance of a store, while a
        distance can name any instance.  Check the DDP's delay SSN points
        further back than the SAT's most-recent-instance SSN for a
        not-most-recent load."""
        policy = IndexedSQPolicy(predictors=self._predictors())
        # Two instances of the same static store, SSNs 10 and 12.
        policy.store_renamed(0x500, 10)
        policy.store_renamed(0x500, 12)
        policy.fsp.insert(0x400, 0x500)
        for _ in range(2):
            policy.ddp.train_wrong_prediction(0x400, 3)
        prediction = policy.predict_load(0x400, ssn_ren=12, ssn_cmt=2)
        assert prediction.fwd_ssn == 12            # SAT: most recent instance only
        assert prediction.dly_ssn == 9             # DDP: distance reaches older stores
        assert prediction.dly_ssn < prediction.fwd_ssn

"""Unit tests for the detailed-core kernel seam (``REPRO_KERNEL``).

Knob resolution and validation, the :func:`~repro.pipeline.vector.make_core`
construction seam, the vector kernel's fallback discipline (non-encoded
traces, overridden stage methods), the compiled kernel's missing-extension
error, cache-key exclusion, engine reporting (``kernel`` in
``last_run_stats``), and the ``REPRO_PROFILE`` satellite (knob validation,
run-scoped dumps, hotspot aggregation).
"""

import os

import pytest

from repro.exec import ExperimentEngine, JobSpec, job_key
from repro.exec.jobs import run_job
from repro.exec.resilience import (
    KERNEL_NAMES,
    EnvKnobError,
    resolve_kernel_name,
    resolve_profile_dir,
    validate_environment,
)
from repro.harness.runner import ExperimentSettings, make_policy, run_workload
from repro.isa.trace import DynamicTrace
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore
from repro.pipeline.vector import (
    CompiledCore,
    VectorCore,
    compiled_kernel_available,
    make_core,
    resolve_kernel,
)
from repro.workloads.suites import build_workload

FAST = ExperimentSettings(instructions=800, stats_warmup_fraction=0.1)


def _stats_dict(result):
    return dict(sorted(result.stats.as_dict().items()))


class TestResolution:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel_name() is None
        expected = "compiled" if compiled_kernel_available() else "vector"
        assert resolve_kernel() == expected
        assert resolve_kernel("auto") == expected

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_forced_kernel_wins(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_KERNEL", name)
        assert resolve_kernel_name() == name
        assert resolve_kernel() == name

    def test_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "object")
        assert resolve_kernel("vector") == "vector"

    @pytest.mark.parametrize("bad", ["fast", "Object", "numpy", "2"])
    def test_garbage_is_an_env_knob_error(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_KERNEL", bad)
        with pytest.raises(EnvKnobError, match="REPRO_KERNEL"):
            resolve_kernel_name()
        with pytest.raises(EnvKnobError):
            validate_environment()
        with pytest.raises(EnvKnobError):
            ExperimentEngine(jobs=1, cache=False)

    def test_kernel_knob_excluded_from_cache_key(self, monkeypatch):
        """REPRO_KERNEL is execution-only: every kernel is bit-identical,
        so a forced kernel must not invalidate (or fork) any cached
        result."""
        spec = JobSpec("gzip", "indexed-3-fwd", FAST)
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        unset = job_key(spec)
        for name in KERNEL_NAMES + ("auto",):
            monkeypatch.setenv("REPRO_KERNEL", name)
            assert job_key(spec) == unset


class TestMakeCore:
    def test_kernel_classes_and_names(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        config = CoreConfig()

        def policy():
            return make_policy("indexed-3-fwd+dly")

        assert type(make_core(config, policy(), "object")) is OutOfOrderCore
        assert type(make_core(config, policy(), "vector")) is VectorCore
        assert OutOfOrderCore.kernel_name == "object"
        assert VectorCore.kernel_name == "vector"
        assert CompiledCore.kernel_name == "compiled"
        auto = make_core(config, policy())
        assert isinstance(auto, VectorCore)

    def test_environment_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "object")
        core = make_core(CoreConfig(), make_policy("indexed-3-fwd+dly"))
        assert type(core) is OutOfOrderCore

    @pytest.mark.skipif(compiled_kernel_available(),
                        reason="compiled kernel is built here")
    def test_compiled_without_extension_is_an_env_knob_error(self):
        with pytest.raises(EnvKnobError, match="build_kernel"):
            make_core(CoreConfig(), make_policy("indexed-3-fwd+dly"),
                      "compiled")


class TestVectorFallback:
    def test_object_trace_falls_back_to_object_loop(self):
        """The MicroOp back-compat path runs the object kernel's loop —
        and stays bit-identical to the encoded fast path."""
        encoded = build_workload("gzip", instructions=FAST.instructions,
                                 seed=1)
        object_trace = DynamicTrace(name="gzip", uops=encoded.uops)
        vec = VectorCore(CoreConfig(), make_policy("indexed-3-fwd+dly"))
        via_objects = vec.run(
            object_trace, stats_warmup_fraction=FAST.stats_warmup_fraction)
        ref = VectorCore(CoreConfig(), make_policy("indexed-3-fwd+dly")).run(
            encoded, stats_warmup_fraction=FAST.stats_warmup_fraction)
        assert _stats_dict(via_objects) == _stats_dict(ref)

    def test_overridden_stage_method_falls_back(self):
        """A subclass customising an inlined stage must get the object
        kernel's call structure (the override must actually run)."""
        calls = []

        class Instrumented(VectorCore):
            def _commit_stage(self):
                calls.append(self._cycle)
                return super()._commit_stage()

        assert not Instrumented._stock_loop()
        encoded = build_workload("gzip", instructions=FAST.instructions,
                                 seed=1)
        result = Instrumented(CoreConfig(), make_policy("indexed-3-fwd+dly")) \
            .run(encoded, stats_warmup_fraction=FAST.stats_warmup_fraction)
        assert calls, "overridden stage never ran"
        ref = OutOfOrderCore(CoreConfig(), make_policy("indexed-3-fwd+dly")) \
            .run(encoded, stats_warmup_fraction=FAST.stats_warmup_fraction)
        assert _stats_dict(result) == _stats_dict(ref)

    def test_stock_subclass_uses_fused_loop(self):
        class Stock(VectorCore):
            pass

        assert Stock._stock_loop()


class TestEngineReporting:
    def test_last_run_stats_reports_effective_kernel(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        specs = [JobSpec("gzip", "indexed-3-fwd", FAST)]
        for name in ("object", "vector"):
            monkeypatch.setenv("REPRO_KERNEL", name)
            engine = ExperimentEngine(jobs=1, cache=False)
            engine.run(specs)
            assert engine.last_run_stats["kernel"] == name
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        engine = ExperimentEngine(jobs=1, cache=False)
        engine.run(specs)
        assert engine.last_run_stats["kernel"] == resolve_kernel()

    def test_forced_kernels_produce_identical_records(self, monkeypatch):
        results = {}
        for name in ("object", "vector"):
            monkeypatch.setenv("REPRO_KERNEL", name)
            engine = ExperimentEngine(jobs=1, cache=False)
            record, = engine.run([JobSpec("vortex", "indexed-3-fwd+dly",
                                          FAST)])
            results[name] = _stats_dict(record.result)
        assert results["object"] == results["vector"]

    def test_serial_parallel_cached_equivalent_under_vector(self, monkeypatch,
                                                            tmp_path):
        """The engine-equivalence contract, explicitly pinned to the
        vector kernel: serial, parallel, and cache-served runs are
        bit-identical."""
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        specs = [JobSpec("gzip", "indexed-3-fwd", FAST),
                 JobSpec("gzip", "associative-3", FAST)]
        serial = ExperimentEngine(jobs=1, cache=False).run(specs)
        parallel = ExperimentEngine(jobs=2, cache=False).run(specs)
        caching = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        first = caching.run(specs)
        cached = caching.run(specs)
        assert caching.last_run_stats["cache_hits"] == len(specs)
        for a, b, c, d in zip(serial, parallel, first, cached):
            want = _stats_dict(a.result)
            assert _stats_dict(b.result) == want
            assert _stats_dict(c.result) == want
            assert _stats_dict(d.result) == want


class TestProfileKnob:
    def test_unset_zero_and_empty_disable(self, monkeypatch):
        for raw in (None, "", "0"):
            if raw is None:
                monkeypatch.delenv("REPRO_PROFILE", raising=False)
            else:
                monkeypatch.setenv("REPRO_PROFILE", raw)
            assert resolve_profile_dir() is None

    def test_one_means_default_directory(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert resolve_profile_dir() == ".repro-profile"

    def test_path_is_the_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path / "prof"))
        assert resolve_profile_dir() == str(tmp_path / "prof")

    def test_existing_file_is_an_env_knob_error(self, monkeypatch, tmp_path):
        clash = tmp_path / "not-a-dir"
        clash.write_text("x")
        monkeypatch.setenv("REPRO_PROFILE", str(clash))
        with pytest.raises(EnvKnobError, match="REPRO_PROFILE"):
            resolve_profile_dir()
        with pytest.raises(EnvKnobError):
            ExperimentEngine(jobs=1, cache=False)

    def test_profiled_run_dumps_and_aggregates(self, monkeypatch, tmp_path):
        root = tmp_path / "prof"
        monkeypatch.setenv("REPRO_PROFILE", str(root))
        engine = ExperimentEngine(jobs=1, cache=False)
        specs = [JobSpec("gzip", "indexed-3-fwd", FAST),
                 JobSpec("gzip", "associative-3", FAST)]
        records = engine.run(specs)
        assert len(records) == len(specs)
        profile = engine.last_run_stats["profile"]
        assert profile["files"] == len(specs)
        assert os.path.isdir(profile["dir"])
        dumps = [name for name in os.listdir(profile["dir"])
                 if name.endswith(".pstats")]
        assert len(dumps) == len(specs)
        top = profile["top_cumulative"]
        assert top and {"site", "cumtime_s", "calls"} <= set(top[0])
        # The run-scoped env handoff never leaks past the run.
        assert "_REPRO_PROFILE_RUN" not in os.environ

    def test_profiling_changes_no_statistic(self, monkeypatch, tmp_path):
        trace = build_workload("gzip", instructions=FAST.instructions, seed=1)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        plain = run_workload(trace, "indexed-3-fwd", FAST)
        monkeypatch.setenv("REPRO_PROFILE", str(tmp_path / "prof"))
        engine = ExperimentEngine(jobs=1, cache=False)
        profiled, = engine.run([JobSpec("gzip", "indexed-3-fwd", FAST)])
        assert _stats_dict(profiled.result) == _stats_dict(plain.result)

    def test_all_runs_unprofiled_without_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        monkeypatch.delenv("_REPRO_PROFILE_RUN", raising=False)
        engine = ExperimentEngine(jobs=1, cache=False)
        engine.run([JobSpec("gzip", "indexed-3-fwd", FAST)])
        assert "profile" not in engine.last_run_stats

    def test_run_job_respects_run_dir_handoff(self, monkeypatch, tmp_path):
        """Workers see only the private ``_REPRO_PROFILE_RUN`` handoff (the
        engine owns run-dir creation); a bare ``run_job`` call dumps there."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        monkeypatch.setenv("_REPRO_PROFILE_RUN", str(run_dir))
        run_job(JobSpec("gzip", "indexed-3-fwd", FAST))
        dumps = list(run_dir.glob("job-*.pstats"))
        assert len(dumps) == 1

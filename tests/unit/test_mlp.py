"""Unit tests for the non-blocking memory hierarchy (repro.memory.mlp).

``TestMSHRFile`` is the synapse32 ``MSHR_REVIEW.md`` checklist ported to
this model: basic allocation, allocation refused when full, CAM match hit
and miss, coalescing (word-mask offsets), retire freeing the entry, index
stability (first-fit priority encoding), and full -> retire -> alloc.

``TestDegenerateBlocking`` is the degeneracy anchor: ``mshr_entries=1``
with no non-blocking L2 and no prefetcher must be bit-identical to the
blocking :class:`~repro.memory.hierarchy.MemoryHierarchy` — checked as a
property over random access streams here, and end to end against the
golden file by ``tests/integration/test_golden_regression.py``'s MLP
counterpart.
"""

import pickle
import random

import pytest

from repro.memory import (
    MemoryHierarchy,
    MemoryHierarchyConfig,
    MLPConfig,
    MSHRFile,
    NonBlockingHierarchy,
    PrefetchConfig,
    StridePrefetcher,
    build_hierarchy,
)
from repro.pipeline.config import small_test_config
from repro.workloads.suites import build_workload


def mlp_config(**overrides) -> MLPConfig:
    params = dict(enabled=True, mshr_entries=4)
    params.update(overrides)
    return MLPConfig(**params)


def nonblocking(**overrides) -> NonBlockingHierarchy:
    hierarchy = build_hierarchy(MemoryHierarchyConfig(mlp=mlp_config(**overrides)))
    assert isinstance(hierarchy, NonBlockingHierarchy)
    return hierarchy


class TestMLPConfig:
    def test_disabled_by_default(self):
        assert MemoryHierarchyConfig().mlp.enabled is False
        assert type(build_hierarchy(MemoryHierarchyConfig())) is MemoryHierarchy

    def test_degenerate_mode_requires_blocking_features_off(self):
        with pytest.raises(ValueError):
            MLPConfig(enabled=True, mshr_entries=1, l2_enabled=True)
        with pytest.raises(ValueError):
            MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False,
                      prefetch=PrefetchConfig(enabled=True))
        MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False)  # valid

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MLPConfig(enabled=True, mshr_entries=0)

    def test_prefetch_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(table_entries=3)
        with pytest.raises(ValueError):
            PrefetchConfig(degree=0)


class TestMSHRFile:
    """The synapse32 review's eight-case checklist."""

    def test_basic_allocation(self):
        mshr = MSHRFile(4)
        entry = mshr.alloc(0x1000, fill_cycle=100)
        assert entry is not None
        assert entry.index == 0
        assert entry.line == 0x1000 >> 6
        assert entry.fill_cycle == 100
        assert mshr.occupancy == 1
        assert mshr.demand_inflight == 1

    def test_alloc_refused_when_full(self):
        mshr = MSHRFile(2)
        assert mshr.alloc(0x1000, 100) is not None
        assert mshr.alloc(0x2000, 100) is not None
        assert mshr.full
        assert mshr.alloc(0x3000, 100) is None       # alloc_ready deasserted
        assert mshr.occupancy == 2

    def test_match_hit_same_line(self):
        mshr = MSHRFile(4)
        allocated = mshr.alloc(0x1000, 100)
        hit = mshr.match(0x1038)                     # same 64B line, last word
        assert hit is allocated

    def test_match_miss_different_line(self):
        mshr = MSHRFile(4)
        mshr.alloc(0x1000, 100)
        assert mshr.match(0x1040) is None            # adjacent line
        assert mshr.match(0x2000) is None

    def test_coalesce_records_word_offsets(self):
        mshr = MSHRFile(4)
        entry = mshr.alloc(0x1000, 100)              # word 0
        assert entry.word_mask == 0b1
        mshr.coalesce(entry, 0x1004)                 # word 1
        mshr.coalesce(entry, 0x103C)                 # word 15
        assert entry.word_mask == (1 << 15) | 0b11
        assert entry.coalesced == 2
        assert mshr.occupancy == 1                   # still one entry

    def test_retire_frees_entry(self):
        mshr = MSHRFile(2)
        entry = mshr.alloc(0x1000, 100)
        retired = mshr.retire(entry.index)
        assert retired is entry
        assert mshr.occupancy == 0
        assert mshr.match(0x1000) is None
        with pytest.raises(ValueError):
            mshr.retire(entry.index)                 # already invalid

    def test_index_stability_first_fit(self):
        """Lowest free index wins (priority encoding), and an entry's index
        is stable while peers retire around it."""
        mshr = MSHRFile(4)
        e0 = mshr.alloc(0x1000, 100)
        e1 = mshr.alloc(0x2000, 100)
        e2 = mshr.alloc(0x3000, 100)
        assert (e0.index, e1.index, e2.index) == (0, 1, 2)
        mshr.retire(e1.index)
        assert mshr.match(0x3000).index == 2         # survivor keeps its index
        e3 = mshr.alloc(0x4000, 100)
        assert e3.index == 1                         # lowest free, not next-up
        assert mshr.match(0x4000) is e3

    def test_full_retire_alloc_cycle(self):
        mshr = MSHRFile(2)
        e0 = mshr.alloc(0x1000, 100)
        mshr.alloc(0x2000, 110)
        assert mshr.alloc(0x3000, 120) is None
        mshr.retire(e0.index)
        again = mshr.alloc(0x3000, 120)
        assert again is not None and again.index == 0

    # -- beyond the checklist: invariants this model adds ---------------------

    def test_double_allocation_of_inflight_line_rejected(self):
        mshr = MSHRFile(4)
        mshr.alloc(0x1000, 100)
        with pytest.raises(ValueError):
            mshr.alloc(0x1010, 100)                  # same line: must coalesce

    def test_retire_due_orders_by_fill_then_index(self):
        mshr = MSHRFile(4)
        mshr.alloc(0x1000, 300)
        mshr.alloc(0x2000, 100)
        mshr.alloc(0x3000, 100)
        due = mshr.retire_due(200)
        assert [(entry.fill_cycle, entry.index) for entry in due] == [(100, 1), (100, 2)]
        assert mshr.occupancy == 1                   # fill at 300 still pending
        assert mshr.retire_due(99) == []

    def test_prefetch_promotion_on_coalesce(self):
        mshr = MSHRFile(4)
        entry = mshr.alloc(0x1000, 100, is_prefetch=True)
        assert mshr.demand_inflight == 0 and mshr.prefetch_inflight == 1
        mshr.coalesce(entry, 0x1008)
        assert not entry.is_prefetch
        assert mshr.demand_inflight == 1 and mshr.prefetch_inflight == 0

    def test_export_import_state_signature_roundtrip(self):
        mshr = MSHRFile(4)
        entry = mshr.alloc(0x1000, 100, is_prefetch=True, install_l2=True)
        mshr.coalesce(entry, 0x1004)
        mshr.alloc(0x2000, 200)
        other = MSHRFile(4)
        other.import_state(mshr.export_state())
        assert other.state_signature() == mshr.state_signature()
        assert other.demand_inflight == mshr.demand_inflight
        with pytest.raises(ValueError):
            MSHRFile(8).import_state(mshr.export_state())   # geometry mismatch


class TestStridePrefetcher:
    def test_detects_stride_after_confidence(self):
        prefetcher = StridePrefetcher(PrefetchConfig(enabled=True, confidence=2, degree=2))
        targets = []
        for i in range(6):
            targets = prefetcher.observe(0x400, 0x10000 + i * 64)
        assert targets == [0x10000 + 6 * 64, 0x10000 + 7 * 64]

    def test_no_prefetch_on_irregular_pattern(self):
        prefetcher = StridePrefetcher(PrefetchConfig(enabled=True))
        rng = random.Random(3)
        for _ in range(100):
            assert prefetcher.observe(0x400, rng.randrange(1 << 20) * 8) == []

    def test_zero_stride_never_prefetches(self):
        prefetcher = StridePrefetcher(PrefetchConfig(enabled=True, confidence=1))
        for _ in range(10):
            assert prefetcher.observe(0x400, 0x5000) == []

    def test_state_roundtrip(self):
        prefetcher = StridePrefetcher(PrefetchConfig(enabled=True))
        for i in range(8):
            prefetcher.observe(0x400, 0x10000 + i * 64)
        other = StridePrefetcher(PrefetchConfig(enabled=True))
        other.import_state(prefetcher.export_state())
        assert other.state_signature() == prefetcher.state_signature()


class TestNonBlockingHierarchy:
    def test_primary_miss_latency_matches_blocking_chain(self):
        hierarchy = nonblocking(mshr_entries=4, l2_enabled=False)
        config = hierarchy.config
        latency = hierarchy.load_access(0x10000, now=0, pc=1)
        # Cold miss: TLB penalty + L1 + L2 + memory, same as blocking.
        assert latency == (config.l1.latency + config.tlb.miss_penalty
                           + config.l2.latency + config.memory_latency)

    def test_secondary_miss_completes_at_fill(self):
        hierarchy = nonblocking()
        primary = hierarchy.load_access(0x10000, now=0, pc=1)
        fill = primary
        coalesced = hierarchy.load_access(0x10008, now=10, pc=2)
        assert coalesced == fill - 10
        assert hierarchy.mlp_stats.misses_coalesced == 1
        assert hierarchy.mshr.occupancy == 1

    def test_fill_installs_line_lazily(self):
        hierarchy = nonblocking()
        primary = hierarchy.load_access(0x10000, now=0, pc=1)
        assert not hierarchy.l1.lookup(0x10000)          # not installed at miss
        hit = hierarchy.load_access(0x10000, now=primary + 1, pc=1)
        assert hit == hierarchy.config.l1.latency        # fill landed -> L1 hit
        assert hierarchy.l1.lookup(0x10000)

    def test_would_block_only_when_full_and_unmatched(self):
        hierarchy = nonblocking(mshr_entries=2)
        hierarchy.load_access(0x10000, now=0, pc=1)
        assert not hierarchy.load_would_block(0x20000, 1)    # free entry left
        hierarchy.load_access(0x20000, now=1, pc=2)
        assert hierarchy.load_would_block(0x30000, 2)        # full, new line
        assert not hierarchy.load_would_block(0x10008, 2)    # coalescible
        hierarchy.l1.touch_line(0x40000)
        assert not hierarchy.load_would_block(0x40000, 2)    # resident

    def test_stall_clears_on_fill_cycle(self):
        hierarchy = nonblocking(mshr_entries=2)
        first = hierarchy.load_access(0x10000, now=0, pc=1)
        hierarchy.load_access(0x20000, now=0, pc=2)
        assert hierarchy.load_would_block(0x30000, first - 1)
        assert not hierarchy.load_would_block(0x30000, first)

    def test_mlp_average_counts_overlap(self):
        hierarchy = nonblocking(mshr_entries=4)
        hierarchy.load_access(0x10000, now=0, pc=1)
        hierarchy.load_access(0x20000, now=1, pc=2)
        hierarchy.load_access(0x30000, now=2, pc=3)
        stats = hierarchy.mlp_stats
        assert stats.demand_misses == 3
        assert stats.inflight_sum == 1 + 2 + 3
        assert stats.mlp_avg == 2.0
        assert stats.occupancy_peak == 3

    def test_prefetch_does_not_pollute_demand_stats(self):
        hierarchy = nonblocking(
            mshr_entries=8,
            prefetch=PrefetchConfig(enabled=True, confidence=1, degree=1))
        now = 0
        for i in range(4):                     # train + trigger prefetches
            hierarchy.load_access(0x10000 + i * 64, now, pc=0x40)
            now += 1
        issued = hierarchy.mlp_stats.prefetch_issued
        assert issued > 0
        assert hierarchy.stats.load_accesses == 4          # demand-only counter
        l1 = hierarchy.l1.stats
        assert l1.accesses == 4                            # lookups don't count

    def test_prefetch_never_claims_last_entry(self):
        hierarchy = nonblocking(
            mshr_entries=2,
            prefetch=PrefetchConfig(enabled=True, confidence=1, degree=4))
        hierarchy.load_access(0x10000, now=0, pc=0x40)
        hierarchy.load_access(0x10040, now=1, pc=0x40)     # stride trained
        assert hierarchy.mshr.free_entries == 0 or hierarchy.mshr.demand_inflight == 2
        assert hierarchy.mlp_stats.prefetch_issued == 0    # only 1 entry was free

    def test_prefetch_useful_scored_on_demand_hit(self):
        hierarchy = nonblocking(
            mshr_entries=8,
            prefetch=PrefetchConfig(enabled=True, confidence=1, degree=1))
        now = 0
        for i in range(16):
            hierarchy.load_access(0x10000 + i * 64, now, pc=0x40)
            now += 400                          # every fill lands in between
        stats = hierarchy.mlp_stats
        assert stats.prefetch_issued > 0
        assert stats.prefetch_useful > 0
        assert stats.prefetch_useful <= stats.prefetch_issued

    def test_reset_stats_clears_counters_not_state(self):
        hierarchy = nonblocking()
        hierarchy.load_access(0x10000, now=0, pc=1)
        hierarchy.reset_stats()
        assert hierarchy.mlp_stats.demand_misses == 0
        assert hierarchy.mshr.occupancy == 1               # in-flight state kept

    def test_drain_completes_outstanding_fills(self):
        hierarchy = nonblocking()
        hierarchy.load_access(0x10000, now=0, pc=1)
        hierarchy.drain()
        assert hierarchy.mshr.occupancy == 0
        assert hierarchy.l1.lookup(0x10000)

    def test_pickle_roundtrip_preserves_signature(self):
        hierarchy = nonblocking(
            prefetch=PrefetchConfig(enabled=True, confidence=1))
        for i in range(8):
            hierarchy.load_access(0x10000 + i * 64, now=i, pc=0x40)
        clone = pickle.loads(pickle.dumps(hierarchy))
        assert clone.state_signature() == hierarchy.state_signature()


class TestDegenerateBlocking:
    """mshr_entries=1 + no L2 + no prefetcher == the blocking hierarchy."""

    def degenerate(self) -> NonBlockingHierarchy:
        return nonblocking(mshr_entries=1, l2_enabled=False)

    def test_degenerate_is_marked_blocking(self):
        hierarchy = self.degenerate()
        assert not hierarchy.nonblocking
        assert not hierarchy.load_would_block(0x1000, 0)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_streams_bit_identical(self, seed):
        blocking = MemoryHierarchy(MemoryHierarchyConfig())
        degenerate = self.degenerate()
        rng = random.Random(seed)
        for now in range(5000):
            addr = rng.randrange(0, 1 << 22)
            if rng.random() < 0.2:
                assert (blocking.store_touch(addr)
                        == degenerate.store_touch(addr))
            else:
                assert (blocking.load_latency(addr)
                        == degenerate.load_access(addr, now, pc=now & 1023))
        # Same latencies, same final tag/LRU state, same counters.
        assert degenerate.state_signature()[:3] == blocking.state_signature()
        for name in ("load_accesses", "store_accesses", "l1_misses",
                     "l2_misses", "tlb_misses"):
            assert getattr(degenerate.stats, name) == getattr(blocking.stats, name)

    def test_core_run_bit_identical_to_blocking(self):
        from repro.lsu.policies import IndexedSQPolicy
        from repro.pipeline.core import OutOfOrderCore

        trace = build_workload("gzip", instructions=3000, seed=5)
        results = []
        for mlp in (MLPConfig(),
                    MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False)):
            config = small_test_config(
                memory=MemoryHierarchyConfig(mlp=mlp))
            core = OutOfOrderCore(config, IndexedSQPolicy(sq_size=8, use_delay=True))
            result = core.run(trace, stats_warmup_fraction=0.25)
            # The config differs (by the mlp knob), so compare the payload.
            results.append((result.stats.as_dict(), result.extra))
        assert results[0] == results[1]


class TestCoreIntegration:
    def run_core(self, mlp: MLPConfig, workload: str = "swim",
                 instructions: int = 3000):
        from repro.lsu.policies import AssociativeStoreSetsPolicy
        from repro.pipeline.core import OutOfOrderCore

        trace = build_workload(workload, instructions=instructions, seed=5)
        config = small_test_config(memory=MemoryHierarchyConfig(mlp=mlp))
        core = OutOfOrderCore(config, AssociativeStoreSetsPolicy(sq_size=8, sq_latency=5))
        return core.run(trace, stats_warmup_fraction=0.0)

    def test_structural_stalls_reported_and_priced(self):
        # mcf's pointer-chasing working set keeps a 2-entry MSHR file on the
        # critical path; with 32 entries the same run never stalls.
        tight = self.run_core(MLPConfig(enabled=True, mshr_entries=2),
                              workload="mcf", instructions=8000)
        roomy = self.run_core(MLPConfig(enabled=True, mshr_entries=32),
                              workload="mcf", instructions=8000)
        assert tight.stats.mshr_stall_cycles > 0
        assert roomy.stats.mshr_stall_cycles == 0
        assert tight.stats.cycles > roomy.stats.cycles
        assert tight.stats.committed == roomy.stats.committed

    def test_mlp_counters_surface_in_stats_and_extra(self):
        result = self.run_core(MLPConfig(enabled=True, mshr_entries=8))
        stats = result.stats
        assert stats.mshr_modeled == 1
        assert stats.mshr_demand_misses > 0
        assert stats.mshr_occupancy >= 1
        assert stats.mlp_avg >= 1.0
        payload = stats.as_dict()
        assert payload["mlp_avg"] == stats.mlp_avg
        assert result.extra["mlp_avg"] == stats.mlp_avg
        assert result.extra["mshr_occupancy"] == float(stats.mshr_occupancy)

    def test_blocking_run_omits_mlp_keys(self):
        result = self.run_core(MLPConfig())
        payload = result.stats.as_dict()
        assert "mshr_modeled" not in payload
        assert "mlp_avg" not in payload
        assert "mlp_avg" not in result.extra

    def test_export_import_roundtrip_preserves_hierarchy(self):
        from repro.lsu.policies import IndexedSQPolicy
        from repro.pipeline.core import OutOfOrderCore

        mlp = MLPConfig(enabled=True, mshr_entries=8,
                        prefetch=PrefetchConfig(enabled=True, confidence=1))
        trace = build_workload("swim", instructions=2000, seed=5)
        config = small_test_config(memory=MemoryHierarchyConfig(mlp=mlp))
        core = OutOfOrderCore(config, IndexedSQPolicy(sq_size=8))
        core.run(trace, stats_warmup_fraction=0.0)
        state = pickle.loads(pickle.dumps(core.export_state()))
        adopted = OutOfOrderCore(config, IndexedSQPolicy(sq_size=8))
        adopted.import_state(state)
        assert adopted._mlp_hier is adopted.hierarchy
        assert (adopted.hierarchy.state_signature()
                == core.hierarchy.state_signature())
        assert adopted.hierarchy.mlp_stats.demand_misses == 0   # counters reset

"""Unit tests for the CACTI-style SQ latency/energy model (Table 2)."""

import pytest

from repro.harness.paper_data import TABLE2_SQ, TABLE2_DCACHE, TABLE2_TLB
from repro.timing.cacti import (
    SQGeometry,
    associative_sq_access,
    associative_sq_energy,
    dcache_bank_access,
    indexed_sq_access,
    indexed_sq_energy,
    ns_to_cycles,
    tlb_access,
)
from repro.timing.sq_model import (
    TABLE2_ENTRIES,
    TABLE2_PORTS,
    reference_rows,
    sq_energy_comparison,
    sq_latency_row,
    sq_latency_table,
)


class TestGeometry:
    def test_defaults_match_paper(self):
        geometry = SQGeometry(entries=64)
        assert geometry.cam_bits == 12
        assert geometry.assoc_ram_bits == 96
        assert geometry.indexed_ram_bits == 108

    def test_validation(self):
        with pytest.raises(ValueError):
            SQGeometry(entries=48)
        with pytest.raises(ValueError):
            SQGeometry(entries=64, load_ports=0)


class TestCycleConversion:
    def test_simple_cases(self):
        assert ns_to_cycles(0.60) == 2
        assert ns_to_cycles(1.38) == 5
        assert ns_to_cycles(0.98) == 3

    def test_margin_rule(self):
        # 1.34 ns is 4.02 cycles at 3 GHz; the 5% margin credits it with 4
        # cycles, matching the paper's conversion.
        assert ns_to_cycles(1.34) == 4

    def test_minimum_one_cycle(self):
        assert ns_to_cycles(0.01) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ns_to_cycles(0.0)


class TestLatencyTrends:
    def test_indexed_faster_than_associative_everywhere(self):
        for entries in TABLE2_ENTRIES:
            for ports in TABLE2_PORTS:
                row = sq_latency_row(entries, ports)
                assert row.indexed_ns < row.associative_ns
                assert row.indexed_cycles <= row.associative_cycles

    def test_latency_monotonic_in_entries(self):
        for ports in TABLE2_PORTS:
            assoc = [sq_latency_row(e, ports).associative_ns for e in TABLE2_ENTRIES]
            index = [sq_latency_row(e, ports).indexed_ns for e in TABLE2_ENTRIES]
            assert assoc == sorted(assoc)
            assert index == sorted(index)

    def test_latency_monotonic_in_ports(self):
        for entries in TABLE2_ENTRIES:
            one = sq_latency_row(entries, 1)
            two = sq_latency_row(entries, 2)
            assert two.associative_ns >= one.associative_ns
            assert two.indexed_ns >= one.indexed_ns

    def test_associative_grows_faster_than_indexed(self):
        small = sq_latency_row(16, 2)
        large = sq_latency_row(256, 2)
        assoc_growth = large.associative_ns - small.associative_ns
        index_growth = large.indexed_ns - small.indexed_ns
        assert assoc_growth > 2 * index_growth

    def test_cycle_counts_match_paper(self):
        """Every (entries, ports) point reproduces the paper's cycle count."""
        for (entries, ports), (_, assoc_cycles, _, idx_cycles) in TABLE2_SQ.items():
            row = sq_latency_row(entries, ports)
            assert row.associative_cycles == assoc_cycles, (entries, ports)
            assert row.indexed_cycles == idx_cycles, (entries, ports)

    def test_ns_within_tolerance_of_paper(self):
        """Latencies land within 20% of the paper's CACTI numbers."""
        for (entries, ports), (assoc_ns, _, idx_ns, _) in TABLE2_SQ.items():
            row = sq_latency_row(entries, ports)
            assert row.associative_ns == pytest.approx(assoc_ns, rel=0.20)
            assert row.indexed_ns == pytest.approx(idx_ns, rel=0.20)

    def test_paper_headline_64_entry_point(self):
        """The 64-entry, 2-port design point: ~1.38ns/5cyc vs ~0.60ns/2cyc."""
        row = sq_latency_row(64, 2)
        assert row.associative_cycles == 5
        assert row.indexed_cycles == 2

    def test_indexed_sq_at_or_below_dcache_latency(self):
        dcache = dcache_bank_access(32, load_ports=2)
        for entries in TABLE2_ENTRIES:
            row = sq_latency_row(entries, 2)
            assert row.indexed_cycles <= dcache.cycles


class TestReferenceStructures:
    def test_dcache_cycles_match_paper(self):
        for (size_kb, ports), (_, cycles) in TABLE2_DCACHE.items():
            assert dcache_bank_access(size_kb, load_ports=ports).cycles == cycles

    def test_tlb_cycles_match_paper(self):
        for ports, (_, cycles) in TABLE2_TLB.items():
            assert tlb_access(32, load_ports=ports).cycles == cycles

    def test_reference_rows_structure(self):
        rows = reference_rows()
        assert set(rows) == {"dcache_8kb", "dcache_32kb", "tlb_32"}
        assert set(rows["tlb_32"]) == {1, 2}

    def test_dcache_validation(self):
        with pytest.raises(ValueError):
            dcache_bank_access(0)
        with pytest.raises(ValueError):
            tlb_access(0)


class TestEnergy:
    def test_indexed_saves_about_30_percent_at_64_2(self):
        comparison = sq_energy_comparison(64, 2)
        assert 0.20 <= comparison.indexed_savings <= 0.40

    def test_savings_grow_with_entries(self):
        small = sq_energy_comparison(16, 2)
        large = sq_energy_comparison(256, 2)
        assert large.indexed_savings > small.indexed_savings

    def test_energy_components_positive(self):
        geometry = SQGeometry(entries=64, load_ports=2)
        assert indexed_sq_energy(geometry).total > 0
        assert associative_sq_energy(geometry).total > 0
        assert associative_sq_energy(geometry).match > 0
        assert indexed_sq_energy(geometry).match == 0

    def test_timing_components_positive(self):
        geometry = SQGeometry(entries=64, load_ports=2)
        assoc = associative_sq_access(geometry)
        index = indexed_sq_access(geometry)
        assert assoc.match_ns > 0 and index.match_ns == 0
        assert assoc.total_ns == pytest.approx(
            assoc.decoder_ns + assoc.array_ns + assoc.match_ns + assoc.output_ns)


class TestTable:
    def test_full_table_has_all_rows(self):
        rows = sq_latency_table()
        assert len(rows) == len(TABLE2_ENTRIES) * len(TABLE2_PORTS)

    def test_speedup_ratio(self):
        row = sq_latency_row(256, 2)
        assert row.speedup_ns > 2.0

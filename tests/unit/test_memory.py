"""Unit tests for the memory substrate: image, caches, TLB, hierarchy."""

import pytest

from repro.memory.cache import Cache, CacheConfig, DEFAULT_L1_CONFIG, DEFAULT_L2_CONFIG
from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memory.image import MemoryImage
from repro.memory.tlb import TLB, TLBConfig


class TestMemoryImage:
    def test_write_read_roundtrip(self):
        image = MemoryImage()
        image.write(0x1000, 8, 0x1122334455667788)
        assert image.read(0x1000, 8) == 0x1122334455667788

    def test_little_endian_byte_order(self):
        image = MemoryImage()
        image.write(0x1000, 4, 0xAABBCCDD)
        assert image.read_byte(0x1000) == 0xDD
        assert image.read_byte(0x1003) == 0xAA

    def test_partial_read_of_wide_write(self):
        image = MemoryImage()
        image.write(0x1000, 8, 0x1122334455667788)
        assert image.read(0x1000, 4) == 0x55667788
        assert image.read(0x1004, 4) == 0x11223344

    def test_overlapping_writes_latest_wins(self):
        image = MemoryImage()
        image.write(0x1000, 8, 0)
        image.write(0x1004, 2, 0xBEEF)
        assert image.read(0x1004, 2) == 0xBEEF
        assert image.read(0x1000, 4) == 0

    def test_unwritten_bytes_deterministic(self):
        a = MemoryImage()
        b = MemoryImage()
        assert a.read(0x5000, 8) == b.read(0x5000, 8)

    def test_unwritten_bytes_differ_across_addresses(self):
        image = MemoryImage()
        values = {image.read(0x1000 + 8 * i, 8) for i in range(16)}
        assert len(values) > 1

    def test_is_written(self):
        image = MemoryImage()
        assert not image.is_written(0x1000)
        image.write(0x1000, 1, 0x7)
        assert image.is_written(0x1000)
        assert not image.is_written(0x1001)

    def test_written_byte_count(self):
        image = MemoryImage()
        image.write(0x1000, 8, 0)
        assert image.written_byte_count() == 8

    def test_copy_is_independent(self):
        image = MemoryImage()
        image.write(0x1000, 1, 1)
        clone = image.copy()
        clone.write(0x1000, 1, 2)
        assert image.read(0x1000, 1) == 1
        assert clone.read(0x1000, 1) == 2

    def test_clear(self):
        image = MemoryImage()
        image.write(0x1000, 1, 1)
        image.clear()
        assert not image.is_written(0x1000)

    def test_invalid_sizes_rejected(self):
        image = MemoryImage()
        with pytest.raises(ValueError):
            image.read(0x1000, 0)
        with pytest.raises(ValueError):
            image.write(0x1000, 0, 1)
        with pytest.raises(ValueError):
            image.write(0x1000, 1, -1)


class TestCacheConfig:
    def test_default_configs_valid(self):
        assert DEFAULT_L1_CONFIG.n_sets == 64 * 1024 // (2 * 64)
        assert DEFAULT_L2_CONFIG.n_sets == 1024 * 1024 // (8 * 64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=3 * 1024, assoc=2, line_bytes=64, latency=1)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, assoc=3, line_bytes=64, latency=1)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1024, assoc=1, line_bytes=64, latency=0)


class TestCache:
    def _tiny(self) -> Cache:
        # 4 sets, 2 ways, 64-byte lines.
        return Cache(CacheConfig(name="tiny", size_bytes=512, assoc=2, line_bytes=64, latency=1))

    def test_first_access_misses_then_hits(self):
        cache = self._tiny()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_different_byte_hits(self):
        cache = self._tiny()
        cache.access(0x1000)
        assert cache.access(0x103F) is True

    def test_different_line_misses(self):
        cache = self._tiny()
        cache.access(0x1000)
        assert cache.access(0x1040) is False

    def test_lru_eviction(self):
        cache = self._tiny()
        # Three lines mapping to the same set (stride = n_sets * line = 256).
        a, b, c = 0x0, 0x100, 0x200
        cache.access(a)
        cache.access(b)
        cache.access(c)          # evicts a
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_lru_updated_on_hit(self):
        cache = self._tiny()
        a, b, c = 0x0, 0x100, 0x200
        cache.access(a)
        cache.access(b)
        cache.access(a)          # refresh a; b becomes LRU
        cache.access(c)          # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_lookup_does_not_modify(self):
        cache = self._tiny()
        assert cache.lookup(0x1000) is False
        assert cache.access(0x1000) is False   # still a miss: lookup didn't fill

    def test_touch_line_does_not_count(self):
        cache = self._tiny()
        cache.touch_line(0x1000)
        assert cache.stats.accesses == 0
        assert cache.access(0x1000) is True

    def test_stats(self):
        cache = self._tiny()
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_flush_invalidates_but_keeps_stats(self):
        cache = self._tiny()
        cache.access(0x1000)
        cache.flush()
        assert cache.access(0x1000) is False
        assert cache.stats.accesses == 2

    def test_reset_stats(self):
        cache = self._tiny()
        cache.access(0x1000)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_rates_on_zero_accesses(self):
        stats = self._tiny().stats
        assert stats.accesses == 0
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_probe_counts_but_does_not_install(self):
        cache = self._tiny()
        assert cache.probe(0x1000) is False
        assert cache.stats.misses == 1
        assert cache.access(0x1000) is False   # probe miss didn't fill

    def test_probe_hit_updates_lru(self):
        cache = self._tiny()
        cache.access(0x1000)                   # way 0
        cache.access(0x1000 + 512)             # way 1 (same set)
        assert cache.probe(0x1000) is True     # 0x1000 becomes MRU
        cache.access(0x1000 + 1024)            # evicts LRU = 0x1200
        assert cache.lookup(0x1000) is True
        assert cache.lookup(0x1000 + 512) is False


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(TLBConfig(entries=4, assoc=2, miss_penalty=30))
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1800) == 0        # same 4KB page

    def test_different_page_misses(self):
        tlb = TLB(TLBConfig(entries=4, assoc=2, miss_penalty=30))
        tlb.access(0x1000)
        assert tlb.access(0x2000) == 30

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=5, assoc=2)
        with pytest.raises(ValueError):
            TLBConfig(page_bytes=3000)

    def test_flush(self):
        tlb = TLB()
        tlb.access(0x1000)
        tlb.flush()
        assert tlb.access(0x1000) > 0


class TestHierarchy:
    def _small(self) -> MemoryHierarchy:
        config = MemoryHierarchyConfig(
            l1=CacheConfig(name="L1", size_bytes=1024, assoc=2, line_bytes=64, latency=3),
            l2=CacheConfig(name="L2", size_bytes=8192, assoc=4, line_bytes=64, latency=10),
            memory_latency=100,
            model_tlb=False,
        )
        return MemoryHierarchy(config)

    def test_l1_hit_latency(self):
        hierarchy = self._small()
        hierarchy.warm(0x1000)
        assert hierarchy.load_latency(0x1000) == 3

    def test_cold_miss_goes_to_memory(self):
        hierarchy = self._small()
        assert hierarchy.load_latency(0x9000) == 3 + 10 + 100

    def test_l2_hit_latency(self):
        hierarchy = self._small()
        hierarchy.load_latency(0x9000)                  # install in L1 and L2
        # Evict from tiny L1 by touching conflicting lines, keep in L2.
        for i in range(1, 4):
            hierarchy.l1.access(0x9000 + i * 512)
        assert hierarchy.load_latency(0x9000) == 3 + 10

    def test_tlb_miss_adds_latency(self):
        hierarchy = MemoryHierarchy(MemoryHierarchyConfig(model_tlb=True))
        first = hierarchy.load_latency(0x4000)
        second = hierarchy.load_latency(0x4008)
        assert first > second                           # page walk charged only once

    def test_store_touch_warms_line(self):
        hierarchy = self._small()
        hierarchy.store_touch(0x5000)
        assert hierarchy.load_latency(0x5000) == 3

    def test_stats_accumulate(self):
        hierarchy = self._small()
        hierarchy.load_latency(0x1000)
        hierarchy.store_touch(0x2000)
        assert hierarchy.stats.load_accesses == 1
        assert hierarchy.stats.store_accesses == 1
        assert hierarchy.stats.l1_misses == 2

    def test_reset_stats(self):
        hierarchy = self._small()
        hierarchy.load_latency(0x1000)
        hierarchy.reset_stats()
        assert hierarchy.stats.load_accesses == 0

    def test_l1_latency_property(self):
        assert self._small().l1_latency == 3

    def test_rates_on_zero_accesses(self):
        stats = self._small().stats
        assert stats.l1_miss_rate() == 0.0
        assert stats.l2_miss_rate() == 0.0
        assert stats.tlb_miss_rate() == 0.0

    def test_l2_and_tlb_miss_rates(self):
        hierarchy = MemoryHierarchy(MemoryHierarchyConfig(model_tlb=True))
        hierarchy.load_latency(0x1000)          # cold: misses L1, L2, TLB
        hierarchy.load_latency(0x1000)          # hits everywhere
        stats = hierarchy.stats
        assert stats.l1_miss_rate() == pytest.approx(0.5)
        assert stats.l2_miss_rate() == pytest.approx(1.0)
        assert stats.tlb_miss_rate() == pytest.approx(0.5)

    def test_default_config_matches_paper(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.config.l1.latency == 3
        assert hierarchy.config.l2.latency == 10
        assert hierarchy.config.memory_latency == 150
        assert hierarchy.config.l1.size_bytes == 64 * 1024
        assert hierarchy.config.l2.size_bytes == 1024 * 1024

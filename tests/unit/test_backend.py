"""Unit tests for the pluggable execution-backend seam.

Backend resolution and validation, the dispatcher's ordering/observability
contract, dependency handling, cluster spool hygiene, and the engine-level
satellites (chunksize honored-or-rejected everywhere, scheduler stats in
``last_run_stats``, stale checkpoint-stat carry-over, ``REPRO_BACKEND``
kept out of cache keys).
"""

import asyncio
import glob
import os
import tempfile

import pytest

from repro.exec import (
    BACKEND_NAMES,
    DispatchJob,
    EnvKnobError,
    ExperimentEngine,
    ExperimentFailure,
    JobSpec,
    LocalClusterBackend,
    SerialBackend,
    SupervisedPoolBackend,
    dispatch,
    dispatch_async,
    job_key,
    resolve_backend,
    resolve_backend_name,
    validate_environment,
)
from repro.harness.runner import ExperimentSettings
from repro.sampling.plan import SamplingPlan

FAST = ExperimentSettings(instructions=800, stats_warmup_fraction=0.1)


def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _jobs(n, deps=None):
    return [DispatchJob(index=i, payload=i,
                        deps=tuple(deps.get(i, ())) if deps else ())
            for i in range(n)]


ALL_BACKENDS = [
    pytest.param(lambda: SerialBackend(), id="serial"),
    pytest.param(lambda: SupervisedPoolBackend(2), id="supervised-pool"),
    pytest.param(lambda: SupervisedPoolBackend(2, supervised=False),
                 id="raw-pool"),
    pytest.param(lambda: LocalClusterBackend(2), id="local-cluster"),
]


class TestResolution:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name() is None
        assert resolve_backend(1).capabilities.name == "serial"
        assert resolve_backend(4).capabilities.name == "supervised-pool"

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_forced_backend_wins(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_BACKEND", name)
        assert resolve_backend_name() == name
        assert resolve_backend(1).capabilities.name == name
        assert resolve_backend(8).capabilities.name == name

    @pytest.mark.parametrize("bad", ["cloud", "Serial", "pool", "1"])
    def test_garbage_is_an_env_knob_error(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BACKEND", bad)
        with pytest.raises(EnvKnobError, match="REPRO_BACKEND"):
            resolve_backend_name()
        with pytest.raises(EnvKnobError):
            validate_environment()
        with pytest.raises(EnvKnobError):
            ExperimentEngine(jobs=1, cache=False)

    def test_backend_knob_excluded_from_cache_key(self, monkeypatch):
        """REPRO_BACKEND is execution-only: a forced backend must not
        invalidate (or fork) any cached result."""
        spec = JobSpec("gzip", "indexed-3-fwd", FAST)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        unset = job_key(spec)
        for name in BACKEND_NAMES:
            monkeypatch.setenv("REPRO_BACKEND", name)
            assert job_key(spec) == unset
        monkeypatch.setenv("REPRO_SPOOL_DIR", "/tmp/elsewhere")
        assert job_key(spec) == unset

    def test_capabilities_descriptors(self):
        serial = SerialBackend().capabilities
        pool = SupervisedPoolBackend(3).capabilities
        cluster = LocalClusterBackend(3).capabilities
        assert (serial.name, serial.parallel, serial.distributed) == \
            ("serial", False, False)
        assert not serial.supports_chunksize
        assert pool.supports_chunksize and pool.parallel
        assert cluster.distributed and not cluster.supports_chunksize
        assert cluster.max_workers == 3


class TestDispatchContract:
    @pytest.mark.parametrize("make", ALL_BACKENDS)
    def test_results_in_order(self, make):
        results, stats = dispatch(make(), _square, _jobs(7))
        assert results == [i * i for i in range(7)]
        assert stats.backend == make().capabilities.name
        assert stats.queue_depth_peak == 7
        assert stats.inflight_peak >= 1
        assert stats.dispatch_overhead_ns >= 0

    @pytest.mark.parametrize("make", ALL_BACKENDS)
    def test_empty_submission(self, make):
        results, stats = dispatch(make(), _square, [])
        assert results == []
        assert stats.inflight_peak == 0

    @pytest.mark.parametrize("make", ALL_BACKENDS)
    def test_dependencies_respected(self, make):
        """A chain 0 -> 2 -> 4 plus independent fillers completes with the
        right values on every backend (gating style is backend-specific,
        correctness is not)."""
        deps = {2: (0,), 4: (2,), 5: (1, 3)}
        results, _stats = dispatch(make(), _square, _jobs(6, deps))
        assert results == [i * i for i in range(6)]

    @pytest.mark.parametrize("make", [ALL_BACKENDS[0], ALL_BACKENDS[1],
                                      ALL_BACKENDS[3]])
    def test_failure_is_structured_and_late(self, make):
        """One poisoned job: every other job completes, then a structured
        ExperimentFailure names exactly the poisoned one — identical
        failure semantics across serial, pool, and cluster."""
        sink = {}
        with pytest.raises(ExperimentFailure) as info:
            dispatch(make(), _boom_on_three, _jobs(6), stats_sink=sink)
        assert [failure.index for failure in info.value.failures] == [3]
        assert "three is right out" in info.value.failures[0].error
        assert sink["backend"] == make().capabilities.name

    def test_index_must_match_position(self):
        with pytest.raises(ValueError, match="list position"):
            dispatch(SerialBackend(), _square, [DispatchJob(index=1, payload=1)])

    def test_deps_must_point_earlier(self):
        with pytest.raises(ValueError, match="earlier jobs"):
            dispatch(SerialBackend(), _square,
                     [DispatchJob(index=0, payload=0, deps=(0,))])

    def test_events_stream_through_hook(self):
        events = []
        dispatch(SerialBackend(), _square, _jobs(3), on_event=events.append)
        assert events == [("start", 0), ("done", 0, 0),
                          ("start", 1), ("done", 1, 1),
                          ("start", 2), ("done", 2, 4)]

    def test_async_facade(self):
        async def run():
            seen = []
            async for event in dispatch_async(SerialBackend(), _square,
                                              _jobs(4)):
                seen.append(event)
            return seen

        seen = asyncio.run(run())
        assert seen[-1][0] == "result"
        assert seen[-1][1] == [0, 1, 4, 9]
        assert seen[-1][2].backend == "serial"
        assert [e for e in seen if e[0] == "done"] == \
            [("done", i, i * i) for i in range(4)]


class TestLocalCluster:
    def test_spool_is_removed_and_steals_counted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path))
        backend = LocalClusterBackend(2)
        results, stats = dispatch(backend, _square, _jobs(10))
        assert results == [i * i for i in range(10)]
        assert stats.steals == stats.counters.get("cluster_steals", 0)
        # Clean teardown: no spool directories, tickets, claims, or tmp
        # blobs survive the submit.
        assert os.listdir(tmp_path) == []

    def test_default_spool_location_cleaned(self):
        before = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-spool-*")))
        dispatch(LocalClusterBackend(2), _square, _jobs(4))
        after = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "repro-spool-*")))
        assert after - before == set()

    def test_workers_are_reaped_on_abandoned_iterator(self, tmp_path,
                                                      monkeypatch):
        import multiprocessing

        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path))
        backend = LocalClusterBackend(2)
        events = backend.submit(_square, _jobs(6))
        next(events)  # workers are up
        events.close()  # abandon mid-run: finally must reap + clean
        assert os.listdir(tmp_path) == []
        assert multiprocessing.active_children() == []

    def test_duplicate_payloads_stay_distinct(self):
        jobs = [DispatchJob(index=i, payload=7) for i in range(3)]
        results, _stats = dispatch(LocalClusterBackend(2), _square, jobs)
        assert results == [49, 49, 49]


class TestEngineSeam:
    def _specs(self, settings=FAST):
        return [JobSpec("gzip", name, settings)
                for name in ("oracle-associative-3", "indexed-3-fwd")]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_forced_backend_bit_identical(self, monkeypatch, name):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        reference = ExperimentEngine(jobs=1, cache=False).run(self._specs())
        monkeypatch.setenv("REPRO_BACKEND", name)
        engine = ExperimentEngine(jobs=2, cache=False)
        records = engine.run(self._specs())
        assert [r.result.stats.as_dict() for r in records] == \
            [r.result.stats.as_dict() for r in reference]
        assert engine.last_run_stats["backend"] == name

    def test_scheduler_stats_always_present(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run(self._specs())
        for key in ("backend", "queue_depth_peak", "inflight_peak",
                    "steals", "dispatch_overhead_ns"):
            assert key in engine.last_run_stats
        assert engine.last_run_stats["queue_depth_peak"] == 2
        # All-hits run: counters zeroed, never stale.
        engine.run(self._specs())
        assert engine.last_run_stats["queue_depth_peak"] == 0
        assert engine.last_run_stats["backend"] == "serial"

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("bad", [0, -3, 2.5, "four", True])
    def test_chunksize_rejected_on_every_path(self, jobs, bad):
        """The serial path used to swallow chunksize silently; now every
        path validates it identically."""
        engine = ExperimentEngine(jobs=jobs, cache=False)
        with pytest.raises(ValueError, match="chunksize"):
            engine.run(self._specs(), chunksize=bad)

    def test_chunksize_honored_where_supported(self):
        records = ExperimentEngine(jobs=2, cache=False).run(
            self._specs(), chunksize=2)
        assert len(records) == 2
        serial = ExperimentEngine(jobs=1, cache=False).run(
            self._specs(), chunksize=2)  # validated no-op, not an error
        assert [r.result.stats.as_dict() for r in records] == \
            [r.result.stats.as_dict() for r in serial]

    def test_serial_failure_is_structured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        engine = ExperimentEngine(jobs=1, cache=False)
        with pytest.raises(ExperimentFailure) as info:
            engine.run([JobSpec("no-such-workload", "indexed-3-fwd", FAST)])
        assert len(info.value.failures) == 1
        assert engine.last_run_stats["failures"][0]["index"] == 0
        assert engine.last_run_stats["backend"] == "serial"

    def test_stale_checkpoint_stats_do_not_carry_over(self, tmp_path):
        """Regression: a run with no checkpointed specs must not re-report
        the previous run's checkpoint_generated/reused/passes."""
        plan = SamplingPlan(interval_length=500, detailed_warmup=500,
                            period=5_000, functional_warmup=1_000, seed=0)
        sampled = ExperimentSettings(instructions=20_000,
                                     stats_warmup_fraction=0.0,
                                     sampling=plan, checkpoints=True)
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache",
                                  checkpoint_dir=tmp_path / "ckpt")
        engine.run([JobSpec("vortex", "indexed-3-fwd", sampled)])
        assert engine.last_run_stats["checkpoint_generated"] > 0
        engine.run(self._specs())
        for stale in ("checkpoint_generated", "checkpoint_reused",
                      "checkpoint_passes", "checkpoint_identities"):
            assert stale not in engine.last_run_stats

"""Unit tests for the two-plane trace representation (repro.isa.plane)."""

import pickle
import time

import pytest

from repro.isa.plane import (
    KIND_BRANCH,
    KIND_LOAD,
    KIND_OTHER,
    KIND_STORE,
    EncodedOps,
    StaticProgramPlane,
    as_encoded,
    encode_uops,
)
from repro.isa.trace import DynamicTrace
from repro.isa.uop import OpClass, make_alu, make_branch, make_load, make_store
from repro.workloads.suites import (
    TRACE_SEGMENT_UOPS,
    build_workload,
    build_workload_window,
)


def _sample_uops():
    return [
        make_alu(0x400, dest=1, srcs=(2, 3)),
        make_load(0x404, dest=2, addr=0x1000, size=8, srcs=(1,)),
        make_store(0x408, addr=0x1000, value=0xAB, size=1, srcs=(2,)),
        make_branch(0x40C, taken=True, target=0x400, srcs=(1,), call=True),
        make_branch(0x410, taken=False),
        make_alu(0x414, dest=40, op_class=OpClass.FP_MUL),
    ]


class TestEncodeDecode:
    def test_round_trip_is_lossless(self):
        uops = _sample_uops()
        encoded = encode_uops(uops)
        assert encoded.uops == uops
        assert [encoded[i] for i in range(len(uops))] == uops
        assert list(encoded) == uops

    def test_static_metadata_is_interned_once(self):
        uops = _sample_uops() * 10
        encoded = encode_uops(uops)
        assert len(encoded) == 60
        assert len(encoded.plane) == len(_sample_uops())

    def test_kind_and_routing_metadata(self):
        encoded = encode_uops(_sample_uops())
        plane = encoded.plane
        kinds = [plane.kind[si] for si in encoded.sidx]
        assert kinds == [KIND_OTHER, KIND_LOAD, KIND_STORE, KIND_BRANCH,
                        KIND_BRANCH, KIND_OTHER]
        classes = [plane.issue_class[si] for si in encoded.sidx]
        assert classes == ["int", "load", "store", "branch", "branch", "fp"]

    def test_slicing_shares_plane(self):
        encoded = encode_uops(_sample_uops())
        window = encoded[1:4]
        assert window.plane is encoded.plane
        assert window.uops == encoded.uops[1:4]

    def test_equality_across_planes(self):
        uops = _sample_uops()
        a = encode_uops(uops)
        b = encode_uops(list(reversed(uops)))  # different intern order
        assert a == a[0:len(a)]
        assert a == encode_uops(uops, plane=b.plane)
        assert a != b

    def test_stats_match_object_form(self):
        trace = build_workload("vortex", instructions=4_000, seed=1)
        object_stats = DynamicTrace(name="vortex", uops=trace.uops).stats
        assert trace.stats == object_stats

    def test_as_encoded_passthrough_and_coercion(self):
        encoded = encode_uops(_sample_uops())
        assert as_encoded(encoded) is encoded
        coerced = as_encoded(DynamicTrace(name="t", uops=_sample_uops()))
        assert coerced.name == "t"
        assert coerced.uops == _sample_uops()

    def test_intern_validates_registers(self):
        plane = StaticProgramPlane()
        with pytest.raises(ValueError):
            plane.intern(0x400, OpClass.INT_ALU, 9999, ())
        with pytest.raises(ValueError):
            plane.intern(0x400, OpClass.INT_ALU, 1, (9999,))


class TestCrossPlane:
    def test_pickle_ships_descriptors_and_rebases(self):
        uops = _sample_uops()
        encoded = encode_uops(uops)
        revived = pickle.loads(pickle.dumps(encoded))
        assert revived.plane is not encoded.plane
        assert revived == encoded
        assert revived.uops == uops

        other = StaticProgramPlane()
        other.intern(0x999, OpClass.NOP, None, ())  # skew the numbering
        rebased = revived.rebase(other)
        assert rebased.plane is other
        assert rebased.uops == uops

    def test_extend_across_planes(self):
        first = encode_uops(_sample_uops()[:3])
        second = pickle.loads(pickle.dumps(encode_uops(_sample_uops()[3:])))
        first.extend(second)
        assert first.uops == _sample_uops()


class TestSegmentPickling:
    """The compose-ahead economics the two-plane encoding was built for:
    an encoded segment must round-trip through pickle cheaper than it
    recomposes (the pre-refactor object encoding pickled *slower* than
    recomposition, which capped compose-ahead overlap — ROADMAP PR 4)."""

    def test_segment_pickle_round_trip_beats_recomposition(self):
        from repro.workloads import suites

        name, seed, n = "vortex", 1, TRACE_SEGMENT_UOPS
        suites._SEGMENT_CACHE.clear()
        start = time.perf_counter()
        segment = build_workload_window(name, n, seed, 0, n)
        compose_s = time.perf_counter() - start
        assert len(segment) == n

        blob = pickle.dumps(segment, protocol=pickle.HIGHEST_PROTOCOL)
        start = time.perf_counter()
        revived = pickle.loads(pickle.dumps(segment,
                                            protocol=pickle.HIGHEST_PROTOCOL))
        round_trip_s = time.perf_counter() - start

        assert revived == segment
        assert round_trip_s < compose_s, (
            f"encoded 16384-uop segment round-trip ({round_trip_s:.4f}s) "
            f"must beat recomposition ({compose_s:.4f}s)")
        # Sanity: the blob is flat arrays, not an object graph.
        assert len(blob) < 2_000_000


class TestWorkloadsAreEncoded:
    def test_build_workload_returns_encoded(self):
        trace = build_workload("vortex", instructions=2_000, seed=1)
        assert isinstance(trace, EncodedOps)
        assert trace.name == "vortex"
        assert len(trace) == 2_000

    def test_window_aliases_whole_segment(self):
        from repro.workloads import suites

        suites._SEGMENT_CACHE.clear()
        n = 2_000
        first = build_workload_window("vortex", n, 1, 0, n)
        second = build_workload_window("vortex", n, 1, 0, n)
        assert first is second  # served from the per-process segment memo

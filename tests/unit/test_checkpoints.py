"""Unit tests for the checkpoint store (`repro.sampling.checkpoints`).

Covers the multi-policy functional warmer (one pass, many configurations),
the export/import round trip (exact for every warmed structure), store
invalidation (source fingerprints, plan changes), corruption robustness
(truncated snapshots repair in place, never crash and never change the
result), the engine's generation/reuse accounting, the on-disk trace-segment
memo, and the result-cache key semantics of checkpointed interval specs.
"""

import dataclasses
import pickle

import pytest

from repro.exec import ExperimentEngine, IntervalJobSpec, JobSpec, job_key
from repro.exec import fingerprint as fingerprint_module
from repro.harness.runner import ExperimentSettings, make_policy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore
from repro.sampling import SamplingPlan
from repro.sampling.checkpoints import (
    CheckpointStore,
    checkpoints_enabled,
    generate_checkpoints,
    load_interval_state,
    plan_generation,
    policy_key,
    resolve_checkpointed,
    segment_key,
    shared_key,
)
from repro.sampling.driver import (
    expand_sampled_spec,
    run_interval_job,
    run_sampled_workload,
)
from repro.sampling.functional import FunctionalWarmer
from repro.workloads.suites import build_workload, build_workload_window

WORKLOAD = "vortex"
PLAN = SamplingPlan(interval_length=500, detailed_warmup=500, period=5_000,
                    functional_warmup=1_000, seed=0)
SETTINGS = ExperimentSettings(instructions=20_000, stats_warmup_fraction=0.0,
                              sampling=PLAN, checkpoints=True)

CONFIG = "indexed-3-fwd+dly"
IDENTITY = (CONFIG, SETTINGS.sq_size, None)


def _checkpointed_specs(store, settings=SETTINGS, config=CONFIG):
    spec = JobSpec(WORKLOAD, config, settings)
    return expand_sampled_spec(spec, checkpointed=True,
                               checkpoint_dir=str(store.directory))


class TestResolution:
    def test_settings_override_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        assert not checkpoints_enabled()
        assert resolve_checkpointed(SETTINGS)  # explicit True wins
        assert not resolve_checkpointed(
            dataclasses.replace(SETTINGS, checkpoints=False))
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        assert resolve_checkpointed(
            dataclasses.replace(SETTINGS, checkpoints=None))

    def test_never_checkpointed_without_sampling(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        plain = dataclasses.replace(SETTINGS, sampling=None, checkpoints=None)
        assert not resolve_checkpointed(plain)


class TestMultiPolicyWarming:
    """One shared pass must warm each policy exactly as its own pass would."""

    PREFIX = 4_000

    def test_policy_state_matches_single_policy_pass(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        configs = ("indexed-3-fwd+dly", "associative-5-predictive")
        multi_policies = [make_policy(name) for name in configs]
        multi = FunctionalWarmer(CoreConfig(), policies=multi_policies)
        multi.warm(trace.uops)
        for name, warmed in zip(configs, multi_policies):
            single_policy = make_policy(name)
            single = FunctionalWarmer(CoreConfig(), single_policy)
            single.warm(trace.uops)
            assert warmed.state_signature() == single_policy.state_signature(), name

    def test_shared_state_matches_single_policy_pass(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        multi = FunctionalWarmer(CoreConfig(), policies=[
            make_policy("indexed-3-fwd+dly"), make_policy("associative-3")])
        multi.warm(trace.uops)
        single = FunctionalWarmer(CoreConfig(), make_policy("indexed-3-fwd+dly"))
        single.warm(trace.uops)
        a, b = multi.state, single.state
        assert a.branch_unit.state_signature() == b.branch_unit.state_signature()
        assert a.hierarchy.state_signature() == b.hierarchy.state_signature()
        assert a.memory.state_signature() == b.memory.state_signature()
        assert a.ssn_alloc == b.ssn_alloc
        assert a.last_writer == b.last_writer

    def test_export_state_carries_first_policy(self):
        policies = [make_policy("indexed-3-fwd"), make_policy("associative-3")]
        warmer = FunctionalWarmer(CoreConfig(), policies=policies)
        assert warmer.export_state().policy is policies[0]
        assert warmer.policies == policies


class TestExportImportRoundTrip:
    """export_state -> (pickle) -> import_state is exact for every warmed
    structure — the checkpoint analogue of the PR 2 functional-replay
    exactness test."""

    PREFIX = 6_000

    @pytest.fixture(scope="class")
    def warmed_blob(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        warmer = FunctionalWarmer(CoreConfig(), make_policy(CONFIG))
        warmer.warm(trace.uops)
        return pickle.dumps(warmer.export_state())

    def test_every_structure_survives_the_round_trip(self, warmed_blob):
        original = pickle.loads(warmed_blob)
        core = OutOfOrderCore(CoreConfig(), make_policy(CONFIG))
        core.import_state(pickle.loads(warmed_blob))
        exported = core.export_state()
        assert (exported.branch_unit.state_signature()
                == original.branch_unit.state_signature())
        assert (exported.hierarchy.state_signature()
                == original.hierarchy.state_signature())
        assert (exported.memory.state_signature()
                == original.memory.state_signature())
        assert exported.ssn_alloc.ssn_rename == original.ssn_alloc.ssn_rename
        assert exported.ssn_alloc.ssn_commit == original.ssn_alloc.ssn_commit
        assert (exported.policy.state_signature()
                == original.policy.state_signature())
        # The exported last-writer map keeps every byte's writer SSN (the
        # only component import_state consumes).
        assert ({a: e[0] for a, e in exported.last_writer.items()}
                == {a: e[0] for a, e in original.last_writer.items()})

    def test_round_tripped_state_simulates_identically(self, warmed_blob):
        window = build_workload_window(WORKLOAD, self.PREFIX + 4_000, 1,
                                       self.PREFIX, self.PREFIX + 4_000)
        results = []
        for _ in range(2):
            core = OutOfOrderCore(CoreConfig(), make_policy(CONFIG))
            core.import_state(pickle.loads(warmed_blob))
            from repro.isa.trace import DynamicTrace

            result = core.run(DynamicTrace(name=WORKLOAD, uops=list(window)),
                              warm_memory=False)
            results.append(result.stats.as_dict())
        assert results[0] == results[1]


class TestStoreInvalidation:
    def test_simulator_source_change_misses(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        before_shared = shared_key(WORKLOAD, SETTINGS, 0)
        before_policy = policy_key(WORKLOAD, SETTINGS, IDENTITY, 0)
        monkeypatch.setattr(fingerprint_module, "simulator_fingerprint",
                            lambda: "edited-simulator-source")
        assert shared_key(WORKLOAD, SETTINGS, 0) != before_shared
        assert policy_key(WORKLOAD, SETTINGS, IDENTITY, 0) != before_policy
        # A populated store therefore misses end to end.
        monkeypatch.undo()
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        requests, total = plan_generation(store, _checkpointed_specs(store))
        assert total == 1 and not requests  # warm before the "edit"
        monkeypatch.setattr(fingerprint_module, "simulator_fingerprint",
                            lambda: "edited-simulator-source")
        requests, total = plan_generation(store, _checkpointed_specs(store))
        assert total == 1 and len(requests) == 1
        assert requests[0].identities == (IDENTITY,)
        assert requests[0].write_shared

    def test_workload_source_change_misses(self, monkeypatch):
        before = segment_key(WORKLOAD, 1, 0, 4_096)
        before_shared = shared_key(WORKLOAD, SETTINGS, 0)
        monkeypatch.setattr(fingerprint_module, "workload_fingerprint",
                            lambda: "edited-workload-source")
        assert segment_key(WORKLOAD, 1, 0, 4_096) != before
        assert shared_key(WORKLOAD, SETTINGS, 0) != before_shared

    def test_functional_warmup_does_not_invalidate(self, tmp_path):
        # Snapshots and windows do not depend on the bounded-warming
        # horizon; toggling it must keep the store warm.
        other = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, functional_warmup=9))
        assert shared_key(WORKLOAD, SETTINGS, 0) == shared_key(WORKLOAD, other, 0)
        assert (policy_key(WORKLOAD, SETTINGS, IDENTITY, 0)
                == policy_key(WORKLOAD, other, IDENTITY, 0))
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        requests, total = plan_generation(
            store, _checkpointed_specs(store, settings=other))
        assert total == 1 and not requests

    def test_plan_change_misses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        changed = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, detailed_warmup=600))
        requests, _total = plan_generation(
            store, _checkpointed_specs(store, settings=changed))
        assert len(requests) == 1 and requests[0].write_shared

    def test_new_configuration_reuses_shared_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        other = ("associative-5-predictive", SETTINGS.sq_size, None)
        requests, total = plan_generation(
            store, _checkpointed_specs(store, config=other[0]))
        assert total == 1 and len(requests) == 1
        assert requests[0].identities == (other,)
        assert not requests[0].write_shared  # shared snapshots stay valid


class TestCorruptSnapshots:
    def test_truncated_snapshots_repair_in_place(self, tmp_path):
        store = CheckpointStore(tmp_path)
        specs = _checkpointed_specs(store)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        intact = run_interval_job(specs[1]).result.stats.as_dict()
        # Truncate every snapshot blob in the store.
        damaged = 0
        for path in store.directory.glob("*.pkl"):
            path.write_bytes(path.read_bytes()[:16])
            damaged += 1
        assert damaged > 0
        repaired = run_interval_job(specs[1])
        # No crash, and no silent accuracy loss: the exact full-history
        # state is recomputed, so the record is bit-identical.
        assert repaired.result.stats.as_dict() == intact
        # The store was repaired for subsequent jobs.
        again = run_interval_job(specs[1])
        assert again.result.stats.as_dict() == intact

    def test_cold_store_direct_interval_job_works(self, tmp_path):
        store = CheckpointStore(tmp_path)
        specs = _checkpointed_specs(store)
        record = run_interval_job(specs[0])  # nothing generated yet
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        assert (run_interval_job(specs[0]).result.stats.as_dict()
                == record.result.stats.as_dict())


class TestEngineGeneration:
    def test_generates_once_then_reuses_across_engines(self, tmp_path):
        spec = JobSpec(WORKLOAD, CONFIG, SETTINGS)
        cold = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        cold_record, = cold.run([spec])
        assert cold.last_run_stats["checkpoint_generated"] == 1
        assert cold.last_run_stats["checkpoint_passes"] == 1
        warm = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        warm_record, = warm.run([spec])
        assert warm.last_run_stats["checkpoint_generated"] == 0
        assert warm.last_run_stats["checkpoint_reused"] == 1
        assert (warm_record.result.stats.as_dict()
                == cold_record.result.stats.as_dict())

    def test_one_pass_warms_every_configuration_of_a_sweep(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        engine.run([JobSpec(WORKLOAD, CONFIG, SETTINGS),
                    JobSpec(WORKLOAD, "associative-5-predictive", SETTINGS)])
        stats = engine.last_run_stats
        assert stats["checkpoint_identities"] == 2
        assert stats["checkpoint_generated"] == 2
        assert stats["checkpoint_passes"] == 1  # a single shared O(N) pass

    def test_engine_matches_serial_driver(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        record, = engine.run([JobSpec(WORKLOAD, CONFIG, SETTINGS)])
        serial = run_sampled_workload(WORKLOAD, CONFIG, SETTINGS,
                                      checkpoint_dir=str(tmp_path))
        assert record.result.stats.as_dict() == serial.result.stats.as_dict()


class TestSegmentMemo:
    def test_disk_memo_round_trips_segments(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        fresh = build_workload_window(WORKLOAD, 8_000, 7, 0, 8_000,
                                      disk_memo=True)
        assert len(CheckpointStore()) > 0  # segment blob written
        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        from_disk = build_workload_window(WORKLOAD, 8_000, 7, 0, 8_000,
                                          disk_memo=True)
        assert from_disk == fresh

    def test_default_call_writes_nothing(self, tmp_path, monkeypatch):
        # The disk memo is an explicit opt-in: a plain library call must
        # not create a store in the caller's working directory, whatever
        # the environment says.
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        build_workload_window(WORKLOAD, 8_000, 8, 0, 8_000)
        assert len(CheckpointStore()) == 0

    def test_disabled_environment_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        build_workload_window(WORKLOAD, 8_000, 8, 0, 8_000, disk_memo=True)
        assert len(CheckpointStore()) == 0


class TestCacheKeys:
    def test_checkpointed_flag_is_part_of_the_key(self):
        bounded = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0)
        checkpointed = dataclasses.replace(bounded, checkpointed=True)
        assert job_key(bounded) != job_key(checkpointed)

    def test_store_location_is_not(self):
        a = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0, checkpointed=True,
                            checkpoint_dir="/somewhere")
        b = dataclasses.replace(a, checkpoint_dir="/elsewhere")
        assert job_key(a) == job_key(b)

    def test_checkpoints_field_resolution_does_not_split_keys(self):
        # None (resolved from the environment) and an explicit flag produce
        # the same key: only the *resolved* checkpointed flag matters.
        explicit = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0,
                                   checkpointed=True)
        from_env = dataclasses.replace(
            explicit,
            settings=dataclasses.replace(SETTINGS, checkpoints=None))
        assert job_key(explicit) == job_key(from_env)


class TestStateLoading:
    def test_loaded_state_is_fresh_per_job(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        specs = _checkpointed_specs(store)
        window = PLAN.intervals(SETTINGS.instructions)[0]
        first = load_interval_state(specs[0], window)
        second = load_interval_state(specs[0], window)
        assert first.policy is not second.policy
        assert first.hierarchy is not second.hierarchy
        assert (first.policy.state_signature()
                == second.policy.state_signature())

"""Unit tests for the checkpoint store (`repro.sampling.checkpoints`).

Covers the multi-policy functional warmer (one pass, many configurations),
the export/import round trip (exact for every warmed structure), store
invalidation (source fingerprints, plan changes), corruption robustness
(truncated snapshots repair in place, never crash and never change the
result), the engine's generation/reuse accounting, the on-disk trace-segment
memo, and the result-cache key semantics of checkpointed interval specs.
"""

import dataclasses
import pickle

import pytest

from repro.exec import ExperimentEngine, IntervalJobSpec, JobSpec, job_key
from repro.exec import fingerprint as fingerprint_module
from repro.harness.runner import ExperimentSettings, make_policy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import OutOfOrderCore
from repro.sampling import SamplingPlan
from repro.sampling.checkpoints import (
    BoundaryState,
    CheckpointStore,
    boundary_key,
    checkpoints_enabled,
    execute_generation,
    generate_checkpoints,
    load_interval_state,
    plan_generation,
    plan_shard_jobs,
    policy_key,
    resolve_checkpoint_shards,
    resolve_checkpointed,
    run_shard_job,
    segment_key,
    shared_key,
    shared_signature,
)
from repro.sampling.driver import (
    expand_sampled_spec,
    run_interval_job,
    run_sampled_workload,
)
from repro.sampling.functional import FunctionalWarmer
from repro.workloads.suites import build_workload, build_workload_window

WORKLOAD = "vortex"
PLAN = SamplingPlan(interval_length=500, detailed_warmup=500, period=5_000,
                    functional_warmup=1_000, seed=0)
SETTINGS = ExperimentSettings(instructions=20_000, stats_warmup_fraction=0.0,
                              sampling=PLAN, checkpoints=True)

CONFIG = "indexed-3-fwd+dly"
IDENTITY = (CONFIG, SETTINGS.sq_size, None)


def _checkpointed_specs(store, settings=SETTINGS, config=CONFIG):
    spec = JobSpec(WORKLOAD, config, settings)
    return expand_sampled_spec(spec, checkpointed=True,
                               checkpoint_dir=str(store.directory))


class TestResolution:
    def test_settings_override_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        assert not checkpoints_enabled()
        assert resolve_checkpointed(SETTINGS)  # explicit True wins
        assert not resolve_checkpointed(
            dataclasses.replace(SETTINGS, checkpoints=False))
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        assert resolve_checkpointed(
            dataclasses.replace(SETTINGS, checkpoints=None))

    def test_never_checkpointed_without_sampling(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        plain = dataclasses.replace(SETTINGS, sampling=None, checkpoints=None)
        assert not resolve_checkpointed(plain)


class TestMultiPolicyWarming:
    """One shared pass must warm each policy exactly as its own pass would."""

    PREFIX = 4_000

    def test_policy_state_matches_single_policy_pass(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        configs = ("indexed-3-fwd+dly", "associative-5-predictive")
        multi_policies = [make_policy(name) for name in configs]
        multi = FunctionalWarmer(CoreConfig(), policies=multi_policies)
        multi.warm(trace.uops)
        for name, warmed in zip(configs, multi_policies):
            single_policy = make_policy(name)
            single = FunctionalWarmer(CoreConfig(), single_policy)
            single.warm(trace.uops)
            assert warmed.state_signature() == single_policy.state_signature(), name

    def test_shared_state_matches_single_policy_pass(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        multi = FunctionalWarmer(CoreConfig(), policies=[
            make_policy("indexed-3-fwd+dly"), make_policy("associative-3")])
        multi.warm(trace.uops)
        single = FunctionalWarmer(CoreConfig(), make_policy("indexed-3-fwd+dly"))
        single.warm(trace.uops)
        a, b = multi.state, single.state
        assert a.branch_unit.state_signature() == b.branch_unit.state_signature()
        assert a.hierarchy.state_signature() == b.hierarchy.state_signature()
        assert a.memory.state_signature() == b.memory.state_signature()
        assert a.ssn_alloc == b.ssn_alloc
        assert a.last_writer == b.last_writer

    def test_export_state_carries_first_policy(self):
        policies = [make_policy("indexed-3-fwd"), make_policy("associative-3")]
        warmer = FunctionalWarmer(CoreConfig(), policies=policies)
        assert warmer.export_state().policy is policies[0]
        assert warmer.policies == policies


class TestExportImportRoundTrip:
    """export_state -> (pickle) -> import_state is exact for every warmed
    structure — the checkpoint analogue of the PR 2 functional-replay
    exactness test."""

    PREFIX = 6_000

    @pytest.fixture(scope="class")
    def warmed_blob(self):
        trace = build_workload(WORKLOAD, self.PREFIX, seed=1)
        warmer = FunctionalWarmer(CoreConfig(), make_policy(CONFIG))
        warmer.warm(trace.uops)
        return pickle.dumps(warmer.export_state())

    def test_every_structure_survives_the_round_trip(self, warmed_blob):
        original = pickle.loads(warmed_blob)
        core = OutOfOrderCore(CoreConfig(), make_policy(CONFIG))
        core.import_state(pickle.loads(warmed_blob))
        exported = core.export_state()
        assert (exported.branch_unit.state_signature()
                == original.branch_unit.state_signature())
        assert (exported.hierarchy.state_signature()
                == original.hierarchy.state_signature())
        assert (exported.memory.state_signature()
                == original.memory.state_signature())
        assert exported.ssn_alloc.ssn_rename == original.ssn_alloc.ssn_rename
        assert exported.ssn_alloc.ssn_commit == original.ssn_alloc.ssn_commit
        assert (exported.policy.state_signature()
                == original.policy.state_signature())
        # The exported last-writer map keeps every byte's writer SSN (the
        # only component import_state consumes).
        assert ({a: e[0] for a, e in exported.last_writer.items()}
                == {a: e[0] for a, e in original.last_writer.items()})

    def test_round_tripped_state_simulates_identically(self, warmed_blob):
        window = build_workload_window(WORKLOAD, self.PREFIX + 4_000, 1,
                                       self.PREFIX, self.PREFIX + 4_000)
        results = []
        for _ in range(2):
            core = OutOfOrderCore(CoreConfig(), make_policy(CONFIG))
            core.import_state(pickle.loads(warmed_blob))
            from repro.isa.trace import DynamicTrace

            result = core.run(DynamicTrace(name=WORKLOAD, uops=list(window)),
                              warm_memory=False)
            results.append(result.stats.as_dict())
        assert results[0] == results[1]


class TestStoreInvalidation:
    def test_simulator_source_change_misses(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path)
        before_shared = shared_key(WORKLOAD, SETTINGS, 0)
        before_policy = policy_key(WORKLOAD, SETTINGS, IDENTITY, 0)
        monkeypatch.setattr(fingerprint_module, "simulator_fingerprint",
                            lambda: "edited-simulator-source")
        assert shared_key(WORKLOAD, SETTINGS, 0) != before_shared
        assert policy_key(WORKLOAD, SETTINGS, IDENTITY, 0) != before_policy
        # A populated store therefore misses end to end.
        monkeypatch.undo()
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        requests, total = plan_generation(store, _checkpointed_specs(store))
        assert total == 1 and not requests  # warm before the "edit"
        monkeypatch.setattr(fingerprint_module, "simulator_fingerprint",
                            lambda: "edited-simulator-source")
        requests, total = plan_generation(store, _checkpointed_specs(store))
        assert total == 1 and len(requests) == 1
        assert requests[0].identities == (IDENTITY,)
        assert requests[0].write_shared

    def test_workload_source_change_misses(self, monkeypatch):
        before = segment_key(WORKLOAD, 1, 0, 4_096)
        before_shared = shared_key(WORKLOAD, SETTINGS, 0)
        monkeypatch.setattr(fingerprint_module, "workload_fingerprint",
                            lambda: "edited-workload-source")
        assert segment_key(WORKLOAD, 1, 0, 4_096) != before
        assert shared_key(WORKLOAD, SETTINGS, 0) != before_shared

    def test_functional_warmup_does_not_invalidate(self, tmp_path):
        # Snapshots and windows do not depend on the bounded-warming
        # horizon; toggling it must keep the store warm.
        other = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, functional_warmup=9))
        assert shared_key(WORKLOAD, SETTINGS, 0) == shared_key(WORKLOAD, other, 0)
        assert (policy_key(WORKLOAD, SETTINGS, IDENTITY, 0)
                == policy_key(WORKLOAD, other, IDENTITY, 0))
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        requests, total = plan_generation(
            store, _checkpointed_specs(store, settings=other))
        assert total == 1 and not requests

    def test_plan_change_misses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        changed = dataclasses.replace(
            SETTINGS, sampling=dataclasses.replace(PLAN, detailed_warmup=600))
        requests, _total = plan_generation(
            store, _checkpointed_specs(store, settings=changed))
        assert len(requests) == 1 and requests[0].write_shared

    def test_new_configuration_reuses_shared_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        other = ("associative-5-predictive", SETTINGS.sq_size, None)
        requests, total = plan_generation(
            store, _checkpointed_specs(store, config=other[0]))
        assert total == 1 and len(requests) == 1
        assert requests[0].identities == (other,)
        assert not requests[0].write_shared  # shared snapshots stay valid


class TestCorruptSnapshots:
    def test_truncated_snapshots_repair_in_place(self, tmp_path):
        store = CheckpointStore(tmp_path)
        specs = _checkpointed_specs(store)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        intact = run_interval_job(specs[1]).result.stats.as_dict()
        # Truncate every snapshot blob in the store.
        damaged = 0
        for path in store.directory.glob("*.pkl"):
            path.write_bytes(path.read_bytes()[:16])
            damaged += 1
        assert damaged > 0
        repaired = run_interval_job(specs[1])
        # No crash, and no silent accuracy loss: the exact full-history
        # state is recomputed, so the record is bit-identical.
        assert repaired.result.stats.as_dict() == intact
        # The store was repaired for subsequent jobs.
        again = run_interval_job(specs[1])
        assert again.result.stats.as_dict() == intact

    def test_cold_store_direct_interval_job_works(self, tmp_path):
        store = CheckpointStore(tmp_path)
        specs = _checkpointed_specs(store)
        record = run_interval_job(specs[0])  # nothing generated yet
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        assert (run_interval_job(specs[0]).result.stats.as_dict()
                == record.result.stats.as_dict())


class TestEngineGeneration:
    def test_generates_once_then_reuses_across_engines(self, tmp_path):
        spec = JobSpec(WORKLOAD, CONFIG, SETTINGS)
        cold = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        cold_record, = cold.run([spec])
        assert cold.last_run_stats["checkpoint_generated"] == 1
        assert cold.last_run_stats["checkpoint_passes"] == 1
        warm = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        warm_record, = warm.run([spec])
        assert warm.last_run_stats["checkpoint_generated"] == 0
        assert warm.last_run_stats["checkpoint_reused"] == 1
        assert (warm_record.result.stats.as_dict()
                == cold_record.result.stats.as_dict())

    def test_one_pass_warms_every_configuration_of_a_sweep(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        engine.run([JobSpec(WORKLOAD, CONFIG, SETTINGS),
                    JobSpec(WORKLOAD, "associative-5-predictive", SETTINGS)])
        stats = engine.last_run_stats
        assert stats["checkpoint_identities"] == 2
        assert stats["checkpoint_generated"] == 2
        assert stats["checkpoint_passes"] == 1  # a single shared O(N) pass

    def test_engine_matches_serial_driver(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=False, checkpoint_dir=tmp_path)
        record, = engine.run([JobSpec(WORKLOAD, CONFIG, SETTINGS)])
        serial = run_sampled_workload(WORKLOAD, CONFIG, SETTINGS,
                                      checkpoint_dir=str(tmp_path))
        assert record.result.stats.as_dict() == serial.result.stats.as_dict()


class TestSegmentMemo:
    def test_disk_memo_round_trips_segments(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        fresh = build_workload_window(WORKLOAD, 8_000, 7, 0, 8_000,
                                      disk_memo=True)
        assert len(CheckpointStore()) > 0  # segment blob written
        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        from_disk = build_workload_window(WORKLOAD, 8_000, 7, 0, 8_000,
                                          disk_memo=True)
        assert from_disk == fresh

    def test_default_call_writes_nothing(self, tmp_path, monkeypatch):
        # The disk memo is an explicit opt-in: a plain library call must
        # not create a store in the caller's working directory, whatever
        # the environment says.
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        build_workload_window(WORKLOAD, 8_000, 8, 0, 8_000)
        assert len(CheckpointStore()) == 0

    def test_disabled_environment_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        from repro.workloads import suites

        monkeypatch.setattr(suites, "_SEGMENT_CACHE", {})
        build_workload_window(WORKLOAD, 8_000, 8, 0, 8_000, disk_memo=True)
        assert len(CheckpointStore()) == 0


class TestCacheKeys:
    def test_checkpointed_flag_is_part_of_the_key(self):
        bounded = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0)
        checkpointed = dataclasses.replace(bounded, checkpointed=True)
        assert job_key(bounded) != job_key(checkpointed)

    def test_store_location_is_not(self):
        a = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0, checkpointed=True,
                            checkpoint_dir="/somewhere")
        b = dataclasses.replace(a, checkpoint_dir="/elsewhere")
        assert job_key(a) == job_key(b)

    def test_checkpoints_field_resolution_does_not_split_keys(self):
        # None (resolved from the environment) and an explicit flag produce
        # the same key: only the *resolved* checkpointed flag matters.
        explicit = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0,
                                   checkpointed=True)
        from_env = dataclasses.replace(
            explicit,
            settings=dataclasses.replace(SETTINGS, checkpoints=None))
        assert job_key(explicit) == job_key(from_env)


class TestStateLoading:
    def test_loaded_state_is_fresh_per_job(self, tmp_path):
        store = CheckpointStore(tmp_path)
        generate_checkpoints(store, WORKLOAD, SETTINGS, [IDENTITY])
        specs = _checkpointed_specs(store)
        window = PLAN.intervals(SETTINGS.instructions)[0]
        first = load_interval_state(specs[0], window)
        second = load_interval_state(specs[0], window)
        assert first.policy is not second.policy
        assert first.hierarchy is not second.hierarchy
        assert (first.policy.state_signature()
                == second.policy.state_signature())


# ---------------------------------------------------------------------------
# Sharded generation (stitched boundary handoffs)
# ---------------------------------------------------------------------------

from repro.sampling import checkpoints as checkpoints_module  # noqa: E402
from repro.workloads.suites import TRACE_SEGMENT_UOPS  # noqa: E402

#: A multi-segment sampled run (5 segments) so shard counts 1/2/4 cut real
#: segment-aligned chunks; detailed_warmup is sized so at least one chunk
#: boundary lands strictly inside a warm-up window (asserted below).
SHARD_PLAN = SamplingPlan(interval_length=600, detailed_warmup=4_000,
                          period=16_384, functional_warmup=1_000, seed=1)
SHARD_SETTINGS = ExperimentSettings(instructions=5 * TRACE_SEGMENT_UOPS,
                                    stats_warmup_fraction=0.0,
                                    sampling=SHARD_PLAN, checkpoints=True)
SHARD_CONFIGS = ("oracle-associative-3", "indexed-3-fwd+dly")


def _generation_requests(store, settings, configs=SHARD_CONFIGS):
    specs = []
    for config in configs:
        specs.extend(expand_sampled_spec(
            JobSpec(WORKLOAD, config, settings), checkpointed=True,
            checkpoint_dir=str(store.directory)))
    requests, _total = plan_generation(store, specs)
    return requests


def _store_signatures(store, settings, configs=SHARD_CONFIGS):
    """(shared, per-policy) signatures of every interval snapshot."""
    windows = settings.sampling.intervals(settings.instructions)
    out = []
    for window in windows:
        shared = store.get(shared_key(WORKLOAD, settings, window.index))
        assert shared is not None, f"missing shared snapshot {window.index}"
        policies = []
        for config in configs:
            policy = store.get(policy_key(
                WORKLOAD, settings, (config, settings.sq_size, None),
                window.index))
            assert policy is not None, f"missing policy {config}/{window.index}"
            policies.append(policy.state_signature())
        out.append((shared_signature(shared), tuple(policies)))
    return out


class TestResolveShards:
    def test_settings_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_SHARDS", "8")
        assert resolve_checkpoint_shards() == 8
        explicit = dataclasses.replace(SETTINGS, checkpoint_shards=2)
        assert resolve_checkpoint_shards(explicit) == 2

    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_SHARDS", raising=False)
        assert resolve_checkpoint_shards() == 0
        assert resolve_checkpoint_shards(SETTINGS) == 0

    def test_nonpositive_settings_mean_auto(self, monkeypatch):
        """A settings value <= 0 is programmatic "auto"; a *negative
        environment value* is a typo and fails fast (PR 6)."""
        monkeypatch.delenv("REPRO_CHECKPOINT_SHARDS", raising=False)
        explicit = dataclasses.replace(SETTINGS, checkpoint_shards=-3)
        assert resolve_checkpoint_shards(explicit) == 0

    @pytest.mark.parametrize("bad", ["many", "-3"])
    def test_invalid_environment_fails_fast(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_CHECKPOINT_SHARDS", bad)
        with pytest.raises(ValueError, match="REPRO_CHECKPOINT_SHARDS"):
            resolve_checkpoint_shards()

    def test_execution_only_never_in_cache_keys(self):
        base = IntervalJobSpec(WORKLOAD, CONFIG, SETTINGS, 0, checkpointed=True)
        sharded = dataclasses.replace(
            base, settings=dataclasses.replace(SETTINGS, checkpoint_shards=7))
        assert job_key(base) == job_key(sharded)


class TestShardPlanning:
    def test_chunks_are_segment_aligned_and_chunk_major(self, tmp_path):
        store = CheckpointStore(tmp_path)
        settings = dataclasses.replace(SHARD_SETTINGS, checkpoint_shards=4)
        jobs, stats = plan_shard_jobs(
            store, _generation_requests(store, settings), workers=4)
        assert stats["checkpoint_shards"] == 4
        assert stats["checkpoint_chains"] == 2  # two configs, two chains
        assert stats["checkpoint_shard_jobs"] == 8
        span = settings.sampling.intervals(
            settings.instructions)[-1].detailed_start
        for job in jobs:
            if not job.last:
                assert job.chunk_end % TRACE_SEGMENT_UOPS == 0
            else:
                assert job.chunk_end == span
        # Chunk-major dispatch order: a job's handoff producer always
        # precedes it (the pool deadlock-freedom invariant).
        indices = [job.chunk_index for job in jobs]
        assert indices == sorted(indices)
        # Exactly one chain carries the shared-emission duty.
        assert sum(1 for job in jobs if job.write_shared and job.chunk_index == 0) == 1

    def test_explicit_shards_clamped_to_segments(self, tmp_path):
        store = CheckpointStore(tmp_path)
        settings = dataclasses.replace(SETTINGS, checkpoint_shards=64)
        spec = JobSpec(WORKLOAD, CONFIG, settings)
        specs = expand_sampled_spec(spec, checkpointed=True,
                                    checkpoint_dir=str(store.directory))
        requests, _ = plan_generation(store, specs)
        jobs, stats = plan_shard_jobs(store, requests, workers=4)
        # 20k instructions -> a 2-segment trace cannot take 64 chunks.
        assert stats["checkpoint_shards"] <= 2

    def test_auto_soaks_up_idle_workers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        requests = _generation_requests(store, SHARD_SETTINGS,
                                        configs=(CONFIG,))
        jobs, stats = plan_shard_jobs(store, requests, workers=4)
        # One chain (one config): auto-sharding cuts ~one chunk per worker.
        assert stats["checkpoint_chains"] == 1
        assert stats["checkpoint_shards"] == 4

    def test_serial_auto_is_the_single_pass(self, tmp_path):
        store = CheckpointStore(tmp_path)
        requests = _generation_requests(store, SHARD_SETTINGS)
        jobs, stats = plan_shard_jobs(store, requests, workers=1)
        assert stats == {"checkpoint_chains": 1, "checkpoint_shards": 1,
                         "checkpoint_shard_jobs": 1}
        assert jobs[0].identities == requests[0].identities
        assert jobs[0].last and jobs[0].chunk_start == 0


class TestStitchedBitIdentity:
    """Stitched sharded generation == the single pass, snapshot for
    snapshot, across shard counts 1/2/4 — including a chunk boundary
    landing strictly inside a detailed warm-up window."""

    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        stores = {}
        for shards in (1, 2, 4):
            store = CheckpointStore(
                tmp_path_factory.mktemp(f"shards-{shards}"))
            settings = dataclasses.replace(SHARD_SETTINGS,
                                           checkpoint_shards=shards)
            requests = _generation_requests(store, settings)
            stats = execute_generation(store, requests, jobs=1)
            assert stats["checkpoint_shards"] == min(shards, 5)
            stores[shards] = (store, settings)
        return stores

    def test_a_boundary_lands_mid_warmup_window(self, stores, tmp_path):
        _, settings = stores[4]
        cold = CheckpointStore(tmp_path)  # planning needs unmet requests
        jobs, _ = plan_shard_jobs(
            cold, _generation_requests(cold, settings), workers=1)
        bounds = {job.chunk_end for job in jobs if not job.last}
        windows = settings.sampling.intervals(settings.instructions)
        assert any(w.detailed_start < bound < w.measure_end
                   for bound in bounds for w in windows), \
            "layout regression: no chunk boundary inside a warm-up window"

    def test_snapshots_identical_across_shard_counts(self, stores):
        reference = _store_signatures(*stores[1])
        assert _store_signatures(*stores[2]) == reference
        assert _store_signatures(*stores[4]) == reference

    def test_no_boundary_strays_left_in_store(self, stores):
        assert len(stores[4][0]) == len(stores[1][0])

    def test_resumed_warmer_equals_straight_replay(self):
        from repro.pipeline.config import CoreConfig as _CoreConfig

        uops = build_workload(WORKLOAD, 6_000, seed=1).uops
        straight = FunctionalWarmer(_CoreConfig(), make_policy(CONFIG))
        straight.warm(uops)
        first = FunctionalWarmer(_CoreConfig(), make_policy(CONFIG))
        first.warm(uops[:2_500])
        handoff = pickle.loads(pickle.dumps(first.export_state()))
        resumed = FunctionalWarmer(_CoreConfig(), policies=[handoff.policy],
                                   state=handoff, start_index=2_500)
        resumed.warm(uops[2_500:])
        a, b = straight.state, resumed.state
        assert a.branch_unit.state_signature() == b.branch_unit.state_signature()
        assert a.hierarchy.state_signature() == b.hierarchy.state_signature()
        assert a.memory.state_signature() == b.memory.state_signature()
        assert a.policy.state_signature() == b.policy.state_signature()
        assert a.last_writer == b.last_writer
        assert a.instructions_warmed == b.instructions_warmed


class TestStitchFallback:
    """A handoff that never arrives (or is damaged) must degrade to an
    exact in-process recompute — never a hang, never a different state."""

    @pytest.fixture()
    def fast_timeout(self, monkeypatch):
        monkeypatch.setattr(checkpoints_module, "_BOUNDARY_WAIT_SECONDS", 0.05)
        monkeypatch.setattr(checkpoints_module, "_BOUNDARY_POLL_SECONDS", 0.001)

    def _shard_jobs(self, store, shards=2):
        settings = dataclasses.replace(SHARD_SETTINGS, checkpoint_shards=shards)
        jobs, _ = plan_shard_jobs(
            store, _generation_requests(store, settings, configs=(CONFIG,)),
            workers=1)
        return jobs, settings

    def test_missing_handoff_recomputes_exactly(self, tmp_path, fast_timeout):
        reference = CheckpointStore(tmp_path / "reference")
        settings = dataclasses.replace(SHARD_SETTINGS, checkpoint_shards=1)
        execute_generation(
            reference, _generation_requests(reference, settings,
                                            configs=(CONFIG,)), jobs=1)

        store = CheckpointStore(tmp_path / "orphaned")
        jobs, sharded_settings = self._shard_jobs(store)
        # Run only the *second* chunk: its producer never ran, so the
        # handoff never appears and the job must recompute the prefix.
        run_shard_job(jobs[1])
        windows = sharded_settings.sampling.intervals(
            sharded_settings.instructions)
        emitted = [w for w in windows
                   if w.detailed_start > jobs[1].chunk_start]
        assert emitted, "second chunk owns no interval - bad layout"
        for window in emitted:
            ours = store.get(shared_key(WORKLOAD, sharded_settings,
                                        window.index))
            theirs = reference.get(shared_key(WORKLOAD, settings,
                                              window.index))
            assert shared_signature(ours) == shared_signature(theirs)

    def test_corrupt_handoff_is_rejected_and_recomputed(self, tmp_path,
                                                        fast_timeout):
        store = CheckpointStore(tmp_path)
        jobs, settings = self._shard_jobs(store)
        run_shard_job(jobs[0])
        key = boundary_key(WORKLOAD, settings, jobs[0].identities,
                           jobs[0].chunk_end)
        assert store.contains(key)
        good = store.get(key)
        assert isinstance(good, BoundaryState)
        # Truncate the handoff mid-blob: stitch validation must reject it.
        path = store._path(key)
        path.write_bytes(path.read_bytes()[:40])
        run_shard_job(jobs[1])  # falls back, still emits every snapshot
        windows = settings.sampling.intervals(settings.instructions)
        for window in windows:
            assert store.contains(shared_key(WORKLOAD, settings, window.index))


class TestShardedEngineStats:
    def test_engine_reports_shard_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINTS", "1")
        settings = dataclasses.replace(SETTINGS, checkpoint_shards=2)
        engine = ExperimentEngine(jobs=1, cache=False,
                                  checkpoint_dir=tmp_path)
        engine.run([JobSpec(WORKLOAD, CONFIG, settings)])
        stats = engine.last_run_stats
        assert stats["checkpoint_passes"] == 1
        assert stats["checkpoint_shards"] == 2
        assert stats["checkpoint_shard_jobs"] == 2
        assert stats["checkpoint_chains"] == 1

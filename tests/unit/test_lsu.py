"""Unit tests for the load-store unit: store queue, load queue, policies."""

import pytest

from repro.core.predictors import PredictorSuiteConfig, FSPConfig, SATConfig, DDPConfig, SVWConfig
from repro.lsu.load_queue import LoadQueue
from repro.lsu.policies import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    LoadCommitInfo,
    LoadPrediction,
    OracleAssociativePolicy,
)
from repro.lsu.store_queue import StoreQueue


# ---------------------------------------------------------------------------
# Store queue
# ---------------------------------------------------------------------------

class TestStoreQueue:
    def _sq(self, size=8) -> StoreQueue:
        return StoreQueue(size=size)

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            StoreQueue(size=48)

    def test_allocate_and_occupancy(self):
        sq = self._sq()
        sq.allocate(ssn=1, pc=0x400, seq=0)
        sq.allocate(ssn=2, pc=0x404, seq=1)
        assert len(sq) == 2 and not sq.is_full()

    def test_allocate_requires_increasing_ssn(self):
        sq = self._sq()
        sq.allocate(ssn=5, pc=0x400, seq=0)
        with pytest.raises(ValueError):
            sq.allocate(ssn=5, pc=0x404, seq=1)

    def test_overflow_detected(self):
        sq = self._sq(size=2)
        sq.allocate(1, 0x400, 0)
        sq.allocate(2, 0x404, 1)
        assert sq.is_full()
        with pytest.raises(RuntimeError):
            sq.allocate(3, 0x408, 2)

    def test_write_execute_fills_entry(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        entry = sq.write_execute(1, addr=0x1000, size=8, value=0xAB)
        assert entry.executed and entry.addr == 0x1000

    def test_write_execute_unknown_ssn(self):
        sq = self._sq()
        with pytest.raises(KeyError):
            sq.write_execute(3, addr=0x1000, size=8, value=0)

    def test_release_in_order(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.allocate(2, 0x404, 1)
        assert sq.release(1).ssn == 1
        with pytest.raises(ValueError):
            sq.release(3)

    def test_release_empty(self):
        with pytest.raises(RuntimeError):
            self._sq().release(1)

    def test_indexed_read_maps_low_order_ssn_bits(self):
        sq = self._sq(size=8)
        sq.allocate(9, 0x400, 0)          # slot 9 % 8 == 1
        sq.write_execute(9, 0x1000, 8, 1)
        entry = sq.read_indexed(9)
        assert entry is not None and entry.ssn == 9
        # A different SSN mapping to the same slot returns whatever occupies it.
        assert sq.read_indexed(17) is entry

    def test_indexed_read_empty_slot(self):
        sq = self._sq()
        assert sq.read_indexed(5) is None

    def test_lookup_ssn_exact_only(self):
        sq = self._sq(size=8)
        sq.allocate(9, 0x400, 0)
        assert sq.lookup_ssn(9) is not None
        assert sq.lookup_ssn(17) is None

    def test_associative_search_youngest_match(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.allocate(2, 0x404, 1)
        sq.write_execute(1, 0x1000, 8, 0x11)
        sq.write_execute(2, 0x1000, 8, 0x22)
        entry = sq.associative_search(0x1000, 8, before_ssn=10)
        assert entry.ssn == 2 and entry.value == 0x22

    def test_associative_search_age_bound(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.allocate(2, 0x404, 1)
        sq.write_execute(1, 0x1000, 8, 0x11)
        sq.write_execute(2, 0x1000, 8, 0x22)
        entry = sq.associative_search(0x1000, 8, before_ssn=1)
        assert entry.ssn == 1

    def test_associative_search_ignores_unexecuted(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        assert sq.associative_search(0x1000, 8, before_ssn=10) is None

    def test_associative_search_requires_covering_store(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.write_execute(1, 0x1000, 4, 0x11)
        assert sq.associative_search(0x1000, 8, before_ssn=10) is None
        assert sq.associative_search(0x1000, 4, before_ssn=10) is not None

    def test_youngest_overlapping(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.write_execute(1, 0x1000, 4, 0x11)
        assert sq.youngest_overlapping(0x1002, 4, before_ssn=10).ssn == 1

    def test_extract_narrow_from_wide(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        entry = sq.write_execute(1, 0x1000, 8, 0x1122334455667788)
        assert entry.extract(0x1000, 4) == 0x55667788
        assert entry.extract(0x1004, 4) == 0x11223344

    def test_extract_requires_cover(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        entry = sq.write_execute(1, 0x1004, 4, 0xAABBCCDD)
        with pytest.raises(ValueError):
            entry.extract(0x1000, 8)

    def test_squash_younger(self):
        sq = self._sq()
        for ssn in range(1, 5):
            sq.allocate(ssn, 0x400 + 4 * ssn, ssn)
        squashed = sq.squash_younger(2)
        assert [e.ssn for e in squashed] == [4, 3]
        assert len(sq) == 2
        assert sq.read_indexed(4) is None

    def test_entries_in_order(self):
        sq = self._sq()
        sq.allocate(1, 0x400, 0)
        sq.allocate(2, 0x404, 1)
        assert [e.ssn for e in sq.entries_in_order()] == [1, 2]


# ---------------------------------------------------------------------------
# Load queue
# ---------------------------------------------------------------------------

class TestLoadQueue:
    def test_allocate_release(self):
        lq = LoadQueue(size=4)
        lq.allocate(seq=0, pc=0x400)
        lq.allocate(seq=1, pc=0x404)
        assert len(lq) == 2
        lq.release(0)
        assert len(lq) == 1

    def test_program_order_enforced(self):
        lq = LoadQueue(size=4)
        lq.allocate(seq=5, pc=0x400)
        with pytest.raises(ValueError):
            lq.allocate(seq=3, pc=0x404)

    def test_overflow(self):
        lq = LoadQueue(size=1)
        lq.allocate(0, 0x400)
        assert lq.is_full()
        with pytest.raises(RuntimeError):
            lq.allocate(1, 0x404)

    def test_release_in_order(self):
        lq = LoadQueue(size=4)
        lq.allocate(0, 0x400)
        lq.allocate(1, 0x404)
        with pytest.raises(ValueError):
            lq.release(1)

    def test_record_execution(self):
        lq = LoadQueue(size=4)
        lq.allocate(0, 0x400)
        lq.record_execution(0, addr=0x1000, size=8, value=7, svw_ssn=3, forwarded=True)
        entry = lq.get(0)
        assert entry.value == 7 and entry.forwarded and entry.svw_ssn == 3

    def test_record_execution_unknown_seq(self):
        lq = LoadQueue(size=4)
        with pytest.raises(KeyError):
            lq.record_execution(9, addr=0, size=8, value=0, svw_ssn=0, forwarded=False)

    def test_squash_younger(self):
        lq = LoadQueue(size=8)
        for seq in range(4):
            lq.allocate(seq, 0x400 + 4 * seq)
        assert lq.squash_younger(1) == 2
        assert len(lq) == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LoadQueue(size=0)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def _small_predictors() -> PredictorSuiteConfig:
    return PredictorSuiteConfig(
        fsp=FSPConfig(entries=64, assoc=2),
        sat=SATConfig(entries=64),
        ddp=DDPConfig(entries=64, assoc=2),
        svw=SVWConfig(ssbf_entries=256, spct_entries=256),
    )


def _commit_info(policy_prediction, violation=False, forwarded=False, forward_ssn=0,
                 pc=0x400, addr=0x1000, size=8, ssn_cmt=10):
    return LoadCommitInfo(pc=pc, addr=addr, size=size, spec_value=0, correct_value=0,
                          forwarded=forwarded, forward_ssn=forward_ssn,
                          prediction=policy_prediction, ssn_at_rename=ssn_cmt,
                          ssn_cmt=ssn_cmt, violation=violation)


class TestOraclePolicy:
    def test_prediction_passes_oracle_dependence(self):
        policy = OracleAssociativePolicy(predictors=_small_predictors())
        prediction = policy.predict_load(0x400, ssn_ren=10, ssn_cmt=5, oracle_dep_ssn=8)
        assert prediction.fwd_ssn == 8
        assert prediction.predict_forward is True

    def test_forward_uses_associative_search(self):
        policy = OracleAssociativePolicy(predictors=_small_predictors())
        sq = StoreQueue(size=8)
        sq.allocate(1, 0x500, 0)
        sq.write_execute(1, 0x1000, 8, 0x99)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(), store_queue=sq)
        assert decision.forwarded and decision.value == 0x99

    def test_latency_is_cache_like(self):
        policy = OracleAssociativePolicy(predictors=_small_predictors())
        assert policy.forwarded_load_latency(l1_latency=3) == 3


class TestAssociativePolicy:
    def test_schedule_via_fsp_sat(self):
        policy = AssociativeStoreSetsPolicy(predictors=_small_predictors())
        policy.fsp.insert(0x400, 0x500)
        policy.store_renamed(0x500, ssn=7)
        prediction = policy.predict_load(0x400, ssn_ren=7, ssn_cmt=2)
        assert prediction.fwd_ssn == 7
        assert prediction.predict_forward

    def test_training_only_on_violation(self):
        policy = AssociativeStoreSetsPolicy(predictors=_small_predictors())
        policy.store_committed(0x500, ssn=3, addr=0x1000, size=8)
        info = _commit_info(LoadPrediction(), violation=False)
        policy.load_committed(info)
        assert policy.fsp.lookup(0x400) == []
        info = _commit_info(LoadPrediction(), violation=True)
        policy.load_committed(info)
        assert len(policy.fsp.lookup(0x400)) == 1

    def test_optimistic_scheduling_assumes_cache_latency(self):
        policy = AssociativeStoreSetsPolicy(sq_latency=5, scheduling="optimistic",
                                            predictors=_small_predictors())
        prediction = LoadPrediction(predict_forward=True)
        assert policy.assumed_load_latency(prediction, l1_latency=3) == 3

    def test_predictive_scheduling_assumes_sq_latency_when_forwarding(self):
        policy = AssociativeStoreSetsPolicy(sq_latency=5, scheduling="predictive",
                                            predictors=_small_predictors())
        assert policy.assumed_load_latency(LoadPrediction(predict_forward=True), 3) == 5
        assert policy.assumed_load_latency(LoadPrediction(predict_forward=False), 3) == 3

    def test_forwarded_latency_respects_sq_latency(self):
        slow = AssociativeStoreSetsPolicy(sq_latency=5, predictors=_small_predictors())
        fast = AssociativeStoreSetsPolicy(sq_latency=3, predictors=_small_predictors())
        assert slow.forwarded_load_latency(3) == 5
        assert fast.forwarded_load_latency(3) == 3

    def test_original_formulation_store_dependence(self):
        policy = AssociativeStoreSetsPolicy(formulation="original",
                                            predictors=_small_predictors())
        policy.store_sets.train_violation(0x400, 0x500)
        policy.store_sets.train_violation(0x400, 0x504)
        policy.store_renamed(0x500, ssn=3)
        policy.store_renamed(0x504, ssn=4)
        assert policy.store_dependence(0x504, 4) == 3

    def test_sat_repair_on_squash(self):
        policy = AssociativeStoreSetsPolicy(predictors=_small_predictors())
        token1 = policy.store_renamed(0x500, ssn=3)
        token2 = policy.store_renamed(0x500, ssn=4)
        policy.store_squashed(0x500, 4, token2)
        assert policy.sat.lookup(0x500) == 3
        policy.store_squashed(0x500, 3, token1)
        assert policy.sat.lookup(0x500) == 0

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            AssociativeStoreSetsPolicy(scheduling="bogus")
        with pytest.raises(ValueError):
            AssociativeStoreSetsPolicy(formulation="bogus")


class TestIndexedPolicy:
    def _policy(self, use_delay=True) -> IndexedSQPolicy:
        return IndexedSQPolicy(sq_size=8, use_delay=use_delay,
                               predictors=_small_predictors())

    def test_no_prediction_reads_cache(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=0), store_queue=sq)
        assert not decision.forwarded

    def test_indexed_hit_with_matching_address(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(3, 0x500, 0)
        sq.write_execute(3, 0x1000, 8, 0x77)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert decision.forwarded and decision.value == 0x77 and decision.forward_ssn == 3

    def test_indexed_miss_on_address_mismatch(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(3, 0x500, 0)
        sq.write_execute(3, 0x2000, 8, 0x77)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert not decision.forwarded

    def test_indexed_miss_on_wider_load(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(3, 0x500, 0)
        sq.write_execute(3, 0x1000, 4, 0x77)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert not decision.forwarded

    def test_narrow_load_from_wide_store_same_address(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(3, 0x500, 0)
        sq.write_execute(3, 0x1000, 8, 0x1122334455667788)
        decision = policy.forward(0x1000, 4, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert decision.forwarded and decision.value == 0x55667788

    def test_indexed_miss_on_unexecuted_store(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(3, 0x500, 0)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert not decision.forwarded

    def test_indexed_refuses_younger_store_in_slot(self):
        policy = self._policy()
        sq = StoreQueue(size=8)
        sq.allocate(11, 0x500, 0)         # occupies slot 3
        sq.write_execute(11, 0x1000, 8, 0x77)
        decision = policy.forward(0x1000, 8, older_than_ssn=5,
                                  prediction=LoadPrediction(fwd_ssn=3), store_queue=sq)
        assert not decision.forwarded

    def test_chained_fsp_sat_prediction_selects_youngest(self):
        policy = self._policy()
        policy.fsp.insert(0x400, 0x500)
        policy.fsp.insert(0x400, 0x504)
        policy.store_renamed(0x500, ssn=3)
        policy.store_renamed(0x504, ssn=7)
        prediction = policy.predict_load(0x400, ssn_ren=7, ssn_cmt=1)
        assert prediction.fwd_ssn == 7

    def test_delay_prediction_generated(self):
        policy = self._policy(use_delay=True)
        for _ in range(2):
            policy.ddp.train_wrong_prediction(0x400, 2)
        prediction = policy.predict_load(0x400, ssn_ren=20, ssn_cmt=5)
        assert prediction.dly_ssn == 18

    def test_no_delay_when_disabled(self):
        policy = self._policy(use_delay=False)
        for _ in range(2):
            policy.ddp.train_wrong_prediction(0x400, 2)
        prediction = policy.predict_load(0x400, ssn_ren=20, ssn_cmt=5)
        assert prediction.dly_ssn == 0

    def test_scheduler_ignores_forwarding_distinction(self):
        policy = self._policy()
        assert policy.assumed_load_latency(LoadPrediction(predict_forward=True), 3) == 3

    def test_training_on_correct_forwarding_strengthens(self):
        policy = self._policy()
        policy.store_committed(0x500, ssn=9, addr=0x1000, size=8)
        info = _commit_info(LoadPrediction(fwd_ssn=9,
                                           predicted_store_pc=policy.fsp.partial_store_pc(0x500)),
                            forwarded=True, forward_ssn=9, ssn_cmt=10)
        policy.load_committed(info)
        assert len(policy.fsp.lookup(0x400)) == 1

    def test_training_on_violation_inserts_dependence(self):
        policy = self._policy()
        policy.store_committed(0x500, ssn=9, addr=0x1000, size=8)
        info = _commit_info(LoadPrediction(), violation=True, ssn_cmt=10)
        policy.load_committed(info)
        assert len(policy.fsp.lookup(0x400)) == 1
        # Violations also train the delay predictor.
        assert policy.ddp.occupancy() == 1

    def test_no_ddp_training_without_prediction_or_violation(self):
        policy = self._policy()
        policy.store_committed(0x500, ssn=9, addr=0x1000, size=8)
        info = _commit_info(LoadPrediction(fwd_ssn=0), violation=False, ssn_cmt=10)
        policy.load_committed(info)
        assert policy.ddp.occupancy() == 0

    def test_not_most_recent_unlearns_fsp(self):
        policy = self._policy()
        partial = policy.fsp.partial_store_pc(0x500)
        policy.fsp.insert(0x400, 0x500)
        policy.store_committed(0x500, ssn=9, addr=0x1000, size=8)
        # Predicted the right PC but the wrong instance; no violation (the
        # load read the correct value from the cache).
        info = _commit_info(LoadPrediction(fwd_ssn=4, predicted_store_pc=partial),
                            forwarded=False, violation=False, ssn_cmt=10)
        for _ in range(20):
            policy.load_committed(info)
        assert policy.fsp.lookup(0x400) == []

    def test_clear_ssn_state(self):
        policy = self._policy()
        policy.store_renamed(0x500, 5)
        policy.store_committed(0x500, 5, 0x1000, 8)
        policy.clear_ssn_state()
        assert policy.sat.lookup(0x500) == 0
        assert policy.svw.ssbf.lookup(0x1000, 8) == 0

    def test_policy_names(self):
        assert IndexedSQPolicy(use_delay=True).name == "indexed-3-fwd+dly"
        assert IndexedSQPolicy(use_delay=False).name == "indexed-3-fwd"
        assert AssociativeStoreSetsPolicy(sq_latency=5).name == "associative-5-predictive"

"""Unit tests for the execution subsystem (engine, cache, fingerprints)."""

import dataclasses
import pickle

import pytest

from repro.core.predictors import PredictorSuiteConfig
from repro.exec import (
    ExperimentEngine,
    JobSpec,
    ResultCache,
    available_cpus,
    job_key,
    resolve_jobs,
    run_job,
    simulator_fingerprint,
    workload_fingerprint,
)
from repro.harness.runner import ExperimentSettings
from repro.pipeline.config import CoreConfig

FAST = ExperimentSettings(instructions=800, stats_warmup_fraction=0.1)


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_nonpositive_means_all_cpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == available_cpus()

    def test_all_cpus_respects_affinity(self, monkeypatch):
        """"All CPUs" is the CPUs *this process* may run on, not the
        machine total — cgroup/affinity-limited runners must not be
        oversubscribed."""
        import os
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpus() == 2
        monkeypatch.setenv("REPRO_JOBS", "-1")
        assert resolve_jobs() == 2

    def test_affinity_unavailable_falls_back_to_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpus() == 6

    def test_settings_plumbing(self):
        engine = ExperimentEngine.from_settings(
            ExperimentSettings(jobs=5), cache=False)
        assert engine.jobs == 5


class TestCacheKey:
    def test_identical_settings_identical_key(self):
        a = JobSpec("gzip", "indexed-3-fwd", ExperimentSettings(instructions=800))
        b = JobSpec("gzip", "indexed-3-fwd", ExperimentSettings(instructions=800))
        assert job_key(a) == job_key(b)

    @pytest.mark.parametrize("change", [
        dict(instructions=900),
        dict(seed=2),
        dict(sq_size=32),
        dict(stats_warmup_fraction=0.3),
        dict(core=CoreConfig(rob_size=256)),
    ])
    def test_settings_change_changes_key(self, change):
        base = JobSpec("gzip", "indexed-3-fwd", ExperimentSettings(instructions=800))
        other = JobSpec("gzip", "indexed-3-fwd",
                        dataclasses.replace(ExperimentSettings(instructions=800), **change))
        assert job_key(base) != job_key(other)

    def test_workload_config_predictors_in_key(self):
        base = JobSpec("gzip", "indexed-3-fwd", FAST)
        assert job_key(base) != job_key(dataclasses.replace(base, workload="swim"))
        assert job_key(base) != job_key(dataclasses.replace(base, config_name="associative-3"))
        assert job_key(base) != job_key(dataclasses.replace(
            base, predictors=PredictorSuiteConfig().with_fsp_assoc(4)))

    def test_jobs_knob_excluded_from_key(self):
        serial = JobSpec("gzip", "indexed-3-fwd",
                         ExperimentSettings(instructions=800, jobs=1))
        parallel = JobSpec("gzip", "indexed-3-fwd",
                           ExperimentSettings(instructions=800, jobs=8))
        assert job_key(serial) == job_key(parallel)

    def test_fingerprints_are_stable_hex(self):
        assert simulator_fingerprint() == simulator_fingerprint()
        assert len(workload_fingerprint()) == 64
        assert simulator_fingerprint() != workload_fingerprint()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k" * 64, {"value": 42})
        assert cache.get("k" * 64) == {"value": 42}
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get("k" * 64) is None

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None

    def test_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = ResultCache()
        cache.put("k", 1)
        assert (tmp_path / "elsewhere" / "k.pkl").exists()


class TestTmpStrayHygiene:
    """A worker SIGKILLed mid-``put`` strands a ``*.tmp`` blob no ``except``
    ever sees; strays must stay invisible to lookups, be swept when stale,
    and never outlive ``clear()``."""

    @staticmethod
    def _orphan(tmp_path, name="orphan.tmp", age_seconds=0.0):
        import os
        import time

        path = tmp_path / name
        path.write_bytes(b"half-written entry")
        if age_seconds:
            stamp = time.time() - age_seconds
            os.utime(path, (stamp, stamp))
        return path

    @pytest.fixture(autouse=True)
    def _fresh_sweep_state(self, monkeypatch):
        from repro.exec import cache as cache_module

        monkeypatch.setattr(cache_module, "_SWEPT_DIRS", set())

    def test_strays_are_invisible_to_len_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        self._orphan(tmp_path)
        assert len(cache) == 1
        assert all(p.suffix == ".pkl" for p in cache._entries())

    def test_construction_sweeps_stale_strays_only(self, tmp_path):
        stale = self._orphan(tmp_path, "stale.tmp", age_seconds=7200.0)
        fresh = self._orphan(tmp_path, "fresh.tmp")  # a write in flight
        ResultCache(tmp_path)
        assert not stale.exists()
        assert fresh.exists()

    def test_sweep_runs_once_per_directory_per_process(self, tmp_path):
        ResultCache(tmp_path)
        stale = self._orphan(tmp_path, "late.tmp", age_seconds=7200.0)
        ResultCache(tmp_path)  # same directory: hygiene, not per-job work
        assert stale.exists()

    def test_clear_sweeps_strays_beyond_a_short_grace(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        stray = self._orphan(tmp_path, "stray.tmp", age_seconds=120.0)
        in_flight = self._orphan(tmp_path, "inflight.tmp")  # another process
        assert cache.clear() == 1  # entry count: strays are not entries
        assert not stray.exists()
        assert in_flight.exists()  # never race a live writer's os.replace

    def test_discard_is_silent_on_missing_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        assert cache.discard("k")
        assert not cache.discard("k")
        assert cache.get("k") is None


class TestStoreIntegrity:
    """Framed blobs: checksum-verified reads, quarantine, write-failure
    degradation to the bounded in-memory fallback."""

    @pytest.fixture(autouse=True)
    def _fresh_store_state(self, monkeypatch):
        from repro.exec import cache as cache_module
        from repro.exec import resilience

        monkeypatch.setattr(cache_module, "_DEGRADED_DIRS", set())
        monkeypatch.setattr(cache_module, "_MEMORY_FALLBACK", {})
        monkeypatch.setattr(resilience, "_COUNTERS",
                            type(resilience._COUNTERS)())
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        monkeypatch.setattr(resilience, "_PLAN_CACHE", {})

    def test_blobs_are_framed_with_checksum(self, tmp_path):
        from repro.exec.cache import _BLOB_MAGIC

        cache = ResultCache(tmp_path)
        cache.put("k", {"value": 42})
        blob = (tmp_path / "k.pkl").read_bytes()
        assert blob.startswith(_BLOB_MAGIC)
        assert cache.get("k") == {"value": 42}

    @pytest.mark.parametrize("damage", [
        lambda blob: blob[:len(blob) // 2],                    # truncated
        lambda blob: blob[:-4] + b"\x00\x00\x00\x00",          # bit rot
        lambda blob: b"not a framed blob at all",              # foreign junk
        lambda blob: b"",                                      # empty file
    ])
    def test_damaged_blob_is_quarantined_miss(self, tmp_path, damage):
        from repro.exec import resilience

        cache = ResultCache(tmp_path)
        cache.put("k", {"value": 42})
        path = tmp_path / "k.pkl"
        path.write_bytes(damage(path.read_bytes()))
        assert cache.get("k") is None
        assert not path.exists()  # moved aside, not left to re-fail
        assert (tmp_path / "quarantine" / "k.pkl").exists()
        assert resilience.counters_snapshot()["blobs_quarantined"] == 1
        # Quarantined blobs are invisible to entry listings and survive
        # a recompute-repair cycle without interfering with it.
        assert len(cache) == 0
        cache.put("k", {"value": 42})
        assert cache.get("k") == {"value": 42}

    def test_quarantine_emptied_by_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        (tmp_path / "k.pkl").write_bytes(b"junk")
        assert cache.get("k") is None
        cache.clear()
        assert list((tmp_path / "quarantine").glob("*.pkl")) == []

    def test_enospc_degrades_to_memory_fallback(self, tmp_path, monkeypatch):
        import errno

        from repro.exec import resilience

        import os as os_module

        cache = ResultCache(tmp_path)
        cache.put("before", 1)
        real_replace = os_module.replace

        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.exec.cache.os.replace", full_disk)
        cache.put("k", {"value": 42})  # must not raise
        monkeypatch.setattr("repro.exec.cache.os.replace", real_replace)
        assert cache.get("k") == {"value": 42}  # served from memory
        assert not (tmp_path / "k.pkl").exists()
        counters = resilience.counters_snapshot()
        assert counters["store_write_errors"] == 1
        # The directory stays degraded: later puts skip the broken disk.
        cache.put("later", 7)
        assert cache.get("later") == 7
        assert not (tmp_path / "later.pkl").exists()
        assert counters["store_write_errors"] == 1  # no repeat OS errors
        assert cache.get("before") == 1  # earlier disk entries still serve

    def test_memory_fallback_is_bounded_lru(self, tmp_path, monkeypatch):
        from repro.exec import cache as cache_module

        monkeypatch.setattr(cache_module, "_MEMORY_FALLBACK_LIMIT", 4)
        cache = ResultCache(tmp_path)
        cache_module._DEGRADED_DIRS.add(str(cache.directory))
        for i in range(8):
            cache.put(f"k{i}", i)
        assert cache.get("k0") is None  # evicted
        assert cache.get("k7") == 7

    def test_memory_fallback_preserves_copy_semantics(self, tmp_path):
        from repro.exec import cache as cache_module

        cache = ResultCache(tmp_path)
        cache_module._DEGRADED_DIRS.add(str(cache.directory))
        value = {"mutable": [1]}
        cache.put("k", value)
        value["mutable"].append(2)  # caller mutates after put
        assert cache.get("k") == {"mutable": [1]}  # store kept the snapshot

    def test_vanished_tmp_is_lost_write_not_degradation(self, tmp_path,
                                                        monkeypatch):
        from repro.exec import cache as cache_module
        from repro.exec import resilience

        cache = ResultCache(tmp_path)
        real_replace = cache_module.os.replace

        def vanished(src, dst):
            raise FileNotFoundError(src)

        monkeypatch.setattr("repro.exec.cache.os.replace", vanished)
        cache.put("k", 1)  # must not raise
        monkeypatch.setattr("repro.exec.cache.os.replace", real_replace)
        assert str(cache.directory) not in cache_module._DEGRADED_DIRS
        assert resilience.counters_snapshot()["store_lost_writes"] == 1
        cache.put("k", 2)  # the disk still works
        assert (tmp_path / "k.pkl").exists()

    def test_injected_corrupt_blob_recovers(self, tmp_path, monkeypatch):
        from repro.exec import resilience

        monkeypatch.setenv("REPRO_FAULT_PLAN", "corrupt_blob@p=1.0")
        cache = ResultCache(tmp_path)
        cache.put("k", {"value": 42})
        assert cache.get("k") is None  # checksum catches the damage
        cache.put("k", {"value": 42})  # fault fires once per key
        assert cache.get("k") == {"value": 42}
        counters = resilience.counters_snapshot()
        assert counters["injected_corrupt_blobs"] == 1
        assert counters["blobs_quarantined"] == 1

    def test_injected_truncated_blob_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "truncate_blob@p=1.0")
        cache = ResultCache(tmp_path)
        cache.put("k", list(range(100)))
        assert cache.get("k") is None
        cache.put("k", list(range(100)))
        assert cache.get("k") == list(range(100))

    def test_injected_write_error_serves_from_memory(self, tmp_path,
                                                     monkeypatch):
        from repro.exec import cache as cache_module

        monkeypatch.setenv("REPRO_FAULT_PLAN", "write_error@p=1.0")
        cache = ResultCache(tmp_path)
        cache.put("k", 5)
        assert not (tmp_path / "k.pkl").exists()
        assert cache.get("k") == 5
        # Injection is per-key, not a real broken disk: no degradation.
        assert str(cache.directory) not in cache_module._DEGRADED_DIRS

    def test_checkpoint_contains_sees_memory_fallback(self, tmp_path):
        from repro.exec import cache as cache_module
        from repro.sampling.checkpoints import CheckpointStore

        store = CheckpointStore(tmp_path)
        cache_module._DEGRADED_DIRS.add(str(store.directory))
        store.put("k", 1)
        assert store.contains("k")
        assert store.discard("k")
        assert not store.contains("k")


class TestEngine:
    def _specs(self, settings=FAST):
        return [JobSpec("gzip", name, settings)
                for name in ("oracle-associative-3", "indexed-3-fwd")]

    def test_cache_miss_then_hit(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        first = engine.run(self._specs())
        assert engine.last_run_stats["cache_hits"] == 0
        assert engine.last_run_stats["simulated"] == 2
        second = engine.run(self._specs())
        assert engine.last_run_stats["cache_hits"] == 2
        assert engine.last_run_stats["simulated"] == 0
        assert [r.result.stats.as_dict() for r in first] == \
            [r.result.stats.as_dict() for r in second]

    def test_settings_change_is_a_miss(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run(self._specs())
        changed = dataclasses.replace(FAST, instructions=900)
        engine.run(self._specs(settings=changed))
        assert engine.last_run_stats["cache_hits"] == 0
        assert engine.last_run_stats["simulated"] == 2

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        engine = ExperimentEngine(jobs=1)
        assert engine.cache is None
        engine.run(self._specs())
        assert engine.last_run_stats["cache_hits"] == 0

    def test_explicit_cache_dir_overrides_env_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        assert engine.cache is not None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ExperimentEngine(jobs=1, cache=False, cache_dir=tmp_path).cache is None

    def test_parallel_matches_serial(self):
        serial = ExperimentEngine(jobs=1, cache=False).run(self._specs())
        parallel = ExperimentEngine(jobs=2, cache=False).run(self._specs())
        assert [r.result.stats.as_dict() for r in serial] == \
            [r.result.stats.as_dict() for r in parallel]

    def test_order_preserved(self):
        specs = [JobSpec(w, "indexed-3-fwd", FAST) for w in ("swim", "gzip", "swim")]
        records = ExperimentEngine(jobs=2, cache=False).run(specs)
        assert [r.workload for r in records] == ["swim", "gzip", "swim"]

    def test_spec_and_record_picklable(self):
        spec = self._specs()[0]
        assert pickle.loads(pickle.dumps(spec)) == spec
        record = run_job(spec)
        clone = pickle.loads(pickle.dumps(record))
        assert clone.result.stats.cycles == record.result.stats.cycles

    def test_generic_memoization(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"x": 7}

        assert engine.cached("tag", {"p": 1}, compute) == {"x": 7}
        assert engine.cached("tag", {"p": 1}, compute) == {"x": 7}
        assert len(calls) == 1
        assert engine.cached("tag", {"p": 2}, compute) == {"x": 7}
        assert len(calls) == 2

"""Unit tests for the workload substrate: program builder, kernels, profiles,
and the suite composer."""

import pytest

from repro.workloads.kernels import (
    ALL_KERNELS,
    AccumulateKernel,
    BranchyKernel,
    FPStencilKernel,
    GlobalRMWKernel,
    ManyStoreDepKernel,
    NotMostRecentKernel,
    PointerChaseKernel,
    StackSpillKernel,
    StreamCopyKernel,
    WideNarrowKernel,
)
from repro.workloads.profiles import (
    PROFILES,
    SENSITIVITY_BENCHMARKS,
    WorkloadProfile,
    get_profile,
    profiles_for_suite,
)
from repro.workloads.program import ProgramBuilder
from repro.workloads.suites import (
    WorkloadComposer,
    build_suite,
    build_workload,
    sensitivity_workloads,
    workload_names,
)


class TestProgramBuilder:
    def test_pcs_are_unique_and_word_aligned(self):
        builder = ProgramBuilder("t")
        pcs = builder.alloc_pcs(10)
        assert len(set(pcs)) == 10
        assert all(pc % 4 == 0 for pc in pcs)

    def test_regions_do_not_overlap(self):
        builder = ProgramBuilder("t")
        a = builder.alloc_region(100)
        b = builder.alloc_region(100)
        assert b >= a + 100

    def test_register_allocation_avoids_zero_register(self):
        builder = ProgramBuilder("t")
        regs = builder.alloc_int_regs(64)
        assert 31 not in regs

    def test_fp_registers_in_fp_space(self):
        builder = ProgramBuilder("t")
        regs = builder.alloc_fp_regs(40)
        assert all(reg >= 32 for reg in regs)

    def test_value_fits_size(self):
        builder = ProgramBuilder("t", seed=3)
        for size in (1, 2, 4, 8):
            assert 0 <= builder.value(size) < (1 << (8 * size))

    def test_emit_helpers(self):
        builder = ProgramBuilder("t")
        builder.load(0x400, dest=1, addr=0x1000)
        builder.store(0x404, addr=0x1000, value=1, srcs=(1,))
        builder.alu(0x408, dest=2, srcs=(1,))
        builder.branch(0x40C, taken=True)
        builder.nop(0x410)
        trace = builder.finish()
        assert len(trace) == 5
        assert trace.stats.loads == 1 and trace.stats.stores == 1

    def test_determinism_given_seed(self):
        a = ProgramBuilder("t", seed=7).value(8)
        b = ProgramBuilder("t", seed=7).value(8)
        assert a == b

    def test_invalid_region(self):
        with pytest.raises(ValueError):
            ProgramBuilder("t").alloc_region(0)


def _emit_n(kernel, iterations):
    for _ in range(iterations):
        kernel.emit()
    return kernel.builder.finish()


class TestKernels:
    def test_every_kernel_emits_valid_uops(self):
        for kernel_cls in ALL_KERNELS:
            builder = ProgramBuilder(kernel_cls.__name__, seed=1)
            kernel = kernel_cls(builder)
            trace = _emit_n(kernel, 20)
            assert len(trace) > 0

    def test_kernels_use_stable_static_pcs(self):
        """Dynamic instances of a kernel reuse the same static PCs."""
        for kernel_cls in ALL_KERNELS:
            builder = ProgramBuilder(kernel_cls.__name__, seed=1)
            kernel = kernel_cls(builder)
            _emit_n(kernel, 50)
            stats = builder.finish().stats
            assert stats.unique_pcs < 80, kernel_cls.__name__

    def test_stack_spill_loads_read_stored_addresses(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = StackSpillKernel(builder, slots=4)
        kernel.emit()
        trace = builder.finish()
        store_addrs = {u.mem.addr for u in trace if u.is_store}
        load_addrs = {u.mem.addr for u in trace if u.is_load}
        assert load_addrs == store_addrs
        assert kernel.forwarding_fraction == 1.0

    def test_global_rmw_forwarding_distance(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = GlobalRMWKernel(builder, n_globals=3)
        traces = _emit_n(kernel, 20)
        loads = [u for u in traces if u.is_load]
        stores = [u for u in traces if u.is_store]
        # Each load reads the address written by the store three iterations back.
        assert loads and stores
        assert all(u.mem.addr in {s.mem.addr for s in stores} for u in loads)

    def test_not_most_recent_lag(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = NotMostRecentKernel(builder, lag=2, elements=64)
        _emit_n(kernel, 12)
        trace = builder.finish()
        loads = [u for u in trace if u.is_load]
        stores = [u for u in trace if u.is_store]
        # The i-th load reads the address of the (i)th store (written two
        # iterations before it), not the most recent one.
        assert loads[0].mem.addr == stores[0].mem.addr
        assert loads[0].mem.addr != stores[1].mem.addr

    def test_many_store_dep_rotates_static_stores(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = ManyStoreDepKernel(builder, n_stores=4)
        _emit_n(kernel, 8)
        trace = builder.finish()
        store_pcs = {u.pc for u in trace if u.is_store}
        load_pcs = {u.pc for u in trace if u.is_load}
        assert len(store_pcs) == 4
        assert len(load_pcs) == 1

    def test_wide_narrow_accesses(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = WideNarrowKernel(builder)
        kernel.emit()
        trace = builder.finish()
        loads = [u for u in trace if u.is_load]
        stores = [u for u in trace if u.is_store]
        assert stores[0].mem.size == 8
        assert {u.mem.size for u in loads} == {4}
        assert loads[0].mem.addr == stores[0].mem.addr
        assert loads[1].mem.addr == stores[0].mem.addr + 4

    def test_stream_copy_no_forwarding(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = StreamCopyKernel(builder, working_set_bytes=4096)
        _emit_n(kernel, 10)
        trace = builder.finish()
        load_addrs = {u.mem.addr for u in trace if u.is_load}
        store_addrs = {u.mem.addr for u in trace if u.is_store}
        assert not load_addrs & store_addrs
        assert kernel.forwarding_fraction == 0.0

    def test_pointer_chase_chains_are_serialised(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = PointerChaseKernel(builder, nodes=64, chains=2)
        _emit_n(kernel, 8)
        trace = builder.finish()
        loads = [u for u in trace if u.is_load]
        # Every load consumes the register it produces (chain serialisation).
        assert all(u.dest in u.srcs for u in loads)
        # Two chains -> two distinct chain registers.
        assert len({u.dest for u in loads}) == 2

    def test_accumulate_has_no_stores(self):
        builder = ProgramBuilder("t", seed=1)
        _emit_n(AccumulateKernel(builder, working_set_bytes=4096), 10)
        assert builder.finish().stats.stores == 0

    def test_fp_stencil_uses_fp_ops(self):
        builder = ProgramBuilder("t", seed=1)
        _emit_n(FPStencilKernel(builder, working_set_bytes=4096), 5)
        trace = builder.finish()
        assert any(u.op_class.is_fp for u in trace)

    def test_branchy_taken_probability(self):
        builder = ProgramBuilder("t", seed=1)
        kernel = BranchyKernel(builder, taken_prob=0.5)
        _emit_n(kernel, 200)
        trace = builder.finish()
        stats = trace.stats
        assert 0.3 <= stats.taken_branches / stats.branches <= 0.7

    def test_branchy_validation(self):
        with pytest.raises(ValueError):
            BranchyKernel(ProgramBuilder("t"), taken_prob=1.5)

    def test_kernel_parameter_validation(self):
        builder = ProgramBuilder("t")
        with pytest.raises(ValueError):
            StackSpillKernel(builder, slots=0)
        with pytest.raises(ValueError):
            GlobalRMWKernel(builder, n_globals=0)
        with pytest.raises(ValueError):
            NotMostRecentKernel(builder, lag=0)


class TestProfiles:
    def test_forty_seven_benchmarks(self):
        assert len(PROFILES) == 47

    def test_suite_sizes_match_paper(self):
        assert len(profiles_for_suite("media")) == 18
        assert len(profiles_for_suite("int")) == 16
        assert len(profiles_for_suite("fp")) == 13

    def test_names_unique(self):
        names = [p.name for p in PROFILES]
        assert len(names) == len(set(names))

    def test_get_profile(self):
        assert get_profile("vortex").suite == "int"
        with pytest.raises(KeyError):
            get_profile("not-a-benchmark")

    def test_forward_rates_match_table3_examples(self):
        assert get_profile("mesa.m").forward_rate == pytest.approx(0.436)
        assert get_profile("mcf").forward_rate == pytest.approx(0.026)
        assert get_profile("adpcm.d").forward_rate == 0.0
        assert get_profile("sixtrack").forward_rate == pytest.approx(0.339)

    def test_pathology_flags(self):
        assert get_profile("mesa.t").not_most_recent > get_profile("mesa.m").not_most_recent
        assert get_profile("eon.c").fsp_pressure > get_profile("gcc").fsp_pressure
        assert get_profile("mcf").pointer_chase > 0.5

    def test_sensitivity_set(self):
        assert len(SENSITIVITY_BENCHMARKS) == 9
        suites = {get_profile(name).suite for name in SENSITIVITY_BENCHMARKS}
        assert suites == {"media", "int", "fp"}

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="int", forward_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="weird", forward_rate=0.1)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="int", forward_rate=0.1, working_set_kb=0)

    def test_invalid_suite_lookup(self):
        with pytest.raises(ValueError):
            profiles_for_suite("bogus")


class TestSuites:
    def test_workload_names(self):
        assert len(workload_names()) == 47
        assert len(workload_names("media")) == 18
        assert sensitivity_workloads() == SENSITIVITY_BENCHMARKS

    def test_build_workload_length(self):
        trace = build_workload("gzip", instructions=3000)
        assert len(trace) == 3000
        assert trace.name == "gzip"

    def test_build_workload_deterministic(self):
        a = build_workload("gzip", instructions=2000, seed=5)
        b = build_workload("gzip", instructions=2000, seed=5)
        assert [u.pc for u in a] == [u.pc for u in b]
        assert [u.mem.addr if u.mem else None for u in a] == \
               [u.mem.addr if u.mem else None for u in b]

    def test_build_workload_seed_changes_trace(self):
        a = build_workload("gzip", instructions=2000, seed=5)
        b = build_workload("gzip", instructions=2000, seed=6)
        assert [u.pc for u in a] != [u.pc for u in b]

    def test_zero_forwarding_profile_has_no_forwarding_kernels(self):
        composer = WorkloadComposer(get_profile("adpcm.d"))
        assert composer._forward_prob == 0.0

    def test_high_forwarding_profile_mix(self):
        composer = WorkloadComposer(get_profile("mesa.m"))
        assert composer._forward_prob > 0.3

    def test_static_footprint_is_bounded(self):
        trace = build_workload("vortex", instructions=5000)
        assert trace.stats.unique_pcs < 300

    def test_trace_mix_is_reasonable(self):
        trace = build_workload("vortex", instructions=8000)
        stats = trace.stats
        assert 0.15 <= stats.load_fraction <= 0.45
        assert 0.05 <= stats.store_fraction <= 0.35
        assert stats.branch_fraction <= 0.40

    def test_build_suite(self):
        suite = build_suite("media", instructions=500)
        assert len(suite) == 18
        assert all(len(trace) == 500 for trace in suite.values())

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            build_workload("gzip", instructions=0)

"""Unit tests for the paper's prediction structures: SSN, FSP, SAT, DDP,
SVW (SSBF/SPCT), and the original Store Sets predictor."""

import pytest

from repro.core.ddp import DelayDistancePredictor
from repro.core.fsp import ForwardingStorePredictor
from repro.core.predictors import (
    DDPConfig,
    FSPConfig,
    PredictorSuiteConfig,
    SATConfig,
    StoreSetsConfig,
    SVWConfig,
)
from repro.core.sat import StoreAliasTable
from repro.core.ssn import SSNAllocator, sq_index
from repro.core.store_sets import StoreSetsPredictor
from repro.core.svw import SVWFilter, StorePCTable, StoreSequenceBloomFilter


# ---------------------------------------------------------------------------
# SSNs
# ---------------------------------------------------------------------------

class TestSSN:
    def test_sq_index_low_bits(self):
        assert sq_index(0, 64) == 0
        assert sq_index(64, 64) == 0
        assert sq_index(65, 64) == 1
        assert sq_index(130, 64) == 2

    def test_sq_index_requires_power_of_two(self):
        with pytest.raises(ValueError):
            sq_index(5, 48)

    def test_allocation_is_monotonic(self):
        alloc = SSNAllocator()
        ssns = [alloc.allocate() for _ in range(10)]
        assert ssns == list(range(1, 11))

    def test_commit_in_order(self):
        alloc = SSNAllocator()
        first = alloc.allocate()
        second = alloc.allocate()
        alloc.commit(first)
        alloc.commit(second)
        assert alloc.ssn_commit == second

    def test_commit_out_of_order_rejected(self):
        alloc = SSNAllocator()
        alloc.allocate()
        second = alloc.allocate()
        with pytest.raises(ValueError):
            alloc.commit(second)

    def test_inflight_tracking(self):
        alloc = SSNAllocator()
        a = alloc.allocate()
        b = alloc.allocate()
        assert alloc.is_inflight(a) and alloc.is_inflight(b)
        assert alloc.inflight_count() == 2
        alloc.commit(a)
        assert not alloc.is_inflight(a)
        assert alloc.inflight_count() == 1

    def test_rewind_after_flush(self):
        alloc = SSNAllocator()
        a = alloc.allocate()
        alloc.allocate()
        alloc.allocate()
        alloc.rewind_rename(a)
        assert alloc.ssn_rename == a
        assert alloc.allocate() == a + 1

    def test_rewind_validation(self):
        alloc = SSNAllocator()
        a = alloc.allocate()
        alloc.commit(a)
        with pytest.raises(ValueError):
            alloc.rewind_rename(a - 1)
        with pytest.raises(ValueError):
            alloc.rewind_rename(a + 5)

    def test_wrap_detection(self):
        alloc = SSNAllocator(bits=4)
        wrapped = [alloc.allocate() for _ in range(33)]
        assert alloc.wraps == 2
        assert alloc.wrapped(16) and alloc.wrapped(32)
        assert not alloc.wrapped(15)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            SSNAllocator(bits=2)

    def test_reset(self):
        alloc = SSNAllocator()
        alloc.allocate()
        alloc.reset()
        assert alloc.ssn_rename == 0 and alloc.ssn_commit == 0


# ---------------------------------------------------------------------------
# FSP
# ---------------------------------------------------------------------------

def _fsp(entries=64, assoc=2) -> ForwardingStorePredictor:
    return ForwardingStorePredictor(FSPConfig(entries=entries, assoc=assoc))


class TestFSP:
    LOAD_PC = 0x1000
    STORE_PC = 0x2000

    def test_empty_lookup(self):
        fsp = _fsp()
        assert fsp.lookup(self.LOAD_PC) == []

    def test_insert_then_lookup(self):
        fsp = _fsp()
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        entries = fsp.lookup(self.LOAD_PC)
        assert len(entries) == 1
        assert entries[0].store_pc == fsp.partial_store_pc(self.STORE_PC)

    def test_associativity_limits_dependences(self):
        fsp = _fsp(assoc=2)
        for i in range(4):
            fsp.insert(self.LOAD_PC, self.STORE_PC + 4 * i)
        assert len(fsp.lookup(self.LOAD_PC)) == 2

    def test_strengthen_creates_when_missing(self):
        fsp = _fsp()
        fsp.strengthen(self.LOAD_PC, self.STORE_PC)
        assert len(fsp.lookup(self.LOAD_PC)) == 1

    def test_weaken_eventually_invalidates(self):
        fsp = _fsp()
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        # Insert sets the counter to positive_weight (8); 9 weakens clear it.
        for _ in range(9):
            fsp.weaken(self.LOAD_PC, self.STORE_PC)
        assert fsp.lookup(self.LOAD_PC) == []

    def test_training_ratio_respected(self):
        config = FSPConfig(entries=64, assoc=2, positive_weight=8, negative_weight=1)
        fsp = ForwardingStorePredictor(config)
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        for _ in range(7):
            fsp.weaken(self.LOAD_PC, self.STORE_PC)
        assert len(fsp.lookup(self.LOAD_PC)) == 1   # survives 7 negatives
        fsp.strengthen(self.LOAD_PC, self.STORE_PC)
        for _ in range(8):
            fsp.weaken(self.LOAD_PC, self.STORE_PC)
        assert len(fsp.lookup(self.LOAD_PC)) == 1   # one positive outweighs 8 negatives

    def test_weaken_all(self):
        fsp = _fsp()
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        fsp.insert(self.LOAD_PC, self.STORE_PC + 4)
        for _ in range(9):
            fsp.weaken_all(self.LOAD_PC)
        assert fsp.lookup(self.LOAD_PC) == []

    def test_eviction_prefers_weakest(self):
        fsp = _fsp(assoc=2)
        strong = self.STORE_PC
        weak = self.STORE_PC + 4
        fsp.insert(self.LOAD_PC, strong)
        fsp.strengthen(self.LOAD_PC, strong)
        fsp.insert(self.LOAD_PC, weak)
        fsp.weaken(self.LOAD_PC, weak)
        newcomer = self.STORE_PC + 8
        fsp.insert(self.LOAD_PC, newcomer)
        partials = {e.store_pc for e in fsp.lookup(self.LOAD_PC)}
        assert fsp.partial_store_pc(strong) in partials
        assert fsp.partial_store_pc(newcomer) in partials

    def test_different_loads_do_not_interfere(self):
        fsp = _fsp(entries=256, assoc=2)
        other_load = self.LOAD_PC + 4
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        assert fsp.lookup(other_load) == []

    def test_predicted_store_pcs(self):
        fsp = _fsp()
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        assert fsp.predicted_store_pcs(self.LOAD_PC) == [fsp.partial_store_pc(self.STORE_PC)]

    def test_invalidate_all(self):
        fsp = _fsp()
        fsp.insert(self.LOAD_PC, self.STORE_PC)
        fsp.invalidate_all()
        assert fsp.occupancy() == 0

    def test_storage_bits_matches_paper_scale(self):
        # Paper: 4K-entry FSP with 1B tags, 1B store PCs, 4-bit counters ~ 10KB.
        fsp = ForwardingStorePredictor(FSPConfig())
        assert 8 * 9 * 1024 <= fsp.storage_bits() <= 8 * 11 * 1024

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FSPConfig(entries=1000)
        with pytest.raises(ValueError):
            FSPConfig(entries=64, assoc=3)


# ---------------------------------------------------------------------------
# SAT
# ---------------------------------------------------------------------------

class TestSAT:
    def test_untagged_lookup_default_zero(self):
        sat = StoreAliasTable()
        assert sat.lookup(0x1234) == 0

    def test_update_then_lookup(self):
        sat = StoreAliasTable()
        sat.update(0x2000, 42)
        assert sat.lookup(0x2000) == 42

    def test_aliasing_overwrites(self):
        sat = StoreAliasTable(SATConfig(entries=16))
        pc_a = 0x2000
        pc_b = pc_a + 16 * 4        # same index (untagged)
        sat.update(pc_a, 10)
        sat.update(pc_b, 20)
        assert sat.lookup(pc_a) == 20

    def test_log_repair(self):
        sat = StoreAliasTable()
        sat.update(0x2000, 10)
        undo = sat.update(0x2000, 20)
        sat.undo(undo)
        assert sat.lookup(0x2000) == 10

    def test_checkpoint_restore(self):
        sat = StoreAliasTable(SATConfig(repair="checkpoint"))
        sat.update(0x2000, 10)
        cp = sat.checkpoint()
        sat.update(0x2000, 99)
        sat.restore(cp)
        assert sat.lookup(0x2000) == 10

    def test_checkpoint_budget(self):
        sat = StoreAliasTable(SATConfig(checkpoints=1))
        assert sat.checkpoint() is not None
        assert sat.checkpoint() is None
        assert sat.stats.checkpoint_overflows == 1

    def test_restore_unknown_checkpoint(self):
        sat = StoreAliasTable()
        with pytest.raises(KeyError):
            sat.restore(123)

    def test_lookup_partial_matches_lookup(self):
        sat = StoreAliasTable()
        sat.update(0x2000, 7)
        partial = (0x2000 >> 2) & (sat.config.entries - 1)
        assert sat.lookup_partial(partial) == 7

    def test_clear(self):
        sat = StoreAliasTable()
        sat.update(0x2000, 7)
        sat.clear()
        assert sat.lookup(0x2000) == 0

    def test_storage_bits(self):
        # 256 entries of 16-bit SSNs = 512 bytes (paper Section 4.1).
        assert StoreAliasTable().storage_bits(16) == 512 * 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SATConfig(entries=100)
        with pytest.raises(ValueError):
            SATConfig(repair="magic")


# ---------------------------------------------------------------------------
# DDP
# ---------------------------------------------------------------------------

def _ddp(sq_size=64, **kwargs) -> DelayDistancePredictor:
    return DelayDistancePredictor(DDPConfig(entries=64, assoc=2, **kwargs), sq_size=sq_size)


class TestDDP:
    LOAD_PC = 0x3000

    def test_no_entry_no_delay(self):
        assert _ddp().predict_distance(self.LOAD_PC) is None

    def test_below_threshold_no_delay(self):
        ddp = _ddp(counter_threshold=8, positive_weight=4)
        ddp.train_wrong_prediction(self.LOAD_PC, 5)
        assert ddp.predict_distance(self.LOAD_PC) is None

    def test_delay_after_repeated_wrong_predictions(self):
        ddp = _ddp(counter_threshold=8, positive_weight=4)
        ddp.train_wrong_prediction(self.LOAD_PC, 5)
        ddp.train_wrong_prediction(self.LOAD_PC, 5)
        assert ddp.predict_distance(self.LOAD_PC) == 5

    def test_learns_minimum_distance(self):
        ddp = _ddp()
        ddp.train_wrong_prediction(self.LOAD_PC, 10)
        ddp.train_wrong_prediction(self.LOAD_PC, 3)
        ddp.train_wrong_prediction(self.LOAD_PC, 30)
        assert ddp.predict_distance(self.LOAD_PC) == 3

    def test_distance_at_least_sq_size_means_no_delay(self):
        ddp = _ddp(sq_size=64)
        for _ in range(4):
            ddp.train_wrong_prediction(self.LOAD_PC, 100)
        assert ddp.predict_distance(self.LOAD_PC) is None

    def test_correct_predictions_unlearn_delay(self):
        ddp = _ddp(counter_threshold=8, positive_weight=4, negative_weight=1)
        ddp.train_wrong_prediction(self.LOAD_PC, 5)
        ddp.train_wrong_prediction(self.LOAD_PC, 5)
        assert ddp.predict_distance(self.LOAD_PC) is not None
        for _ in range(16):
            ddp.train_correct_prediction(self.LOAD_PC)
        assert ddp.predict_distance(self.LOAD_PC) is None

    def test_future_field_allows_distance_unlearning(self):
        ddp = _ddp(future_interval=4)
        for _ in range(3):
            ddp.train_wrong_prediction(self.LOAD_PC, 2)
        # Subsequent instances observe a larger distance; after enough
        # promotions the small distance is forgotten.
        for _ in range(12):
            ddp.train_wrong_prediction(self.LOAD_PC, 40)
        assert ddp.predict_distance(self.LOAD_PC) == 40

    def test_delay_ssn_computation(self):
        ddp = _ddp()
        ddp.train_wrong_prediction(self.LOAD_PC, 4)
        ddp.train_wrong_prediction(self.LOAD_PC, 4)
        assert ddp.delay_ssn(self.LOAD_PC, ssn_rename=100) == 96

    def test_delay_ssn_never_negative(self):
        ddp = _ddp()
        ddp.train_wrong_prediction(self.LOAD_PC, 10)
        ddp.train_wrong_prediction(self.LOAD_PC, 10)
        assert ddp.delay_ssn(self.LOAD_PC, ssn_rename=3) == 0

    def test_training_correct_on_unknown_pc_is_noop(self):
        ddp = _ddp()
        ddp.train_correct_prediction(self.LOAD_PC)
        assert ddp.occupancy() == 0

    def test_invalidate_all(self):
        ddp = _ddp()
        ddp.train_wrong_prediction(self.LOAD_PC, 3)
        ddp.invalidate_all()
        assert ddp.occupancy() == 0

    def test_storage_bits_matches_paper_scale(self):
        # Paper: 4K-entry DDP ~ 12KB including tags.
        ddp = DelayDistancePredictor(DDPConfig(), sq_size=64)
        assert 8 * 10 * 1024 <= ddp.storage_bits() <= 8 * 14 * 1024

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DDPConfig(entries=100)
        with pytest.raises(ValueError):
            DDPConfig(counter_bits=2, counter_threshold=9)
        with pytest.raises(ValueError):
            DelayDistancePredictor(DDPConfig(), sq_size=48)


# ---------------------------------------------------------------------------
# SVW structures
# ---------------------------------------------------------------------------

class TestSSBF:
    def test_lookup_default_zero(self):
        assert StoreSequenceBloomFilter(entries=64).lookup(0x1000, 8) == 0

    def test_update_lookup(self):
        ssbf = StoreSequenceBloomFilter(entries=64)
        ssbf.update(0x1000, 8, 17)
        assert ssbf.lookup(0x1000, 8) == 17
        assert ssbf.lookup(0x1004, 4) == 17

    def test_partial_overlap_detected(self):
        ssbf = StoreSequenceBloomFilter(entries=256)
        ssbf.update(0x1004, 4, 9)
        assert ssbf.lookup(0x1000, 8) == 9

    def test_youngest_wins(self):
        ssbf = StoreSequenceBloomFilter(entries=256)
        ssbf.update(0x1000, 8, 5)
        ssbf.update(0x1000, 4, 11)
        assert ssbf.lookup(0x1006, 1) == 5
        assert ssbf.lookup(0x1000, 8) == 11

    def test_aliasing_is_conservative(self):
        ssbf = StoreSequenceBloomFilter(entries=16)
        ssbf.update(0x1000, 1, 50)
        # An aliasing address reports the aliased (younger) SSN -> only extra
        # re-executions, never missed ones.
        assert ssbf.lookup(0x1000 + 16, 1) == 50

    def test_clear(self):
        ssbf = StoreSequenceBloomFilter(entries=64)
        ssbf.update(0x1000, 8, 5)
        ssbf.clear()
        assert ssbf.lookup(0x1000, 8) == 0

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            StoreSequenceBloomFilter(entries=100)


class TestSPCT:
    def test_update_lookup(self):
        spct = StorePCTable(entries=64)
        spct.update(0x1000, 8, 0x4400)
        assert spct.lookup(0x1000, 8) == 0x4400

    def test_default_zero(self):
        assert StorePCTable(entries=64).lookup(0x1000, 1) == 0

    def test_clear(self):
        spct = StorePCTable(entries=64)
        spct.update(0x1000, 1, 0x4400)
        spct.clear()
        assert spct.lookup(0x1000, 1) == 0


class TestSVWFilter:
    def test_no_reexecution_when_no_newer_store(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=256, spct_entries=256))
        svw.store_committed(0x1000, 8, ssn=5, store_pc=0x4000)
        assert svw.needs_reexecution(0x1000, 8, load_svw_ssn=5) is False

    def test_reexecution_when_vulnerable_store_committed(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=256, spct_entries=256))
        svw.store_committed(0x1000, 8, ssn=9, store_pc=0x4000)
        assert svw.needs_reexecution(0x1000, 8, load_svw_ssn=5) is True

    def test_unrelated_address_not_reexecuted(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=2048, spct_entries=2048))
        svw.store_committed(0x1000, 8, ssn=9, store_pc=0x4000)
        assert svw.needs_reexecution(0x1010, 8, load_svw_ssn=0) is False

    def test_last_writer(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=256, spct_entries=256))
        svw.store_committed(0x1000, 8, ssn=5, store_pc=0x4000)
        svw.store_committed(0x1004, 4, ssn=9, store_pc=0x4400)
        ssn, pc = svw.last_writer(0x1000, 8)
        assert ssn == 9 and pc == 0x4400

    def test_last_writer_unwritten(self):
        svw = SVWFilter()
        assert svw.last_writer(0x9000, 8) == (0, 0)

    def test_stats(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=256, spct_entries=256))
        svw.store_committed(0x1000, 8, ssn=9, store_pc=0x4000)
        svw.needs_reexecution(0x1000, 8, 0)
        svw.needs_reexecution(0x1010, 8, 0)
        assert svw.stats.loads_checked == 2
        assert svw.stats.loads_reexecuted == 1
        assert svw.stats.reexecution_rate == pytest.approx(0.5)

    def test_clear(self):
        svw = SVWFilter(SVWConfig(ssbf_entries=256, spct_entries=256))
        svw.store_committed(0x1000, 8, ssn=9, store_pc=0x4000)
        svw.clear()
        assert svw.needs_reexecution(0x1000, 8, 0) is False


# ---------------------------------------------------------------------------
# Original Store Sets
# ---------------------------------------------------------------------------

class TestStoreSets:
    LOAD_PC = 0x5000
    STORE_PC = 0x6000

    def test_untrained_no_dependence(self):
        predictor = StoreSetsPredictor()
        assert predictor.load_renamed(self.LOAD_PC) is None

    def test_violation_creates_set(self):
        predictor = StoreSetsPredictor()
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        assert predictor.ssid_of(self.LOAD_PC) == predictor.ssid_of(self.STORE_PC)
        assert predictor.ssid_of(self.LOAD_PC) >= 0

    def test_load_waits_for_last_fetched_store(self):
        predictor = StoreSetsPredictor()
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        predictor.store_renamed(self.STORE_PC, ssn=7)
        assert predictor.load_renamed(self.LOAD_PC) == 7

    def test_store_store_serialisation(self):
        predictor = StoreSetsPredictor()
        other_store = self.STORE_PC + 4
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        predictor.train_violation(self.LOAD_PC, other_store)
        predictor.store_renamed(self.STORE_PC, ssn=7)
        previous = predictor.store_renamed(other_store, ssn=9)
        assert previous == 7

    def test_set_merge(self):
        predictor = StoreSetsPredictor()
        load_b = self.LOAD_PC + 4
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        predictor.train_violation(load_b, self.STORE_PC + 4)
        predictor.train_violation(self.LOAD_PC, self.STORE_PC + 4)
        assert predictor.ssid_of(self.LOAD_PC) == predictor.ssid_of(self.STORE_PC + 4)

    def test_store_commit_clears_lfst(self):
        predictor = StoreSetsPredictor()
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        predictor.store_renamed(self.STORE_PC, ssn=7)
        predictor.store_committed(self.STORE_PC, ssn=7)
        assert predictor.load_renamed(self.LOAD_PC) is None

    def test_clear(self):
        predictor = StoreSetsPredictor()
        predictor.train_violation(self.LOAD_PC, self.STORE_PC)
        predictor.clear()
        assert predictor.ssid_of(self.LOAD_PC) == -1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StoreSetsConfig(ssit_entries=1000)


# ---------------------------------------------------------------------------
# Predictor suite config helpers
# ---------------------------------------------------------------------------

class TestPredictorSuiteConfig:
    def test_scaled_fsp_ddp(self):
        base = PredictorSuiteConfig()
        scaled = base.scaled_fsp_ddp(512)
        assert scaled.fsp.entries == 512
        assert scaled.ddp.entries == 512
        assert scaled.fsp.assoc == base.fsp.assoc

    def test_with_fsp_assoc(self):
        config = PredictorSuiteConfig().with_fsp_assoc(8)
        assert config.fsp.assoc == 8
        assert config.fsp.entries == 4096

    def test_with_ddp_ratio(self):
        config = PredictorSuiteConfig().with_ddp_ratio(8, 1)
        assert config.ddp.positive_weight == 8
        assert config.ddp.negative_weight == 1

    def test_defaults_match_paper(self):
        config = PredictorSuiteConfig()
        assert config.fsp.entries == 4096 and config.fsp.assoc == 2
        assert config.ddp.entries == 4096 and config.ddp.assoc == 2
        assert config.sat.entries == 256 and config.sat.checkpoints == 4
        assert config.svw.ssbf_entries == 2048 and config.svw.ssn_bits == 16
        assert config.fsp.positive_weight == 8 and config.fsp.negative_weight == 1
        assert config.ddp.positive_weight == 4 and config.ddp.negative_weight == 1

"""The idle-cycle fast-forward is cycle-exact and statistics-identical.

``CoreConfig.idle_skip`` keeps the original one-cycle-at-a-time loop around
as the reference implementation; every test here runs both loops on the same
trace and demands bit-identical results — not just cycle counts but every
counter, including the per-reason stall attribution of skipped cycles.
"""

import dataclasses

import pytest

from repro.harness.runner import ExperimentSettings, make_policy, run_workload
from repro.isa.uop import make_alu, make_load, make_store
from repro.isa.trace import DynamicTrace
from repro.pipeline.config import CoreConfig, small_test_config
from repro.pipeline.core import OutOfOrderCore
from repro.workloads.suites import build_workload


def _run_both(trace, config_name="indexed-3-fwd+dly", core=None, warmup=0.0):
    core = core or CoreConfig()
    fast = OutOfOrderCore(core, make_policy(config_name)).run(
        trace, stats_warmup_fraction=warmup)
    slow_config = dataclasses.replace(core, idle_skip=False)
    slow = OutOfOrderCore(slow_config, make_policy(config_name)).run(
        trace, stats_warmup_fraction=warmup)
    return fast, slow


class TestIdleSkipEquivalence:
    def test_long_cache_miss_stall_same_cycle_count(self):
        """A dependent chain of far-apart loads stalls the machine for the
        full memory latency over and over; the event-aware loop must commit
        in exactly the same number of cycles as the straight-line loop."""
        uops = []
        # Pointer-chase-like chain: each load's address depends on the
        # previous load's value (register dependence), with stride large
        # enough that every access misses L1 and L2.
        for i in range(40):
            uops.append(make_load(pc=0x1000 + 8 * i, dest=1,
                                  addr=0x10_0000 + (i << 20), srcs=(1,)))
            uops.append(make_alu(pc=0x1004 + 8 * i, dest=2, srcs=(1,)))
        trace = DynamicTrace(name="chase", uops=uops)
        fast, slow = _run_both(trace)
        assert fast.stats.cycles == slow.stats.cycles
        assert fast.stats.as_dict() == slow.stats.as_dict()
        # Sanity: the stall really dominates (>= memory latency per load).
        assert fast.stats.cycles > 40 * 100

    def test_store_load_window_identical(self):
        uops = []
        for i in range(60):
            uops.append(make_store(pc=0x2000 + 16 * i, addr=0x500 + 8 * (i % 4),
                                   value=i, srcs=()))
            uops.append(make_load(pc=0x2008 + 16 * i, dest=3,
                                  addr=0x500 + 8 * (i % 4)))
        trace = DynamicTrace(name="fwd", uops=uops)
        fast, slow = _run_both(trace)
        assert fast.stats.as_dict() == slow.stats.as_dict()

    @pytest.mark.parametrize("workload", ["mcf", "gzip", "mesa.m", "adpcm.d"])
    @pytest.mark.parametrize("config_name", ["oracle-associative-3", "indexed-3-fwd+dly"])
    def test_real_workloads_identical(self, workload, config_name):
        trace = build_workload(workload, instructions=1500, seed=1)
        fast, slow = _run_both(trace, config_name=config_name, warmup=0.2)
        assert fast.stats.as_dict() == slow.stats.as_dict()

    def test_small_windows_identical(self):
        """Tiny structures force structural (ROB/IQ/LQ/SQ) stalls, covering
        the skipped-cycle stall attribution for every counter."""
        trace = build_workload("vortex", instructions=1200, seed=3)
        fast, slow = _run_both(trace, core=small_test_config())
        d_fast, d_slow = fast.stats.as_dict(), slow.stats.as_dict()
        assert d_fast == d_slow
        # The scenario must actually exercise structural stalls.
        assert d_fast["rob_stall_cycles"] + d_fast["iq_stall_cycles"] \
            + d_fast["lq_stall_cycles"] + d_fast["sq_stall_cycles"] > 0

    def test_max_cycles_clamp(self):
        """The fast-forward must not jump past an explicit cycle budget."""
        uops = [make_load(pc=0x3000, dest=1, addr=0x40_0000, srcs=()),
                make_alu(pc=0x3004, dest=2, srcs=(1,))]
        trace = DynamicTrace(name="clamp", uops=uops)
        core = dataclasses.replace(CoreConfig(), max_cycles=5)
        fast, slow = _run_both(trace, core=core)
        assert fast.stats.cycles == slow.stats.cycles == 5

    def test_settings_flag_roundtrip(self):
        settings = ExperimentSettings(instructions=1000)
        trace = build_workload("swim", instructions=1000, seed=1)
        record = run_workload(trace, "indexed-3-fwd", settings)
        assert record.cycles > 0

#!/usr/bin/env python
"""Regenerate the frozen hot-path golden numbers.

The goldens pin the *exact* merged counter dictionaries of fixed-seed
full-detail and sampled runs, so hot-path refactors (static-plane trace
encoding, core-loop rework, warming changes) diff against frozen numbers
rather than against themselves.  Regenerate ONLY when trace content or
simulator semantics change intentionally:

    PYTHONPATH=src python tests/golden/generate_goldens.py

and explain the regeneration in the commit message.
"""

import json
import os
import sys
import tempfile
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "hotpath_golden.json"

FULL_DETAIL_WORKLOADS = ("vortex", "mesa.m")
FULL_DETAIL_CONFIGS = ("oracle-associative-3", "associative-5-predictive",
                       "indexed-3-fwd+dly")
FULL_DETAIL_INSTRUCTIONS = 20_000   # crosses the 16384-uop segment boundary

SAMPLED_WORKLOAD = "vortex"
SAMPLED_INSTRUCTIONS = 60_000
SAMPLED_CONFIGS = ("oracle-associative-3", "indexed-3-fwd+dly")


def _plan():
    from repro.sampling.plan import SamplingPlan

    return SamplingPlan(interval_length=500, detailed_warmup=300,
                        period=10_000, functional_warmup=2_000, seed=3)


def _stats_dict(stats) -> dict:
    return {name: value for name, value in sorted(stats.as_dict().items())}


def _full_detail() -> dict:
    from repro.harness.runner import ExperimentSettings, run_workload
    from repro.workloads.suites import build_workload

    settings = ExperimentSettings(instructions=FULL_DETAIL_INSTRUCTIONS)
    out = {}
    for workload in FULL_DETAIL_WORKLOADS:
        trace = build_workload(workload, instructions=FULL_DETAIL_INSTRUCTIONS,
                               seed=1)
        for config in FULL_DETAIL_CONFIGS:
            record = run_workload(trace, config, settings)
            out[f"{workload}/{config}"] = {
                "stats": _stats_dict(record.result.stats),
                "extra": dict(sorted(record.result.extra.items())),
            }
    return out


def _sampled(checkpointed: bool) -> dict:
    from repro.harness.runner import ExperimentSettings
    from repro.sampling.driver import run_sampled_workload

    settings = ExperimentSettings(instructions=SAMPLED_INSTRUCTIONS,
                                  sampling=_plan(),
                                  checkpoints=checkpointed)
    out = {}
    for config in SAMPLED_CONFIGS:
        with tempfile.TemporaryDirectory(prefix="repro-golden-ckpt-") as ckpt:
            record = run_sampled_workload(
                SAMPLED_WORKLOAD, config, settings,
                checkpoint_dir=ckpt if checkpointed else None)
        sampled = record.result.sampled
        out[f"{SAMPLED_WORKLOAD}/{config}"] = {
            "stats": _stats_dict(record.result.stats),
            "cpi_mean": sampled.cpi_mean,
            "interval_cycles": [m.cycles for m in sampled.intervals],
            "interval_instructions": [m.instructions for m in sampled.intervals],
        }
    return out


def main() -> int:
    golden = {
        "full_detail": _full_detail(),
        "sampled_bounded": _sampled(checkpointed=False),
        "sampled_checkpointed": _sampled(checkpointed=True),
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                    os.pardir, os.pardir, "src"))
    sys.exit(main())

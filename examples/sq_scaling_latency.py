#!/usr/bin/env python3
"""Store-queue scaling study (the paper's motivation, Table 2).

Uses the CACTI-style analytical model to show how associative and indexed
store-queue load latency scales with capacity and load-port count, compared
against the L1 data-cache bank latency — the paper's argument for why
associative search does not scale to large instruction windows.

Run with::

    python examples/sq_scaling_latency.py
"""

from repro.harness.table2 import run_table2
from repro.timing.cacti import SQGeometry, associative_sq_access, dcache_bank_access, indexed_sq_access
from repro.timing.sq_model import sq_energy_comparison


def main() -> None:
    result = run_table2()
    print(result.render())

    dcache = dcache_bank_access(32, load_ports=2)
    print("\nScaling beyond the paper's table (2 load ports):")
    print(f"{'entries':>8s} {'assoc ns':>9s} {'assoc cyc':>10s} {'index ns':>9s} "
          f"{'index cyc':>10s} {'slower than D$?':>16s}")
    for entries in (16, 32, 64, 128, 256, 512, 1024):
        geometry = SQGeometry(entries=entries, load_ports=2)
        assoc = associative_sq_access(geometry)
        index = indexed_sq_access(geometry)
        flag = "yes" if assoc.cycles > dcache.cycles else "no"
        print(f"{entries:8d} {assoc.total_ns:9.2f} {assoc.cycles:10d} "
              f"{index.total_ns:9.2f} {index.cycles:10d} {flag:>16s}")

    print("\nPer-access energy (arbitrary units):")
    for entries in (16, 64, 256):
        comparison = sq_energy_comparison(entries, 2)
        print(f"  {entries:3d} entries: associative {comparison.associative:6.1f}  "
              f"indexed {comparison.indexed:6.1f}  "
              f"(indexed saves {100 * comparison.indexed_savings:4.1f}%)")


if __name__ == "__main__":
    main()

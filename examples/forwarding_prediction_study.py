#!/usr/bin/env python3
"""Forwarding and delay prediction study on contrasting workloads.

Runs three workloads the paper singles out — a well-behaved forwarder
(mesa.m), a not-most-recent-forwarding pathology (mesa.texgen), and an
FSP-conflict pathology (eon.cook) — under the indexed SQ with and without
delay prediction, and shows how the Delay Distance Predictor converts
mis-forwarding flushes into short scheduling delays (Table 3 / Section 4.3).

Run with::

    python examples/forwarding_prediction_study.py [instructions]
"""

import sys

from repro import IndexedSQPolicy, OracleAssociativePolicy, build_workload, simulate

WORKLOADS = [
    ("mesa.m", "well-behaved, most-recent forwarding"),
    ("mesa.t", "not-most-recent forwarding (X[i] = A*X[i-2] style)"),
    ("eon.c", "loads forwarding from many static stores (FSP conflicts)"),
]


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    for name, description in WORKLOADS:
        trace = build_workload(name, instructions=instructions)
        oracle = simulate(trace, OracleAssociativePolicy())
        raw = simulate(trace, IndexedSQPolicy(use_delay=False))
        delayed = simulate(trace, IndexedSQPolicy(use_delay=True))

        print(f"\n=== {name} — {description} ===")
        print(f"  load forwarding rate:            {100 * raw.stats.forwarding_rate:5.1f}%")
        print(f"  mis-forwardings / 1000 loads:    {raw.stats.mis_forwardings_per_1000_loads:5.2f} "
              f"(Fwd)  ->  {delayed.stats.mis_forwardings_per_1000_loads:5.2f} (Fwd+Dly)")
        print(f"  pipeline flushes:                {raw.stats.flushes:5d} (Fwd)  ->  "
              f"{delayed.stats.flushes:5d} (Fwd+Dly)")
        print(f"  loads delayed by the DDP:        {delayed.stats.percent_loads_delayed:5.2f}% "
              f"(avg {delayed.stats.avg_delay_cycles:.0f} cycles each)")
        print(f"  relative execution time vs ideal SQ: "
              f"{raw.stats.cycles / oracle.stats.cycles:5.3f} (Fwd)  ->  "
              f"{delayed.stats.cycles / oracle.stats.cycles:5.3f} (Fwd+Dly)")

    print("\nDelay prediction converts the flushing penalty of difficult loads into a "
          "less severe scheduling delay, narrowing the gap to the ideal associative SQ.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""MLP sweep: the non-blocking memory hierarchy's knobs on one workload.

Runs a memory-bound workload through the same store-queue policy while
sweeping the memory system: the default blocking hierarchy, the degenerate
non-blocking configuration (``mshr_entries=1`` — bit-identical to blocking
by construction), growing MSHR files, and finally the stride prefetcher.
Prints cycles, memory-level parallelism (average outstanding demand misses
per miss), structural stall cycles at the issue gate, and prefetch
accuracy.

Run with::

    python examples/mlp_sweep.py [workload] [instructions]

Knobs shown here (all on ``CoreConfig.memory.mlp``):

``enabled``          turn the non-blocking model on
``mshr_entries``     MSHR file size (1 == degenerate/blocking)
``l2_enabled``       model the L2 non-blocking too
``prefetch.enabled`` per-PC stride prefetcher into spare MSHR entries
"""

import sys

from repro import AssociativeStoreSetsPolicy, build_workload, simulate
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.mshr import MLPConfig, PrefetchConfig
from repro.pipeline.config import CoreConfig


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    print(f"Building the '{workload}' proxy workload ({instructions} micro-ops)...")
    trace = build_workload(workload, instructions=instructions)

    cells = [
        ("blocking hierarchy (default)", MLPConfig()),
        ("non-blocking, 1 MSHR (degenerate == blocking)",
         MLPConfig(enabled=True, mshr_entries=1, l2_enabled=False)),
        ("non-blocking, 2 MSHRs", MLPConfig(enabled=True, mshr_entries=2)),
        ("non-blocking, 4 MSHRs", MLPConfig(enabled=True, mshr_entries=4)),
        ("non-blocking, 16 MSHRs", MLPConfig(enabled=True, mshr_entries=16)),
        ("non-blocking, 8 MSHRs + stride prefetcher",
         MLPConfig(enabled=True, mshr_entries=8,
                   prefetch=PrefetchConfig(enabled=True))),
    ]

    print(f"\n{'memory system':48s} {'cycles':>8s} {'IPC':>6s} {'MLP':>6s} "
          f"{'stalls':>7s} {'pf iss':>7s} {'pf acc%':>8s}")
    for label, mlp in cells:
        config = CoreConfig(memory=MemoryHierarchyConfig(mlp=mlp))
        result = simulate(trace, AssociativeStoreSetsPolicy(sq_latency=5),
                          config=config)
        s = result.stats
        mlp_avg = result.extra.get("mlp_avg", float("nan"))
        mlp_col = f"{mlp_avg:6.2f}" if mlp_avg == mlp_avg else "     -"
        acc = (100.0 * s.prefetch_useful / s.prefetch_issued
               if s.prefetch_issued else 0.0)
        print(f"{label:48s} {s.cycles:8d} {s.ipc:6.2f} {mlp_col} "
              f"{s.mshr_stall_cycles:7d} {s.prefetch_issued:7d} {acc:8.1f}")

    print("\nA bounded MSHR file turns would-be overlapped misses into issue-stage "
          "stalls; more entries recover the memory-level parallelism, and the "
          "stride prefetcher moves strided misses off the demand path entirely.")


if __name__ == "__main__":
    main()

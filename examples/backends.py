#!/usr/bin/env python3
"""Execution-backend tour: one dispatcher seam, three interchangeable backends.

Every fan-out in the engine — plain sweeps, the raw-pool escape hatch,
sharded checkpoint generation — flows through one dispatcher
(:func:`repro.exec.dispatch.dispatch`) over a pluggable
:class:`repro.exec.backend.ExecutionBackend`:

* ``serial`` — in-process, input order; same structured failure
  semantics as the pools.
* ``supervised-pool`` — the default at ``jobs > 1``: per-job deadlines,
  crash detection, retries, degradation.
* ``local-cluster`` — N worker processes pulling jobs
  work-stealing-style from a content-addressed on-disk spool,
  publishing results through checksummed stores.

The backend is a pure scheduling choice: results are bit-identical
across all three, and ``REPRO_BACKEND`` never enters a cache key. This
demo runs the same small sweep on each backend, compares the merged
statistics, shows the scheduler counters each run leaves in
``engine.last_run_stats``, and finishes with the raw event stream the
dispatcher is built on.

Run with::

    python examples/backends.py
"""

import os
import time

from repro.exec import (
    DispatchJob,
    ExperimentEngine,
    JobSpec,
    SerialBackend,
    dispatch,
    job_key,
)
from repro.harness.runner import ExperimentSettings

WORKLOADS = ("gzip", "vortex")
CONFIGS = ("oracle-associative-3", "indexed-3-fwd+dly")
SETTINGS = ExperimentSettings(instructions=6_000, stats_warmup_fraction=0.25)

SCHEDULER_KEYS = ("backend", "queue_depth_peak", "inflight_peak",
                  "steals", "dispatch_overhead_ns")


def _specs():
    return [JobSpec(workload, config, SETTINGS)
            for workload in WORKLOADS for config in CONFIGS]


def _signature(records):
    return [record.result.stats.as_dict() for record in records]


def main() -> None:
    print("1. The same sweep through every backend (REPRO_BACKEND)...")
    reference = None
    prior = os.environ.get("REPRO_BACKEND")
    try:
        for name in ("serial", "supervised-pool", "local-cluster"):
            os.environ["REPRO_BACKEND"] = name
            engine = ExperimentEngine(jobs=2, cache=False)
            start = time.perf_counter()
            records = engine.run(_specs())
            wall = time.perf_counter() - start
            if reference is None:
                reference = _signature(records)
            else:
                assert _signature(records) == reference, f"{name} diverged!"
            scheduler = {key: engine.last_run_stats[key]
                         for key in SCHEDULER_KEYS}
            print(f"   {name:>15}: {len(records)} jobs in {wall:.2f}s, "
                  f"scheduler={scheduler}")
    finally:
        if prior is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = prior
    print("   all three backends produced bit-identical statistics")

    print("\n2. REPRO_BACKEND is execution-only: cache keys ignore it...")
    spec = _specs()[0]
    keys = set()
    for name in ("serial", "supervised-pool", "local-cluster"):
        os.environ["REPRO_BACKEND"] = name
        keys.add(job_key(spec))
    os.environ.pop("REPRO_BACKEND", None)
    keys.add(job_key(spec))
    assert len(keys) == 1, keys
    print(f"   one key across all backends + unset: {keys.pop()[:16]}...")

    print("\n3. The event stream under the seam (what dispatch() consumes)...")
    jobs = [DispatchJob(index=i, payload=i, label=f"square:{i}")
            for i in range(4)]
    events = []
    results, stats = dispatch(SerialBackend(), lambda x: x * x, jobs,
                              on_event=events.append)
    for event in events:
        print(f"   {event}")
    print(f"   results={results}, overhead={stats.dispatch_overhead_ns}ns")

    print("\nKnobs: REPRO_BACKEND (serial | supervised-pool | local-cluster; "
          "auto when unset), REPRO_SPOOL_DIR (cluster spool location). "
          "Both execution-only: never in cache or snapshot keys.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sampled sweep: a paper-scale (10M-instruction) Figure-4 column with error bars.

The paper simulates 10M-instruction samples per benchmark — far beyond what
full-detail simulation of every instruction can reach in reasonable time.
This example uses the statistical sampling subsystem (:mod:`repro.sampling`)
to run one Figure-4 column at that scale: every store-queue configuration is
measured over the same systematically sampled detailed intervals (each
preceded by fast functional warming), and the per-interval CPIs give both
the relative execution time and a Student-t confidence interval, rendered
as an error bar on each configuration's bar.

Interval jobs fan out over the experiment engine, so ``REPRO_JOBS=0``
parallelises the sweep and ``REPRO_CACHE_DIR`` memoizes finished intervals
across runs.

Run with::

    python examples/sampled_sweep.py [workload] [instructions]

(defaults: vortex, 10M instructions; takes a couple of minutes serially —
pass 1000000 for a quick look).
"""

import sys

from repro.exec import ExperimentEngine, JobSpec
from repro.harness.runner import BASELINE_CONFIG, FIGURE4_CONFIGS, ExperimentSettings
from repro.sampling import SamplingPlan


def render_bar(value: float, halfwidth: float, lo: float = 0.8, hi: float = 1.4,
               width: int = 46) -> str:
    """ASCII bar for ``value`` with ``+/- halfwidth`` whiskers."""
    def col(x: float) -> int:
        return max(0, min(width - 1, round((x - lo) / (hi - lo) * (width - 1))))

    cells = [" "] * width
    left, mid, right = col(value - halfwidth), col(value), col(value + halfwidth)
    for i in range(left, right + 1):
        cells[i] = "-"
    cells[left] = "|"
    cells[right] = "|"
    cells[mid] = "#"
    return "".join(cells)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000_000

    # ~25 intervals of 2k instructions, each warmed by 2k detailed + 30k
    # functional instructions: the whole 10M-instruction run touches only
    # ~0.9% of the trace in the cycle-accurate model.
    plan = SamplingPlan(interval_length=2_000, detailed_warmup=2_000,
                        period=max(instructions // 25, 8_000),
                        functional_warmup=30_000, seed=0)
    settings = ExperimentSettings(instructions=instructions,
                                  stats_warmup_fraction=0.0, sampling=plan)
    engine = ExperimentEngine.from_settings(settings)

    configs = [BASELINE_CONFIG] + list(FIGURE4_CONFIGS)
    print(f"Sampled {workload} at {instructions:,} instructions: "
          f"{plan.num_intervals(instructions)} intervals of {plan.interval_length} "
          f"({100 * plan.sampled_fraction(instructions):.2f}% measured in detail)")
    records = engine.run([JobSpec(workload, name, settings) for name in configs])
    stats = engine.last_run_stats
    print(f"engine: {stats['total']} interval jobs, {stats['cache_hits']} cached, "
          f"{stats['simulated']} simulated on {stats['workers']} worker(s)\n")

    baseline = records[0].result.sampled
    print(f"{'configuration':28s} {'rel.time':>8s} {'+/-':>6s}  "
          f"(CPI {baseline.cpi_mean:.3f} +/- {baseline.cpi_ci_halfwidth:.3f} baseline)")
    for name, record in zip(configs[1:], records[1:]):
        sampled = record.result.sampled
        relative = sampled.cpi_mean / baseline.cpi_mean
        # First-order CI of the ratio: relative half-widths in quadrature.
        halfwidth = relative * (
            (sampled.relative_ci ** 2 + baseline.relative_ci ** 2) ** 0.5)
        bar = render_bar(relative, halfwidth)
        print(f"{name:28s} {relative:8.3f} {halfwidth:6.3f}  [{bar}]")
    print("\n(bars span 0.8x..1.4x of the ideal associative SQ; "
          "whiskers are the 95% confidence interval)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Building a custom workload and a custom SQ configuration.

Shows the lower-level APIs a downstream user would reach for:

* composing a trace directly from kernels (here: a tight producer/consumer
  loop with register spills plus a not-most-recent recurrence);
* configuring predictor geometry (a small 512-entry FSP/DDP, as in the
  Figure 5 capacity sweep) and a non-default store-queue size;
* reading detailed per-structure statistics back out of a run.

Everything this example uses is unchanged by the two-plane trace refactor:
``builder.finish()`` now returns an encoded stream
(:class:`repro.isa.plane.EncodedOps` — per-uop static-plane indices plus
dynamic fields) instead of a ``MicroOp``-list trace, but it reads exactly
like the old trace (``len``, iteration and indexing yield ``MicroOp``
views, ``.stats``, ``.uops``) and feeds ``simulate`` /
``OutOfOrderCore.run`` directly — where it takes the static-plane fast
path automatically.  One deliberate narrowing: the emit helpers
(``builder.load``/``store``/``alu``/``branch``/``nop``) no longer return
the emitted micro-op (decode a view via ``builder.finish()[i]`` if one is
needed) — constructing a ``MicroOp`` per emit is exactly the cost the
encoding removes.

Run with::

    python examples/custom_workload.py
"""

from repro import CoreConfig, IndexedSQPolicy, OracleAssociativePolicy, simulate
from repro.core.predictors import DDPConfig, FSPConfig, PredictorSuiteConfig
from repro.pipeline.core import OutOfOrderCore
from repro.workloads.kernels import NotMostRecentKernel, StackSpillKernel, StreamCopyKernel
from repro.workloads.program import ProgramBuilder


def build_custom_trace(iterations: int = 800):
    builder = ProgramBuilder("custom-producer-consumer", seed=42)
    spill = StackSpillKernel(builder, slots=4, work_ops=3)
    recurrence = NotMostRecentKernel(builder, lag=2)
    background = StreamCopyKernel(builder, working_set_bytes=64 * 1024)
    for i in range(iterations):
        spill.emit()
        if i % 3 == 0:
            recurrence.emit()
        background.emit()
    return builder.finish()


def main() -> None:
    trace = build_custom_trace()
    print(f"custom trace: {len(trace)} micro-ops, "
          f"{trace.stats.loads} loads, {trace.stats.stores} stores")

    small_predictors = PredictorSuiteConfig(
        fsp=FSPConfig(entries=512, assoc=2),
        ddp=DDPConfig(entries=512, assoc=2),
    )
    policy = IndexedSQPolicy(sq_size=32, use_delay=True, predictors=small_predictors)
    config = CoreConfig(store_queue_size=32)

    core = OutOfOrderCore(config, policy)
    result = core.run(trace, stats_warmup_fraction=0.2)
    baseline = simulate(trace, OracleAssociativePolicy(sq_size=32),
                        CoreConfig(store_queue_size=32))

    s = result.stats
    print(f"\nindexed SQ (32 entries, 512-entry FSP/DDP):")
    print(f"  IPC {s.ipc:.2f}, relative time vs ideal {s.cycles / baseline.stats.cycles:.3f}")
    print(f"  forwarding rate {100 * s.forwarding_rate:.1f}%, "
          f"mis-forwardings/1000 {s.mis_forwardings_per_1000_loads:.2f}, "
          f"loads delayed {s.percent_loads_delayed:.2f}%")
    print(f"\nstructure activity:")
    print(f"  FSP: {policy.fsp.stats.lookups} lookups, {policy.fsp.stats.inserts} inserts, "
          f"{policy.fsp.stats.evictions} evictions, occupancy {policy.fsp.occupancy()}")
    print(f"  SAT: {policy.sat.stats.updates} updates, {policy.sat.stats.undos} flush undos")
    print(f"  DDP: {policy.ddp.stats.delays_predicted} delays predicted, "
          f"{policy.ddp.stats.learns} learns, {policy.ddp.stats.unlearns} unlearns")
    print(f"  SVW: re-execution rate {policy.svw.stats.reexecution_rate:.3f}")
    print(f"  SQ:  {core.store_queue.stats.indexed_reads} indexed reads, "
          f"{core.store_queue.stats.associative_searches} associative searches")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Detailed-core kernel tour: one simulator, three interchangeable kernels.

The detailed out-of-order core runs on one of three *kernels* — same
semantics, different data layout and loop structure:

* ``object`` — the reference implementation: one ``_Inflight`` record
  object per in-flight uop.
* ``vector`` — struct-of-arrays dynamic state (array-per-field in-flight
  slots, generation-token validity) with dispatch/issue/wakeup/commit
  fused into a single loop. Pure Python, always available, the default.
* ``compiled`` — the same fused loop compiled to a native extension by
  ``tools/build_kernel.py`` (Cython or mypyc). Optional; selecting it
  unbuilt raises ``EnvKnobError`` with the build command.

The kernel is a pure execution choice: every kernel is bit-identical
(golden-, property-, and bench-enforced), so ``REPRO_KERNEL`` never
enters a cache or snapshot key. This demo constructs each available
kernel through the one seam everything uses
(:func:`repro.pipeline.vector.make_core`), proves the statistics match,
times them, shows the fallback discipline, and finishes with the
``REPRO_PROFILE`` satellite: per-job cProfile dumps aggregated into
``engine.last_run_stats``.

Run with::

    python examples/kernels.py
"""

import os
import tempfile
import time

from repro.exec import ExperimentEngine, JobSpec, job_key
from repro.harness.runner import ExperimentSettings, make_policy
from repro.isa.trace import DynamicTrace
from repro.pipeline.config import CoreConfig
from repro.pipeline.vector import (
    VectorCore,
    compiled_kernel_available,
    make_core,
    resolve_kernel,
)
from repro.workloads.suites import build_workload

WORKLOAD = "vortex"
CONFIG = "indexed-3-fwd+dly"
INSTRUCTIONS = 12_000


def main() -> None:
    kernels = ["object", "vector"]
    if compiled_kernel_available():
        kernels.append("compiled")

    print(f"available kernels: {', '.join(kernels)} "
          f"(auto resolves to {resolve_kernel()!r})")

    print(f"\n1. Same cell on every kernel ({WORKLOAD}/{CONFIG}, "
          f"{INSTRUCTIONS:,} instructions)...")
    trace = build_workload(WORKLOAD, instructions=INSTRUCTIONS, seed=1)
    signatures = {}
    for kernel in kernels:
        core = make_core(CoreConfig(), make_policy(CONFIG), kernel)
        start = time.perf_counter()
        result = core.run(trace, stats_warmup_fraction=0.25)
        elapsed = time.perf_counter() - start
        signatures[kernel] = sorted(result.stats.as_dict().items())
        print(f"   {kernel:>8}: {INSTRUCTIONS / elapsed:>9,.0f} uops/s  "
              f"ipc={result.stats.ipc:.4f}  cycles={result.stats.cycles:,}")
    assert all(sig == signatures["object"] for sig in signatures.values())
    print("   all kernels produced bit-identical statistics")

    print("\n2. REPRO_KERNEL is execution-only: cache keys ignore it...")
    spec = JobSpec(WORKLOAD, CONFIG,
                   ExperimentSettings(instructions=INSTRUCTIONS))
    keys = set()
    for kernel in kernels + ["auto"]:
        os.environ["REPRO_KERNEL"] = kernel
        keys.add(job_key(spec))
    os.environ.pop("REPRO_KERNEL", None)
    keys.add(job_key(spec))
    assert len(keys) == 1, keys
    print(f"   one key across all kernels + unset: {keys.pop()[:16]}...")

    print("\n3. Fallback discipline: the vector kernel defers to the "
          "object loop when it must...")
    object_trace = DynamicTrace(name=WORKLOAD, uops=trace.uops)
    core = VectorCore(CoreConfig(), make_policy(CONFIG))
    via_objects = core.run(object_trace, stats_warmup_fraction=0.25)
    assert sorted(via_objects.stats.as_dict().items()) == signatures["object"]
    print("   MicroOp back-compat trace -> object loop, still bit-identical")

    class Instrumented(VectorCore):
        commits = 0

        def _commit_stage(self):
            Instrumented.commits += 1
            return super()._commit_stage()

    Instrumented(CoreConfig(), make_policy(CONFIG)).run(
        trace, stats_warmup_fraction=0.25)
    print(f"   overridden stage method -> object call structure "
          f"({Instrumented.commits:,} commit-stage calls observed)")

    print("\n4. REPRO_PROFILE: per-job cProfile dumps + aggregated "
          "hotspots...")
    with tempfile.TemporaryDirectory(prefix="repro-kernels-") as tmp:
        os.environ["REPRO_PROFILE"] = os.path.join(tmp, "prof")
        try:
            engine = ExperimentEngine(jobs=1, cache=False)
            engine.run([spec])
        finally:
            os.environ.pop("REPRO_PROFILE", None)
        stats = engine.last_run_stats
        profile = stats["profile"]
        print(f"   engine ran on kernel={stats['kernel']!r}; "
              f"{profile['files']} profile dump(s) in {profile['dir']}")
        for row in profile["top_cumulative"][:5]:
            print(f"   {row['cumtime_s']:>8.3f}s  {row['calls']:>8,}x  "
                  f"{row['site']}")

    print("\nKnobs: REPRO_KERNEL (object | vector | compiled | auto; "
          "auto = compiled when built, else vector), REPRO_PROFILE "
          "(1 = .repro-profile/, or a directory). Both execution-only: "
          "never in cache or snapshot keys. Build the compiled kernel "
          "with `python tools/build_kernel.py` (needs Cython or mypyc).")


if __name__ == "__main__":
    main()

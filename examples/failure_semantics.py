#!/usr/bin/env python3
"""Failure semantics tour: supervised execution, fault injection, recovery.

Every pool fan-out through :class:`repro.exec.ExperimentEngine` runs
*supervised* by default: worker crashes and hung jobs are detected,
retried with backoff on a self-healed pool, and — when the retry budget
is exhausted — reported as a structured ``ExperimentFailure`` naming
each failed job and its cause. Cache and checkpoint blobs carry content
checksums; damaged blobs are quarantined and recomputed transparently.

This demo injects real faults via the deterministic ``REPRO_FAULT_PLAN``
knob and shows each layer recovering:

1. a clean reference sweep,
2. the same sweep with a worker crash + a hung job injected — recovered,
   bit-identical, recovery counters visible in ``engine.last_run_stats``,
3. a cache blob corrupted on write — quarantined and recomputed on read,
4. a fault so persistent the retry budget runs out — the structured
   failure report.

Run with::

    python examples/failure_semantics.py
"""

import os
import tempfile

from repro.exec import (
    ExperimentEngine,
    ExperimentFailure,
    JobSpec,
    ResultCache,
)
from repro.harness.runner import ExperimentSettings

WORKLOAD = "gzip"
CONFIGS = ("oracle-associative-3", "indexed-3-fwd", "indexed-3-fwd+dly")
SETTINGS = ExperimentSettings(instructions=6_000, stats_warmup_fraction=0.25)


def _specs():
    return [JobSpec(WORKLOAD, name, SETTINGS) for name in CONFIGS]


def _signature(records):
    return [record.result.stats.as_dict() for record in records]


def _with_fault_plan(plan, timeout=None):
    """Set/clear the fault-injection knobs around an engine run."""
    os.environ["REPRO_FAULT_PLAN"] = plan
    if timeout is not None:
        os.environ["REPRO_JOB_TIMEOUT"] = str(timeout)


def _clear_fault_plan():
    os.environ.pop("REPRO_FAULT_PLAN", None)
    os.environ.pop("REPRO_JOB_TIMEOUT", None)


def main() -> None:
    print("1. Clean reference sweep (supervised, as always)...")
    engine = ExperimentEngine(jobs=2, cache=False)
    clean = engine.run(_specs())
    reference = _signature(clean)
    print(f"   {len(clean)} jobs; stats: {dict(engine.last_run_stats)}")

    print("\n2. Same sweep with a worker crash (job 0) and a hang (job 2)...")
    _with_fault_plan("worker_crash@job:0,hang@job:2,seed=1", timeout=5)
    try:
        engine = ExperimentEngine(jobs=2, cache=False)
        faulted = engine.run(_specs())
        stats = engine.last_run_stats
    finally:
        _clear_fault_plan()
    assert _signature(faulted) == reference, "recovered run diverged!"
    print(f"   recovered bit-identically: crashes={stats.get('worker_crashes', 0)}, "
          f"timeouts={stats.get('job_timeouts', 0)}, "
          f"retries={stats.get('job_retries', 0)}, "
          f"respawns={stats.get('pool_respawns', 0)}")

    print("\n3. Cache blob corrupted on write -> quarantined + recomputed on read...")
    with tempfile.TemporaryDirectory(prefix="repro-demo-cache-") as cache_dir:
        _with_fault_plan("corrupt_blob@p=1.0,seed=2")
        try:
            # Cold run: every entry written damaged (p=1.0, fires once per key).
            ExperimentEngine(jobs=1, cache=ResultCache(cache_dir)).run(_specs())
        finally:
            _clear_fault_plan()
        # Warm run, no injection: checksums fail, blobs quarantine, jobs recompute.
        engine = ExperimentEngine(jobs=1, cache=ResultCache(cache_dir))
        repaired = engine.run(_specs())
        stats = engine.last_run_stats
    assert _signature(repaired) == reference, "repaired run diverged!"
    print(f"   quarantined={stats.get('blobs_quarantined', 0)}, "
          f"recomputed={stats['simulated']}; results bit-identical")

    print("\n4. A fault that outlives the retry budget -> structured failure...")
    _with_fault_plan("worker_crash@job:1*99,seed=3")
    os.environ["REPRO_RETRIES"] = "1"
    engine = ExperimentEngine(jobs=2, cache=False)
    try:
        engine.run(_specs())
        raise AssertionError("expected ExperimentFailure")
    except ExperimentFailure as failure:
        print(f"   raised: {failure}")
        for entry in engine.last_run_stats["failures"]:
            print(f"   report: {entry}")
    finally:
        _clear_fault_plan()
        os.environ.pop("REPRO_RETRIES", None)

    print("\nKnobs: REPRO_RETRIES, REPRO_JOB_TIMEOUT, REPRO_SUPERVISE=0 (raw "
          "pool), REPRO_FAULT_PLAN (all execution-only: never in cache keys).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: simulate one workload under the paper's SQ configurations.

Builds the ``vortex`` proxy workload, runs it through the ideal associative
store queue, the realistic 5-cycle associative store queue, and the paper's
speculative indexed store queue (with and without delay prediction), and
prints the headline statistics of each run.

Run with::

    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    OracleAssociativePolicy,
    build_workload,
    simulate,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    print(f"Building the '{workload}' proxy workload ({instructions} micro-ops)...")
    trace = build_workload(workload, instructions=instructions)
    stats = trace.stats
    print(f"  loads {stats.loads}  stores {stats.stores}  branches {stats.branches}  "
          f"static PCs {stats.unique_pcs}")

    configurations = [
        ("ideal associative SQ (3-cycle, oracle scheduling)", OracleAssociativePolicy()),
        ("associative SQ, 5-cycle, forwarding-prediction scheduling",
         AssociativeStoreSetsPolicy(sq_latency=5, scheduling="predictive")),
        ("indexed SQ (FSP/SAT only)", IndexedSQPolicy(use_delay=False)),
        ("indexed SQ (FSP/SAT + DDP delay)", IndexedSQPolicy(use_delay=True)),
    ]

    baseline_cycles = None
    print(f"\n{'configuration':55s} {'cycles':>8s} {'IPC':>6s} {'rel.time':>9s} "
          f"{'fwd%':>6s} {'mis/1k':>7s} {'dly%':>6s}")
    for label, policy in configurations:
        result = simulate(trace, policy)
        s = result.stats
        if baseline_cycles is None:
            baseline_cycles = s.cycles
        print(f"{label:55s} {s.cycles:8d} {s.ipc:6.2f} "
              f"{s.cycles / baseline_cycles:9.3f} {100 * s.forwarding_rate:6.1f} "
              f"{s.mis_forwardings_per_1000_loads:7.2f} {s.percent_loads_delayed:6.2f}")

    print("\nThe indexed SQ needs no associative search: each load reads a single "
          "predicted SQ entry, and the delay predictor keeps mis-forwarding flushes rare.")


if __name__ == "__main__":
    main()

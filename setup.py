"""Setuptools entry point.

Metadata is declared here (rather than pyproject.toml) so that
``pip install -e .`` works on fully offline machines, where PEP 517 build
isolation cannot download its build requirements.

Installs the ``repro`` package from ``src/`` and a ``repro-bench`` console
script that runs the full benchmark/trajectory suite
(``benchmarks/run_all.py``; see :mod:`repro.cli`).
"""
import pathlib
import re

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'^__version__ = "([^"]+)"', _INIT.read_text(), re.M).group(1)

setup(
    name="repro-sqip",
    version=VERSION,
    description=("Reproduction of 'Scalable Store-Load Forwarding via "
                 "Store Queue Index Prediction' (Sha, Martin, Roth; "
                 "MICRO 2005): cycle-level simulator, synthetic SPEC2000/"
                 "MediaBench proxy workloads, parallel experiment engine, "
                 "and a statistical sampling subsystem for paper-scale "
                 "10M-instruction runs"),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-bench=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)

"""Setuptools entry point.

Project metadata lives in setup.cfg.  A classic setup.py/setup.cfg layout is
used (instead of pyproject.toml) so that ``pip install -e .`` works on fully
offline machines, where PEP 517 build isolation cannot download its build
requirements.
"""
from setuptools import setup

setup()

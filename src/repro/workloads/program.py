"""Program builder: the substrate workload kernels are written against.

A :class:`ProgramBuilder` manages the resources a synthetic program needs —
stable static PCs (so the PC-indexed predictors see the same static
instruction across dynamic instances), architectural registers, disjoint
memory regions, and deterministic pseudo-random values — and provides typed
emit helpers that append micro-ops to the trace being built.

Emission is **two-plane** (see :mod:`repro.isa.plane`): each emit helper
interns the instruction's static descriptor into the program's shared
:class:`~repro.isa.plane.StaticProgramPlane` (a per-process cache keyed by
program name, :func:`plane_for`) and appends only the dynamic fields to the
:class:`~repro.isa.plane.EncodedOps` under construction — no per-uop object
is ever built on this path.  :meth:`ProgramBuilder.finish` returns the
encoded stream, which supports the old :class:`~repro.isa.trace.DynamicTrace`
reading surface (``len``, iteration/indexing as
:class:`~repro.isa.uop.MicroOp` views, ``.stats``, ``.uops``), so kernels,
tests, and examples are unchanged.

A :class:`Kernel` is a small static code fragment: it allocates its PCs,
registers, and memory regions once at construction and then emits one loop
iteration's worth of dynamic micro-ops every time :meth:`Kernel.emit` is
called.  Workload composers interleave iterations of several kernels to
approximate a target benchmark profile.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.isa.plane import EncodedOps, StaticProgramPlane
from repro.isa.registers import FP_REG_COUNT, INT_REG_COUNT, REG_ZERO
from repro.isa.uop import VALID_ACCESS_SIZES, OpClass

#: Base of the synthetic code segment; static PCs are allocated upward from here.
CODE_BASE = 0x0040_0000

#: Base of the synthetic data segment; memory regions are allocated upward.
DATA_BASE = 0x1000_0000

#: Region alignment (keeps independently allocated regions on distinct cache lines).
REGION_ALIGN = 64

#: Per-process static-plane cache: program name -> plane.  Segments of one
#: workload are composed against the same deterministic static program
#: (static PCs/registers/regions are allocated identically however the
#: dynamic mix lands), so one plane per workload name is shared by every
#: segment, interval, and configuration simulated in this process.  Planes
#: are append-only — a cached plane is never invalidated, only grown; the
#: cache itself is process-private and rebuilt lazily, and encoded segments
#: that cross process boundaries re-intern on arrival
#: (:meth:`~repro.isa.plane.EncodedOps.rebase`).
_PLANE_REGISTRY: Dict[str, StaticProgramPlane] = {}


def plane_for(name: str) -> StaticProgramPlane:
    """The process-wide static plane of the named program."""
    plane = _PLANE_REGISTRY.get(name)
    if plane is None:
        plane = StaticProgramPlane()
        _PLANE_REGISTRY[name] = plane
    return plane


class ProgramBuilder:
    """Builds one synthetic program / dynamic trace (encoded form)."""

    def __init__(self, name: str, seed: int = 1) -> None:
        self.name = name
        self.rng = random.Random(seed)
        self.ops = EncodedOps(plane_for(name), name=name)
        self._next_pc = CODE_BASE
        self._next_data = DATA_BASE
        self._next_int_reg = 1          # r0 reserved as a generic source
        self._next_fp_reg = INT_REG_COUNT

    # -- resource allocation ----------------------------------------------------

    def alloc_pc(self) -> int:
        """Allocate a new static instruction address."""
        pc = self._next_pc
        self._next_pc += 4
        return pc

    def alloc_pcs(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive static instruction addresses."""
        return [self.alloc_pc() for _ in range(count)]

    def alloc_region(self, size_bytes: int) -> int:
        """Allocate a data region of at least ``size_bytes`` bytes."""
        if size_bytes <= 0:
            raise ValueError("region size must be positive")
        base = self._next_data
        rounded = (size_bytes + REGION_ALIGN - 1) // REGION_ALIGN * REGION_ALIGN
        self._next_data += rounded + REGION_ALIGN
        return base

    def alloc_int_reg(self) -> int:
        """Allocate an integer register (wraps around, excluding the zero reg)."""
        reg = self._next_int_reg
        self._next_int_reg += 1
        if self._next_int_reg >= REG_ZERO:
            self._next_int_reg = 1
        return reg

    def alloc_fp_reg(self) -> int:
        """Allocate a floating-point register (wraps around)."""
        reg = self._next_fp_reg
        self._next_fp_reg += 1
        if self._next_fp_reg >= INT_REG_COUNT + FP_REG_COUNT:
            self._next_fp_reg = INT_REG_COUNT
        return reg

    def alloc_int_regs(self, count: int) -> List[int]:
        return [self.alloc_int_reg() for _ in range(count)]

    def alloc_fp_regs(self, count: int) -> List[int]:
        return [self.alloc_fp_reg() for _ in range(count)]

    def value(self, size: int = 8) -> int:
        """A deterministic pseudo-random store value of the given width."""
        return self.rng.getrandbits(8 * size)

    # -- emit helpers -----------------------------------------------------------
    #
    # Each helper interns the static descriptor (validated once per static
    # instruction) and appends the dynamic fields.  Dynamic validation keeps
    # the old MicroOp construction-time guarantees for generator bugs.

    def load(self, pc: int, dest: int, addr: int, size: int = 8,
             srcs: Sequence[int] = ()) -> None:
        if size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid access size {size}; "
                             f"expected one of {VALID_ACCESS_SIZES}")
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        ops = self.ops
        si = ops.plane.intern_cached(pc, OpClass.LOAD, dest, tuple(srcs))
        ops.append(si, addr, size)

    def store(self, pc: int, addr: int, value: int, size: int = 8,
              srcs: Sequence[int] = ()) -> None:
        if size not in VALID_ACCESS_SIZES:
            raise ValueError(f"invalid access size {size}; "
                             f"expected one of {VALID_ACCESS_SIZES}")
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        if not 0 <= value < (1 << (8 * size)):
            raise ValueError(f"store value {value:#x} does not fit in {size} bytes")
        ops = self.ops
        si = ops.plane.intern_cached(pc, OpClass.STORE, None, tuple(srcs))
        ops.append(si, addr, size, value)

    def alu(self, pc: int, dest: int, srcs: Sequence[int] = (),
            op_class: OpClass = OpClass.INT_ALU) -> None:
        ops = self.ops
        si = ops.plane.intern_cached(pc, op_class, dest, tuple(srcs))
        ops.append(si)

    def branch(self, pc: int, taken: bool, target: Optional[int] = None,
               srcs: Sequence[int] = (), call: bool = False, ret: bool = False) -> None:
        if taken and target is None:
            target = pc + 64
        ops = self.ops
        si = ops.plane.intern_cached(pc, OpClass.BRANCH, None, tuple(srcs), call, ret)
        ops.append(si, taken=taken, target=target if target is not None else -1)

    def nop(self, pc: int) -> None:
        ops = self.ops
        si = ops.plane.intern_cached(pc, OpClass.NOP, None, ())
        ops.append(si)

    # -- finishing --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def finish(self) -> EncodedOps:
        """The encoded trace built so far (shared arrays, not a copy)."""
        return self.ops


class Kernel:
    """Base class for workload kernels.

    A kernel allocates its static resources (PCs, registers, memory regions)
    once in ``__init__`` and emits one dynamic iteration per :meth:`emit`
    call.  Subclasses report how many loads and how many *forwarding* loads
    a typical iteration contains so composers can mix kernels to hit a target
    forwarding rate.
    """

    #: Loads emitted per iteration (approximate, used for mix planning).
    loads_per_iteration: float = 0.0
    #: Loads per iteration expected to forward from an in-flight store.
    forwarding_loads_per_iteration: float = 0.0

    def __init__(self, builder: ProgramBuilder) -> None:
        self.builder = builder

    def emit(self) -> None:
        """Emit one dynamic iteration of the kernel."""
        raise NotImplementedError

    @property
    def forwarding_fraction(self) -> float:
        """Fraction of this kernel's loads that forward."""
        if self.loads_per_iteration == 0:
            return 0.0
        return self.forwarding_loads_per_iteration / self.loads_per_iteration

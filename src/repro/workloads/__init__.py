"""Synthetic workload generators (SPEC2000 / MediaBench proxies).

The paper evaluates on Alpha binaries of SPEC2000 and MediaBench.  Those
binaries (and a functional Alpha front end) are out of scope for a pure
Python reproduction, so this package substitutes *proxy workloads*: trace
generators built from parameterised kernels that reproduce the store-load
forwarding structure each benchmark exhibits — forwarding rate, forwarding
distance, not-most-recent forwarding, static-store breadth (FSP pressure),
pointer-chasing serialisation, floating-point mix, working-set size, and
branch predictability.  Per-benchmark profiles are calibrated against
Table 3 of the paper (see :mod:`repro.workloads.profiles`).

The public entry points are :func:`~repro.workloads.suites.build_workload`
(one trace by name), :func:`~repro.workloads.suites.build_workload_window`
(random access to a slice of a paper-length trace, used by the sampling
subsystem), and :func:`~repro.workloads.suites.workload_names`.
"""

from repro.workloads.program import ProgramBuilder, Kernel
from repro.workloads.profiles import WorkloadProfile, PROFILES, profiles_for_suite, get_profile
from repro.workloads.suites import (
    ALL_SUITES,
    TRACE_SEGMENT_UOPS,
    build_workload,
    build_workload_window,
    build_suite,
    sensitivity_workloads,
    workload_names,
)

__all__ = [
    "ALL_SUITES",
    "Kernel",
    "PROFILES",
    "ProgramBuilder",
    "TRACE_SEGMENT_UOPS",
    "WorkloadProfile",
    "build_suite",
    "build_workload",
    "build_workload_window",
    "get_profile",
    "profiles_for_suite",
    "sensitivity_workloads",
    "workload_names",
]

"""CACTI-style store-queue latency and energy model (Section 4.2, Table 2).

The paper uses a modified CACTI 3.2 at 90 nm / 1.1 V / 3 GHz to compare the
load latency and per-access energy of associative and indexed store queues.
CACTI itself is a large C program; this package substitutes a component-based
analytical model (decoder, wordline/bitline, CAM matchline, sense/output,
port loading) whose coefficients are calibrated so the 64-entry, 2-load-port
design points land near the paper's values and whose *trends* (associative
latency growing super-linearly with entries and ports, indexed latency
staying near-flat and below the data-cache bank latency) match Table 2.
"""

from repro.timing.cacti import (
    CLOCK_GHZ,
    AccessEnergy,
    AccessTiming,
    SQGeometry,
    associative_sq_access,
    dcache_bank_access,
    indexed_sq_access,
    ns_to_cycles,
    tlb_access,
)
from repro.timing.sq_model import SQLatencyRow, sq_energy_comparison, sq_latency_table

__all__ = [
    "AccessEnergy",
    "AccessTiming",
    "CLOCK_GHZ",
    "SQGeometry",
    "SQLatencyRow",
    "associative_sq_access",
    "dcache_bank_access",
    "indexed_sq_access",
    "ns_to_cycles",
    "sq_energy_comparison",
    "sq_latency_table",
    "tlb_access",
]

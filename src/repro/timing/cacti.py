"""Analytical CAM/RAM access timing and energy model.

The model decomposes an access into the classical CACTI stages:

* address **decoder** — delay grows with ``log2(entries)``;
* **wordline / bitline** — delay grows with the physical height of the array
  (entries) and its width (bits per entry), degraded by extra ports (each
  port adds a wordline and a pair of bitlines per cell, lengthening both);
* **CAM matchline + priority/age logic driver** (associative searches only)
  — every entry's matchline is charged and discharged, so the delay and, more
  importantly, the energy grow with the number of entries and the CAM width;
* **sense amplifier / output driver** — a fixed term.

The coefficients below were fitted to the 90 nm, 3 GHz design points reported
in Table 2 of the paper (not derived from first principles); the intent is to
reproduce the table's *trends* with a model that responds correctly to
geometry changes, so sensitivity studies beyond the paper's points remain
meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Clock frequency assumed by the paper's latency-to-cycles conversion.
CLOCK_GHZ = 3.0

#: Clock period in nanoseconds.
CLOCK_PERIOD_NS = 1.0 / CLOCK_GHZ

#: Margin used when converting latencies to cycles: an access fitting within
#: 5% over a cycle boundary is credited to the lower cycle count (this
#: reproduces the paper's 1.34 ns -> 4 cycle conversion).
CYCLE_MARGIN = 0.05


@dataclass(frozen=True)
class SQGeometry:
    """Geometry of one store queue design point.

    The paper assumes 64-bit data, 40-bit physical addresses and 4 KB pages:
    the associative SQ's CAM holds the 12 untranslated page-offset bits and
    its RAM holds 96 bits (64 data + 28 remaining address + 4 size/ready);
    the indexed SQ has no CAM and a 108-bit RAM entry.
    """

    entries: int
    load_ports: int = 2
    cam_bits: int = 12
    assoc_ram_bits: int = 96
    indexed_ram_bits: int = 108

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError("SQ entries must be a positive power of two")
        if self.load_ports <= 0:
            raise ValueError("load port count must be positive")


@dataclass(frozen=True)
class AccessTiming:
    """Decomposed access latency (nanoseconds)."""

    decoder_ns: float
    array_ns: float
    match_ns: float
    output_ns: float

    @property
    def total_ns(self) -> float:
        return self.decoder_ns + self.array_ns + self.match_ns + self.output_ns

    @property
    def cycles(self) -> int:
        return ns_to_cycles(self.total_ns)


@dataclass(frozen=True)
class AccessEnergy:
    """Per-access energy estimate (arbitrary units, comparable across designs)."""

    decode: float
    array: float
    match: float

    @property
    def total(self) -> float:
        return self.decode + self.array + self.match


def ns_to_cycles(ns: float, clock_ghz: float = CLOCK_GHZ, margin: float = CYCLE_MARGIN) -> int:
    """Convert a latency in nanoseconds to pipeline cycles at ``clock_ghz``."""
    if ns <= 0:
        raise ValueError("latency must be positive")
    period = 1.0 / clock_ghz
    cycles = ns / period
    return max(1, math.ceil(cycles - margin))


# -- fitted coefficients ------------------------------------------------------

# RAM (indexed) path.
_RAM_BASE = 0.240
_RAM_DECODE_PER_BIT = 0.031          # * log2(entries)
_RAM_ARRAY_PER_ENTRY = 0.0007        # * entries, port-scaled
_RAM_WIDTH_FACTOR = 0.0006           # * bits per entry
_RAM_PORT_FACTOR = 0.17              # per extra load port (array term scaling)

# CAM (associative) path, added on top of the RAM read of the selected entry.
_CAM_BASE = 0.055
_CAM_MATCH_PER_LOG = 0.152           # * log2(entries)   (matchline + select fanin)
_CAM_MATCH_PER_ENTRY = 0.00028       # * entries * cam_bits / 12
_CAM_PORT_FACTOR = 0.035             # per extra search port

# Output / sense stage shared by both paths.
_OUTPUT_NS = 0.065

# Energy coefficients (arbitrary units).
_ENERGY_DECODE_PER_LOG = 0.6
_ENERGY_RAM_PER_BIT = 0.02           # one wordline's worth of bitcells
_ENERGY_CAM_PER_ENTRY_BIT = 0.0037   # every CAM row switches on every search


def indexed_sq_access(geometry: SQGeometry) -> AccessTiming:
    """Load-path access timing of the indexed (direct-mapped) SQ."""
    log_entries = math.log2(geometry.entries)
    port_scale = 1.0 + _RAM_PORT_FACTOR * (geometry.load_ports - 1)
    decoder = _RAM_BASE * 0.35 + _RAM_DECODE_PER_BIT * log_entries
    array = (_RAM_BASE * 0.65 +
             _RAM_ARRAY_PER_ENTRY * geometry.entries * port_scale +
             _RAM_WIDTH_FACTOR * geometry.indexed_ram_bits)
    return AccessTiming(decoder_ns=decoder, array_ns=array, match_ns=0.0, output_ns=_OUTPUT_NS)


def associative_sq_access(geometry: SQGeometry) -> AccessTiming:
    """Load-path access timing of the fully-associative SQ (CAM + RAM read).

    Following the paper, the age (priority-encoding) logic is *not* included;
    the reported latency is therefore optimistic for the associative design.
    """
    log_entries = math.log2(geometry.entries)
    port_scale = 1.0 + _CAM_PORT_FACTOR * (geometry.load_ports - 1)
    ram_port_scale = 1.0 + _RAM_PORT_FACTOR * (geometry.load_ports - 1)
    decoder = _CAM_BASE + 0.012 * log_entries
    match = (_CAM_MATCH_PER_LOG * log_entries * port_scale +
             _CAM_MATCH_PER_ENTRY * geometry.entries * geometry.cam_bits / 12.0)
    array = (_RAM_BASE * 0.55 +
             _RAM_ARRAY_PER_ENTRY * geometry.entries * ram_port_scale * 0.6 +
             _RAM_WIDTH_FACTOR * geometry.assoc_ram_bits)
    return AccessTiming(decoder_ns=decoder, array_ns=array, match_ns=match, output_ns=_OUTPUT_NS)


def indexed_sq_energy(geometry: SQGeometry) -> AccessEnergy:
    """Per-access energy of the indexed SQ (one wordline read)."""
    decode = _ENERGY_DECODE_PER_LOG * math.log2(geometry.entries)
    array = _ENERGY_RAM_PER_BIT * geometry.indexed_ram_bits * geometry.load_ports
    return AccessEnergy(decode=decode, array=array, match=0.0)


def associative_sq_energy(geometry: SQGeometry) -> AccessEnergy:
    """Per-access energy of the associative SQ (all matchlines switch)."""
    decode = _ENERGY_DECODE_PER_LOG * math.log2(geometry.entries) * 0.5
    array = _ENERGY_RAM_PER_BIT * geometry.assoc_ram_bits * geometry.load_ports
    match = (_ENERGY_CAM_PER_ENTRY_BIT * geometry.entries * geometry.cam_bits *
             geometry.load_ports)
    return AccessEnergy(decode=decode, array=array, match=match)


def dcache_bank_access(size_kb: int, load_ports: int = 2, assoc: int = 2) -> AccessTiming:
    """Access timing of one data-cache bank (reference rows of Table 2)."""
    if size_kb <= 0:
        raise ValueError("cache size must be positive")
    bits = size_kb * 1024 * 8
    rows = max(64, int(math.sqrt(bits / 256)))
    log_rows = math.log2(rows)
    port_scale = 1.0 + 0.09 * (load_ports - 1)
    decoder = 0.16 + 0.022 * log_rows
    array = (0.26 + 0.022 * log_rows + 0.048 * (size_kb / 32.0)) * port_scale
    tag = 0.20 + 0.01 * math.log2(assoc + 1)
    return AccessTiming(decoder_ns=decoder, array_ns=array, match_ns=tag, output_ns=_OUTPUT_NS)


def tlb_access(entries: int = 32, load_ports: int = 2, assoc: int = 4) -> AccessTiming:
    """Access timing of a small set-associative TLB (reference row of Table 2)."""
    if entries <= 0:
        raise ValueError("TLB entries must be positive")
    log_entries = math.log2(max(2, entries))
    port_scale = 1.0 + 0.10 * (load_ports - 1)
    decoder = 0.10 + 0.012 * log_entries
    array = (0.18 + 0.018 * log_entries) * port_scale
    match = 0.14 + 0.01 * math.log2(assoc + 1)
    return AccessTiming(decoder_ns=decoder, array_ns=array, match_ns=match, output_ns=_OUTPUT_NS)

"""Table 2 generator: store-queue latency table and energy comparison.

Produces the same rows Table 2 of the paper reports — associative and
indexed SQ load latency for 16–256 entries and 1–2 load ports, plus
data-cache-bank and TLB reference rows — and the Section 4.2 energy
comparison (indexed ≈ 30% lower per access at 64 entries / 2 ports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.timing.cacti import (
    AccessTiming,
    SQGeometry,
    associative_sq_access,
    associative_sq_energy,
    dcache_bank_access,
    indexed_sq_access,
    indexed_sq_energy,
    tlb_access,
)

#: SQ capacities swept by Table 2.
TABLE2_ENTRIES: Tuple[int, ...] = (16, 32, 64, 128, 256)

#: Load-port counts swept by Table 2.
TABLE2_PORTS: Tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class SQLatencyRow:
    """One row of the SQ portion of Table 2."""

    entries: int
    load_ports: int
    associative_ns: float
    associative_cycles: int
    indexed_ns: float
    indexed_cycles: int

    @property
    def speedup_ns(self) -> float:
        """Associative / indexed latency ratio (> 1 favours the indexed SQ)."""
        return self.associative_ns / self.indexed_ns


def sq_latency_row(entries: int, load_ports: int) -> SQLatencyRow:
    """Compute one design point."""
    geometry = SQGeometry(entries=entries, load_ports=load_ports)
    assoc = associative_sq_access(geometry)
    index = indexed_sq_access(geometry)
    return SQLatencyRow(
        entries=entries,
        load_ports=load_ports,
        associative_ns=assoc.total_ns,
        associative_cycles=assoc.cycles,
        indexed_ns=index.total_ns,
        indexed_cycles=index.cycles,
    )


def sq_latency_table(entries_list: Tuple[int, ...] = TABLE2_ENTRIES,
                     ports_list: Tuple[int, ...] = TABLE2_PORTS) -> List[SQLatencyRow]:
    """All SQ rows of Table 2 (every capacity x port-count combination)."""
    return [sq_latency_row(entries, ports)
            for ports in ports_list for entries in entries_list]


def reference_rows() -> Dict[str, Dict[int, AccessTiming]]:
    """The D$ bank and TLB reference rows of Table 2, keyed by port count."""
    return {
        "dcache_8kb": {ports: dcache_bank_access(8, load_ports=ports) for ports in TABLE2_PORTS},
        "dcache_32kb": {ports: dcache_bank_access(32, load_ports=ports) for ports in TABLE2_PORTS},
        "tlb_32": {ports: tlb_access(32, load_ports=ports) for ports in TABLE2_PORTS},
    }


@dataclass(frozen=True)
class EnergyComparison:
    """Per-access energy of the two SQ designs at one design point."""

    entries: int
    load_ports: int
    associative: float
    indexed: float

    @property
    def indexed_savings(self) -> float:
        """Fractional energy saving of the indexed design (0.30 == 30% lower)."""
        return 1.0 - self.indexed / self.associative


def sq_energy_comparison(entries: int = 64, load_ports: int = 2) -> EnergyComparison:
    """Section 4.2 energy comparison (default: 64 entries, 2 load ports)."""
    geometry = SQGeometry(entries=entries, load_ports=load_ports)
    return EnergyComparison(
        entries=entries,
        load_ports=load_ports,
        associative=associative_sq_energy(geometry).total,
        indexed=indexed_sq_energy(geometry).total,
    )

"""repro — reproduction of "Scalable Store-Load Forwarding via Store Queue
Index Prediction" (Sha, Martin, Roth; MICRO 2005).

The package is organised as the paper's system is:

* :mod:`repro.core` — the contribution: SSNs, the Forwarding Store Predictor
  (FSP), the Store Alias Table (SAT), the Delay Distance Predictor (DDP),
  SVW support structures (SSBF/SPCT), and the original Store Sets predictor.
* :mod:`repro.lsu` — the store queue, load queue, and the pluggable SQ
  access policies (associative vs. indexed).
* :mod:`repro.pipeline` — the cycle-level out-of-order core.
* :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.frontend` — substrates:
  the trace micro-op ISA, memory hierarchy, and branch prediction.
* :mod:`repro.workloads` — synthetic SPEC2000/MediaBench proxy workloads
  (segment-composed, so paper-length traces support random access).
* :mod:`repro.timing` — the CACTI-style SQ latency/energy model (Table 2).
* :mod:`repro.harness` — experiment runners that regenerate the paper's
  tables and figures.
* :mod:`repro.exec` — the parallel experiment engine and result cache.
* :mod:`repro.sampling` — statistical sampling (functional warming +
  detailed measurement intervals + confidence intervals) for paper-scale
  10M-instruction runs.

Quickstart::

    from repro import simulate, build_workload, IndexedSQPolicy, CoreConfig

    trace = build_workload("vortex", instructions=20_000)
    result = simulate(trace, IndexedSQPolicy(use_delay=True))
    print(result.ipc, result.stats.mis_forwardings_per_1000_loads)
"""

from repro.core import (
    DelayDistancePredictor,
    ForwardingStorePredictor,
    PredictorSuiteConfig,
    SSNAllocator,
    StoreAliasTable,
    StoreSetsPredictor,
    SVWFilter,
)
from repro.lsu import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    LoadQueue,
    OracleAssociativePolicy,
    SQPolicy,
    StoreQueue,
)
from repro.pipeline import CoreConfig, OutOfOrderCore, SimulationResult, SimStats
from repro.isa import DynamicTrace, MicroOp, OpClass
from repro.sampling import SampledResult, SamplingPlan
from repro.workloads import build_workload, build_suite, workload_names
from repro.timing import SQGeometry, sq_latency_table
from repro.harness import run_figure4, run_figure5, run_table2, run_table3

__version__ = "1.1.0"

__all__ = [
    "AssociativeStoreSetsPolicy",
    "CoreConfig",
    "DelayDistancePredictor",
    "DynamicTrace",
    "ForwardingStorePredictor",
    "IndexedSQPolicy",
    "LoadQueue",
    "MicroOp",
    "OpClass",
    "OracleAssociativePolicy",
    "OutOfOrderCore",
    "PredictorSuiteConfig",
    "SampledResult",
    "SamplingPlan",
    "SimStats",
    "SimulationResult",
    "SQGeometry",
    "SQPolicy",
    "SSNAllocator",
    "StoreAliasTable",
    "StoreQueue",
    "StoreSetsPredictor",
    "SVWFilter",
    "build_suite",
    "build_workload",
    "run_figure4",
    "run_figure5",
    "run_table2",
    "run_table3",
    "simulate",
    "sq_latency_table",
    "workload_names",
    "__version__",
]


def simulate(trace, policy, config=None):
    """Simulate ``trace`` under ``policy`` with an optional core configuration.

    This is the one-call entry point used by the examples; it constructs a
    fresh :class:`~repro.pipeline.core.OutOfOrderCore` so repeated calls do
    not share microarchitectural state.

    Parameters
    ----------
    trace:
        A :class:`~repro.isa.trace.DynamicTrace` (e.g. from
        :func:`~repro.workloads.suites.build_workload`).
    policy:
        An :class:`~repro.lsu.policies.SQPolicy` instance describing the
        store-queue configuration.
    config:
        Optional :class:`~repro.pipeline.config.CoreConfig`; the paper's
        default machine is used when omitted.

    Returns
    -------
    SimulationResult
    """
    from repro.pipeline.vector import make_core

    core = make_core(config or CoreConfig(), policy)
    return core.run(trace)

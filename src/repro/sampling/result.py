"""Sampled-run results: per-interval measurements + CLT/t aggregation.

A sampled simulation produces one :class:`IntervalMeasurement` per detailed
interval; :class:`SampledResult` aggregates them into a mean CPI with a
Student-t confidence interval and into a merged
:class:`~repro.pipeline.stats.SimStats` (field-wise sums over the measured
regions, so every Table 3 rate — forwarding, mis-forwardings per 1000
loads, percent delayed — is computable exactly as for a full-detail run).

:class:`SampledSimulationResult` is a drop-in
:class:`~repro.pipeline.core.SimulationResult`: the harness experiments
(Figure 4 relative times, Table 3 rates) read ``stats`` without caring
whether a run was sampled, while sampling-aware consumers reach the full
per-interval detail through ``.sampled``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipeline.core import SimulationResult
from repro.pipeline.stats import SimStats
from repro.sampling.plan import SamplingPlan, student_t_two_sided


@dataclass
class IntervalMeasurement:
    """The measured region of one detailed interval."""

    index: int
    measure_start: int
    instructions: int
    cycles: int
    stats: SimStats
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SampledResult:
    """Aggregate of one sampled ``(workload, configuration)`` run."""

    workload: str
    config_name: str
    plan: SamplingPlan
    total_instructions: int
    intervals: List[IntervalMeasurement]

    # ------------------------------------------------------------ estimates --

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def cpi_values(self) -> List[float]:
        return [m.cpi for m in self.intervals]

    @property
    def cpi_mean(self) -> float:
        values = self.cpi_values
        return math.fsum(values) / len(values) if values else 0.0

    @property
    def cpi_std(self) -> float:
        """Sample standard deviation of the per-interval CPIs."""
        values = self.cpi_values
        n = len(values)
        if n < 2:
            return 0.0
        mean = self.cpi_mean
        return math.sqrt(math.fsum((v - mean) ** 2 for v in values) / (n - 1))

    @property
    def cpi_ci_halfwidth(self) -> float:
        """Half-width of the two-sided ``plan.confidence`` CPI interval.

        Zero when only one interval was measured (no variance estimate).
        """
        n = self.num_intervals
        if n < 2:
            return 0.0
        t = student_t_two_sided(self.plan.confidence, n - 1)
        return t * self.cpi_std / math.sqrt(n)

    @property
    def cpi_ci(self) -> Tuple[float, float]:
        mean, half = self.cpi_mean, self.cpi_ci_halfwidth
        return (mean - half, mean + half)

    @property
    def relative_ci(self) -> float:
        """CI half-width relative to the mean (the paper-style ±x%)."""
        mean = self.cpi_mean
        return self.cpi_ci_halfwidth / mean if mean else 0.0

    @property
    def ipc_mean(self) -> float:
        mean = self.cpi_mean
        return 1.0 / mean if mean else 0.0

    @property
    def estimated_total_cycles(self) -> float:
        """CPI-mean extrapolation over the whole trace."""
        return self.cpi_mean * self.total_instructions

    # ---------------------------------------------------------------- merge --

    #: :class:`SimStats` fields that are peaks or flags (merged as max over
    #: intervals) rather than summable counters: ``mshr_occupancy`` is a
    #: peak, ``mshr_modeled`` a 0/1 flag whose sum would be meaningless.
    PEAK_STAT_FIELDS = frozenset({"mshr_modeled", "mshr_occupancy"})

    def merged_stats(self) -> SimStats:
        """Field-wise sum of the per-interval measured-region statistics
        (peak/flag fields — :attr:`PEAK_STAT_FIELDS` — merge as max)."""
        merged = SimStats()
        peak_fields = self.PEAK_STAT_FIELDS
        for measurement in self.intervals:
            for stats_field in dataclasses.fields(SimStats):
                name = stats_field.name
                if name in peak_fields:
                    setattr(merged, name,
                            max(getattr(merged, name), getattr(measurement.stats, name)))
                else:
                    setattr(merged, name,
                            getattr(merged, name) + getattr(measurement.stats, name))
        return merged

    #: ``extra`` keys that are peaks (merged as max over intervals); every
    #: other key is treated as a rate and instruction-weight averaged.  An
    #: explicit enumeration, so a future rate metric whose *name* happens
    #: to contain "max" cannot silently change aggregation semantics.
    PEAK_EXTRA_KEYS = frozenset({"rob_max_occupancy", "mshr_occupancy"})

    def merged_extra(self) -> Dict[str, float]:
        """Merge the per-interval ``extra`` metrics.

        Peak metrics (:attr:`PEAK_EXTRA_KEYS`) merge as the maximum over
        intervals.  Everything else — the rate-style extras — merges as an
        instruction-weighted mean, an approximation of the true pooled rate
        (whose exact denominators, e.g. branch counts, are available in
        :meth:`merged_stats` for consumers that need them).
        """
        weights = [m.instructions for m in self.intervals]
        total = sum(weights)
        merged: Dict[str, float] = {}
        if not total:
            return merged
        keys = set()
        for measurement in self.intervals:
            keys.update(measurement.extra)
        for key in sorted(keys):
            if key in self.PEAK_EXTRA_KEYS:
                merged[key] = max(m.extra.get(key, 0.0) for m in self.intervals)
            else:
                merged[key] = math.fsum(
                    m.extra.get(key, 0.0) * w
                    for m, w in zip(self.intervals, weights)) / total
        return merged

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary (recorded in benchmark trajectory files)."""
        return {
            "intervals": self.num_intervals,
            "interval_length": self.plan.interval_length,
            "detailed_warmup": self.plan.detailed_warmup,
            "functional_warmup": self.plan.functional_warmup,
            "period": self.plan.period,
            "confidence": self.plan.confidence,
            "cpi_mean": self.cpi_mean,
            "cpi_ci_halfwidth": self.cpi_ci_halfwidth,
            "relative_ci": self.relative_ci,
            "estimated_total_cycles": self.estimated_total_cycles,
            "sampled_fraction": self.plan.sampled_fraction(self.total_instructions),
        }


@dataclass
class SampledSimulationResult(SimulationResult):
    """A :class:`SimulationResult` carrying its per-interval breakdown.

    ``stats`` holds the merged (summed) measured-region counters, so ratio
    metrics and cross-configuration cycle ratios (Figure 4 relative times)
    behave exactly like full-detail results as long as every configuration
    uses the same plan; ``sampled`` holds the per-interval detail and the
    confidence interval.
    """

    sampled: Optional[SampledResult] = None

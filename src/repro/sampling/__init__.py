"""Statistical sampling: functional warming + interval simulation.

SMARTS-style systematic sampling lets the simulator reach the paper's
10M-instruction samples: instead of simulating every instruction through
the cycle-accurate out-of-order model, a :class:`SamplingPlan` measures
short detailed intervals at a fixed period, each preceded by fast
functional warming (:mod:`repro.sampling.functional`) of the long-lived
microarchitectural state and a short detailed warm-up.  Per-interval CPIs
are aggregated with a Student-t confidence interval
(:mod:`repro.sampling.result`).

Usage — set the ``sampling`` knob on
:class:`~repro.harness.runner.ExperimentSettings`::

    from repro.harness.runner import ExperimentSettings
    from repro.sampling import SamplingPlan

    settings = ExperimentSettings(
        instructions=10_000_000,
        sampling=SamplingPlan(interval_length=2_000, detailed_warmup=2_000,
                              period=400_000, functional_warmup=30_000))

Every harness experiment (Table 3, Figures 4/5) then runs sampled: the
:class:`~repro.exec.engine.ExperimentEngine` expands each ``(workload,
configuration)`` spec into one :class:`~repro.exec.jobs.IntervalJobSpec`
per interval, fans the intervals out over its process pool, caches each
interval independently, and merges the records deterministically (see
:mod:`repro.sampling.driver`).

Checkpointed functional warming (PR 3, :mod:`repro.sampling.checkpoints`)
removes the bounded-warming lukewarm bias at amortised cost: one full
functional pass per workload snapshots the warmed machine state at every
interval start into a content-addressed on-disk store shared by every
configuration of a sweep (and by later runs); interval jobs load snapshots
instead of re-warming.  On by default for sampled runs — disable with
``REPRO_CHECKPOINTS=0`` or ``ExperimentSettings.checkpoints=False``.

This package's ``__init__`` exports only the dependency-light plan/result
types; import :mod:`repro.sampling.driver`,
:mod:`repro.sampling.functional`, and :mod:`repro.sampling.checkpoints`
explicitly for the execution machinery.
"""

from repro.sampling.plan import IntervalWindow, SamplingPlan, student_t_two_sided
from repro.sampling.result import (
    IntervalMeasurement,
    SampledResult,
    SampledSimulationResult,
)

__all__ = [
    "IntervalMeasurement",
    "IntervalWindow",
    "SampledResult",
    "SampledSimulationResult",
    "SamplingPlan",
    "student_t_two_sided",
]

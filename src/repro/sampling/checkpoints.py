"""Checkpointed functional warming: one O(N) pass per workload, shared on disk.

Bounded functional warming (PR 2) keeps sampled runs ``O(sampled)`` but
cannot reproduce machine history older than its horizon, which leaves a
recorded lukewarm CPI bias on cache-heavy workloads at paper-scale counts.
This module removes that bias at amortised cost: a **single full-trace
functional pass per workload** serialises the warmed machine state at every
interval start into a content-addressed on-disk **checkpoint store**, and
every interval job of every configuration in a sweep then *loads* its
snapshot (via :meth:`~repro.pipeline.core.OutOfOrderCore.import_state`)
instead of re-warming.  Because snapshots carry full history, the remaining
error is detailed-warmup-only — the faithful SMARTS configuration — while
the O(N) replay is paid once per workload rather than once per
``(configuration, interval)``.

Storage layout (one pickle per entry, exactly like the result cache):

* **shared snapshots** — branch predictor/BTB/RAS, caches/TLB, memory
  image, SSN counters, and the oracle last-writer map are identical for
  every store-queue configuration, so they are stored once per
  ``(workload, plan, core config, interval)``.
* **policy snapshots** — the per-configuration predictor state (SVW tables,
  FSP/SAT, store sets, DDP) is stored per ``(configuration, sq_size,
  predictor overrides)`` on top of the shared key.  One
  :class:`~repro.sampling.functional.FunctionalWarmer` pass warms *all*
  missing configurations simultaneously (the shared structures update once
  per micro-op).
* **trace windows** — the same store memoises each interval's composed
  detailed-window micro-ops (written during the generation pass, tiny next
  to the segments they straddle), so checkpointed interval jobs stop
  re-emitting trace content entirely.  Windows and segments are stored in
  encoded two-plane form (:class:`~repro.isa.plane.EncodedOps`, schema v2):
  flat arrays that unpickle far cheaper than they recompose, which is what
  lets sharded generation share whole composed chunks through the segment
  memo (``build_workload_window(..., disk_memo=True)`` in
  :mod:`repro.workloads.suites`).

Keys cover the trace identity, the sampling plan, the core configuration,
and SHA-256 fingerprints of the workload-generator and simulator sources —
editing a simulator source or changing the plan invalidates every snapshot
automatically, so restoring a stale store (e.g. from a CI cache) is always
safe.  Corrupt or truncated snapshot files are repaired in place: the
affected interval recomputes the exact same full-history state in-process
(never a silently-lukewarm result, never a crash).

**Sharded generation** (PR 4): the O(N) generation pass itself is
decomposed into a grid of pool-sized **shard jobs** — contiguous
segment-aligned trace *chunks* crossed with *policy groups* — and stitched
back together through **boundary snapshots**:

* a *policy group* warms a subset of a sweep's configurations through its
  own full replay (policies are independent folds over the shared replay
  stream, so per-group passes are bit-identical to the one multi-policy
  pass; the group carrying ``write_shared`` also emits the shared
  snapshots and window memos);
* a *chunk* job resumes a group's replay from the previous chunk's
  exported :class:`BoundaryState` (stitch handoff through the store) and
  emits the snapshots of the intervals whose detailed-warmup start falls
  inside its chunk.  Because functional warming is a deterministic fold,
  the stitched snapshots are **bit-identical** to the single-pass ones
  (validated at handoff, unit- and CI-tested end to end);
* jobs are fanned out **chunk-major** over the engine pool: a worker whose
  boundary has not arrived yet *precomposes its chunk's trace segments*
  while it waits, which moves composition — the largest share of the pass
  — off the sequential stitch chain.  A handoff that never arrives (or
  arrives damaged) falls back to an exact in-process prefix recompute:
  slower, never wrong.

Environment knobs::

    REPRO_CHECKPOINTS=0         # disable (sampled runs fall back to bounded
                                # functional warming, the PR 2 behaviour)
    REPRO_CHECKPOINT_DIR=...    # store location, default .repro-checkpoints/
                                # (safe to delete at any time)
    REPRO_CHECKPOINT_SHARDS=K   # trace chunks per generation chain
                                # (<= 0 or unset: sized from the worker
                                # count; 1 disables trace sharding)

``ExperimentSettings.checkpoints`` / ``ExperimentSettings.checkpoint_shards``
override the environment per run (``None`` means "follow the environment").
"""

from __future__ import annotations

import json
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exec import fingerprint as _fingerprint
from repro.exec.cache import ResultCache, _canonical
from repro.exec.resilience import EnvKnobError
from repro.sampling.functional import FunctionalState, FunctionalWarmer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.predictors import PredictorSuiteConfig
    from repro.harness.runner import ExperimentSettings

#: Bumped when the snapshot payload layout changes incompatibly.
#: v2: trace windows and segments are stored in encoded two-plane form
#: (:class:`~repro.isa.plane.EncodedOps`) instead of micro-op object lists.
#: v3: blobs carry the store's integrity frame (magic + SHA-256 checksum,
#: see :mod:`repro.exec.cache`), so pre-frame snapshots are keyed away
#: instead of mass-quarantined on upgrade.
#: v4: snapshots may carry a non-blocking hierarchy
#: (:class:`~repro.memory.mlp.NonBlockingHierarchy`: MSHR file, stride
#: prefetcher table, prefetched-line set) when ``core.memory.mlp`` is
#: enabled; the ``core`` key already distinguishes MLP configurations, but
#: the payload class set changed, so old readers are keyed away.
CHECKPOINT_SCHEMA_VERSION = 4

#: Default store directory (relative to the current working directory).
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

#: A policy identity: (configuration name, SQ size, predictor overrides).
PolicyIdentity = Tuple[str, int, Optional["PredictorSuiteConfig"]]


def checkpoints_enabled() -> bool:
    """Whether checkpointed warming is enabled by the environment."""
    return os.environ.get("REPRO_CHECKPOINTS", "1").strip() != "0"


def resolve_checkpointed(settings) -> bool:
    """Whether a sampled run with ``settings`` uses checkpointed warming.

    ``settings.checkpoints`` wins when not ``None``; otherwise the
    ``REPRO_CHECKPOINTS`` environment default applies.  Never true for
    non-sampled settings.
    """
    if getattr(settings, "sampling", None) is None:
        return False
    explicit = getattr(settings, "checkpoints", None)
    if explicit is None:
        return checkpoints_enabled()
    return bool(explicit)


def resolve_checkpoint_shards(settings=None) -> int:
    """The requested trace-chunk count per generation chain.

    ``settings.checkpoint_shards`` wins when not ``None``; otherwise the
    ``REPRO_CHECKPOINT_SHARDS`` environment variable applies.  ``0`` (also
    any value <= 0, or nothing configured) means *auto*: the generation
    planner sizes chunks from the worker count.  Purely an execution knob —
    stitched sharded generation is bit-identical to the single pass, so it
    never participates in snapshot or result-cache keys.
    """
    explicit = getattr(settings, "checkpoint_shards", None) \
        if settings is not None else None
    if explicit is None:
        env = os.environ.get("REPRO_CHECKPOINT_SHARDS", "").strip()
        if not env:
            return 0
        try:
            explicit = int(env)
        except ValueError:
            raise EnvKnobError(
                f"REPRO_CHECKPOINT_SHARDS must be an integer (got {env!r}); "
                "use 0 (or unset) to size shards from the worker count"
            ) from None
        if explicit < 0:
            raise EnvKnobError(
                f"REPRO_CHECKPOINT_SHARDS must be >= 0 (got {explicit}); "
                "use 0 (or unset) to size shards from the worker count")
    return max(0, int(explicit))


class CheckpointStore(ResultCache):
    """Content-addressed snapshot/segment store (pickle per entry).

    Reuses the result cache's atomic-write/corruption-tolerant blob
    machinery under its own default directory and environment knob.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        super().__init__(directory
                         or os.environ.get("REPRO_CHECKPOINT_DIR")
                         or DEFAULT_CHECKPOINT_DIR)

    def contains(self, key: str) -> bool:
        """Cheap existence check (no deserialisation; corruption is only
        discovered — and repaired — at load time).  Entries held by the
        in-memory fallback of a degraded (``ENOSPC``) directory count."""
        return self._path(key).exists() or key in self._memory()


# --------------------------------------------------------------------- keys --

def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def _shared_payload(workload: str, settings: "ExperimentSettings") -> dict:
    """The configuration-independent part of every snapshot key."""
    plan = _canonical(settings.sampling)
    if isinstance(plan, dict):
        # Snapshots cover [0, detailed_start) and windows
        # [detailed_start, measure_end + overrun): neither depends on the
        # bounded-warming horizon, so toggling that knob (e.g. to compare
        # the bounded mode) must not invalidate the store.
        plan.pop("functional_warmup", None)
    return {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "workload": workload,
        "instructions": settings.instructions,
        "seed": settings.seed,
        "plan": plan,
        "core": _canonical(settings.core),
        "trace_sources": _fingerprint.workload_fingerprint(),
        "simulator_sources": _fingerprint.simulator_fingerprint(),
    }


def shared_key(workload: str, settings: "ExperimentSettings",
               interval_index: int) -> str:
    """Key of the shared (configuration-independent) snapshot of one interval."""
    payload = _shared_payload(workload, settings)
    payload["kind"] = "functional-shared"
    payload["interval"] = interval_index
    return _digest(payload)


def policy_key(workload: str, settings: "ExperimentSettings",
               identity: PolicyIdentity, interval_index: int) -> str:
    """Key of one configuration's policy snapshot of one interval."""
    config_name, sq_size, predictors = identity
    payload = _shared_payload(workload, settings)
    payload["kind"] = "functional-policy"
    payload["interval"] = interval_index
    payload["config"] = config_name
    payload["sq_size"] = sq_size
    payload["predictors"] = _canonical(predictors)
    return _digest(payload)


def segment_key(name: str, seed: int, index: int, length: int) -> str:
    """Key of one composed trace segment (workload sources fingerprinted)."""
    return _digest({
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "kind": "trace-segment",
        "workload": name,
        "seed": seed,
        "segment": index,
        "length": length,
        "trace_sources": _fingerprint.workload_fingerprint(),
    })


def window_key(workload: str, settings: "ExperimentSettings",
               interval_index: int) -> str:
    """Key of one interval's composed detailed-window micro-ops.

    A checkpointed interval simulates only ``[detailed_start, measure_end +
    overrun)`` — a small fraction of a 16384-uop segment — so the
    generation pass memoises exactly that slice; interval jobs then load a
    few thousand micro-ops instead of composing (or unpickling) every
    overlapping segment.  This is the hot-loop fix for the window
    regeneration cost that dominated interval jobs.
    """
    payload = _shared_payload(workload, settings)
    payload["kind"] = "trace-window"
    payload["interval"] = interval_index
    return _digest(payload)


def boundary_key(workload: str, settings: "ExperimentSettings",
                 identities: Sequence[PolicyIdentity], position: int) -> str:
    """Key of one generation chain's stitch handoff at ``position``.

    Covers the chain's policy-group identity list (different groups at the
    same boundary carry different policy state) on top of the shared
    payload; boundary blobs are transient — consumed by the next chunk job
    and discarded once the whole generation stage has stitched.
    """
    payload = _shared_payload(workload, settings)
    payload["kind"] = "functional-boundary"
    payload["position"] = position
    payload["identities"] = [_identity_token(identity)
                             for identity in identities]
    return _digest(payload)


def segment_store() -> Optional[CheckpointStore]:
    """The store used for the on-disk trace-segment memo, or ``None`` when
    checkpointing is disabled by the environment."""
    if not checkpoints_enabled():
        return None
    return CheckpointStore()


# ---------------------------------------------------------------- snapshots --

@dataclass
class SharedWarmState:
    """The configuration-independent half of a functional snapshot."""

    branch_unit: object
    hierarchy: object
    memory: object
    ssn_alloc: object
    last_writer: Dict[int, Tuple[int, int, int]]
    instructions_warmed: int


def _shared_snapshot(state: FunctionalState) -> SharedWarmState:
    return SharedWarmState(
        branch_unit=state.branch_unit,
        hierarchy=state.hierarchy,
        memory=state.memory,
        ssn_alloc=state.ssn_alloc,
        last_writer=state.last_writer,
        instructions_warmed=state.instructions_warmed,
    )


def _assemble(settings: "ExperimentSettings", shared: SharedWarmState,
              policy) -> FunctionalState:
    return FunctionalState(
        config=settings.core,
        branch_unit=shared.branch_unit,
        hierarchy=shared.hierarchy,
        memory=shared.memory,
        ssn_alloc=shared.ssn_alloc,
        policy=policy,
        last_writer=shared.last_writer,
        instructions_warmed=shared.instructions_warmed,
    )


def shared_signature(shared: SharedWarmState) -> tuple:
    """Canonical equality signature of one shared snapshot.

    Composes the per-structure ``state_signature()`` methods (exactly the
    structures :meth:`~repro.pipeline.core.OutOfOrderCore.import_state`
    adopts), so two snapshots with equal signatures warm a detailed core
    identically — the equality the stitched-vs-single-pass bit-identity
    tests and the CI sharded-generation smoke assert per interval.
    """
    return (
        shared.branch_unit.state_signature(),
        shared.hierarchy.state_signature(),
        shared.memory.state_signature(),
        (shared.ssn_alloc.bits, shared.ssn_alloc.ssn_rename,
         shared.ssn_alloc.ssn_commit, shared.ssn_alloc.wraps),
        tuple(sorted(shared.last_writer.items())),
        shared.instructions_warmed,
    )


@dataclass
class BoundaryState:
    """One generation chain's stitch handoff at a chunk boundary.

    Carries the full resumable replay state — the shared half plus every
    policy of the chain's group, warmed over ``[0, position)`` — so the
    next chunk's worker continues the fold exactly where this one stopped.
    """

    shared: SharedWarmState
    policies: List
    position: int


# --------------------------------------------------------------- generation --

@dataclass(frozen=True)
class CheckpointJobSpec:
    """One checkpoint-generation pass, described by value (pool-friendly).

    ``identities`` names the policy snapshots to produce (may be empty when
    only the shared snapshots are missing); ``write_shared`` asks for the
    shared snapshots too.  The pass always replays the full warming prefix
    once, warming every listed policy simultaneously.
    """

    workload: str
    settings: "ExperimentSettings"
    identities: Tuple[PolicyIdentity, ...]
    write_shared: bool
    directory: str


def _identity_token(identity: PolicyIdentity) -> str:
    config_name, sq_size, predictors = identity
    return json.dumps({"config": config_name, "sq_size": sq_size,
                       "predictors": _canonical(predictors)},
                      sort_keys=True, default=repr)


def plan_generation(store: CheckpointStore, interval_specs: Sequence,
                    ) -> Tuple[List[CheckpointJobSpec], int]:
    """Work out which generation passes a set of interval jobs still needs.

    ``interval_specs`` are (typically cache-missed) checkpointed
    :class:`~repro.exec.jobs.IntervalJobSpec`; they are grouped by shared
    identity (workload, trace length, seed, plan, core configuration), and
    each group is probed for missing shared/policy snapshots across *all*
    intervals of its plan.  Returns ``(requests, total_identities)`` where
    ``total_identities`` counts every (group, configuration) pair seen —
    ``total_identities - sum(len(r.identities) for r in requests)`` is the
    number whose *policy* snapshots are already present.  A group whose
    policy snapshots all hit but whose shared snapshots are damaged still
    yields a request (``write_shared=True``, empty ``identities``): such a
    pass regenerates shared state only, so "no work done" is ``requests ==
    []`` (the engine's ``checkpoint_passes`` stat), not merely "zero
    generated identities".
    """
    groups: Dict[str, dict] = {}
    for spec in interval_specs:
        payload = _shared_payload(spec.workload, spec.settings)
        token = json.dumps(payload, sort_keys=True, default=repr)
        group = groups.setdefault(token, {
            "workload": spec.workload, "settings": spec.settings,
            "identities": {},
        })
        identity = (spec.config_name, spec.settings.sq_size, spec.predictors)
        group["identities"].setdefault(_identity_token(identity), identity)

    requests: List[CheckpointJobSpec] = []
    total_identities = 0
    directory = str(store.directory)
    for group in groups.values():
        workload = group["workload"]
        settings = group["settings"]
        count = settings.sampling.num_intervals(settings.instructions)
        identities = list(group["identities"].values())
        total_identities += len(identities)
        write_shared = any(
            not store.contains(shared_key(workload, settings, i))
            for i in range(count))
        missing = [identity for identity in identities
                   if any(not store.contains(policy_key(workload, settings,
                                                        identity, i))
                          for i in range(count))]
        if write_shared or missing:
            requests.append(CheckpointJobSpec(
                workload=workload, settings=settings,
                identities=tuple(missing), write_shared=write_shared,
                directory=directory))
    return requests, total_identities


def generate_checkpoints(store: CheckpointStore, workload: str,
                         settings: "ExperimentSettings",
                         identities: Sequence[PolicyIdentity],
                         write_shared: bool = True) -> int:
    """One full functional pass: snapshot every interval start into ``store``.

    Warms all ``identities`` simultaneously (plus the shared structures) and
    writes one shared snapshot (when ``write_shared``) and one policy
    snapshot per identity at each interval's detailed-warmup start.  Returns
    the number of snapshot points written.

    This is the single-pass reference: it executes one
    :class:`ShardJobSpec` covering the whole warming span, the same code
    path sharded generation stitches in chunks — there is exactly one
    emission implementation, so the two schemes cannot drift.
    """
    plan = settings.sampling
    if plan is None:
        raise ValueError("settings carry no sampling plan")
    windows = plan.intervals(settings.instructions)
    span = windows[-1].detailed_start
    return run_shard_job(ShardJobSpec(
        workload=workload, settings=settings, identities=tuple(identities),
        write_shared=write_shared, chunk_index=0, chunk_start=0,
        chunk_end=span, last=True, boundaries=(0,),
        directory=str(store.directory)))


def interval_window_uops(workload: str, settings: "ExperimentSettings",
                         window, disk_memo: bool = False):
    """Compose the micro-ops a checkpointed interval simulates in detail:
    ``[detailed_start, measure_end + overrun)``."""
    from repro.sampling.driver import _overrun
    from repro.workloads.suites import build_workload_window

    stop = min(settings.instructions,
               window.measure_end + _overrun(settings.core))
    return build_workload_window(workload, settings.instructions,
                                 settings.seed, window.detailed_start, stop,
                                 disk_memo=disk_memo)


def run_checkpoint_job(request: CheckpointJobSpec) -> int:
    """Execute one generation request as a single unsharded pass."""
    store = CheckpointStore(request.directory)
    return generate_checkpoints(store, request.workload, request.settings,
                                request.identities,
                                write_shared=request.write_shared)


# ----------------------------------------------------------------- sharding --

#: How long a chunk job waits for its stitch handoff before falling back to
#: an exact in-process prefix recompute.  Generous: the chain ahead of it is
#: replaying real trace prefixes, and a premature fallback costs O(prefix).
_BOUNDARY_WAIT_SECONDS = 900.0

#: Poll cadence while waiting (the handoff lands as one atomic rename).
_BOUNDARY_POLL_SECONDS = 0.01


@dataclass(frozen=True)
class ShardJobSpec:
    """One stitched chunk of one generation chain, described by value.

    A *chain* is a policy group's full-trace replay; ``boundaries`` lists
    the chain's chunk start positions (segment-aligned, ``boundaries[0] ==
    0``) and this job covers ``[chunk_start, chunk_end)``, emitting the
    snapshots of every interval whose detailed-warmup start lies inside
    (the ``last`` chunk also owns ``detailed_start == chunk_end``).  Jobs
    with ``chunk_index > 0`` resume from the previous chunk's
    :class:`BoundaryState`; jobs that are not ``last`` export their own at
    ``chunk_end``.
    """

    workload: str
    settings: "ExperimentSettings"
    identities: Tuple[PolicyIdentity, ...]
    write_shared: bool
    chunk_index: int
    chunk_start: int
    chunk_end: int
    last: bool
    boundaries: Tuple[int, ...]
    directory: str
    #: Read/write composed segments through the on-disk segment memo.  Set
    #: by the planner whenever the generation grid has more than one job
    #: (several chains re-read the same segments, and compose-ahead workers
    #: share what they precompose); a lone single-pass job composes in
    #: memory only, so it cannot flood the store with segments nothing
    #: re-reads.
    disk_memo: bool = False
    #: Which generation chain this chunk belongs to (the planner's chain
    #: ordinal).  Purely an execution-plan coordinate: it lets the
    #: dispatcher express the stitch order ``chain[k-1] -> chain[k]`` as
    #: an explicit job dependency instead of pool-FIFO luck, and never
    #: reaches a store key.
    chain: int = 0


def plan_shard_jobs(store: CheckpointStore,
                    requests: Sequence[CheckpointJobSpec],
                    workers: int = 1,
                    ) -> Tuple[List[ShardJobSpec], Dict[str, int]]:
    """Decompose generation requests into a chunk-major shard-job list.

    Each request (one workload group) is split along two axes:

    * **policy groups** — its identities are dealt round-robin into up to
      ``workers // len(requests)`` chains (policies are independent folds
      over the shared replay stream, so per-group passes reproduce the one
      multi-policy pass exactly); group 0 inherits the request's
      ``write_shared`` duty (shared snapshots + window memos).
    * **trace chunks** — each chain's warming span is cut on
      ``TRACE_SEGMENT_UOPS`` boundaries into K contiguous chunks
      (``REPRO_CHECKPOINT_SHARDS`` / ``settings.checkpoint_shards``;
      *auto* sizes K to soak up workers left idle by the chain count),
      stitched at run time through :class:`BoundaryState` handoffs.

    The returned list is ordered chunk-major across every chain, which —
    executed FIFO with ``chunksize=1`` — guarantees a job's handoff
    producer is always dispatched before (or with) the job itself, so
    in-worker boundary waits cannot deadlock the pool.
    """
    from repro.workloads.suites import TRACE_SEGMENT_UOPS

    directory = str(store.directory)
    chains: List[Tuple[CheckpointJobSpec, Tuple[PolicyIdentity, ...], bool]] = []
    for request in requests:
        identities = list(request.identities)
        if not identities:
            chains.append((request, (), request.write_shared))
            continue
        group_count = min(len(identities),
                          max(1, workers // max(1, len(requests))))
        for g in range(group_count):
            chains.append((request, tuple(identities[g::group_count]),
                           request.write_shared and g == 0))

    per_chain: List[Tuple[List[int], Tuple]] = []
    max_chunks = 1
    for request, identities, write_shared in chains:
        settings = request.settings
        windows = settings.sampling.intervals(settings.instructions)
        span = windows[-1].detailed_start
        segments = max(1, -(-span // TRACE_SEGMENT_UOPS))
        chunks = resolve_checkpoint_shards(settings)
        if chunks <= 0:
            chunks = max(1, workers // max(1, len(chains)))
        chunks = min(chunks, segments)
        base, extra = divmod(segments, chunks)
        bounds = [0]
        position = 0
        for i in range(chunks):
            position += base + (1 if i < extra else 0)
            bounds.append(min(position * TRACE_SEGMENT_UOPS, span))
        max_chunks = max(max_chunks, chunks)
        per_chain.append((bounds, (request, identities, write_shared)))

    total_jobs = sum(len(bounds) - 1 for bounds, _chain in per_chain)
    jobs: List[ShardJobSpec] = []
    for chunk_index in range(max_chunks):
        for chain_id, (bounds, (request, identities, write_shared)) \
                in enumerate(per_chain):
            if chunk_index >= len(bounds) - 1:
                continue
            jobs.append(ShardJobSpec(
                workload=request.workload, settings=request.settings,
                identities=identities, write_shared=write_shared,
                chunk_index=chunk_index,
                chunk_start=bounds[chunk_index],
                chunk_end=bounds[chunk_index + 1],
                last=chunk_index == len(bounds) - 2,
                boundaries=tuple(bounds[:-1]),
                directory=directory,
                disk_memo=total_jobs > 1,
                chain=chain_id))
    return jobs, {
        "checkpoint_chains": len(chains),
        "checkpoint_shards": max_chunks,
        "checkpoint_shard_jobs": len(jobs),
    }


def _fresh_policies(spec: ShardJobSpec) -> List:
    from repro.harness.runner import make_policy

    if spec.identities:
        return [make_policy(config_name, sq_size=sq_size, predictors=predictors)
                for config_name, sq_size, predictors in spec.identities]
    # Shared-only regeneration: any policy drives the shared structures
    # identically; a base policy is the cheapest stand-in.
    from repro.lsu.policies import SQPolicy

    return [SQPolicy(sq_size=spec.settings.sq_size)]


def _load_boundary(spec: ShardJobSpec, store: CheckpointStore,
                   position: int) -> Optional[BoundaryState]:
    """Load and stitch-validate a boundary handoff (``None`` when absent,
    corrupt, or inconsistent with this chain — all handled by fallback)."""
    state = store.get(boundary_key(spec.workload, spec.settings,
                                   spec.identities, position))
    if (isinstance(state, BoundaryState)
            and state.position == position
            and len(state.policies) == max(1, len(spec.identities))
            and state.shared.instructions_warmed == position):
        return state
    return None


def _await_boundary(spec: ShardJobSpec,
                    store: CheckpointStore) -> Optional[BoundaryState]:
    """Wait for this chunk's handoff, precomposing the chunk meanwhile.

    Trace composition is state-independent, so the wait is productive: the
    worker composes the segments its warm loop is about to read, which
    takes composition — the largest share of the pass — off the sequential
    stitch chain.  Precomposition covers the *whole* chunk and writes
    through the on-disk segment memo (``disk_memo=True``): segments are
    encoded two-plane streams that unpickle far cheaper than they
    recompose, so a segment evicted from the small per-process memo — or
    needed by another chain's worker — is reloaded, not recomposed.  (The
    old object-list encoding pickled *slower* than recomposition, which
    capped compose-ahead at ~10 in-memory segments per chunk.)
    """
    from repro.workloads.suites import TRACE_SEGMENT_UOPS, build_workload_window

    settings = spec.settings
    segment = TRACE_SEGMENT_UOPS
    next_segment = spec.chunk_start // segment
    last_segment = max(spec.chunk_end - 1, spec.chunk_start) // segment
    deadline = time.monotonic() + _BOUNDARY_WAIT_SECONDS
    while True:
        boundary = _load_boundary(spec, store, spec.chunk_start)
        if boundary is not None:
            return boundary
        if next_segment <= last_segment:
            lo = next_segment * segment
            hi = min(lo + segment, settings.instructions)
            if hi > lo:
                build_workload_window(spec.workload, settings.instructions,
                                      settings.seed, lo, hi, disk_memo=True)
            next_segment += 1
            continue
        if time.monotonic() > deadline:
            return None
        time.sleep(_BOUNDARY_POLL_SECONDS)


def _advance(warmer: FunctionalWarmer, spec: ShardJobSpec, position: int,
             target: int) -> int:
    """Warm ``[position, target)`` segment-aligned.

    ``spec.disk_memo`` routes segment composition through the encoded
    on-disk segment memo on sharded grids (chains share composed segments;
    the compose-ahead of waiting workers is consumed here); a lone
    single-pass job composes in memory, as the original single pass did.
    """
    from repro.workloads.suites import TRACE_SEGMENT_UOPS, build_workload_window

    settings = spec.settings
    while position < target:
        step = min(target,
                   (position // TRACE_SEGMENT_UOPS + 1) * TRACE_SEGMENT_UOPS)
        warmer.warm(build_workload_window(
            spec.workload, settings.instructions, settings.seed,
            position, step, disk_memo=spec.disk_memo))
        position = step
    return position


def _resume_warmer(spec: ShardJobSpec,
                   store: CheckpointStore) -> FunctionalWarmer:
    """A warmer holding the exact replay state at ``spec.chunk_start``.

    Chunk 0 starts cold (fresh policies, the single pass's construction);
    later chunks adopt their stitch handoff.  A handoff that never arrives
    or fails validation walks back to the newest earlier boundary still
    present — or to a cold start — and recomputes the exact prefix
    in-process: slower, never wrong, never silently different.
    """
    settings = spec.settings
    base: Optional[BoundaryState] = None
    if spec.chunk_index > 0:
        base = _await_boundary(spec, store)
        if base is None:
            for position in reversed(spec.boundaries[1:spec.chunk_index]):
                base = _load_boundary(spec, store, position)
                if base is not None:
                    break
    if base is None:
        warmer = FunctionalWarmer(settings.core, policies=_fresh_policies(spec))
        position = 0
    else:
        warmer = FunctionalWarmer(
            settings.core, policies=base.policies,
            state=_assemble(settings, base.shared, base.policies[0]),
            start_index=base.position)
        position = base.position
    _advance(warmer, spec, position, spec.chunk_start)
    return warmer


def run_shard_job(spec: ShardJobSpec) -> int:
    """Execute one stitched chunk job; returns snapshot points written.

    Resumes the chain's replay at ``chunk_start``, emits the snapshots of
    the intervals this chunk owns (shared + window memo when
    ``write_shared``, one policy snapshot per group identity), and — unless
    this is the chain's last chunk — warms through to ``chunk_end`` and
    exports the next handoff.
    """
    store = CheckpointStore(spec.directory)
    settings = spec.settings
    plan = settings.sampling
    if plan is None:
        raise ValueError("shard spec has no sampling plan")
    windows = plan.intervals(settings.instructions)
    mine = [window for window in windows
            if spec.chunk_start <= window.detailed_start < spec.chunk_end
            or (spec.last and window.detailed_start == spec.chunk_end)]

    warmer = _resume_warmer(spec, store)
    position = spec.chunk_start
    for window in mine:
        position = _advance(warmer, spec, position, window.detailed_start)
        if spec.write_shared:
            store.put(shared_key(spec.workload, settings, window.index),
                      _shared_snapshot(warmer.state))
            # Memoise the interval's detailed window too (it is tiny next
            # to the segments it straddles, and every configuration's
            # interval job re-reads it).
            store.put(window_key(spec.workload, settings, window.index),
                      interval_window_uops(spec.workload, settings, window,
                                           disk_memo=False))
        for identity, policy in zip(spec.identities, warmer.policies):
            store.put(policy_key(spec.workload, settings, identity,
                                 window.index), policy)
    if not spec.last:
        position = _advance(warmer, spec, position, spec.chunk_end)
        store.put(boundary_key(spec.workload, settings, spec.identities,
                               spec.chunk_end),
                  BoundaryState(shared=_shared_snapshot(warmer.state),
                                policies=list(warmer.policies),
                                position=spec.chunk_end))
    return len(mine)


def execute_generation(store: CheckpointStore,
                       requests: Sequence[CheckpointJobSpec],
                       jobs: int = 1) -> Dict[str, int]:
    """Run the generation stage for ``requests``, sharded over ``jobs``.

    Plans the (chunk x policy-group) shard grid and fans it out through
    the execution-backend seam (:func:`repro.exec.dispatch.dispatch`),
    with each chunk's handoff producer expressed as an **explicit job
    dependency** (``chain[k-1] -> chain[k]``) rather than relying on
    pool-FIFO dispatch order: the supervised pool dispatch-gates (a
    consumer may run alongside its producer and compose ahead while
    waiting in-worker), the local cluster completion-gates (a ticket is
    spooled only once the handoff is already published), and the serial
    reference runs the chunk-major plan order — every backend preserves
    the deadlock-freedom invariant.  A crashed or hung shard job is
    retried — shard jobs are idempotent folds, and consumers of a retried
    producer's handoff either keep waiting within their bounded window or
    walk back and recompute the prefix.  Afterwards the transient
    boundary handoffs are discarded — once stitched they are dead weight,
    and sweeping them keeps CI-persisted stores lean.  Returns the shard
    counters for the engine's ``last_run_stats``.
    """
    from repro.exec.backend import DispatchJob, resolve_backend
    from repro.exec.dispatch import dispatch

    shard_jobs, stats = plan_shard_jobs(store, requests, workers=jobs)
    if shard_jobs:
        workers = min(jobs, len(shard_jobs))
        position_of = {(job.chain, job.chunk_index): position
                       for position, job in enumerate(shard_jobs)}
        dispatch_jobs = [
            DispatchJob(
                index=position, payload=job,
                label=f"{job.workload}:chunk{job.chunk_index}",
                deps=((position_of[(job.chain, job.chunk_index - 1)],)
                      if job.chunk_index > 0 else ()))
            for position, job in enumerate(shard_jobs)]
        dispatch(resolve_backend(workers), run_shard_job, dispatch_jobs,
                 scope="shard", chunksize=1)
    for job in shard_jobs:
        if not job.last:
            store.discard(boundary_key(job.workload, job.settings,
                                       job.identities, job.chunk_end))
    return stats


# ------------------------------------------------------------------ loading --

def load_interval_window(spec, window):
    """The detailed-window micro-ops of one checkpointed interval.

    Served from the store's window memo when possible; a missing or
    corrupt blob falls back to composing the window from its segments
    (bit-identical by construction) and repairs the store entry.
    """
    store = CheckpointStore(spec.checkpoint_dir)
    key = window_key(spec.workload, spec.settings, spec.interval_index)
    uops = store.get(key)
    if uops is not None:
        return uops
    # Compose without the (environment-located) segment memo: the repaired
    # window blob below lands in *this* spec's store, keeping explicitly
    # isolated runs from writing anywhere else.
    uops = interval_window_uops(spec.workload, spec.settings, window,
                                disk_memo=False)
    store.put(key, uops)
    return uops


def load_interval_state(spec, window) -> FunctionalState:
    """The warmed machine state at ``window.detailed_start`` for one interval.

    Loads the shared + policy snapshots of a checkpointed
    :class:`~repro.exec.jobs.IntervalJobSpec` and assembles them into a
    :class:`~repro.sampling.functional.FunctionalState`.  A missing,
    truncated, or otherwise unreadable snapshot never fails the job and
    never degrades its accuracy: the exact full-history state is recomputed
    in-process (a functional replay of ``[0, detailed_start)``) and the
    store entries are repaired, keeping serial/parallel/cached runs
    bit-identical whatever the store's condition.
    """
    from repro.harness.runner import make_policy
    from repro.workloads.suites import TRACE_SEGMENT_UOPS, build_workload_window

    store = CheckpointStore(spec.checkpoint_dir)
    settings = spec.settings
    identity = (spec.config_name, settings.sq_size, spec.predictors)
    skey = shared_key(spec.workload, settings, spec.interval_index)
    pkey = policy_key(spec.workload, settings, identity, spec.interval_index)
    shared = store.get(skey)
    policy = store.get(pkey)
    if isinstance(shared, SharedWarmState) and policy is not None:
        return _assemble(settings, shared, policy)

    # Exact in-process fallback + store repair.
    warmer = FunctionalWarmer(
        settings.core,
        make_policy(spec.config_name, sq_size=settings.sq_size,
                    predictors=spec.predictors))
    position = 0
    while position < window.detailed_start:
        chunk_end = min(window.detailed_start, position + TRACE_SEGMENT_UOPS)
        warmer.warm(build_workload_window(
            spec.workload, settings.instructions, settings.seed,
            position, chunk_end, disk_memo=False))
        position = chunk_end
    state = warmer.export_state()
    store.put(skey, _shared_snapshot(state))
    store.put(pkey, state.policy)
    return state

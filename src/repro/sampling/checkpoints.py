"""Checkpointed functional warming: one O(N) pass per workload, shared on disk.

Bounded functional warming (PR 2) keeps sampled runs ``O(sampled)`` but
cannot reproduce machine history older than its horizon, which leaves a
recorded lukewarm CPI bias on cache-heavy workloads at paper-scale counts.
This module removes that bias at amortised cost: a **single full-trace
functional pass per workload** serialises the warmed machine state at every
interval start into a content-addressed on-disk **checkpoint store**, and
every interval job of every configuration in a sweep then *loads* its
snapshot (via :meth:`~repro.pipeline.core.OutOfOrderCore.import_state`)
instead of re-warming.  Because snapshots carry full history, the remaining
error is detailed-warmup-only — the faithful SMARTS configuration — while
the O(N) replay is paid once per workload rather than once per
``(configuration, interval)``.

Storage layout (one pickle per entry, exactly like the result cache):

* **shared snapshots** — branch predictor/BTB/RAS, caches/TLB, memory
  image, SSN counters, and the oracle last-writer map are identical for
  every store-queue configuration, so they are stored once per
  ``(workload, plan, core config, interval)``.
* **policy snapshots** — the per-configuration predictor state (SVW tables,
  FSP/SAT, store sets, DDP) is stored per ``(configuration, sq_size,
  predictor overrides)`` on top of the shared key.  One
  :class:`~repro.sampling.functional.FunctionalWarmer` pass warms *all*
  missing configurations simultaneously (the shared structures update once
  per micro-op).
* **trace windows** — the same store memoises each interval's composed
  detailed-window micro-ops (written during the generation pass, tiny next
  to the segments they straddle), so checkpointed interval jobs stop
  re-emitting trace content entirely; whole 16384-uop segments can also be
  memoised by explicit opt-in (``build_workload_window(...,
  disk_memo=True)`` in :mod:`repro.workloads.suites`).

Keys cover the trace identity, the sampling plan, the core configuration,
and SHA-256 fingerprints of the workload-generator and simulator sources —
editing a simulator source or changing the plan invalidates every snapshot
automatically, so restoring a stale store (e.g. from a CI cache) is always
safe.  Corrupt or truncated snapshot files are repaired in place: the
affected interval recomputes the exact same full-history state in-process
(never a silently-lukewarm result, never a crash).

Environment knobs::

    REPRO_CHECKPOINTS=0       # disable (sampled runs fall back to bounded
                              # functional warming, the PR 2 behaviour)
    REPRO_CHECKPOINT_DIR=...  # store location, default .repro-checkpoints/
                              # (safe to delete at any time)

``ExperimentSettings.checkpoints`` overrides the environment per run
(``None`` means "follow ``REPRO_CHECKPOINTS``").
"""

from __future__ import annotations

import json
import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exec import fingerprint as _fingerprint
from repro.exec.cache import ResultCache, _canonical
from repro.sampling.functional import FunctionalState, FunctionalWarmer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.predictors import PredictorSuiteConfig
    from repro.harness.runner import ExperimentSettings

#: Bumped when the snapshot payload layout changes incompatibly.
CHECKPOINT_SCHEMA_VERSION = 1

#: Default store directory (relative to the current working directory).
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

#: A policy identity: (configuration name, SQ size, predictor overrides).
PolicyIdentity = Tuple[str, int, Optional["PredictorSuiteConfig"]]


def checkpoints_enabled() -> bool:
    """Whether checkpointed warming is enabled by the environment."""
    return os.environ.get("REPRO_CHECKPOINTS", "1").strip() != "0"


def resolve_checkpointed(settings) -> bool:
    """Whether a sampled run with ``settings`` uses checkpointed warming.

    ``settings.checkpoints`` wins when not ``None``; otherwise the
    ``REPRO_CHECKPOINTS`` environment default applies.  Never true for
    non-sampled settings.
    """
    if getattr(settings, "sampling", None) is None:
        return False
    explicit = getattr(settings, "checkpoints", None)
    if explicit is None:
        return checkpoints_enabled()
    return bool(explicit)


class CheckpointStore(ResultCache):
    """Content-addressed snapshot/segment store (pickle per entry).

    Reuses the result cache's atomic-write/corruption-tolerant blob
    machinery under its own default directory and environment knob.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        super().__init__(directory
                         or os.environ.get("REPRO_CHECKPOINT_DIR")
                         or DEFAULT_CHECKPOINT_DIR)

    def contains(self, key: str) -> bool:
        """Cheap existence check (no deserialisation; corruption is only
        discovered — and repaired — at load time)."""
        return self._path(key).exists()


# --------------------------------------------------------------------- keys --

def _digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def _shared_payload(workload: str, settings: "ExperimentSettings") -> dict:
    """The configuration-independent part of every snapshot key."""
    plan = _canonical(settings.sampling)
    if isinstance(plan, dict):
        # Snapshots cover [0, detailed_start) and windows
        # [detailed_start, measure_end + overrun): neither depends on the
        # bounded-warming horizon, so toggling that knob (e.g. to compare
        # the bounded mode) must not invalidate the store.
        plan.pop("functional_warmup", None)
    return {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "workload": workload,
        "instructions": settings.instructions,
        "seed": settings.seed,
        "plan": plan,
        "core": _canonical(settings.core),
        "trace_sources": _fingerprint.workload_fingerprint(),
        "simulator_sources": _fingerprint.simulator_fingerprint(),
    }


def shared_key(workload: str, settings: "ExperimentSettings",
               interval_index: int) -> str:
    """Key of the shared (configuration-independent) snapshot of one interval."""
    payload = _shared_payload(workload, settings)
    payload["kind"] = "functional-shared"
    payload["interval"] = interval_index
    return _digest(payload)


def policy_key(workload: str, settings: "ExperimentSettings",
               identity: PolicyIdentity, interval_index: int) -> str:
    """Key of one configuration's policy snapshot of one interval."""
    config_name, sq_size, predictors = identity
    payload = _shared_payload(workload, settings)
    payload["kind"] = "functional-policy"
    payload["interval"] = interval_index
    payload["config"] = config_name
    payload["sq_size"] = sq_size
    payload["predictors"] = _canonical(predictors)
    return _digest(payload)


def segment_key(name: str, seed: int, index: int, length: int) -> str:
    """Key of one composed trace segment (workload sources fingerprinted)."""
    return _digest({
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "kind": "trace-segment",
        "workload": name,
        "seed": seed,
        "segment": index,
        "length": length,
        "trace_sources": _fingerprint.workload_fingerprint(),
    })


def window_key(workload: str, settings: "ExperimentSettings",
               interval_index: int) -> str:
    """Key of one interval's composed detailed-window micro-ops.

    A checkpointed interval simulates only ``[detailed_start, measure_end +
    overrun)`` — a small fraction of a 16384-uop segment — so the
    generation pass memoises exactly that slice; interval jobs then load a
    few thousand micro-ops instead of composing (or unpickling) every
    overlapping segment.  This is the hot-loop fix for the window
    regeneration cost that dominated interval jobs.
    """
    payload = _shared_payload(workload, settings)
    payload["kind"] = "trace-window"
    payload["interval"] = interval_index
    return _digest(payload)


def segment_store() -> Optional[CheckpointStore]:
    """The store used for the on-disk trace-segment memo, or ``None`` when
    checkpointing is disabled by the environment."""
    if not checkpoints_enabled():
        return None
    return CheckpointStore()


# ---------------------------------------------------------------- snapshots --

@dataclass
class SharedWarmState:
    """The configuration-independent half of a functional snapshot."""

    branch_unit: object
    hierarchy: object
    memory: object
    ssn_alloc: object
    last_writer: Dict[int, Tuple[int, int, int]]
    instructions_warmed: int


def _shared_snapshot(state: FunctionalState) -> SharedWarmState:
    return SharedWarmState(
        branch_unit=state.branch_unit,
        hierarchy=state.hierarchy,
        memory=state.memory,
        ssn_alloc=state.ssn_alloc,
        last_writer=state.last_writer,
        instructions_warmed=state.instructions_warmed,
    )


def _assemble(settings: "ExperimentSettings", shared: SharedWarmState,
              policy) -> FunctionalState:
    return FunctionalState(
        config=settings.core,
        branch_unit=shared.branch_unit,
        hierarchy=shared.hierarchy,
        memory=shared.memory,
        ssn_alloc=shared.ssn_alloc,
        policy=policy,
        last_writer=shared.last_writer,
        instructions_warmed=shared.instructions_warmed,
    )


# --------------------------------------------------------------- generation --

@dataclass(frozen=True)
class CheckpointJobSpec:
    """One checkpoint-generation pass, described by value (pool-friendly).

    ``identities`` names the policy snapshots to produce (may be empty when
    only the shared snapshots are missing); ``write_shared`` asks for the
    shared snapshots too.  The pass always replays the full warming prefix
    once, warming every listed policy simultaneously.
    """

    workload: str
    settings: "ExperimentSettings"
    identities: Tuple[PolicyIdentity, ...]
    write_shared: bool
    directory: str


def _identity_token(identity: PolicyIdentity) -> str:
    config_name, sq_size, predictors = identity
    return json.dumps({"config": config_name, "sq_size": sq_size,
                       "predictors": _canonical(predictors)},
                      sort_keys=True, default=repr)


def plan_generation(store: CheckpointStore, interval_specs: Sequence,
                    ) -> Tuple[List[CheckpointJobSpec], int]:
    """Work out which generation passes a set of interval jobs still needs.

    ``interval_specs`` are (typically cache-missed) checkpointed
    :class:`~repro.exec.jobs.IntervalJobSpec`; they are grouped by shared
    identity (workload, trace length, seed, plan, core configuration), and
    each group is probed for missing shared/policy snapshots across *all*
    intervals of its plan.  Returns ``(requests, total_identities)`` where
    ``total_identities`` counts every (group, configuration) pair seen —
    ``total_identities - sum(len(r.identities) for r in requests)`` is the
    number whose *policy* snapshots are already present.  A group whose
    policy snapshots all hit but whose shared snapshots are damaged still
    yields a request (``write_shared=True``, empty ``identities``): such a
    pass regenerates shared state only, so "no work done" is ``requests ==
    []`` (the engine's ``checkpoint_passes`` stat), not merely "zero
    generated identities".
    """
    groups: Dict[str, dict] = {}
    for spec in interval_specs:
        payload = _shared_payload(spec.workload, spec.settings)
        token = json.dumps(payload, sort_keys=True, default=repr)
        group = groups.setdefault(token, {
            "workload": spec.workload, "settings": spec.settings,
            "identities": {},
        })
        identity = (spec.config_name, spec.settings.sq_size, spec.predictors)
        group["identities"].setdefault(_identity_token(identity), identity)

    requests: List[CheckpointJobSpec] = []
    total_identities = 0
    directory = str(store.directory)
    for group in groups.values():
        workload = group["workload"]
        settings = group["settings"]
        count = settings.sampling.num_intervals(settings.instructions)
        identities = list(group["identities"].values())
        total_identities += len(identities)
        write_shared = any(
            not store.contains(shared_key(workload, settings, i))
            for i in range(count))
        missing = [identity for identity in identities
                   if any(not store.contains(policy_key(workload, settings,
                                                        identity, i))
                          for i in range(count))]
        if write_shared or missing:
            requests.append(CheckpointJobSpec(
                workload=workload, settings=settings,
                identities=tuple(missing), write_shared=write_shared,
                directory=directory))
    return requests, total_identities


def generate_checkpoints(store: CheckpointStore, workload: str,
                         settings: "ExperimentSettings",
                         identities: Sequence[PolicyIdentity],
                         write_shared: bool = True) -> int:
    """One full functional pass: snapshot every interval start into ``store``.

    Warms all ``identities`` simultaneously (plus the shared structures) and
    writes one shared snapshot (when ``write_shared``) and one policy
    snapshot per identity at each interval's detailed-warmup start.  Returns
    the number of snapshot points written.
    """
    from repro.harness.runner import make_policy
    from repro.workloads.suites import TRACE_SEGMENT_UOPS, build_workload_window

    plan = settings.sampling
    if plan is None:
        raise ValueError("settings carry no sampling plan")
    windows = plan.intervals(settings.instructions)
    policies = [make_policy(config_name, sq_size=sq_size, predictors=predictors)
                for config_name, sq_size, predictors in identities]
    if policies:
        warm_policies = policies
    else:
        # Shared-only regeneration: any policy drives the shared structures
        # identically; a base policy is the cheapest stand-in.
        from repro.lsu.policies import SQPolicy

        warm_policies = [SQPolicy(sq_size=settings.sq_size)]
    warmer = FunctionalWarmer(settings.core, policies=warm_policies)
    position = 0
    for window in windows:
        target = window.detailed_start
        while position < target:
            chunk_end = min(target, position + TRACE_SEGMENT_UOPS)
            # The pass streams every segment exactly once; bypass the disk
            # segment memo so a paper-length generation cannot flood the
            # store with segments no interval job will ever touch.
            warmer.warm(build_workload_window(
                workload, settings.instructions, settings.seed,
                position, chunk_end, disk_memo=False))
            position = chunk_end
        if write_shared:
            store.put(shared_key(workload, settings, window.index),
                      _shared_snapshot(warmer.state))
            # Memoise the interval's detailed window too (it is tiny next
            # to the segments it straddles, and every configuration's
            # interval job re-reads it).
            store.put(window_key(workload, settings, window.index),
                      interval_window_uops(workload, settings, window,
                                           disk_memo=False))
        for identity, policy in zip(identities, policies):
            store.put(policy_key(workload, settings, identity, window.index),
                      policy)
    return len(windows)


def interval_window_uops(workload: str, settings: "ExperimentSettings",
                         window, disk_memo: bool = False):
    """Compose the micro-ops a checkpointed interval simulates in detail:
    ``[detailed_start, measure_end + overrun)``."""
    from repro.sampling.driver import _overrun
    from repro.workloads.suites import build_workload_window

    stop = min(settings.instructions,
               window.measure_end + _overrun(settings.core))
    return build_workload_window(workload, settings.instructions,
                                 settings.seed, window.detailed_start, stop,
                                 disk_memo=disk_memo)


def run_checkpoint_job(request: CheckpointJobSpec) -> int:
    """Execute one generation request (engine pool workers call this)."""
    store = CheckpointStore(request.directory)
    return generate_checkpoints(store, request.workload, request.settings,
                                request.identities,
                                write_shared=request.write_shared)


# ------------------------------------------------------------------ loading --

def load_interval_window(spec, window):
    """The detailed-window micro-ops of one checkpointed interval.

    Served from the store's window memo when possible; a missing or
    corrupt blob falls back to composing the window from its segments
    (bit-identical by construction) and repairs the store entry.
    """
    store = CheckpointStore(spec.checkpoint_dir)
    key = window_key(spec.workload, spec.settings, spec.interval_index)
    uops = store.get(key)
    if uops is not None:
        return uops
    # Compose without the (environment-located) segment memo: the repaired
    # window blob below lands in *this* spec's store, keeping explicitly
    # isolated runs from writing anywhere else.
    uops = interval_window_uops(spec.workload, spec.settings, window,
                                disk_memo=False)
    store.put(key, uops)
    return uops


def load_interval_state(spec, window) -> FunctionalState:
    """The warmed machine state at ``window.detailed_start`` for one interval.

    Loads the shared + policy snapshots of a checkpointed
    :class:`~repro.exec.jobs.IntervalJobSpec` and assembles them into a
    :class:`~repro.sampling.functional.FunctionalState`.  A missing,
    truncated, or otherwise unreadable snapshot never fails the job and
    never degrades its accuracy: the exact full-history state is recomputed
    in-process (a functional replay of ``[0, detailed_start)``) and the
    store entries are repaired, keeping serial/parallel/cached runs
    bit-identical whatever the store's condition.
    """
    from repro.harness.runner import make_policy
    from repro.workloads.suites import TRACE_SEGMENT_UOPS, build_workload_window

    store = CheckpointStore(spec.checkpoint_dir)
    settings = spec.settings
    identity = (spec.config_name, settings.sq_size, spec.predictors)
    skey = shared_key(spec.workload, settings, spec.interval_index)
    pkey = policy_key(spec.workload, settings, identity, spec.interval_index)
    shared = store.get(skey)
    policy = store.get(pkey)
    if isinstance(shared, SharedWarmState) and policy is not None:
        return _assemble(settings, shared, policy)

    # Exact in-process fallback + store repair.
    warmer = FunctionalWarmer(
        settings.core,
        make_policy(spec.config_name, sq_size=settings.sq_size,
                    predictors=spec.predictors))
    position = 0
    while position < window.detailed_start:
        chunk_end = min(window.detailed_start, position + TRACE_SEGMENT_UOPS)
        warmer.warm(build_workload_window(
            spec.workload, settings.instructions, settings.seed,
            position, chunk_end, disk_memo=False))
        position = chunk_end
    state = warmer.export_state()
    store.put(skey, _shared_snapshot(state))
    store.put(pkey, state.policy)
    return state

"""The sampled-simulation driver.

Splits a sampled ``(workload, configuration)`` run into per-interval jobs,
executes each interval (functional warming -> detailed warm-up -> measured
region), and merges the interval measurements into one
:class:`~repro.sampling.result.SampledSimulationResult`.

Three entry points, all producing bit-identical results:

* :func:`run_interval_job` — one :class:`~repro.exec.jobs.IntervalJobSpec`;
  this is what runs inside :class:`~repro.exec.engine.ExperimentEngine`
  pool workers and what the result cache stores, one entry per interval.
* :func:`run_sampled_workload` — a whole sampled run, serially, by
  workload *name* (regenerating each interval's trace window; the full
  trace is never materialised).
* :func:`run_sampled_trace` — a whole sampled run over an already
  materialised :class:`~repro.isa.trace.DynamicTrace` (the
  :func:`repro.harness.runner.run_workload` path; also used by tests with
  custom traces).

Imports from :mod:`repro.harness` are deferred inside functions: the
harness imports the engine, the engine expands sampled specs through this
module, and the module-level import set must stay acyclic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.exec.jobs import IntervalJobSpec, JobSpec
from repro.isa.plane import EncodedOps
from repro.isa.trace import DynamicTrace
from repro.isa.uop import MicroOp
from repro.pipeline.vector import make_core
from repro.sampling.functional import FunctionalWarmer
from repro.sampling.plan import IntervalWindow
from repro.sampling.result import (
    IntervalMeasurement,
    SampledResult,
    SampledSimulationResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.predictors import PredictorSuiteConfig
    from repro.harness.runner import ExperimentSettings, RunRecord


def expand_sampled_spec(spec: JobSpec, checkpointed: bool = False,
                        checkpoint_dir: Optional[str] = None
                        ) -> List[IntervalJobSpec]:
    """One :class:`IntervalJobSpec` per interval of a sampled base spec.

    ``checkpointed`` stamps the intervals to load full-history snapshots
    from the checkpoint store at ``checkpoint_dir`` (``None`` = environment
    default location) instead of bounded re-warming; callers resolve the
    flag first (:func:`repro.sampling.checkpoints.resolve_checkpointed`).
    """
    plan = spec.settings.sampling
    if plan is None:
        raise ValueError("spec has no sampling plan")
    count = plan.num_intervals(spec.settings.instructions)
    return [IntervalJobSpec(spec.workload, spec.config_name, spec.settings,
                            index, spec.predictors,
                            checkpointed=checkpointed,
                            checkpoint_dir=checkpoint_dir)
            for index in range(count)]


def _overrun(config) -> int:
    """Extra trace instructions appended past a measured interval.

    The measured region stops at its U-th commit *mid-steady-state* (see
    ``stats_measure_instructions`` in
    :meth:`~repro.pipeline.core.OutOfOrderCore.run`); the overrun keeps the
    fetch stream busy until then so the interval is never charged for a
    pipeline drain.  One ROB of younger instructions (plus a dispatch
    margin) is sufficient by construction.
    """
    return config.rob_size + 4 * config.rename_width


def _simulate_window(uops: Sequence[MicroOp], window: IntervalWindow,
                     workload: str, config_name: str,
                     settings: "ExperimentSettings",
                     predictors: Optional["PredictorSuiteConfig"],
                     state) -> "RunRecord":
    """Detailed warm-up + measured region over an already warmed machine.

    ``uops`` covers ``[window.detailed_start, window.measure_end)`` plus up
    to :func:`_overrun` trailing instructions (encoded on the hot paths; a
    plain micro-op sequence takes the core's object path, bit-identically);
    ``state`` is the warmed machine state at ``window.detailed_start``
    (``None`` = cold start).
    """
    from repro.harness.runner import RunRecord, make_policy

    config = settings.core
    if state is not None:
        core = make_core(config, state.policy)
        core.import_state(state)
    else:
        core = make_core(config, make_policy(config_name,
                                              sq_size=settings.sq_size,
                                              predictors=predictors))
    if isinstance(uops, EncodedOps):
        trace = uops.with_name(workload)
    else:
        trace = DynamicTrace(name=workload, uops=list(uops))
    result = core.run(
        trace, warm_memory=False,
        stats_warmup_instructions=window.measure_start - window.detailed_start,
        stats_measure_instructions=window.measure_length)
    return RunRecord(workload=workload, config_name=config_name, result=result)


def _run_interval(uops: Sequence[MicroOp], window: IntervalWindow,
                  workload: str, config_name: str,
                  settings: "ExperimentSettings",
                  predictors: Optional["PredictorSuiteConfig"]) -> "RunRecord":
    """Bounded-warming interval: functionally warm, then simulate.

    ``uops`` covers ``[window.functional_start, window.measure_end)`` plus
    up to :func:`_overrun` trailing instructions.
    """
    from repro.harness.runner import make_policy

    config = settings.core
    policy = make_policy(config_name, sq_size=settings.sq_size,
                         predictors=predictors)
    warm_len = window.functional_length
    if warm_len:
        warmer = FunctionalWarmer(config, policy,
                                  start_index=window.functional_start)
        warmer.warm(uops[:warm_len])
        state = warmer.export_state()
    else:
        state = None
    return _simulate_window(uops[warm_len:], window, workload, config_name,
                            settings, predictors, state)


def run_interval_job(spec: IntervalJobSpec) -> "RunRecord":
    """Execute one interval job, regenerating its trace window by value.

    Checkpointed specs load (or exactly recompute, see
    :func:`repro.sampling.checkpoints.load_interval_state`) the interval's
    full-history snapshot and only regenerate the detailed window; bounded
    specs regenerate the functional-warming window too and warm in-process.
    """
    from repro.workloads.suites import build_workload_window

    settings = spec.settings
    plan = settings.sampling
    if plan is None:
        raise ValueError("interval spec has no sampling plan")
    window = plan.intervals(settings.instructions)[spec.interval_index]
    stop = min(settings.instructions,
               window.measure_end + _overrun(settings.core))
    if getattr(spec, "checkpointed", False):
        from repro.sampling.checkpoints import (
            load_interval_state,
            load_interval_window,
        )

        state = load_interval_state(spec, window)
        uops = load_interval_window(spec, window)
        return _simulate_window(uops, window, spec.workload, spec.config_name,
                                settings, spec.predictors, state)
    # Bounded warming is the no-store fast path: compose without the disk
    # segment memo (a one-shot window write-through costs more than it can
    # ever repay — checkpointed jobs get their windows from the store's
    # per-interval window memo instead).
    uops = build_workload_window(spec.workload, settings.instructions,
                                 settings.seed, window.functional_start, stop,
                                 disk_memo=False)
    return _run_interval(uops, window, spec.workload, spec.config_name,
                         settings, spec.predictors)


def merge_interval_records(spec: JobSpec,
                           records: Sequence["RunRecord"]) -> "RunRecord":
    """Deterministically merge per-interval records into one sampled record.

    ``records`` must be in interval order (the engine preserves input
    order, so this holds however the intervals were executed or cached).
    """
    from repro.harness.runner import RunRecord

    settings = spec.settings
    plan = settings.sampling
    windows = plan.intervals(settings.instructions)
    if len(records) != len(windows):
        raise ValueError(
            f"expected {len(windows)} interval records, got {len(records)}")
    measurements = [
        IntervalMeasurement(
            index=window.index,
            measure_start=window.measure_start,
            instructions=record.result.stats.committed,
            cycles=record.result.stats.cycles,
            stats=record.result.stats,
            extra=dict(record.result.extra),
        )
        for window, record in zip(windows, records)
    ]
    sampled = SampledResult(workload=spec.workload,
                            config_name=spec.config_name,
                            plan=plan,
                            total_instructions=settings.instructions,
                            intervals=measurements)
    extra = sampled.merged_extra()
    extra.update({
        "sampled_intervals": float(sampled.num_intervals),
        "sampled_cpi_mean": sampled.cpi_mean,
        "sampled_cpi_ci_halfwidth": sampled.cpi_ci_halfwidth,
        "sampled_estimated_total_cycles": sampled.estimated_total_cycles,
    })
    result = SampledSimulationResult(
        workload=spec.workload,
        policy=records[0].result.policy,
        stats=sampled.merged_stats(),
        config=settings.core,
        extra=extra,
        sampled=sampled,
    )
    return RunRecord(workload=spec.workload, config_name=spec.config_name,
                     result=result)


def run_sampled_workload(workload: str, config_name: str,
                         settings: "ExperimentSettings",
                         predictors: Optional["PredictorSuiteConfig"] = None,
                         checkpoint_dir: Optional[str] = None
                         ) -> "RunRecord":
    """Run a whole sampled simulation serially, by workload name.

    Interval trace windows are regenerated on demand; the full trace is
    never materialised, so this scales to paper-length (10M-instruction)
    runs in bounded memory.  Bit-identical to the engine's fanned-out
    execution of the same spec, including the checkpointed-warming
    resolution: when ``settings.checkpoints`` (or ``REPRO_CHECKPOINTS``)
    enables checkpointing, the store at ``checkpoint_dir`` (``None`` =
    environment default) is populated with one functional pass and every
    interval starts from its full-history snapshot.
    """
    from repro.sampling.checkpoints import (
        CheckpointStore,
        plan_generation,
        resolve_checkpointed,
        run_checkpoint_job,
    )

    spec = JobSpec(workload, config_name, settings, predictors)
    checkpointed = resolve_checkpointed(settings)
    if checkpointed:
        store = CheckpointStore(checkpoint_dir)
        interval_specs = expand_sampled_spec(
            spec, checkpointed=True, checkpoint_dir=str(store.directory))
        requests, _total = plan_generation(store, interval_specs)
        for request in requests:
            run_checkpoint_job(request)
    else:
        interval_specs = expand_sampled_spec(spec)
    records = [run_interval_job(interval_spec)
               for interval_spec in interval_specs]
    return merge_interval_records(spec, records)


def run_sampled_trace(trace: DynamicTrace, config_name: str,
                      settings: "ExperimentSettings",
                      predictors: Optional["PredictorSuiteConfig"] = None
                      ) -> "RunRecord":
    """Run a whole sampled simulation over a materialised trace.

    The whole trace is sampled — exactly the region the full-detail path
    simulates for the same trace — so for generator-built traces (where
    ``len(trace) == settings.instructions``) this produces the same record
    as :func:`run_sampled_workload`, and for custom traces the sampled
    estimate targets the same population as the detailed run it
    approximates.

    Checkpointed warming (resolved exactly as in
    :func:`run_sampled_workload`) is implemented in memory here: one
    cumulative functional pass over the materialised trace is snapshotted
    (serialised, matching the on-disk store's copy semantics bit for bit) at
    each interval's detailed-warmup start, so the record equals the
    store-backed paths without touching the store — custom traces are not
    content-addressable by ``(name, instructions, seed)``.
    """
    from repro.sampling.checkpoints import resolve_checkpointed

    plan = settings.sampling
    if plan is None:
        raise ValueError("settings carry no sampling plan")
    total = len(trace)
    windows = plan.intervals(total)
    spec = JobSpec(trace.name, config_name, settings, predictors)
    records = []
    if resolve_checkpointed(settings):
        import pickle

        from repro.harness.runner import make_policy

        warmer = FunctionalWarmer(
            settings.core, make_policy(config_name, sq_size=settings.sq_size,
                                       predictors=predictors))
        position = 0
        for window in windows:
            warmer.warm(trace[position:window.detailed_start])
            position = window.detailed_start
            # Pickle round trip = the frozen-copy semantics of the store.
            state = pickle.loads(pickle.dumps(warmer.state))
            stop = min(total, window.measure_end + _overrun(settings.core))
            records.append(_simulate_window(
                trace[window.detailed_start:stop], window, trace.name,
                config_name, settings, predictors, state))
    else:
        for window in windows:
            stop = min(total, window.measure_end + _overrun(settings.core))
            uops = trace[window.functional_start:stop]
            records.append(_run_interval(uops, window, trace.name, config_name,
                                         settings, predictors))
    if total != settings.instructions:
        import dataclasses

        spec = dataclasses.replace(
            spec, settings=dataclasses.replace(settings, instructions=total))
    return merge_interval_records(spec, records)

"""Functional warming: fast in-order replay that trains long-lived state.

The cycle-accurate core spends most of its time in per-cycle machinery
(dispatch, wakeup heaps, completion queues).  For sampling, what matters
between measurement intervals is only the **long-lived microarchitectural
state**: branch direction tables, BTB, RAS, cache and TLB contents, the SVW
tables (SSBF/SPCT), the architectural memory image, the SSN counters, and
the PC-indexed dependence predictors (FSP/SAT, store sets, DDP).
:class:`FunctionalWarmer` retires a trace window in program order and
updates exactly that state, skipping the out-of-order timing model — an
order-of-magnitude cheaper per-instruction path.

Two deliberate approximations (shared by all configurations, so relative
comparisons are preserved):

* There is no in-flight window, so every store commits instantly
  (``SSNren == SSNcmt``).  A load is treated as *would-forward* when its
  most recent writer is within ``sq_size`` committed stores **and** within
  ``rob_size`` dynamic instructions — the store would plausibly still have
  been in the SQ of the detailed machine.  Policies use this signal in
  their :meth:`~repro.lsu.policies.SQPolicy.warm_load` hook to train the
  FSP / store sets the way detailed-mode violations and forwardings would
  have.
* Caches and the branch predictor are updated in program order rather than
  in (out-of-order) execution order; the SVW tables, memory image, and SSN
  counters are exact, because in the detailed core they are updated at
  commit, which *is* program order.

The warmed state is handed to a detailed core via
:meth:`~repro.pipeline.core.OutOfOrderCore.import_state`, after which a
short detailed warm-up (:class:`~repro.sampling.plan.SamplingPlan`'s *W*)
lets the short-lived state (window occupancy, in-flight dependences, DDP
counters) settle before measurement begins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.uop import MicroOp
from repro.lsu.policies import SQPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.image import MemoryImage
from repro.core.ssn import SSNAllocator
from repro.pipeline.config import CoreConfig


@dataclass
class FunctionalState:
    """The long-lived machine state produced by a functional replay.

    ``last_writer`` maps byte address to ``(ssn, store_pc, instr_index)`` of
    the youngest store writing that byte (the exact analogue of the detailed
    core's oracle last-writer tracker).
    """

    config: CoreConfig
    branch_unit: BranchUnit
    hierarchy: MemoryHierarchy
    memory: MemoryImage
    ssn_alloc: SSNAllocator
    policy: SQPolicy
    last_writer: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    instructions_warmed: int = 0


class FunctionalWarmer:
    """Replays micro-ops in order, updating long-lived state only."""

    def __init__(self, config: CoreConfig, policy: SQPolicy,
                 start_index: int = 0) -> None:
        self.config = config
        self.state = FunctionalState(
            config=config,
            branch_unit=BranchUnit(config.branch_predictor),
            hierarchy=MemoryHierarchy(config.memory),
            memory=MemoryImage(),
            ssn_alloc=SSNAllocator(bits=config.ssn_bits),
            policy=policy,
        )
        #: Dynamic instruction index of the next micro-op (used for the
        #: in-flight-window approximation; offsets into the full trace keep
        #: the distances meaningful when warming starts mid-trace).
        self._index = start_index

    # ------------------------------------------------------------------ warm --

    def warm(self, uops: Sequence[MicroOp]) -> None:
        """Functionally retire ``uops`` in order."""
        state = self.state
        branch_resolve = state.branch_unit.predict_and_resolve
        hierarchy = state.hierarchy
        memory_write = state.memory.write
        ssn_alloc = state.ssn_alloc
        policy = state.policy
        warm_store_renamed = policy.warm_store_renamed
        store_committed = policy.store_committed
        warm_load = policy.warm_load
        last_writer = state.last_writer
        sq_size = policy.sq_size
        window_span = self.config.rob_size
        index = self._index

        for uop in uops:
            if uop.mem is not None:
                mem = uop.mem
                addr = mem.addr
                size = mem.size
                if uop.is_load:
                    hierarchy.load_latency(addr)
                    best = None
                    best_ssn = 0
                    for byte_addr in range(addr, addr + size):
                        entry = last_writer.get(byte_addr)
                        if entry is not None and entry[0] > best_ssn:
                            best_ssn = entry[0]
                            best = entry
                    ssn_cmt = ssn_alloc.ssn_commit
                    if best is not None:
                        would_forward = (ssn_cmt - best_ssn < sq_size
                                         and index - best[2] < window_span)
                        warm_load(uop.pc, addr, size, best_ssn, best[1],
                                  would_forward, ssn_cmt)
                    else:
                        warm_load(uop.pc, addr, size, 0, 0, False, ssn_cmt)
                else:  # store
                    ssn = ssn_alloc.allocate()
                    warm_store_renamed(uop.pc, ssn)
                    memory_write(addr, size, mem.value)
                    ssn_alloc.commit(ssn)
                    store_committed(uop.pc, ssn, addr, size)
                    hierarchy.store_touch(addr)
                    entry = (ssn, uop.pc, index)
                    for byte_addr in range(addr, addr + size):
                        last_writer[byte_addr] = entry
            elif uop.is_branch:
                branch_resolve(uop.pc, uop.is_taken, uop.target,
                               uop.hint_call, uop.hint_return)
            index += 1

        self._index = index
        state.instructions_warmed += len(uops)

    # ---------------------------------------------------------------- export --

    def export_state(self) -> FunctionalState:
        """The warmed state bundle (shared references, not a copy)."""
        return self.state

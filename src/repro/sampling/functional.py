"""Functional warming: fast in-order replay that trains long-lived state.

The cycle-accurate core spends most of its time in per-cycle machinery
(dispatch, wakeup heaps, completion queues).  For sampling, what matters
between measurement intervals is only the **long-lived microarchitectural
state**: branch direction tables, BTB, RAS, cache and TLB contents, the SVW
tables (SSBF/SPCT), the architectural memory image, the SSN counters, and
the PC-indexed dependence predictors (FSP/SAT, store sets, DDP).
:class:`FunctionalWarmer` retires a trace window in program order and
updates exactly that state, skipping the out-of-order timing model — an
order-of-magnitude cheaper per-instruction path.

Two deliberate approximations (shared by all configurations, so relative
comparisons are preserved):

* There is no in-flight window, so every store commits instantly
  (``SSNren == SSNcmt``).  A load is treated as *would-forward* when its
  most recent writer is within ``sq_size`` committed stores **and** within
  ``rob_size`` dynamic instructions — the store would plausibly still have
  been in the SQ of the detailed machine.  Policies use this signal in
  their :meth:`~repro.lsu.policies.SQPolicy.warm_load` hook to train the
  FSP / store sets the way detailed-mode violations and forwardings would
  have.
* Caches and the branch predictor are updated in program order rather than
  in (out-of-order) execution order; the SVW tables, memory image, and SSN
  counters are exact, because in the detailed core they are updated at
  commit, which *is* program order.
* Non-blocking hierarchies (``config.memory.mlp``; built through
  :func:`repro.memory.mlp.build_hierarchy` so the warmed structure matches
  what the detailed core adopts) warm through the inherited *blocking*
  access path: program-order replay has no clock to schedule fills
  against, so the MSHR file stays empty and cache tags warm with
  install-at-miss timing.  The detailed warm-up interval then populates
  the in-flight state, exactly as it settles the other short-lived
  structures.

The warmed state is handed to a detailed core via
:meth:`~repro.pipeline.core.OutOfOrderCore.import_state`, after which a
short detailed warm-up (:class:`~repro.sampling.plan.SamplingPlan`'s *W*)
lets the short-lived state (window occupancy, in-flight dependences, DDP
counters) settle before measurement begins.

**Encoded input** (PR 5): the warm loop consumes two-plane encoded streams
(:class:`~repro.isa.plane.EncodedOps`) natively — static fields come from
the shared plane's arrays, dynamic fields from the stream — and encodes
plain micro-op sequences on entry, so there is exactly one warming fold
whatever the input form.

**Multi-policy warming** (PR 3): everything above except the policy tables is
configuration-independent, so one replay pass can warm several store-queue
policies at once — the branch predictor, caches, memory image, SSN counters,
and last-writer map are updated once per micro-op while the per-policy
``warm_store_renamed``/``store_committed``/``warm_load`` hooks run for every
policy.  This is what lets the checkpoint store
(:mod:`repro.sampling.checkpoints`) amortise a single O(N) functional pass
across every configuration of a sweep.  With a single policy the update
sequence is identical to the original single-policy warmer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.branch_predictor import BranchUnit
from repro.isa.plane import KIND_BRANCH, KIND_LOAD, KIND_STORE, EncodedOps, encode_uops
from repro.isa.uop import MicroOp
from repro.lsu.policies import SQPolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mlp import build_hierarchy
from repro.memory.image import MemoryImage
from repro.core.ssn import SSNAllocator
from repro.pipeline.config import CoreConfig


@dataclass
class FunctionalState:
    """The long-lived machine state produced by a functional replay.

    ``last_writer`` maps byte address to ``(ssn, store_pc, instr_index)`` of
    the youngest store writing that byte (the exact analogue of the detailed
    core's oracle last-writer tracker).
    """

    config: CoreConfig
    branch_unit: BranchUnit
    hierarchy: MemoryHierarchy
    memory: MemoryImage
    ssn_alloc: SSNAllocator
    policy: SQPolicy
    last_writer: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    instructions_warmed: int = 0


class FunctionalWarmer:
    """Replays micro-ops in order, updating long-lived state only.

    ``policy`` names the single policy to warm (the common case).  Passing
    ``policies`` instead warms several policies through one shared replay:
    the shared structures are updated once per micro-op and every policy's
    training hooks run against them (``policy`` then defaults to the first
    entry, which :attr:`state` and :meth:`export_state` expose).

    **Resumption**: passing ``state`` adopts an already-warmed
    :class:`FunctionalState` (e.g. a shard-boundary snapshot from the
    checkpoint store) instead of constructing cold structures, so a replay
    can continue from an arbitrary trace position.  ``start_index`` must
    then be the absolute dynamic-instruction index the adopted state was
    warmed to; because :meth:`warm` is a deterministic fold over the
    micro-op stream, warming ``[0, a)`` then resuming over ``[a, b)`` is
    exactly the single pass over ``[0, b)`` — this is what makes stitched
    sharded checkpoint generation bit-identical to the single-pass scheme
    (:mod:`repro.sampling.checkpoints`).
    """

    def __init__(self, config: CoreConfig, policy: Optional[SQPolicy] = None,
                 start_index: int = 0,
                 policies: Optional[Sequence[SQPolicy]] = None,
                 state: Optional[FunctionalState] = None) -> None:
        if policies is None:
            if policy is None:
                raise ValueError("provide a policy (or a policies sequence)")
            policies = [policy]
        elif policy is not None and (not policies or policies[0] is not policy):
            raise ValueError("pass either policy or policies, not both")
        self.config = config
        self._policies: List[SQPolicy] = list(policies)
        if not self._policies:
            raise ValueError("at least one policy is required")
        if state is not None:
            # Adopt (not copy) the handed-off state; the caller owns it.
            # Multi-policy resumption re-binds ``state.policy`` to the
            # first listed policy so the bundle stays self-consistent.
            state.policy = self._policies[0]
            self.state = state
        else:
            self.state = FunctionalState(
                config=config,
                branch_unit=BranchUnit(config.branch_predictor),
                hierarchy=build_hierarchy(config.memory),
                memory=MemoryImage(),
                ssn_alloc=SSNAllocator(bits=config.ssn_bits),
                policy=self._policies[0],
            )
        #: Dynamic instruction index of the next micro-op (used for the
        #: in-flight-window approximation; offsets into the full trace keep
        #: the distances meaningful when warming starts mid-trace).
        self._index = start_index

    @property
    def policies(self) -> List[SQPolicy]:
        """The policies warmed by this replay (first == ``state.policy``)."""
        return self._policies

    # ------------------------------------------------------------------ warm --

    def warm(self, uops: Union[EncodedOps, Sequence[MicroOp]]) -> None:
        """Functionally retire ``uops`` in order.

        Shared structures (caches, branch tables, memory image, SSN
        counters, last-writer map) are updated once per micro-op; every
        policy's warming hooks run against that shared state, with the
        would-forward window computed per policy (SQ sizes may differ).

        ``uops`` is an :class:`~repro.isa.plane.EncodedOps` stream on the
        hot paths (interval jobs, checkpoint generation); a plain micro-op
        sequence (custom traces) is encoded on entry, so there is exactly
        one warming fold and the two input forms cannot drift.
        """
        if not isinstance(uops, EncodedOps):
            uops = encode_uops(uops)
        state = self.state
        branch_resolve = state.branch_unit.predict_and_resolve
        hierarchy = state.hierarchy
        memory_write = state.memory.write
        ssn_alloc = state.ssn_alloc
        warm_stores = [p.warm_store_renamed for p in self._policies]
        commit_hooks = [p.store_committed for p in self._policies]
        warm_loads = [(p.warm_load, p.sq_size) for p in self._policies]
        last_writer = state.last_writer
        last_writer_get = last_writer.get
        window_span = self.config.rob_size
        index = self._index

        plane = uops.plane
        kind_arr = plane.kind
        pc_arr = plane.pc
        sidx = uops.sidx
        addr_arr = uops.addr
        size_arr = uops.size

        for i, si in enumerate(sidx):
            kind = kind_arr[si]
            if kind == KIND_LOAD:
                pc = pc_arr[si]
                addr = addr_arr[i]
                size = size_arr[i]
                hierarchy.load_latency(addr)
                best = None
                best_ssn = 0
                for byte_addr in range(addr, addr + size):
                    entry = last_writer_get(byte_addr)
                    if entry is not None and entry[0] > best_ssn:
                        best_ssn = entry[0]
                        best = entry
                ssn_cmt = ssn_alloc.ssn_commit
                if best is not None:
                    in_window = index - best[2] < window_span
                    for warm_load, sq_size in warm_loads:
                        would_forward = (in_window
                                         and ssn_cmt - best_ssn < sq_size)
                        warm_load(pc, addr, size, best_ssn, best[1],
                                  would_forward, ssn_cmt)
                else:
                    for warm_load, _sq_size in warm_loads:
                        warm_load(pc, addr, size, 0, 0, False, ssn_cmt)
            elif kind == KIND_STORE:
                pc = pc_arr[si]
                addr = addr_arr[i]
                size = size_arr[i]
                ssn = ssn_alloc.allocate()
                for warm_store_renamed in warm_stores:
                    warm_store_renamed(pc, ssn)
                memory_write(addr, size, uops.value[i])
                ssn_alloc.commit(ssn)
                for store_committed in commit_hooks:
                    store_committed(pc, ssn, addr, size)
                hierarchy.store_touch(addr)
                entry = (ssn, pc, index)
                for byte_addr in range(addr, addr + size):
                    last_writer[byte_addr] = entry
            elif kind == KIND_BRANCH:
                target = uops.target[i]
                branch_resolve(pc_arr[si], uops.taken[i],
                               target if target >= 0 else None,
                               plane.hint_call[si], plane.hint_return[si])
            index += 1

        self._index = index
        state.instructions_warmed += len(sidx)

    # ---------------------------------------------------------------- export --

    def export_state(self) -> FunctionalState:
        """The warmed state bundle (shared references, not a copy).

        For multi-policy warming the bundle carries the *first* policy; the
        checkpoint store persists the other policies' state individually
        (:func:`repro.sampling.checkpoints.generate_checkpoints`) and
        reassembles per-configuration bundles at load time.
        """
        return self.state

"""Sampling plans: SMARTS-style systematic interval sampling.

A :class:`SamplingPlan` describes how a long trace is sampled: every
``period`` instructions one **measurement interval** of ``interval_length``
(*U*) instructions is simulated in full detail, preceded by
``detailed_warmup`` (*W*) instructions of detailed simulation whose
statistics are discarded and ``functional_warmup`` instructions of fast
functional replay that trains the long-lived microarchitectural state
(branch predictor/BTB/RAS, caches/TLB, SVW tables, FSP/SAT/DDP/store sets)
without running the cycle-accurate machinery.  The first interval is placed
at a ``seed``-derived offset inside the first period (systematic sampling
with a random phase, after SMARTS [Wunderlich et al., ISCA'03]).

Per-interval CPI observations are aggregated with a mean and a Student-t
confidence interval (:func:`student_t_two_sided`); see
:mod:`repro.sampling.result`.

This module is dependency-light on purpose: :class:`SamplingPlan` is
embedded in :class:`~repro.harness.runner.ExperimentSettings` and travels
inside job specs and cache keys, so it must not import the harness, the
core, or the execution engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from statistics import NormalDist
from typing import List


def _t_two_sided_cdf(t: float, df: int) -> float:
    """``P(|T| <= t)`` for Student's t with integer ``df``.

    Uses the classical elementary-function series for integer degrees of
    freedom (Abramowitz & Stegun 26.7.3/26.7.4), so it is exact up to
    floating-point rounding — no special functions needed.
    """
    theta = math.atan2(t, math.sqrt(df))
    sin_t = math.sin(theta)
    cos_sq = math.cos(theta) ** 2
    if df % 2 == 1:
        if df == 1:
            return 2.0 * theta / math.pi
        term = math.cos(theta)
        total = term
        for i in range(1, (df - 1) // 2):
            term *= cos_sq * (2 * i) / (2 * i + 1)
            total += term
        return 2.0 / math.pi * (theta + sin_t * total)
    term = 1.0
    total = 1.0
    for i in range(1, df // 2):
        term *= cos_sq * (2 * i - 1) / (2 * i)
        total += term
    return sin_t * total


def student_t_two_sided(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value ``t`` with ``P(|T| <= t) = confidence``.

    The quantile is obtained by bisecting the exact integer-df CDF
    (:func:`_t_two_sided_cdf`), so small samples — the common case for
    sampling plans with a handful of intervals — get correctly sized
    confidence intervals; accuracy is limited only by the bisection
    tolerance (~1e-10).  The normal quantile seeds the bracket.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df == 1:
        return math.tan(math.pi * confidence / 2.0)
    if df == 2:
        return confidence * math.sqrt(2.0 / (1.0 - confidence * confidence))
    hi = max(2.0, 2.0 * NormalDist().inv_cdf((1.0 + confidence) / 2.0))
    while _t_two_sided_cdf(hi, df) < confidence:
        hi *= 2.0
    lo = 0.0
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if _t_two_sided_cdf(mid, df) < confidence:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-10 * max(1.0, hi):
            break
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class IntervalWindow:
    """Instruction-index layout of one sampling interval.

    ``functional_start <= detailed_start <= measure_start < measure_end``;
    the three warm-up boundaries are clamped at the start of the trace for
    early intervals.
    """

    index: int
    functional_start: int
    detailed_start: int
    measure_start: int
    measure_end: int

    @property
    def measure_length(self) -> int:
        return self.measure_end - self.measure_start

    @property
    def detailed_length(self) -> int:
        """Instructions simulated in detail (warm-up + measured)."""
        return self.measure_end - self.detailed_start

    @property
    def functional_length(self) -> int:
        """Instructions replayed functionally before detailed simulation."""
        return self.detailed_start - self.functional_start


@dataclass(frozen=True)
class SamplingPlan:
    """Knobs of one systematic-sampling schedule.

    Attributes
    ----------
    interval_length:
        Measured instructions per interval (*U*).
    detailed_warmup:
        Detailed (cycle-accurate) warm-up instructions before each measured
        interval (*W*); their statistics are discarded.
    period:
        Instructions between successive measurement starts.  ``period ==
        interval_length`` degenerates to full-detail simulation.
    functional_warmup:
        Instructions of functional warming replayed before the detailed
        warm-up of each interval.  Bounded (rather than warming the whole
        inter-interval gap) so a k-interval sample costs
        ``O(k * (functional_warmup + W + U))`` instead of ``O(N)``.
    seed:
        Seed of the random phase of the first interval within the first
        period (systematic sampling with random offset).
    confidence:
        Confidence level of the reported CPI interval (default 95%).
    """

    interval_length: int = 1_000
    detailed_warmup: int = 1_000
    period: int = 20_000
    functional_warmup: int = 8_000
    seed: int = 0
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if self.detailed_warmup < 0 or self.functional_warmup < 0:
            raise ValueError("warmup lengths must be non-negative")
        if self.period < self.interval_length:
            raise ValueError("period must be at least interval_length")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    # ------------------------------------------------------------- layout --

    def first_offset(self) -> int:
        """Measurement start of interval 0 (seed-derived phase)."""
        slack = self.period - self.interval_length
        if slack <= 0:
            return 0
        return random.Random(0x5A3F17 ^ self.seed).randrange(slack + 1)

    def intervals(self, total_instructions: int) -> List[IntervalWindow]:
        """The interval layout for a trace of ``total_instructions``.

        Deterministic given the plan; at least one interval is always
        scheduled (pinned to the end of short traces).
        """
        if total_instructions < self.interval_length:
            raise ValueError(
                f"trace of {total_instructions} instructions is shorter than "
                f"one interval ({self.interval_length})")
        starts: List[int] = []
        start = self.first_offset()
        while start + self.interval_length <= total_instructions:
            starts.append(start)
            start += self.period
        if not starts:
            starts.append(total_instructions - self.interval_length)
        windows = []
        for index, measure_start in enumerate(starts):
            detailed_start = max(0, measure_start - self.detailed_warmup)
            functional_start = max(0, detailed_start - self.functional_warmup)
            windows.append(IntervalWindow(
                index=index,
                functional_start=functional_start,
                detailed_start=detailed_start,
                measure_start=measure_start,
                measure_end=measure_start + self.interval_length,
            ))
        return windows

    def num_intervals(self, total_instructions: int) -> int:
        return len(self.intervals(total_instructions))

    def sampled_fraction(self, total_instructions: int) -> float:
        """Fraction of the trace measured in detail (diagnostic)."""
        measured = sum(w.measure_length for w in self.intervals(total_instructions))
        return measured / total_instructions if total_instructions else 0.0

"""Figure 4: execution time relative to the ideal associative store queue.

For every workload the experiment simulates the normalisation baseline (a
3-cycle associative SQ with oracle load scheduling) and the five compared
configurations, then reports per-benchmark relative execution times and the
per-suite / overall geometric means the paper prints below the bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exec import ExperimentEngine, JobSpec
from repro.harness import paper_data
from repro.harness.reporting import format_table
from repro.harness.runner import (
    BASELINE_CONFIG,
    ExperimentSettings,
    FIGURE4_CONFIGS,
    geometric_mean,
)
from repro.workloads.profiles import get_profile
from repro.workloads.suites import ALL_SUITES, workload_names


@dataclass
class Figure4Row:
    """Per-benchmark relative execution times (baseline = 1.0)."""

    name: str
    suite: str
    baseline_ipc: float
    baseline_cycles: int
    relative_time: Dict[str, float]


@dataclass
class Figure4Result:
    """All per-benchmark rows plus geometric-mean aggregates."""

    rows: List[Figure4Row]
    settings: ExperimentSettings
    configs: Sequence[str] = FIGURE4_CONFIGS

    def row(self, name: str) -> Figure4Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no Figure 4 row for {name!r}")

    def gmean(self, config: str, suite: str = "all") -> float:
        rows = self.rows if suite == "all" else [r for r in self.rows if r.suite == suite]
        if not rows:
            raise ValueError(f"no rows for suite {suite!r}")
        return geometric_mean(r.relative_time[config] for r in rows)

    def gmeans(self) -> Dict[str, Dict[str, float]]:
        """suite -> config -> geometric-mean relative time."""
        result: Dict[str, Dict[str, float]] = {}
        for suite in list(ALL_SUITES) + ["all"]:
            if suite != "all" and not any(r.suite == suite for r in self.rows):
                continue
            result[suite] = {config: self.gmean(config, suite) for config in self.configs}
        return result

    def wins_vs(self, config_a: str, config_b: str, tolerance: float = 0.005) -> Dict[str, int]:
        """Count benchmarks where ``config_a`` beats / ties / loses to ``config_b``.

        The paper's claim "matches or exceeds ... on 31 of 47 programs" uses
        this comparison between the indexed SQ and the realistic associative
        SQ; ``tolerance`` defines a tie.
        """
        wins = ties = losses = 0
        for row in self.rows:
            a = row.relative_time[config_a]
            b = row.relative_time[config_b]
            if a < b - tolerance:
                wins += 1
            elif a > b + tolerance:
                losses += 1
            else:
                ties += 1
        return {"wins": wins, "ties": ties, "losses": losses}

    def render(self) -> str:
        headers = ["benchmark", "ideal IPC"] + [c for c in self.configs]
        rows = []
        for row in self.rows:
            rows.append([row.name, row.baseline_ipc] +
                        [row.relative_time[c] for c in self.configs])
        lines = [format_table(headers, rows,
                              title="Figure 4: execution time relative to ideal associative SQ")]

        gmean_headers = ["suite"] + [c for c in self.configs] + ["paper assoc-3", "paper assoc-5",
                                                                 "paper idx-fwd", "paper idx-fwd+dly"]
        gmean_rows = []
        for suite, values in self.gmeans().items():
            paper = paper_data.FIGURE4_GMEANS.get(suite, {})
            gmean_rows.append([suite] + [values[c] for c in self.configs] + [
                paper.get("associative-3", float("nan")),
                paper.get("associative-5", float("nan")),
                paper.get("indexed-3-fwd", float("nan")),
                paper.get("indexed-3-fwd+dly", float("nan")),
            ])
        lines.append(format_table(gmean_headers, gmean_rows, title="Figure 4: geometric means"))

        comparison = self.wins_vs("indexed-3-fwd+dly", "associative-5-predictive")
        lines.append(
            "indexed-3-fwd+dly vs associative-5 (forwarding prediction): "
            f"{comparison['wins']} wins, {comparison['ties']} ties, {comparison['losses']} losses "
            "(paper: beats on 19 of 47, matches on 12)")
        return "\n\n".join(lines)


def run_figure4(workloads: Optional[Sequence[str]] = None,
                settings: Optional[ExperimentSettings] = None,
                configs: Sequence[str] = FIGURE4_CONFIGS,
                engine: Optional[ExperimentEngine] = None) -> Figure4Result:
    """Regenerate Figure 4 for the given workloads (default: all 47).

    The ``(workload, configuration)`` grid — baseline included — is executed
    through ``engine`` (by default built from ``settings.jobs`` /
    ``REPRO_JOBS``), which fans jobs out over worker processes and memoizes
    finished cells on disk; results are merged back in input order, so the
    report is identical however the grid was executed.
    """
    settings = settings or ExperimentSettings()
    engine = engine or ExperimentEngine.from_settings(settings)
    names = list(workloads) if workloads is not None else workload_names()

    all_configs = [BASELINE_CONFIG] + list(configs)
    specs = [JobSpec(name, config, settings)
             for name in names for config in all_configs]
    records = engine.run(specs, chunksize=len(all_configs))

    rows: List[Figure4Row] = []
    for i, name in enumerate(names):
        group = records[i * len(all_configs):(i + 1) * len(all_configs)]
        baseline = group[0].result
        relative: Dict[str, float] = {}
        for config, record in zip(configs, group[1:]):
            relative[config] = record.result.stats.cycles / baseline.stats.cycles
        rows.append(Figure4Row(name=name, suite=get_profile(name).suite,
                               baseline_ipc=baseline.stats.ipc,
                               baseline_cycles=baseline.stats.cycles,
                               relative_time=relative))
    return Figure4Result(rows=rows, settings=settings, configs=tuple(configs))

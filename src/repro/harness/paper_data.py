"""The paper's reported numbers, for side-by-side comparison.

These constants are transcription of the results printed in the paper (Table
2, Table 3, Figure 4's geometric means, Section 4.2/4.3 headline numbers).
They are *reference* data: the harness prints them next to the reproduction's
measurements so EXPERIMENTS.md can record paper-vs-measured for every
experiment, and the benchmark assertions check only qualitative shape (who
wins, roughly by how much), never exact equality.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Table 2: SQ load latency (ns, cycles at 3 GHz), associative vs indexed.
# Keyed by (entries, load_ports) -> (assoc_ns, assoc_cycles, idx_ns, idx_cycles)
# ---------------------------------------------------------------------------
TABLE2_SQ: Dict[Tuple[int, int], Tuple[float, int, float, int]] = {
    (16, 1): (0.98, 3, 0.51, 2),
    (32, 1): (1.12, 4, 0.53, 2),
    (64, 1): (1.34, 4, 0.57, 2),
    (128, 1): (1.51, 5, 0.67, 2),
    (256, 1): (1.73, 6, 0.70, 3),
    (16, 2): (1.01, 3, 0.53, 2),
    (32, 2): (1.14, 4, 0.55, 2),
    (64, 2): (1.38, 5, 0.60, 2),
    (128, 2): (1.55, 5, 0.71, 3),
    (256, 2): (1.79, 6, 0.75, 3),
}

#: D$ bank reference rows: (size_kb, ports) -> (ns, cycles).
TABLE2_DCACHE: Dict[Tuple[int, int], Tuple[float, int]] = {
    (8, 1): (0.84, 3),
    (8, 2): (0.92, 3),
    (32, 1): (1.00, 3),
    (32, 2): (1.15, 4),
}

#: TLB reference row: ports -> (ns, cycles).
TABLE2_TLB: Dict[int, Tuple[float, int]] = {1: (0.64, 2), 2: (0.70, 3)}

#: Section 4.2: indexed SQ per-access energy is ~30% lower at 64 entries/2 ports.
ENERGY_SAVINGS_64_2PORT = 0.30

# ---------------------------------------------------------------------------
# Table 3: per-benchmark prediction diagnostics.
# name -> (%loads forwarding, mis/1000 Fwd, mis/1000 Fwd+Dly, %loads delayed,
#          avg delay cycles)
# ---------------------------------------------------------------------------
TABLE3: Dict[str, Tuple[float, float, float, float, float]] = {
    "adpcm.d": (0.0, 0.0, 0.0, 0.0, 7.6),
    "adpcm.e": (0.0, 0.0, 0.0, 0.0, 6.8),
    "epic.e": (8.6, 0.3, 0.2, 0.1, 31.5),
    "epic.d": (19.2, 0.1, 0.1, 0.2, 11.0),
    "g721.d": (7.4, 0.0, 0.0, 0.4, 15.7),
    "g721.e": (10.5, 1.7, 0.0, 0.3, 6.4),
    "gs.d": (26.5, 3.0, 0.1, 6.5, 28.9),
    "gsm.d": (3.0, 1.4, 0.4, 2.9, 9.8),
    "gsm.e": (7.2, 2.2, 0.1, 3.8, 23.0),
    "jpeg.d": (1.7, 0.3, 0.4, 2.0, 35.5),
    "jpeg.e": (14.3, 1.2, 1.2, 0.3, 22.2),
    "mesa.m": (43.6, 1.9, 0.0, 0.6, 30.0),
    "mesa.o": (39.2, 0.2, 0.2, 0.1, 25.0),
    "mesa.t": (35.9, 12.3, 0.8, 5.3, 72.6),
    "mpeg2.d": (25.2, 0.3, 0.0, 0.2, 16.7),
    "mpeg2.e": (4.8, 0.2, 0.2, 0.1, 31.8),
    "pegwit.d": (8.4, 2.0, 0.4, 1.6, 19.5),
    "pegwit.e": (9.2, 3.7, 0.5, 1.3, 29.3),
    "bzip2": (11.7, 1.9, 0.4, 1.3, 36.9),
    "crafty": (7.0, 1.2, 0.3, 1.1, 31.3),
    "eon.c": (28.4, 5.0, 0.8, 8.3, 21.0),
    "eon.k": (21.0, 7.0, 0.9, 8.0, 19.7),
    "eon.r": (24.2, 7.1, 0.9, 9.5, 23.3),
    "gap": (9.5, 0.5, 0.1, 0.5, 41.2),
    "gcc": (9.2, 0.9, 0.2, 2.2, 21.0),
    "gzip": (19.6, 1.2, 0.2, 1.6, 32.4),
    "mcf": (2.6, 1.3, 0.4, 1.1, 95.3),
    "parser": (14.0, 4.3, 0.2, 1.8, 65.8),
    "perl.d": (10.8, 0.9, 0.1, 0.9, 15.9),
    "perl.s": (12.7, 0.9, 0.0, 0.3, 11.2),
    "twolf": (9.7, 2.9, 1.0, 1.2, 18.5),
    "vortex": (24.5, 3.7, 0.2, 2.8, 29.4),
    "vpr.p": (8.4, 1.9, 0.5, 1.2, 15.6),
    "vpr.r": (18.9, 0.9, 0.4, 0.6, 67.7),
    "ammp": (13.7, 3.3, 0.2, 1.0, 90.4),
    "applu": (13.1, 1.6, 0.0, 0.4, 43.5),
    "apsi": (6.9, 0.7, 0.5, 2.2, 237.6),
    "art": (2.0, 0.0, 0.0, 0.9, 406.4),
    "equake": (4.2, 0.6, 0.4, 0.8, 75.5),
    "facerec": (2.0, 0.0, 0.0, 0.4, 62.8),
    "galgel": (1.7, 0.8, 0.1, 0.3, 51.4),
    "lucas": (0.0, 0.0, 0.0, 0.2, 34.0),
    "mesa": (25.4, 3.3, 0.1, 5.9, 92.4),
    "mgrid": (5.5, 1.1, 0.0, 0.5, 19.4),
    "sixtrack": (33.9, 9.5, 2.4, 8.8, 38.2),
    "swim": (3.2, 0.1, 0.0, 0.4, 105.4),
    "wupwise": (18.4, 2.5, 0.9, 11.8, 52.9),
}

#: Table 3 suite averages: suite -> (fwd%, mis/1000 Fwd, mis/1000 Fwd+Dly,
#: %delayed, avg delay cycles)
TABLE3_AVERAGES: Dict[str, Tuple[float, float, float, float, float]] = {
    "media": (14.3, 1.6, 0.1, 2.1, 32.5),
    "int": (13.5, 1.8, 0.3, 1.6, 53.2),
    "fp": (11.5, 1.9, 0.3, 3.2, 100.0),
    "all": (12.9, 1.8, 0.3, 2.3, 53.1),
}

# ---------------------------------------------------------------------------
# Figure 4: relative execution time (geometric means) vs the ideal 3-cycle
# associative SQ with oracle scheduling.  The associative-5 entry gives the
# forwarding-prediction sub-configuration (the one the paper compares to).
# ---------------------------------------------------------------------------
FIGURE4_GMEANS: Dict[str, Dict[str, float]] = {
    "media": {"associative-3": 1.006, "associative-5": 1.017,
              "indexed-3-fwd": 1.053, "indexed-3-fwd+dly": 1.024},
    "int": {"associative-3": 1.013, "associative-5": 1.034,
            "indexed-3-fwd": 1.061, "indexed-3-fwd+dly": 1.032},
    "fp": {"associative-3": 1.023, "associative-5": 1.028,
           "indexed-3-fwd": 1.068, "indexed-3-fwd+dly": 1.040},
    "all": {"associative-3": 1.014, "associative-5": 1.027,
            "indexed-3-fwd": 1.063, "indexed-3-fwd+dly": 1.033},
}

#: Section 4.3 / abstract headline numbers.
HEADLINE = {
    "load_forwarding_rate_pct": 12.9,
    "mis_forwardings_per_1000_fwd": 1.8,
    "mis_forwardings_per_1000_fwd_dly": 0.3,
    "percent_loads_delayed": 2.3,
    "avg_delay_cycles": 53.1,
    "slowdown_vs_ideal_pct": 3.3,
    "slowdown_vs_realistic_pct": 0.6,
}

#: Figure 5 sweep points (as labelled in the figure).
FIGURE5_CAPACITIES = (512, 1024, 2048, 4096, 8192)
FIGURE5_ASSOCIATIVITIES = (1, 2, 4, 8, 32)
FIGURE5_DDP_RATIOS = ((0, 1), (1, 1), (2, 1), (4, 1), (8, 1), (1, 0))

"""Figure 5: performance sensitivity of the indexed SQ.

Three sweeps over nine benchmarks (three per suite), all measured as the
``indexed-3-fwd+dly`` configuration's execution time relative to the ideal
oracle-scheduled associative SQ:

* **FSP/DDP capacity** — 512, 1K, 2K, 4K (default), 8K entries, varied in
  conjunction (top graph).
* **FSP associativity** — 1, 2 (default), 4, 8, 32 ways at 4K entries
  (middle graph).
* **DDP training ratio** — 0:1 (never delay, degenerates to the raw ``Fwd``
  configuration), 1:1, 2:1, 4:1 (default), 8:1, 1:0 (never unlearn)
  (bottom graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.predictors import PredictorSuiteConfig
from repro.exec import ExperimentEngine, JobSpec
from repro.harness.paper_data import (
    FIGURE5_ASSOCIATIVITIES,
    FIGURE5_CAPACITIES,
    FIGURE5_DDP_RATIOS,
)
from repro.harness.reporting import format_table
from repro.harness.runner import BASELINE_CONFIG, ExperimentSettings
from repro.workloads.suites import sensitivity_workloads


@dataclass
class SweepSeries:
    """One benchmark's series across one sweep dimension."""

    name: str
    points: Dict[str, float]   # sweep label -> relative execution time


@dataclass
class Figure5Result:
    """All three sensitivity sweeps."""

    capacity: List[SweepSeries]
    associativity: List[SweepSeries]
    ddp_ratio: List[SweepSeries]
    settings: ExperimentSettings

    @staticmethod
    def _render_sweep(series: List[SweepSeries], title: str) -> str:
        if not series:
            return f"{title}: (no data)"
        labels = list(series[0].points.keys())
        headers = ["benchmark"] + labels
        rows = [[s.name] + [s.points[label] for label in labels] for s in series]
        return format_table(headers, rows, title=title)

    def render(self) -> str:
        return "\n\n".join([
            self._render_sweep(self.capacity, "Figure 5 (top): FSP/DDP capacity sweep"),
            self._render_sweep(self.associativity, "Figure 5 (middle): FSP associativity sweep"),
            self._render_sweep(self.ddp_ratio, "Figure 5 (bottom): DDP training ratio sweep"),
        ])


def run_figure5(workloads: Optional[Sequence[str]] = None,
                settings: Optional[ExperimentSettings] = None,
                capacities: Sequence[int] = FIGURE5_CAPACITIES,
                associativities: Sequence[int] = FIGURE5_ASSOCIATIVITIES,
                ddp_ratios: Sequence[Tuple[int, int]] = FIGURE5_DDP_RATIOS,
                engine: Optional[ExperimentEngine] = None) -> Figure5Result:
    """Regenerate the three Figure 5 sweeps.

    Every ``(workload, sweep point)`` cell — baselines included — is
    submitted to ``engine`` as one flat job list (fan-out + result caching),
    then indexed back into the three per-benchmark series.
    """
    settings = settings or ExperimentSettings()
    engine = engine or ExperimentEngine.from_settings(settings)
    names = list(workloads) if workloads is not None else sensitivity_workloads()
    default = PredictorSuiteConfig()

    # One flat, workload-major job list; ``index`` maps logical points to
    # positions so the series can be rebuilt after the engine returns.
    specs: List[JobSpec] = []
    index: Dict[Tuple[str, str, str], int] = {}

    def add(name: str, kind: str, label: str, config: str,
            predictors: Optional[PredictorSuiteConfig]) -> None:
        index[(name, kind, label)] = len(specs)
        specs.append(JobSpec(name, config, settings, predictors))

    for name in names:
        add(name, "baseline", "", BASELINE_CONFIG, None)
        for entries in capacities:
            add(name, "capacity", str(entries), "indexed-3-fwd+dly",
                default.scaled_fsp_ddp(entries))
        for assoc in associativities:
            add(name, "associativity", str(assoc), "indexed-3-fwd+dly",
                default.with_fsp_assoc(assoc))
        for positive, negative in ddp_ratios:
            label = f"{positive}:{negative}"
            if positive == 0:
                # 0:1 never trains delay, which degenerates to the raw Fwd config.
                add(name, "ddp_ratio", label, "indexed-3-fwd", default)
            else:
                add(name, "ddp_ratio", label, "indexed-3-fwd+dly",
                    default.with_ddp_ratio(positive, max(negative, 0)))

    per_workload = len(specs) // len(names) if names else 1
    records = engine.run(specs, chunksize=max(1, per_workload))

    def cycles(name: str, kind: str, label: str = "") -> int:
        return records[index[(name, kind, label)]].result.stats.cycles

    capacity_series: List[SweepSeries] = []
    assoc_series: List[SweepSeries] = []
    ratio_series: List[SweepSeries] = []
    for name in names:
        base = cycles(name, "baseline")
        capacity_series.append(SweepSeries(name=name, points={
            str(entries): cycles(name, "capacity", str(entries)) / base
            for entries in capacities}))
        assoc_series.append(SweepSeries(name=name, points={
            str(assoc): cycles(name, "associativity", str(assoc)) / base
            for assoc in associativities}))
        ratio_series.append(SweepSeries(name=name, points={
            f"{p}:{n}": cycles(name, "ddp_ratio", f"{p}:{n}") / base
            for p, n in ddp_ratios}))

    return Figure5Result(capacity=capacity_series, associativity=assoc_series,
                         ddp_ratio=ratio_series, settings=settings)

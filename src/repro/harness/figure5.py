"""Figure 5: performance sensitivity of the indexed SQ.

Three sweeps over nine benchmarks (three per suite), all measured as the
``indexed-3-fwd+dly`` configuration's execution time relative to the ideal
oracle-scheduled associative SQ:

* **FSP/DDP capacity** — 512, 1K, 2K, 4K (default), 8K entries, varied in
  conjunction (top graph).
* **FSP associativity** — 1, 2 (default), 4, 8, 32 ways at 4K entries
  (middle graph).
* **DDP training ratio** — 0:1 (never delay, degenerates to the raw ``Fwd``
  configuration), 1:1, 2:1, 4:1 (default), 8:1, 1:0 (never unlearn)
  (bottom graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.predictors import PredictorSuiteConfig
from repro.harness.paper_data import (
    FIGURE5_ASSOCIATIVITIES,
    FIGURE5_CAPACITIES,
    FIGURE5_DDP_RATIOS,
)
from repro.harness.reporting import format_table
from repro.harness.runner import (
    BASELINE_CONFIG,
    ExperimentSettings,
    build_traces,
    run_workload,
)
from repro.workloads.suites import sensitivity_workloads


@dataclass
class SweepSeries:
    """One benchmark's series across one sweep dimension."""

    name: str
    points: Dict[str, float]   # sweep label -> relative execution time


@dataclass
class Figure5Result:
    """All three sensitivity sweeps."""

    capacity: List[SweepSeries]
    associativity: List[SweepSeries]
    ddp_ratio: List[SweepSeries]
    settings: ExperimentSettings

    @staticmethod
    def _render_sweep(series: List[SweepSeries], title: str) -> str:
        if not series:
            return f"{title}: (no data)"
        labels = list(series[0].points.keys())
        headers = ["benchmark"] + labels
        rows = [[s.name] + [s.points[label] for label in labels] for s in series]
        return format_table(headers, rows, title=title)

    def render(self) -> str:
        return "\n\n".join([
            self._render_sweep(self.capacity, "Figure 5 (top): FSP/DDP capacity sweep"),
            self._render_sweep(self.associativity, "Figure 5 (middle): FSP associativity sweep"),
            self._render_sweep(self.ddp_ratio, "Figure 5 (bottom): DDP training ratio sweep"),
        ])


def _relative_time(trace, predictors: Optional[PredictorSuiteConfig], config_name: str,
                   settings: ExperimentSettings, baseline_cycles: int) -> float:
    run = run_workload(trace, config_name, settings, predictors=predictors)
    return run.result.stats.cycles / baseline_cycles


def run_figure5(workloads: Optional[Sequence[str]] = None,
                settings: Optional[ExperimentSettings] = None,
                capacities: Sequence[int] = FIGURE5_CAPACITIES,
                associativities: Sequence[int] = FIGURE5_ASSOCIATIVITIES,
                ddp_ratios: Sequence[Tuple[int, int]] = FIGURE5_DDP_RATIOS) -> Figure5Result:
    """Regenerate the three Figure 5 sweeps."""
    settings = settings or ExperimentSettings()
    names = list(workloads) if workloads is not None else sensitivity_workloads()
    traces = build_traces(names, settings)
    default = PredictorSuiteConfig()

    baseline_cycles: Dict[str, int] = {}
    for name in names:
        baseline = run_workload(traces[name], BASELINE_CONFIG, settings).result
        baseline_cycles[name] = baseline.stats.cycles

    capacity_series: List[SweepSeries] = []
    assoc_series: List[SweepSeries] = []
    ratio_series: List[SweepSeries] = []

    for name in names:
        trace = traces[name]
        base = baseline_cycles[name]

        points = {}
        for entries in capacities:
            predictors = default.scaled_fsp_ddp(entries)
            points[str(entries)] = _relative_time(trace, predictors, "indexed-3-fwd+dly",
                                                  settings, base)
        capacity_series.append(SweepSeries(name=name, points=points))

        points = {}
        for assoc in associativities:
            predictors = default.with_fsp_assoc(assoc)
            points[str(assoc)] = _relative_time(trace, predictors, "indexed-3-fwd+dly",
                                                settings, base)
        assoc_series.append(SweepSeries(name=name, points=points))

        points = {}
        for positive, negative in ddp_ratios:
            label = f"{positive}:{negative}"
            if positive == 0:
                # 0:1 never trains delay, which degenerates to the raw Fwd config.
                points[label] = _relative_time(trace, default, "indexed-3-fwd", settings, base)
                continue
            predictors = default.with_ddp_ratio(positive, max(negative, 0))
            points[label] = _relative_time(trace, predictors, "indexed-3-fwd+dly", settings, base)
        ratio_series.append(SweepSeries(name=name, points=points))

    return Figure5Result(capacity=capacity_series, associativity=assoc_series,
                         ddp_ratio=ratio_series, settings=settings)

"""Experiment harness: regenerates every table and figure in the paper.

* :func:`~repro.harness.table2.run_table2` — SQ latency/energy (Table 2).
* :func:`~repro.harness.table3.run_table3` — forwarding and delay prediction
  diagnostics (Table 3 and the Section 4.3 headline numbers).
* :func:`~repro.harness.figure4.run_figure4` — relative execution time of the
  five SQ configurations (Figure 4).
* :func:`~repro.harness.figure5.run_figure5` — sensitivity to FSP/DDP
  capacity, FSP associativity, and DDP training ratio (Figure 5).

Each runner returns a structured result object with a ``render()`` method
that prints the same rows/series the paper reports, plus the paper's values
(from :mod:`repro.harness.paper_data`) for side-by-side comparison.

Every simulation-backed runner accepts an optional
:class:`~repro.exec.ExperimentEngine` (defaulting to one built from
``settings.jobs`` / ``REPRO_JOBS``) that fans the ``(workload,
configuration)`` grid out over worker processes and memoizes finished cells
under ``REPRO_CACHE_DIR`` (default ``.repro-cache/``; delete it at any time
to reset).  Serial, parallel, and cached runs are bit-identical.
"""

from repro.harness.runner import (
    ExperimentSettings,
    RunRecord,
    geometric_mean,
    make_policy,
    run_workload,
    FIGURE4_CONFIGS,
)
from repro.harness.table2 import Table2Result, run_table2
from repro.harness.table3 import Table3Result, Table3Row, run_table3
from repro.harness.figure4 import Figure4Result, run_figure4
from repro.harness.figure5 import Figure5Result, run_figure5

__all__ = [
    "ExperimentSettings",
    "FIGURE4_CONFIGS",
    "Figure4Result",
    "Figure5Result",
    "RunRecord",
    "Table2Result",
    "Table3Result",
    "Table3Row",
    "geometric_mean",
    "make_policy",
    "run_figure4",
    "run_figure5",
    "run_table2",
    "run_table3",
    "run_workload",
]

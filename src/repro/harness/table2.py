"""Table 2: store queue latencies (and the Section 4.2 energy comparison)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exec import ExperimentEngine
from repro.exec.fingerprint import timing_fingerprint
from repro.harness import paper_data
from repro.harness.reporting import format_comparison, format_table
from repro.timing.cacti import AccessTiming
from repro.timing.sq_model import (
    EnergyComparison,
    SQLatencyRow,
    reference_rows,
    sq_energy_comparison,
    sq_latency_table,
)


@dataclass
class Table2Result:
    """Reproduction of Table 2 plus the energy headline."""

    sq_rows: List[SQLatencyRow]
    references: Dict[str, Dict[int, AccessTiming]]
    energy: EnergyComparison

    def row(self, entries: int, ports: int) -> SQLatencyRow:
        for row in self.sq_rows:
            if row.entries == entries and row.load_ports == ports:
                return row
        raise KeyError(f"no row for {entries} entries / {ports} ports")

    def render(self) -> str:
        """Text rendering with the paper's numbers alongside."""
        headers = ["entries", "ports",
                   "assoc ns", "assoc cyc", "paper assoc (ns/cyc)",
                   "index ns", "index cyc", "paper index (ns/cyc)"]
        rows = []
        for row in self.sq_rows:
            paper = paper_data.TABLE2_SQ.get((row.entries, row.load_ports))
            paper_assoc = f"{paper[0]:.2f}/{paper[1]}" if paper else "-"
            paper_index = f"{paper[2]:.2f}/{paper[3]}" if paper else "-"
            rows.append([row.entries, row.load_ports,
                         row.associative_ns, row.associative_cycles, paper_assoc,
                         row.indexed_ns, row.indexed_cycles, paper_index])
        lines = [format_table(headers, rows, title="Table 2: SQ load latency (90nm, 3GHz)")]

        ref_headers = ["structure", "ports", "ns", "cycles", "paper (ns/cyc)"]
        ref_rows = []
        for (size_kb, label) in ((8, "dcache_8kb"), (32, "dcache_32kb")):
            for ports, timing in sorted(self.references[label].items()):
                paper = paper_data.TABLE2_DCACHE.get((size_kb, ports))
                paper_text = f"{paper[0]:.2f}/{paper[1]}" if paper else "-"
                ref_rows.append([f"D$ bank {size_kb}KB 2-way", ports,
                                 timing.total_ns, timing.cycles, paper_text])
        for ports, timing in sorted(self.references["tlb_32"].items()):
            paper = paper_data.TABLE2_TLB.get(ports)
            paper_text = f"{paper[0]:.2f}/{paper[1]}" if paper else "-"
            ref_rows.append(["TLB 32-entry 4-way", ports, timing.total_ns, timing.cycles,
                             paper_text])
        lines.append(format_table(ref_headers, ref_rows, title="Table 2: reference structures"))

        lines.append(format_comparison(
            "Indexed SQ per-access energy saving (64 entries, 2 load ports)",
            self.energy.indexed_savings, paper_data.ENERGY_SAVINGS_64_2PORT))
        return "\n\n".join(lines)


def run_table2(engine: Optional[ExperimentEngine] = None) -> Table2Result:
    """Regenerate Table 2 from the analytical timing model.

    The model is cheap, but when an ``engine`` with caching is supplied the
    result is memoized under the timing-model source fingerprint so the
    trajectory tooling can tell "unchanged" from "recomputed".
    """
    def compute() -> Table2Result:
        return Table2Result(
            sq_rows=sq_latency_table(),
            references=reference_rows(),
            energy=sq_energy_comparison(64, 2),
        )

    if engine is None:
        return compute()
    return engine.cached("table2", {"sources": timing_fingerprint()}, compute)

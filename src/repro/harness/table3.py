"""Table 3: store-queue index prediction diagnostics.

For every workload the experiment runs two indexed-SQ configurations:

* ``indexed-3-fwd`` (no delay prediction) — gives the raw mis-forwarding
  rate (the ``Fwd`` column of Table 3), and
* ``indexed-3-fwd+dly`` — gives the improved mis-forwarding rate plus the
  fraction of loads delayed and the average delay (the ``Fwd+Dly`` columns).

The load-forwarding rate (first column) is measured on the ``Fwd`` run: a
load counts as forwarding when the youngest older store to its address is
still in flight when the load executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exec import ExperimentEngine, JobSpec
from repro.harness import paper_data
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentSettings
from repro.workloads.profiles import get_profile
from repro.workloads.suites import ALL_SUITES, workload_names


@dataclass
class Table3Row:
    """One benchmark's diagnostics (mirrors the columns of Table 3)."""

    name: str
    suite: str
    forward_rate_pct: float
    mis_per_1000_fwd: float
    mis_per_1000_fwd_dly: float
    percent_delayed: float
    avg_delay_cycles: float


@dataclass
class Table3Result:
    """Per-benchmark rows plus suite averages."""

    rows: List[Table3Row]
    settings: ExperimentSettings

    def row(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no Table 3 row for {name!r}")

    def suite_average(self, suite: str) -> Table3Row:
        """Arithmetic average over one suite (or ``'all'``)."""
        rows = self.rows if suite == "all" else [r for r in self.rows if r.suite == suite]
        if not rows:
            raise ValueError(f"no rows for suite {suite!r}")
        n = len(rows)
        return Table3Row(
            name=f"{suite}.avg", suite=suite,
            forward_rate_pct=sum(r.forward_rate_pct for r in rows) / n,
            mis_per_1000_fwd=sum(r.mis_per_1000_fwd for r in rows) / n,
            mis_per_1000_fwd_dly=sum(r.mis_per_1000_fwd_dly for r in rows) / n,
            percent_delayed=sum(r.percent_delayed for r in rows) / n,
            avg_delay_cycles=sum(r.avg_delay_cycles for r in rows) / n,
        )

    def render(self) -> str:
        headers = ["benchmark", "%fwd", "paper", "mis/1000 fwd", "paper",
                   "mis/1000 +dly", "paper", "%delayed", "paper", "avg dly", "paper"]
        table_rows = []
        for row in self.rows:
            paper = paper_data.TABLE3.get(row.name, (0.0,) * 5)
            table_rows.append([
                row.name,
                row.forward_rate_pct, paper[0],
                row.mis_per_1000_fwd, paper[1],
                row.mis_per_1000_fwd_dly, paper[2],
                row.percent_delayed, paper[3],
                row.avg_delay_cycles, paper[4],
            ])
        for suite in list(ALL_SUITES) + ["all"]:
            try:
                avg = self.suite_average(suite)
            except ValueError:
                continue
            paper = paper_data.TABLE3_AVERAGES.get(suite, (0.0,) * 5)
            table_rows.append([
                avg.name,
                avg.forward_rate_pct, paper[0],
                avg.mis_per_1000_fwd, paper[1],
                avg.mis_per_1000_fwd_dly, paper[2],
                avg.percent_delayed, paper[3],
                avg.avg_delay_cycles, paper[4],
            ])
        return format_table(headers, table_rows,
                            title="Table 3: store queue index prediction diagnostics")


def run_table3(workloads: Optional[Sequence[str]] = None,
               settings: Optional[ExperimentSettings] = None,
               engine: Optional[ExperimentEngine] = None) -> Table3Result:
    """Regenerate Table 3 for the given workloads (default: all 47).

    Both indexed-SQ runs of every workload go through ``engine`` (process
    fan-out + on-disk memoization) as one workload-major job list.
    """
    settings = settings or ExperimentSettings()
    engine = engine or ExperimentEngine.from_settings(settings)
    names = list(workloads) if workloads is not None else workload_names()

    configs = ("indexed-3-fwd", "indexed-3-fwd+dly")
    specs = [JobSpec(name, config, settings)
             for name in names for config in configs]
    records = engine.run(specs, chunksize=len(configs))

    rows: List[Table3Row] = []
    for i, name in enumerate(names):
        suite = get_profile(name).suite
        fwd = records[2 * i].result.stats
        dly = records[2 * i + 1].result.stats
        rows.append(Table3Row(
            name=name,
            suite=suite,
            forward_rate_pct=100.0 * fwd.forwarding_rate,
            mis_per_1000_fwd=fwd.mis_forwardings_per_1000_loads,
            mis_per_1000_fwd_dly=dly.mis_forwardings_per_1000_loads,
            percent_delayed=dly.percent_loads_delayed,
            avg_delay_cycles=dly.avg_delay_cycles,
        ))
    return Table3Result(rows=rows, settings=settings)

"""Plain-text table rendering helpers shared by the experiment runners."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table.

    Numbers are formatted with sensible defaults (three significant decimals
    for floats); everything else uses ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(label: str, measured: float, paper: float, unit: str = "") -> str:
    """One-line paper-vs-measured comparison."""
    suffix = f" {unit}" if unit else ""
    return f"{label}: measured {measured:.3f}{suffix}  (paper: {paper:.3f}{suffix})"

"""Low-level experiment plumbing: policy factory, per-workload runs, means.

The timing experiments (Table 3, Figures 4 and 5) all follow the same shape:
build a workload trace once, simulate it under one or more store-queue
configurations, and aggregate the per-run statistics.  This module provides
the shared pieces; the per-experiment modules add only the configuration
sweeps and report formats, and execute their ``(workload, configuration)``
grids through :class:`repro.exec.ExperimentEngine` (process fan-out via
``REPRO_JOBS`` / ``ExperimentSettings.jobs``, on-disk result memoization
under ``REPRO_CACHE_DIR``, default ``.repro-cache/``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.core.predictors import PredictorSuiteConfig
from repro.isa.plane import EncodedOps
from repro.lsu.policies import (
    AssociativeStoreSetsPolicy,
    IndexedSQPolicy,
    OracleAssociativePolicy,
    SQPolicy,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import SimulationResult
from repro.pipeline.vector import make_core
from repro.sampling.plan import SamplingPlan
from repro.workloads.suites import DEFAULT_INSTRUCTIONS, build_workload

#: The Figure 4 configuration names, in presentation order.  The ideal
#: oracle-scheduled 3-cycle associative SQ is the normalisation baseline and
#: is not itself a bar.
FIGURE4_CONFIGS = (
    "associative-3",
    "associative-5-optimistic",
    "associative-5-predictive",
    "indexed-3-fwd",
    "indexed-3-fwd+dly",
)

#: The normalisation baseline configuration name.
BASELINE_CONFIG = "oracle-associative-3"


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every timing experiment.

    ``stats_warmup_fraction`` plays the role of the paper's 8% cache/predictor
    warm-up: the first fraction of each trace trains caches and predictors
    but is excluded from the reported statistics (our traces are far shorter
    than the paper's 10M-instruction samples, so proportionally more warm-up
    is needed before predictor cold-start effects stop dominating).

    ``jobs`` is an *execution* knob, not a simulation knob: it sets how many
    worker processes the :class:`~repro.exec.engine.ExperimentEngine` fans a
    sweep out over (``None`` falls back to the ``REPRO_JOBS`` environment
    variable, then serial; values <= 0 mean "all CPUs").  It is excluded
    from equality and from result-cache keys because it cannot change any
    simulated statistic — serial and parallel runs are bit-identical.

    ``sampling`` switches an experiment to statistical sampling: instead of
    simulating every instruction in detail, the run measures the plan's
    detailed intervals (each functionally warmed) and reports merged
    statistics plus a CPI confidence interval (see :mod:`repro.sampling`).
    ``stats_warmup_fraction`` is ignored for sampled runs — warm-up is
    per-interval and specified by the plan.

    ``checkpoints`` selects how sampled intervals are warmed: ``True`` loads
    full-history snapshots from the checkpoint store
    (:mod:`repro.sampling.checkpoints`; one O(N) functional pass per
    workload, amortised across every configuration of a sweep), ``False``
    forces the plan's bounded per-interval functional warming, and ``None``
    (the default) follows the ``REPRO_CHECKPOINTS`` environment knob
    (enabled unless set to ``0``).  The *resolved* choice is a simulation
    knob (it changes the warm state intervals start from, and therefore the
    statistics) and is part of interval result-cache keys.

    ``checkpoint_shards`` is an *execution* knob like ``jobs``: how many
    segment-aligned trace chunks the checkpoint-generation pass is stitched
    from (``None`` follows ``REPRO_CHECKPOINT_SHARDS``; ``<= 0`` or unset
    sizes shards from the worker count).  Excluded from equality and cache
    keys — stitched sharded generation is bit-identical to the single pass
    (see :mod:`repro.sampling.checkpoints`).
    """

    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = 1
    sq_size: int = 64
    stats_warmup_fraction: float = 0.25
    core: CoreConfig = field(default_factory=CoreConfig)
    jobs: Optional[int] = field(default=None, compare=False)
    sampling: Optional[SamplingPlan] = None
    checkpoints: Optional[bool] = None
    checkpoint_shards: Optional[int] = field(default=None, compare=False)


def make_policy(name: str, sq_size: int = 64,
                predictors: Optional[PredictorSuiteConfig] = None) -> SQPolicy:
    """Construct the SQ policy for a named configuration.

    Recognised names: ``oracle-associative-3``, ``associative-3``,
    ``associative-5-optimistic``, ``associative-5-predictive``,
    ``indexed-3-fwd``, ``indexed-3-fwd+dly``.
    """
    if name == BASELINE_CONFIG:
        return OracleAssociativePolicy(sq_size=sq_size, sq_latency=3, predictors=predictors)
    if name == "associative-3":
        return AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=3,
                                          scheduling="predictive", predictors=predictors)
    if name == "associative-5-optimistic":
        return AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=5,
                                          scheduling="optimistic", predictors=predictors)
    if name == "associative-5-predictive":
        return AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=5,
                                          scheduling="predictive", predictors=predictors)
    if name == "associative-original-storesets":
        return AssociativeStoreSetsPolicy(sq_size=sq_size, sq_latency=3,
                                          scheduling="predictive", formulation="original",
                                          predictors=predictors)
    if name == "indexed-3-fwd":
        return IndexedSQPolicy(sq_size=sq_size, use_delay=False, predictors=predictors)
    if name == "indexed-3-fwd+dly":
        return IndexedSQPolicy(sq_size=sq_size, use_delay=True, predictors=predictors)
    raise ValueError(f"unknown configuration {name!r}")


@dataclass
class RunRecord:
    """One (workload, configuration) simulation."""

    workload: str
    config_name: str
    result: SimulationResult

    @property
    def cycles(self) -> int:
        return self.result.stats.cycles

    @property
    def ipc(self) -> float:
        return self.result.stats.ipc


def run_workload(trace, config_name: str,
                 settings: Optional[ExperimentSettings] = None,
                 predictors: Optional[PredictorSuiteConfig] = None) -> RunRecord:
    """Simulate one trace under one named configuration.

    ``trace`` is an :class:`~repro.isa.plane.EncodedOps` (what
    :func:`~repro.workloads.suites.build_workload` returns; the core's
    static-plane fast path) or a :class:`~repro.isa.trace.DynamicTrace` /
    micro-op sequence (back-compat object path) — bit-identical either way.

    With ``settings.sampling`` set the trace is simulated by statistical
    sampling (functional warming + detailed intervals) instead of in full
    detail; the returned record then carries a
    :class:`~repro.sampling.result.SampledSimulationResult`.
    """
    settings = settings or ExperimentSettings()
    if settings.sampling is not None:
        from repro.sampling.driver import run_sampled_trace

        return run_sampled_trace(trace, config_name, settings, predictors=predictors)
    policy = make_policy(config_name, sq_size=settings.sq_size, predictors=predictors)
    core = make_core(settings.core, policy)
    result = core.run(trace, stats_warmup_fraction=settings.stats_warmup_fraction)
    return RunRecord(workload=trace.name, config_name=config_name, result=result)


def build_traces(names: Sequence[str],
                 settings: Optional[ExperimentSettings] = None) -> Dict[str, EncodedOps]:
    """Build (once) the traces for the named workloads."""
    settings = settings or ExperimentSettings()
    return {name: build_workload(name, instructions=settings.instructions, seed=settings.seed)
            for name in names}


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregation Figure 4 uses for relative times).

    Accepts any iterable in a single pass (no re-materialisation of the
    input) and accumulates the log-sum with :func:`math.fsum` for
    correctly-rounded summation even over long, spread-out series.
    """
    logs = []
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        logs.append(math.log(value))
    if not logs:
        return 0.0
    return math.exp(math.fsum(logs) / len(logs))

"""Non-blocking memory hierarchy: MSHR-tracked misses, lazy fills, prefetch.

:class:`NonBlockingHierarchy` extends the blocking
:class:`~repro.memory.hierarchy.MemoryHierarchy` with memory-level
parallelism: a demand load that misses L1 allocates an entry in a bounded
:class:`~repro.memory.mshr.MSHRFile` and completes at a deterministic fill
cycle; a second miss to the same line *coalesces* onto the in-flight entry
(no new entry, no new memory request); and when the file is full the load
must structurally stall in the issue stage
(:meth:`NonBlockingHierarchy.load_would_block`).  Lines are installed into
the caches when their fill lands — lazily, at the next access or stall
probe on or after the fill cycle — not at miss time, so cache contents
evolve exactly as the fill timeline dictates while needing no event queue
of their own.

Two deliberate contracts:

* **Degeneracy anchor.** ``mshr_entries == 1`` *is* the blocking model:
  :meth:`load_access` delegates to the inherited scalar-latency path, so
  the degenerate configuration is bit-identical to
  :class:`~repro.memory.hierarchy.MemoryHierarchy` by construction (and
  golden-tested end to end).  Note the direction this implies for sweeps:
  the blocking model charges each miss its full latency but lets the
  *core* overlap any number of such loads — it is MLP-optimistic — so a
  bounded MSHR file can only add structural stalls, and more entries move
  CPI back *toward* the blocking anchor.
* **Stores stay blocking.** Store commits retire into a write buffer off
  the critical path (see ``store_touch``); modelling store misses in the
  MSHR file would only consume entries that demand loads need, so only
  demand loads and prefetches allocate.

The stride prefetcher (:class:`~repro.memory.mshr.StridePrefetcher`)
trains on demand loads and allocates *prefetch* MSHR entries subject to
three guards — it never claims the file's last free entry, never exceeds
its outstanding budget, and never duplicates a resident or in-flight line —
and its traffic is kept out of the demand counters entirely: prefetch
probes use non-counting lookups, and usefulness is scored when a demand
access hits a prefetched line (or coalesces onto an in-flight prefetch).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memory.mshr import MLPStats, MSHRFile, StridePrefetcher


def build_hierarchy(config: Optional[MemoryHierarchyConfig] = None) -> MemoryHierarchy:
    """The hierarchy ``config`` asks for: blocking by default, non-blocking
    when ``config.mlp.enabled`` — the single construction point used by the
    detailed core and the functional warmer."""
    config = config or MemoryHierarchyConfig()
    if config.mlp.enabled:
        return NonBlockingHierarchy(config)
    return MemoryHierarchy(config)


class NonBlockingHierarchy(MemoryHierarchy):
    """MSHR-based non-blocking extension of the blocking hierarchy.

    The blocking interface (``load_latency``, ``store_touch``, ``warm``) is
    inherited unchanged — the functional warmer replays through it in
    program order, which leaves the MSHR file empty by design (warming has
    no clock to schedule fills against).  The detailed core calls
    :meth:`load_access` / :meth:`load_would_block` instead.
    """

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        super().__init__(config)
        mlp = self.config.mlp
        self.mlp_config = mlp
        #: True outside the mshr_entries==1 degenerate mode; the core keys
        #: its MSHR integration (issue-stage gate, MLP counters) off this.
        self.nonblocking = mlp.mshr_entries > 1
        self.mshr = MSHRFile(mlp.mshr_entries, line_bytes=self.config.l1.line_bytes)
        self.prefetcher = (StridePrefetcher(mlp.prefetch)
                           if mlp.prefetch.enabled else None)
        self.mlp_stats = MLPStats()
        #: Lines installed by a prefetch and not yet touched by demand.
        self._prefetched: Set[int] = set()

    # ------------------------------------------------------------- demand --

    def load_access(self, addr: int, now: int, pc: int = 0) -> int:
        """Latency of a demand load issued at cycle ``now``.

        Returns the load-to-use latency exactly as the blocking model would
        (hit latency, or miss latency derived from the fill cycle), after
        retiring any fills due by ``now``.  The caller is expected to have
        held the load while :meth:`load_would_block` was true, so a primary
        miss here always finds a free entry.
        """
        if not self.nonblocking:
            # Degeneracy anchor: one MSHR admits no overlap, so the
            # inherited blocking path *is* the model (bit-identical).
            return MemoryHierarchy.load_latency(self, addr)
        stats = self.stats
        stats.load_accesses += 1
        config = self.config
        latency = config.l1.latency
        if config.model_tlb:
            tlb_cache = self.tlb._cache
            page = addr >> tlb_cache._line_shift
            ways = tlb_cache._sets.get(page & tlb_cache._set_mask)
            if ways and ways[0] == page:
                tlb_stats = tlb_cache.stats
                tlb_stats.accesses += 1
                tlb_stats.hits += 1
            elif not tlb_cache.access(addr):
                stats.tlb_misses += 1
                latency += config.tlb.miss_penalty
        self._retire_due(now)
        l1 = self.l1
        line = addr >> l1._line_shift
        if l1.probe(addr):
            prefetched = self._prefetched
            if prefetched and line in prefetched:
                prefetched.discard(line)
                self.mlp_stats.prefetch_useful += 1
            self._train_prefetcher(pc, addr, now)
            return latency
        stats.l1_misses += 1
        mshr = self.mshr
        mstats = self.mlp_stats
        entry = mshr.match(addr)
        if entry is not None:
            # Secondary miss: coalesce onto the in-flight fill.  A demand
            # landing on a prefetch entry proves the prefetch useful.
            was_prefetch = entry.is_prefetch
            mshr.coalesce(entry, addr)
            mstats.misses_coalesced += 1
            if was_prefetch:
                mstats.prefetch_useful += 1
                self._prefetched.discard(line)
            self._train_prefetcher(pc, addr, now)
            return max(1, entry.fill_cycle - now)
        # Primary miss: probe L2 and allocate the fill.
        latency += config.l2.latency
        if self.mlp_config.l2_enabled:
            l2_hit = self.l2.probe(addr)
        else:
            l2_hit = self.l2.access(addr)     # blocking L2: install at miss
        install_l2 = False
        if not l2_hit:
            stats.l2_misses += 1
            latency += config.memory_latency
            install_l2 = self.mlp_config.l2_enabled
        entry = mshr.alloc(addr, now + latency, install_l2=install_l2)
        if entry is None:
            # The issue stage gates on load_would_block, so a full file here
            # means the caller bypassed the gate; fall back to blocking
            # semantics (charge the latency, install immediately) rather
            # than corrupting the CAM.
            self.l1.touch_line(addr)
            if install_l2:
                self.l2.touch_line(addr)
            return latency
        mstats.demand_misses += 1
        mstats.inflight_sum += mshr.demand_inflight
        occupancy = mshr.occupancy
        if occupancy > mstats.occupancy_peak:
            mstats.occupancy_peak = occupancy
        self._train_prefetcher(pc, addr, now)
        return latency

    def load_would_block(self, addr: int, now: int) -> bool:
        """True when a load to ``addr`` cannot issue at ``now``: the line is
        neither resident nor in flight and the MSHR file is full.

        Retires due fills first, so a stalled load un-blocks on exactly the
        cycle an entry frees — the structural stall's deterministic "fill
        event".  Uses non-counting probes only: a stalled cycle must not
        perturb any statistic.
        """
        if not self.nonblocking:
            return False
        mshr = self.mshr
        if not mshr.full:
            return False
        self._retire_due(now)
        if not mshr.full:
            return False
        return not (self.l1.lookup(addr) or mshr.match(addr) is not None)

    # ------------------------------------------------------------ internals --

    def _retire_due(self, now: int) -> None:
        """Install every fill that has landed by ``now`` into the caches."""
        mshr = self.mshr
        if not mshr.occupancy:
            return
        line_bytes = self.config.l1.line_bytes
        for entry in mshr.retire_due(now):
            addr = entry.line * line_bytes
            self.l1.touch_line(addr)
            if entry.install_l2:
                self.l2.touch_line(addr)
            if entry.is_prefetch:
                self._prefetched.add(entry.line)

    def _train_prefetcher(self, pc: int, addr: int, now: int) -> None:
        prefetcher = self.prefetcher
        if prefetcher is None:
            return
        targets = prefetcher.observe(pc, addr)
        if not targets:
            return
        mshr = self.mshr
        mlp = self.mlp_config
        mstats = self.mlp_stats
        for target in targets:
            if target < 0:
                continue
            if mshr.prefetch_inflight >= mlp.prefetch.max_outstanding:
                break
            if mshr.free_entries <= 1:        # never claim the last entry
                break
            if self.l1.lookup(target) or mshr.match(target) is not None:
                continue
            # Non-counting L2 residency probe: prefetch traffic must not
            # pollute demand hit/miss statistics.
            latency = self.config.l1.latency + self.config.l2.latency
            l2_resident = mlp.l2_enabled and self.l2.lookup(target)
            install_l2 = False
            if not l2_resident:
                latency += self.config.memory_latency
                install_l2 = mlp.l2_enabled
            entry = mshr.alloc(target, now + latency, is_prefetch=True,
                               install_l2=install_l2)
            if entry is None:
                break
            mstats.prefetch_issued += 1
            occupancy = mshr.occupancy
            if occupancy > mstats.occupancy_peak:
                mstats.occupancy_peak = occupancy

    # ----------------------------------------------------------- state I/O --

    def drain(self, now: Optional[int] = None) -> None:
        """Complete every outstanding fill (for tests / explicit handoffs).

        Installs the lines as if their fills had landed; ``now`` is ignored
        beyond documentation (all entries are treated as due).
        """
        line_bytes = self.config.l1.line_bytes
        slots = [entry for entry in self.mshr._slots if entry is not None]
        slots.sort(key=lambda entry: (entry.fill_cycle, entry.index))
        for entry in slots:
            self.mshr.retire(entry.index)
            addr = entry.line * line_bytes
            self.l1.touch_line(addr)
            if entry.install_l2:
                self.l2.touch_line(addr)
            if entry.is_prefetch:
                self._prefetched.add(entry.line)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.mlp_stats = MLPStats()

    def state_signature(self) -> tuple:
        signature = super().state_signature()
        return signature + (
            self.mshr.state_signature(),
            self.prefetcher.state_signature() if self.prefetcher is not None else (),
            tuple(sorted(self._prefetched)),
        )

"""Byte-addressable memory image.

The memory image holds the *architectural* (committed) memory state.  Stores
update it at commit; value-based re-execution reads it at load commit to
obtain the correct load value (all older stores have committed by then, so
the image is exactly the state the load should observe).

The image is sparse: only bytes that have been written are stored.  Unwritten
bytes read as a deterministic per-address background pattern so that two
independent simulations of the same trace observe identical "uninitialised"
values (important when comparing the speculative value read at execute time
against the re-executed value at commit time).
"""

from __future__ import annotations

from typing import Dict


def _background_byte(addr: int) -> int:
    """Deterministic pseudo-random background value for an unwritten byte.

    A cheap integer hash keeps different addresses from aliasing to the same
    value too often, which would mask mis-forwardings in tests.
    """
    x = (addr * 0x9E3779B97F4A7C15) & 0xFFFF_FFFF_FFFF_FFFF
    x ^= x >> 29
    return (x * 0xBF58476D1CE4E5B9 >> 56) & 0xFF


class MemoryImage:
    """Sparse byte-addressable memory.

    ``_bytes`` is the architectural state (explicitly written bytes only).
    ``_view`` overlays it with memoised background bytes — every byte ever
    read or written, so the hot read loop pays one dictionary probe per
    byte.  The overlay is pure derived data: excluded from pickles and
    :meth:`state_signature`, rebuilt lazily, and kept write-through
    consistent with ``_bytes``.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}
        self._view: Dict[int, int] = {}
        self._r8: Dict[int, int] = {}

    def write(self, addr: int, size: int, value: int) -> None:
        """Write ``size`` bytes of ``value`` (little-endian) at ``addr``."""
        if size <= 0:
            raise ValueError("write size must be positive")
        if value < 0:
            raise ValueError("write value must be non-negative")
        # Invalidate memoised 8-byte reads whose window overlaps the write.
        r8 = self._r8
        if r8:
            r8_pop = r8.pop
            for a in range(addr - 7, addr + size):
                r8_pop(a, None)
        data = self._bytes
        view = self._view
        for _ in range(size):
            data[addr] = view[addr] = value & 0xFF
            value >>= 8
            addr += 1

    def read(self, addr: int, size: int) -> int:
        """Read ``size`` bytes (little-endian) at ``addr``."""
        if size == 8:
            # Memoised whole-word fast path: loads are overwhelmingly 8-byte
            # re-reads of the same addresses (execute + commit re-read).
            value = self._r8.get(addr)
            if value is not None:
                return value
        elif size <= 0:
            raise ValueError("read size must be positive")
        view = self._view
        view_get = view.get
        value = 0
        shift = 0
        for a in range(addr, addr + size):
            byte = view_get(a)
            if byte is None:
                byte = view[a] = _background_byte(a)
            value |= byte << shift
            shift += 8
        if size == 8:
            self._r8[addr] = value
        return value

    def read_byte(self, addr: int) -> int:
        """Read a single byte."""
        byte = self._bytes.get(addr)
        if byte is None:
            return _background_byte(addr)
        return byte

    def is_written(self, addr: int) -> bool:
        """True if the byte at ``addr`` has been explicitly written."""
        return addr in self._bytes

    def written_byte_count(self) -> int:
        """Number of bytes explicitly written."""
        return len(self._bytes)

    def copy(self) -> "MemoryImage":
        """Deep copy of the image (used by the functional trace checker)."""
        clone = MemoryImage()
        clone._bytes = dict(self._bytes)
        clone._view = dict(self._bytes)
        clone._r8 = {}
        return clone

    def clear(self) -> None:
        """Discard all written bytes."""
        self._bytes.clear()
        self._view.clear()
        self._r8.clear()

    def __getstate__(self) -> dict:
        # The overlay is derived data; keeping it out of pickles keeps
        # checkpoint-store snapshots lean and content-stable.
        return {"_bytes": self._bytes}

    def __setstate__(self, state: dict) -> None:
        self._bytes = state["_bytes"]
        # Written bytes seed the overlay; background bytes rememoise lazily.
        self._view = dict(self._bytes)
        self._r8 = {}

    def state_signature(self) -> tuple:
        """Hashable snapshot of every explicitly written byte."""
        return tuple(sorted(self._bytes.items()))

"""Set-associative cache model.

The cache model tracks hit/miss behaviour only (tags + LRU state); data is
held architecturally by :class:`~repro.memory.image.MemoryImage`.  Latency is
a property of the cache level, and the hierarchy composes levels into a total
load-to-use latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by assoc*line "
                f"({self.assoc}*{self.line_bytes})")
        if self.latency < 1:
            raise ValueError("cache latency must be at least 1 cycle")
        n_sets = self.size_bytes // (self.assoc * self.line_bytes)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: number of sets ({n_sets}) must be a power of two")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(slots=True)
class CacheStats:
    """Access counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A single cache level with true-LRU replacement.

    The model is access-order based: every lookup either hits (updating LRU
    position) or misses and fills the line, potentially evicting the LRU way.
    Writes are treated as write-allocate (a store commit touches the line the
    same way a load does), which is adequate for latency modelling.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Per-set list of line tags in LRU order (index 0 = most recent).
        self._sets: Dict[int, List[int]] = {}
        self._set_mask = config.n_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1

    def _index_tag(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        return line & self._set_mask, line

    def lookup(self, addr: int) -> bool:
        """Probe the cache without modifying state; True on hit."""
        index, tag = self._index_tag(addr)
        return tag in self._sets.get(index, ())

    def access(self, addr: int) -> bool:
        """Access the cache; returns True on hit.

        Misses allocate the line (evicting LRU if the set is full).
        """
        line = addr >> self._line_shift
        sets = self._sets
        index = line & self._set_mask
        ways = sets.get(index)
        if ways is None:
            ways = sets[index] = []
        stats = self.stats
        stats.accesses += 1
        if ways:
            if ways[0] == line:         # MRU fast path (most hits land here)
                stats.hits += 1
                return True
            if line in ways:
                stats.hits += 1
                ways.remove(line)
                ways.insert(0, line)
                return True
        stats.misses += 1
        ways.insert(0, line)
        if len(ways) > self.config.assoc:
            ways.pop()
        return False

    def probe(self, addr: int) -> bool:
        """Access the cache *without* allocating on a miss; True on hit.

        The non-blocking hierarchy's counted lookup: hits update LRU and
        the counters exactly like :meth:`access`, but a missing line is
        installed only when its fill lands (:meth:`touch_line` at MSHR
        retire), not at miss time.
        """
        line = addr >> self._line_shift
        sets = self._sets
        index = line & self._set_mask
        ways = sets.get(index)
        stats = self.stats
        stats.accesses += 1
        if ways:
            if ways[0] == line:         # MRU fast path (most hits land here)
                stats.hits += 1
                return True
            if line in ways:
                stats.hits += 1
                ways.remove(line)
                ways.insert(0, line)
                return True
        stats.misses += 1
        return False

    def touch_line(self, addr: int) -> None:
        """Install a line without counting the access (used for warm-up)."""
        index, tag = self._index_tag(addr)
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self.config.assoc:
            ways.pop()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def resident_lines(self) -> frozenset:
        """The set of line tags currently resident (LRU order ignored).

        Functional warming replays accesses in program order while the
        detailed core accesses out of order, so LRU *order* differs
        slightly; the warming tests compare residency sets instead.
        """
        return frozenset(tag for ways in self._sets.values() for tag in ways)

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        self._sets.clear()

    def state_signature(self) -> tuple:
        """Hashable snapshot of the full contents *including* LRU order.

        Stricter than :meth:`resident_lines`: used where exactness is the
        contract (checkpoint export/import round trips), not where
        program-order vs execution-order reordering is expected.
        """
        return tuple(sorted((index, tuple(ways))
                            for index, ways in self._sets.items() if ways))


#: Default cache configurations from Section 4.1 of the paper.
DEFAULT_L1_CONFIG = CacheConfig(name="L1D", size_bytes=64 * 1024, assoc=2, line_bytes=64, latency=3)
DEFAULT_L2_CONFIG = CacheConfig(name="L2", size_bytes=1024 * 1024, assoc=8, line_bytes=64, latency=10)

"""Miss Status Holding Registers and the stride prefetcher.

This module holds the building blocks of the non-blocking memory hierarchy
(:mod:`repro.memory.mlp`): the bounded :class:`MSHRFile` that tracks
outstanding cache misses, and the per-PC :class:`StridePrefetcher` that
speculatively allocates prefetch entries into it.  It deliberately does not
import :mod:`repro.memory.hierarchy`, so the hierarchy config can embed
:class:`MLPConfig` without an import cycle.

The MSHR interface mirrors the synapse32 ``MSHR_REVIEW.md`` design:

* **alloc** — claim the lowest-numbered free entry for a missing line
  (first-fit priority encoding); refuse when the file is full.
* **match** — CAM lookup over the valid entries' line addresses; a hit means
  a fill for that line is already in flight and the request *coalesces*
  onto it (recorded in the entry's word mask) instead of allocating.
* **retire** — a fill completes and frees its entry.

Lines are 64 bytes by default, so the line address drops the bottom 6 bits
and the word mask tracks the 16 4-byte words of the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PrefetchConfig:
    """Stride-prefetcher knobs (inactive unless ``enabled``).

    The prefetcher keeps a small PC-indexed table of ``(last address,
    stride, confidence)`` records; once a PC has repeated the same stride
    ``confidence`` times, each further access issues up to ``degree``
    prefetches at successive stride multiples ahead.  Prefetches allocate
    MSHR entries tagged as prefetch — they never count against demand
    statistics and never claim the file's last free entry.
    """

    enabled: bool = False
    table_entries: int = 64
    degree: int = 2
    confidence: int = 2
    max_outstanding: int = 4

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.table_entries & (self.table_entries - 1):
            raise ValueError("prefetch table_entries must be a positive power of two")
        if self.degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        if self.confidence < 1:
            raise ValueError("prefetch confidence must be at least 1")
        if self.max_outstanding < 1:
            raise ValueError("prefetch max_outstanding must be at least 1")


@dataclass(frozen=True)
class MLPConfig:
    """Non-blocking hierarchy knobs (``MemoryHierarchyConfig.mlp``).

    ``enabled`` selects the MLP model at all; the blocking scalar-latency
    hierarchy stays the default.  ``mshr_entries == 1`` **is** the blocking
    model: a single MSHR admits no overlap, so the degenerate configuration
    delegates to the inherited blocking path and is bit-identical to it by
    construction (the golden-anchored degeneracy contract).  Consequently
    the genuinely non-blocking features — the lazily-filled L2 level and
    the prefetcher — require ``mshr_entries >= 2``.
    """

    enabled: bool = False
    mshr_entries: int = 8
    l2_enabled: bool = True
    prefetch: PrefetchConfig = PrefetchConfig()

    def __post_init__(self) -> None:
        if self.mshr_entries < 1:
            raise ValueError("mshr_entries must be at least 1")
        if self.mshr_entries == 1 and (self.l2_enabled or self.prefetch.enabled):
            raise ValueError(
                "mshr_entries=1 is the blocking degenerate mode: it requires "
                "l2_enabled=False and prefetch disabled")


@dataclass(slots=True)
class MLPStats:
    """Counters accumulated by the non-blocking hierarchy.

    ``inflight_sum`` adds the number of in-flight demand misses (including
    the new one) at every demand allocation, so ``inflight_sum /
    demand_misses`` is the average memory-level parallelism observed at
    miss time (``mlp_avg``).  ``occupancy_peak`` is a peak, not a sum.
    """

    demand_misses: int = 0
    misses_coalesced: int = 0
    inflight_sum: int = 0
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    occupancy_peak: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int]:
        """The summable counters (everything except the peak), for the
        core's warm-up delta accounting."""
        return (self.demand_misses, self.misses_coalesced, self.inflight_sum,
                self.prefetch_issued, self.prefetch_useful)

    @property
    def mlp_avg(self) -> float:
        return self.inflight_sum / self.demand_misses if self.demand_misses else 0.0


class MSHREntry:
    """One outstanding miss: the line being filled and when the fill lands."""

    __slots__ = ("index", "line", "fill_cycle", "word_mask", "coalesced",
                 "is_prefetch", "install_l2")

    def __init__(self, index: int, line: int, fill_cycle: int,
                 word_mask: int = 0, coalesced: int = 0,
                 is_prefetch: bool = False, install_l2: bool = False) -> None:
        self.index = index
        self.line = line
        self.fill_cycle = fill_cycle
        self.word_mask = word_mask          # 4-byte words of the line requested
        self.coalesced = coalesced          # secondary misses merged onto this fill
        self.is_prefetch = is_prefetch
        self.install_l2 = install_l2        # line also missed L2 -> install there on fill

    def as_tuple(self) -> tuple:
        return (self.index, self.line, self.fill_cycle, self.word_mask,
                self.coalesced, self.is_prefetch, self.install_l2)


class MSHRFile:
    """A bounded file of miss status holding registers.

    Entries are identified by their index (0 .. entries-1); allocation is
    first-fit (the lowest free index, the review's priority encoder), and
    the line-address CAM holds at most one valid entry per line — a request
    for an in-flight line must :meth:`coalesce`, never double-allocate —
    so a match is trivially the lowest matching index.
    """

    def __init__(self, entries: int, line_bytes: int = 64) -> None:
        if entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        self.entries = entries
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self._slots: List[Optional[MSHREntry]] = [None] * entries
        self._by_line: Dict[int, MSHREntry] = {}
        self._demand_inflight = 0

    # ------------------------------------------------------------- queries --

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def word_of(self, addr: int) -> int:
        """The 4-byte word index of ``addr`` within its line."""
        return (addr & (self.line_bytes - 1)) >> 2

    @property
    def occupancy(self) -> int:
        return len(self._by_line)

    @property
    def free_entries(self) -> int:
        return self.entries - len(self._by_line)

    @property
    def full(self) -> bool:
        return len(self._by_line) >= self.entries

    @property
    def demand_inflight(self) -> int:
        return self._demand_inflight

    @property
    def prefetch_inflight(self) -> int:
        return len(self._by_line) - self._demand_inflight

    def match(self, addr: int) -> Optional[MSHREntry]:
        """CAM lookup: the valid entry filling ``addr``'s line, if any."""
        return self._by_line.get(addr >> self._line_shift)

    # ----------------------------------------------------- alloc / coalesce --

    def alloc(self, addr: int, fill_cycle: int, *, is_prefetch: bool = False,
              install_l2: bool = False) -> Optional[MSHREntry]:
        """Claim the lowest free entry for ``addr``'s line; None when full.

        The caller must have checked :meth:`match` first — allocating a
        second entry for an in-flight line would break the one-entry-per-
        line CAM invariant and raises.
        """
        line = addr >> self._line_shift
        if line in self._by_line:
            raise ValueError(f"line {line:#x} already has an in-flight MSHR entry")
        slots = self._slots
        for index in range(self.entries):     # first-fit priority encoder
            if slots[index] is None:
                entry = MSHREntry(index, line, fill_cycle,
                                  word_mask=1 << self.word_of(addr),
                                  is_prefetch=is_prefetch, install_l2=install_l2)
                slots[index] = entry
                self._by_line[line] = entry
                if not is_prefetch:
                    self._demand_inflight += 1
                return entry
        return None

    def coalesce(self, entry: MSHREntry, addr: int) -> None:
        """Merge a secondary miss for ``addr`` onto an in-flight entry.

        A demand miss landing on an in-flight *prefetch* entry promotes it
        to demand — the fill timing is unchanged (the request is already on
        its way), only the accounting class changes.
        """
        entry.word_mask |= 1 << self.word_of(addr)
        entry.coalesced += 1
        if entry.is_prefetch:
            entry.is_prefetch = False
            self._demand_inflight += 1

    # ---------------------------------------------------------------- retire --

    def retire(self, index: int) -> MSHREntry:
        """Free one entry by index (the review's retire_req/retire_id)."""
        entry = self._slots[index]
        if entry is None:
            raise ValueError(f"MSHR entry {index} is not valid")
        self._slots[index] = None
        del self._by_line[entry.line]
        if not entry.is_prefetch:
            self._demand_inflight -= 1
        return entry

    def retire_due(self, now: int) -> List[MSHREntry]:
        """Free every entry whose fill has landed (``fill_cycle <= now``).

        Returned in (fill_cycle, index) order so the caller installs lines
        in the deterministic order the fills completed.
        """
        due = [entry for entry in self._slots
               if entry is not None and entry.fill_cycle <= now]
        if not due:
            return due
        due.sort(key=lambda entry: (entry.fill_cycle, entry.index))
        for entry in due:
            self.retire(entry.index)
        return due

    # ----------------------------------------------------------- state I/O --

    def export_state(self) -> dict:
        return {
            "entries": self.entries,
            "line_bytes": self.line_bytes,
            "slots": [entry.as_tuple() for entry in self._slots if entry is not None],
        }

    def import_state(self, state: dict) -> None:
        if state["entries"] != self.entries or state["line_bytes"] != self.line_bytes:
            raise ValueError("MSHR geometry mismatch on import")
        self._slots = [None] * self.entries
        self._by_line = {}
        self._demand_inflight = 0
        for (index, line, fill_cycle, word_mask, coalesced,
             is_prefetch, install_l2) in state["slots"]:
            entry = MSHREntry(index, line, fill_cycle, word_mask, coalesced,
                              is_prefetch, install_l2)
            self._slots[index] = entry
            self._by_line[line] = entry
            if not is_prefetch:
                self._demand_inflight += 1

    def state_signature(self) -> tuple:
        """Hashable exact snapshot (geometry + every valid entry)."""
        return (self.entries, self.line_bytes,
                tuple(entry.as_tuple() for entry in self._slots if entry is not None))


class StridePrefetcher:
    """Per-PC stride detector issuing line prefetch candidates.

    ``observe`` is called once per demand load (hit or miss) and returns the
    addresses worth prefetching — the hierarchy decides which of those
    actually allocate (free MSHR capacity, residency, outstanding-prefetch
    budget).  The table is direct-mapped on the low PC bits with full-PC
    tags, like the classic reference-prediction-table design.
    """

    def __init__(self, config: PrefetchConfig) -> None:
        self.config = config
        self._mask = config.table_entries - 1
        # index -> [pc_tag, last_addr, stride, confidence]
        self._table: Dict[int, List[int]] = {}

    def observe(self, pc: int, addr: int) -> List[int]:
        slot = pc & self._mask
        row = self._table.get(slot)
        if row is None or row[0] != pc:
            self._table[slot] = [pc, addr, 0, 0]
            return []
        stride = addr - row[1]
        if stride != 0 and stride == row[2]:
            row[3] += 1
        else:
            row[2] = stride
            row[3] = 0
        row[1] = addr
        if stride == 0 or row[3] < self.config.confidence:
            return []
        return [addr + stride * (k + 1) for k in range(self.config.degree)]

    def export_state(self) -> dict:
        return {"table": {slot: list(row) for slot, row in self._table.items()}}

    def import_state(self, state: dict) -> None:
        self._table = {int(slot): list(row)
                       for slot, row in state["table"].items()}

    def state_signature(self) -> tuple:
        return tuple(sorted((slot, tuple(row)) for slot, row in self._table.items()))


#: Names re-exported by :mod:`repro.memory`.
__all__ = [
    "MLPConfig",
    "MLPStats",
    "MSHREntry",
    "MSHRFile",
    "PrefetchConfig",
    "StridePrefetcher",
]

"""Two-level cache hierarchy with flat main memory.

Composes an L1 data cache, a unified L2, a data TLB, and main memory into a
single ``load latency`` / ``store commit`` interface used by the load-store
unit.  Latencies follow Section 4.1 of the paper: 3-cycle L1, 10-cycle L2,
150-cycle memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import Cache, CacheConfig, DEFAULT_L1_CONFIG, DEFAULT_L2_CONFIG
from repro.memory.mshr import MLPConfig
from repro.memory.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Configuration of the full memory hierarchy.

    ``mlp`` selects the non-blocking model
    (:class:`~repro.memory.mlp.NonBlockingHierarchy`; MSHR-tracked
    outstanding misses, miss coalescing, lazily-filled L2, optional stride
    prefetcher).  It is off by default — this class alone always models the
    blocking scalar-latency hierarchy — and is honoured by
    :func:`repro.memory.mlp.build_hierarchy`, the construction point the
    detailed core and the functional warmer share.
    """

    l1: CacheConfig = DEFAULT_L1_CONFIG
    l2: CacheConfig = DEFAULT_L2_CONFIG
    tlb: TLBConfig = TLBConfig()
    memory_latency: int = 150
    model_tlb: bool = True
    mlp: MLPConfig = MLPConfig()

    def __post_init__(self) -> None:
        if self.memory_latency < 1:
            raise ValueError("memory latency must be at least one cycle")


@dataclass(slots=True)
class HierarchyStats:
    """Aggregate statistics for the hierarchy."""

    load_accesses: int = 0
    store_accesses: int = 0
    l1_misses: int = 0
    l2_misses: int = 0
    tlb_misses: int = 0

    def l1_miss_rate(self) -> float:
        """L1 misses per access; 0.0 when nothing was accessed."""
        total = self.load_accesses + self.store_accesses
        return self.l1_misses / total if total else 0.0

    def l2_miss_rate(self) -> float:
        """L2 *local* miss rate (misses per L1 miss); 0.0 when L2 was idle."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0

    def tlb_miss_rate(self) -> float:
        """TLB misses per access; 0.0 when nothing was accessed."""
        total = self.load_accesses + self.store_accesses
        return self.tlb_misses / total if total else 0.0


class MemoryHierarchy:
    """L1 + L2 + memory latency model with an optional TLB."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config or MemoryHierarchyConfig()
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.tlb = TLB(self.config.tlb)
        self.stats = HierarchyStats()

    @property
    def l1_latency(self) -> int:
        """The load-to-use latency of an L1 hit (the scheduler's assumption)."""
        return self.config.l1.latency

    def load_latency(self, addr: int) -> int:
        """Latency of a load to ``addr``, updating cache/TLB state."""
        stats = self.stats
        stats.load_accesses += 1
        config = self.config
        latency = config.l1.latency
        if config.model_tlb:
            # Inlined TLB page-cache MRU-hit path (the overwhelmingly common
            # case); anything else goes through Cache.access.
            tlb_cache = self.tlb._cache
            page = addr >> tlb_cache._line_shift
            ways = tlb_cache._sets.get(page & tlb_cache._set_mask)
            if ways and ways[0] == page:
                tlb_stats = tlb_cache.stats
                tlb_stats.accesses += 1
                tlb_stats.hits += 1
            elif not tlb_cache.access(addr):
                stats.tlb_misses += 1
                latency += config.tlb.miss_penalty
        # Inlined L1 MRU-hit path.
        l1 = self.l1
        line = addr >> l1._line_shift
        ways = l1._sets.get(line & l1._set_mask)
        if ways and ways[0] == line:
            l1_stats = l1.stats
            l1_stats.accesses += 1
            l1_stats.hits += 1
            return latency
        if l1.access(addr):
            return latency
        stats.l1_misses += 1
        latency += config.l2.latency
        if self.l2.access(addr):
            return latency
        stats.l2_misses += 1
        return latency + config.memory_latency

    def store_touch(self, addr: int) -> int:
        """Model a store commit touching the hierarchy; returns latency.

        Store commit latency is off the critical path (stores retire into a
        write buffer), so the returned latency is informational only, but the
        line allocation keeps subsequent loads to the same line warm.
        """
        stats = self.stats
        stats.store_accesses += 1
        config = self.config
        latency = config.l1.latency
        if config.model_tlb:
            # Inlined TLB page-cache MRU-hit path (the overwhelmingly common
            # case); anything else goes through Cache.access.
            tlb_cache = self.tlb._cache
            page = addr >> tlb_cache._line_shift
            ways = tlb_cache._sets.get(page & tlb_cache._set_mask)
            if ways and ways[0] == page:
                tlb_stats = tlb_cache.stats
                tlb_stats.accesses += 1
                tlb_stats.hits += 1
            elif not tlb_cache.access(addr):
                stats.tlb_misses += 1
                latency += config.tlb.miss_penalty
        # Inlined L1 MRU-hit path.
        l1 = self.l1
        line = addr >> l1._line_shift
        ways = l1._sets.get(line & l1._set_mask)
        if ways and ways[0] == line:
            l1_stats = l1.stats
            l1_stats.accesses += 1
            l1_stats.hits += 1
            return latency
        if l1.access(addr):
            return latency
        stats.l1_misses += 1
        latency += config.l2.latency
        if self.l2.access(addr):
            return latency
        stats.l2_misses += 1
        return latency + config.memory_latency

    def warm(self, addr: int) -> None:
        """Pre-install the line holding ``addr`` into L1 and L2 (warm-up)."""
        self.l1.touch_line(addr)
        self.l2.touch_line(addr)

    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.tlb.reset_stats()

    def state_signature(self) -> tuple:
        """Hashable snapshot of L1 + L2 + TLB contents (exact, LRU order
        included); used by the checkpoint round-trip tests."""
        return (self.l1.state_signature(), self.l2.state_signature(),
                self.tlb.state_signature())

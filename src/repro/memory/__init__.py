"""Memory system substrate.

Implements the byte-addressable memory image used for value-based load
re-execution, a configurable set-associative cache model, a TLB model, and a
two-level cache hierarchy with a flat-latency main memory, matching the
configuration in Section 4.1 of the paper (64 KB 2-way 3-cycle L1, 1 MB 8-way
10-cycle L2, 150-cycle memory, 128-entry 4-way TLBs).
"""

from repro.memory.image import MemoryImage
from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.hierarchy import MemoryHierarchy, MemoryHierarchyConfig
from repro.memory.mshr import (
    MLPConfig,
    MLPStats,
    MSHREntry,
    MSHRFile,
    PrefetchConfig,
    StridePrefetcher,
)
from repro.memory.mlp import NonBlockingHierarchy, build_hierarchy

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "MLPConfig",
    "MLPStats",
    "MSHREntry",
    "MSHRFile",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "MemoryImage",
    "NonBlockingHierarchy",
    "PrefetchConfig",
    "StridePrefetcher",
    "TLB",
    "TLBConfig",
    "build_hierarchy",
]

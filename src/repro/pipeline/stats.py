"""Simulation statistics.

:class:`SimStats` accumulates every counter the experiments report:
Table 3's forwarding/mis-forwarding/delay diagnostics, Figure 4's execution
times, and general sanity counters (branch mispredictions, cache misses,
re-execution rate) used by tests and the EXPERIMENTS.md narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass(slots=True)
class SimStats:
    """Counters accumulated over one simulation run."""

    # Progress.
    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    # Store-load forwarding diagnostics (Table 3).
    loads_forwarded: int = 0              # value obtained from the SQ
    loads_should_forward: int = 0         # an older in-flight store had the value
    mis_forwardings: int = 0              # missed forwarding -> value wrong -> flush
    ordering_violations: int = 0          # all re-execution value mismatches
    loads_delayed: int = 0                # delayed by the DDP constraint
    total_delay_cycles: int = 0
    loads_waited_on_prediction: int = 0   # scheduling wait on the predicted store

    # Pipeline events.
    flushes: int = 0
    branch_mispredictions: int = 0
    replays: int = 0
    ssn_wraps: int = 0
    squashed_uops: int = 0

    # Front-end / structural stalls (cycles during which the stage could not
    # make progress for the given reason; diagnostic only).
    fetch_stall_cycles: int = 0
    rob_stall_cycles: int = 0
    iq_stall_cycles: int = 0
    lq_stall_cycles: int = 0
    sq_stall_cycles: int = 0

    # Re-execution filter.
    loads_reexecuted: int = 0

    # Memory system.
    l1_misses: int = 0
    l2_misses: int = 0

    # Non-blocking memory hierarchy (the MLP model, repro.memory.mlp).
    # Populated only when the run modelled MSHRs (``mshr_modeled``);
    # ``as_dict`` omits the whole block otherwise so blocking-model runs
    # keep their historical report shape (the golden contract).
    mshr_modeled: int = 0                 # 1 when the MLP model was active
    mshr_demand_misses: int = 0           # demand MSHR allocations
    mshr_inflight_sum: int = 0            # in-flight demand count at each allocation
    misses_coalesced: int = 0             # secondary misses merged onto in-flight fills
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    mshr_stall_cycles: int = 0            # cycles the load class was held, file full
    mshr_occupancy: int = 0               # peak valid entries (merged as max)

    # -- derived metrics --------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def forwarding_rate(self) -> float:
        """Fraction of committed loads that should obtain values from the SQ."""
        return self.loads_should_forward / self.committed_loads if self.committed_loads else 0.0

    @property
    def forwarded_rate(self) -> float:
        """Fraction of committed loads that actually obtained values from the SQ."""
        return self.loads_forwarded / self.committed_loads if self.committed_loads else 0.0

    @property
    def mis_forwardings_per_1000_loads(self) -> float:
        return 1000.0 * self.mis_forwardings / self.committed_loads if self.committed_loads else 0.0

    @property
    def percent_loads_delayed(self) -> float:
        return 100.0 * self.loads_delayed / self.committed_loads if self.committed_loads else 0.0

    @property
    def avg_delay_cycles(self) -> float:
        return self.total_delay_cycles / self.loads_delayed if self.loads_delayed else 0.0

    @property
    def reexecution_rate(self) -> float:
        return self.loads_reexecuted / self.committed_loads if self.committed_loads else 0.0

    @property
    def branch_misprediction_rate(self) -> float:
        return self.branch_mispredictions / self.committed_branches if self.committed_branches else 0.0

    @property
    def mlp_avg(self) -> float:
        """Average in-flight demand misses observed at miss time."""
        return self.mshr_inflight_sum / self.mshr_demand_misses \
            if self.mshr_demand_misses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        return self.prefetch_useful / self.prefetch_issued if self.prefetch_issued else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten counters and derived metrics for reporting.

        The MSHR/prefetch block appears only for runs that modelled the
        non-blocking hierarchy; blocking-model runs (including the
        mshr_entries=1 degenerate mode) report the historical key set, so
        golden comparisons and the degeneracy anchor hold exactly.
        """
        result: Dict[str, float] = {}
        for stats_field in fields(self):
            result[stats_field.name] = getattr(self, stats_field.name)
        if self.mshr_modeled:
            result["mlp_avg"] = self.mlp_avg
            result["prefetch_accuracy"] = self.prefetch_accuracy
        else:
            for name in _MLP_FIELD_NAMES:
                del result[name]
        result.update({
            "ipc": self.ipc,
            "forwarding_rate": self.forwarding_rate,
            "forwarded_rate": self.forwarded_rate,
            "mis_forwardings_per_1000_loads": self.mis_forwardings_per_1000_loads,
            "percent_loads_delayed": self.percent_loads_delayed,
            "avg_delay_cycles": self.avg_delay_cycles,
            "reexecution_rate": self.reexecution_rate,
            "branch_misprediction_rate": self.branch_misprediction_rate,
        })
        return result


#: The gated non-blocking-hierarchy counters (see ``SimStats.as_dict``).
_MLP_FIELD_NAMES = (
    "mshr_modeled", "mshr_demand_misses", "mshr_inflight_sum",
    "misses_coalesced", "prefetch_issued", "prefetch_useful",
    "mshr_stall_cycles", "mshr_occupancy",
)

"""The vector kernel's fused run loop (struct-of-arrays dynamic state).

This module is the pure-Python reference implementation of the ``vector``
detailed-core kernel (:mod:`repro.pipeline.vector`) and the compilation unit
of the optional ``compiled`` kernel (``tools/build_kernel.py`` builds it —
via Cython or mypyc, whichever is installed — into the native extension
``repro.pipeline._kernel`` exporting the same :func:`run_core_loop`).

Design:

* **Array-per-field dynamic state.**  The per-uop ``_Inflight`` object of
  the object kernel is replaced by parallel arrays indexed by *in-flight
  slot*: ``slot = seq & (cap - 1)`` with ``cap`` the power of two at or
  above the ROB size.  In-flight sequence numbers always form a contiguous
  range no wider than the ROB (records live exactly while they sit in the
  ROB), so two live records can never collide on a slot, and a slot is
  recycled the moment its old occupant leaves the window.  The arrays are
  allocated once per run and never grow with trace length.

* **Generation tokens.**  A flush squashes a suffix of the window and fetch
  re-dispatches the *same* sequence numbers, so a raw ``seq`` stored in a
  side structure (consumer lists, forward/delay waiter lists, completion
  buckets) could alias the refetched instance of itself.  Every dispatch
  therefore stamps its slot with a fresh token (a global dispatch counter
  shifted over the slot bits); side structures hold tokens, and a held
  token is treated exactly as the object kernel treats a stale record
  reference: ignored unless it still matches its slot.  The ready heaps
  hold plain sequence numbers — age *is* the issue priority — validated
  against the slot on pop (stale entries purge exactly where the object
  kernel purges its squashed/issued tuples).

* **One fused pass.**  Dispatch, issue, wakeup, commit, flush, and the
  idle fast-forward are inlined into a single loop with every loop
  invariant (static-plane arrays, config scalars, policy bound methods,
  queue internals) held in locals, eliminating the per-cycle call frames
  and ``self`` attribute traffic that dominate the object kernel's
  profile.

Bit-identity with the object kernel — every ``SimStats`` counter, every
policy/predictor interaction, every flush and replay — is the contract,
enforced by the golden regression (``tests/golden/hotpath_golden.json``),
the kernel property suite, and the ``BENCH_core.json`` legs.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.isa.plane import KIND_BRANCH, KIND_LOAD, KIND_STORE
from repro.isa.registers import REG_ZERO
from repro.lsu.policies import LoadCommitInfo, LoadPrediction
from repro.lsu.store_queue import StoreQueueEntry
from repro.pipeline.rename import ARCH_READY
from repro.pipeline.stats import SimStats


def run_core_loop(core, encoded, warmup_committed, stop_committed):
    """Run ``core`` over ``encoded`` to ``stop_committed`` instructions.

    The caller (:meth:`repro.pipeline.vector.VectorCore.run`) has already
    validated arguments, bound the trace, and warmed the caches; this
    function owns the cycle loop.  On return ``core.stats`` is a fresh
    :class:`SimStats` holding the (possibly warm-up-reset) counters, and
    the scalar machine state (``_cycle``, ``_fetch_seq``, …) is synced
    back to ``core``.  Returns ``(warmup_cycle_offset,
    warmup_instr_offset, warmup_l1_misses, warmup_l2_misses, mlp_base)``
    for the caller's result assembly, mirroring the object kernel's tail.
    """
    config = core.config
    policy = core.policy
    memory = core.memory
    hierarchy = core.hierarchy
    mlp_hier = core._mlp_hier
    ssn_alloc = core.ssn_alloc
    rob = core.rob
    lq = core.load_queue
    sq = core.store_queue
    rat_map = core.rat._map
    last_writer = core._last_writer
    last_writer_get = last_writer.get

    plane = encoded.plane
    (kind_arr, pc_arr, dest_arr, srcs_arr, iidx_arr, latency_arr,
     hint_call_arr, hint_return_arr) = plane.dispatch_arrays()
    (sidx, addr_arr, size_arr, value_arr, taken_arr,
     target_arr) = encoded.dynamic_arrays()
    total = len(sidx)

    # Config scalars.
    rename_width = config.rename_width
    taken_per_cycle = config.taken_branches_per_cycle
    iq_size = config.issue_queue_size
    rob_size = rob.size
    lq_size = lq.size
    sq_size = sq.size
    commit_width = config.commit_width
    commit_delay = config.backend_commit_delay
    branch_redirect_penalty = config.branch_redirect_penalty
    flush_penalty = config.flush_penalty
    replay_penalty = config.replay_penalty
    model_ssn_wrap = config.model_ssn_wrap
    ssn_wrap_drain_penalty = config.ssn_wrap_drain_penalty
    limits = config.issue_limits
    limit_int = limits.int_ops
    limit_fp = limits.fp_ops
    limit_branch = limits.branches
    limit_load = limits.loads
    limit_store = limits.stores
    issue_width = config.issue_width
    max_cycles = config.max_cycles
    # A beyond-any-run sentinel keeps the per-cycle bound checks branchless
    # on the default (unbounded) configuration.
    max_cycles_eff = max_cycles if max_cycles is not None else 1 << 62
    idle_skip = config.idle_skip
    deadlock_limit = core.DEADLOCK_LIMIT

    # Policy / machine bound methods (bound after any import_state, so
    # warmed state is what gets captured — same rule as the object kernel's
    # dispatch closure).
    policy_predict_load = policy.predict_load
    policy_forward = policy.forward
    policy_assumed_latency = policy.assumed_load_latency
    policy_forwarded_latency = policy.forwarded_load_latency
    policy_store_renamed = policy.store_renamed
    policy_store_dependence = policy.store_dependence
    policy_store_squashed = policy.store_squashed
    policy_store_committed = policy.store_committed
    policy_needs_reexec = policy.needs_reexecution
    policy_load_committed = policy.load_committed
    fast_reexec = core._fast_reexec
    fast_store_commit = core._fast_store_commit
    svw = policy.svw
    svw_stats = svw.stats
    svw_ssbf_update = svw.ssbf.update
    svw_spct_update = svw.spct.update
    svw_ssbf_lookup = svw.ssbf.lookup
    hier_stats = hierarchy.stats
    hier_store_touch = hierarchy.store_touch
    hier_load_latency = hierarchy.load_latency
    l1_latency = hierarchy.l1_latency
    mlp_load_access = mlp_hier.load_access if mlp_hier is not None else None
    mlp_would_block = mlp_hier.load_would_block if mlp_hier is not None else None
    memory_read = memory.read
    memory_write = memory.write
    branch_resolve = core.branch_unit.predict_and_resolve
    # SSN allocator state as locals (no reader outside this loop sees it
    # mid-run — policy hooks receive the values as arguments); synced back
    # on exit.  The wrap test is the allocator's own mask test, inlined.
    ssn_rename = ssn_alloc.ssn_rename
    ssn_commit = ssn_alloc.ssn_commit
    ssn_hw_wraps = ssn_alloc.wraps
    ssn_wrap_mask = ssn_alloc._wrap_mask
    sq_entries = sq._entries
    sq_slots = sq._slots
    sq_stats = sq.stats
    sq_size_mask = sq.size - 1
    sq_entry_cls = StoreQueueEntry
    sq_entry_new = StoreQueueEntry.__new__
    sq_write_execute = sq.write_execute
    sq_release = sq.release
    sq_squash_younger = sq.squash_younger
    load_info_cls = LoadCommitInfo
    load_info_new = LoadCommitInfo.__new__
    reg_zero = REG_ZERO
    arch_ready = ARCH_READY

    # --------------------------------------------- struct-of-arrays state --
    cap = 1 << (rob_size - 1).bit_length() if rob_size > 1 else 1
    mask = cap - 1
    tok_shift = mask.bit_length()
    v_seq = [-1] * cap        # current occupant's sequence number
    v_tok = [-1] * cap        # current occupant's generation token
    v_kind = [0] * cap
    v_pc = [0] * cap
    v_dest = [None] * cap
    v_iclass = [0] * cap
    v_lat = [0] * cap
    v_squashed = [0] * cap
    v_wait_srcs = [0] * cap
    v_wait_fwd = [0] * cap
    v_wait_dly = [0] * cap
    v_issued = [0] * cap
    v_completed = [0] * cap
    v_ready_pushed = [0] * cap
    v_consumers = [None] * cap     # list of consumer tokens, or None
    v_other_ready = [0] * cap
    v_completion = [0] * cap
    v_rat_undo = [None] * cap
    v_addr = [0] * cap
    v_size = [0] * cap
    v_value = [0] * cap            # store value
    v_ssn = [0] * cap              # store SSN
    v_sat_undo = [None] * cap
    v_oracle_undo = [None] * cap
    v_fwd_waiters = [None] * cap   # list of waiter tokens, or None
    v_pred = [None] * cap          # LoadPrediction
    v_ssn_ren = [0] * cap
    v_oracle_dep = [0] * cap
    v_spec = [0] * cap
    v_forwarded = [0] * cap
    v_fwd_ssn = [0] * cap
    v_svw_ssn = [0] * cap
    v_should_fwd = [0] * cap
    v_delay_cycles = [0] * cap
    v_dly_clear = [0] * cap
    v_mispred = [0] * cap
    disp = 0                       # global dispatch (generation) counter

    # Window structures: plain int deques for ROB and LQ order (only the
    # store queue keeps its entry objects — policies probe it directly).
    # Occupancies are shadowed in plain int counters: cheaper than len()
    # in the per-uop dispatch guards and the per-cycle idle-skip guard.
    rob_seqs = deque()
    rob_popleft = rob_seqs.popleft
    rob_push = rob_seqs.append
    rob_drop = rob_seqs.pop
    rob_occ = 0
    lq_seqs = deque()
    lq_popleft = lq_seqs.popleft
    lq_push = lq_seqs.append
    lq_drop = lq_seqs.pop
    lq_occ = 0
    rob_alloc = rob.allocations
    rob_maxocc = rob.max_occupancy
    lq_stats = lq.stats
    lq_allocs = lq_stats.allocations
    lq_releases = lq_stats.releases
    lq_squashes = lq_stats.squashes

    heaps = [[], [], [], [], []]   # one ready heap of seqs per issue class
    ready_count = 0
    completions = {}               # completion cycle -> list of tokens
    completions_pop = completions.pop
    completions_get = completions.get
    store_by_ssn = {}              # in-flight SSN -> store token
    store_by_ssn_get = store_by_ssn.get
    store_by_ssn_pop = store_by_ssn.pop
    dly_waiters = {}               # delay-index SSN -> list of load tokens
    dly_waiters_get = dly_waiters.get
    dly_waiters_pop = dly_waiters.pop

    # Scalar machine state (continues from the core, as the object kernel's
    # run does when called on a reused core).
    cycle = core._cycle
    fetch_seq = core._fetch_seq
    fetch_resume = core._fetch_resume_cycle
    fetch_blocked_tok = -1
    iq_occ = core._iq_occupancy

    # SimStats counters as locals (written back at the end; zeroed at the
    # warm-up boundary exactly as the object kernel's stats reset does).
    stats0 = core.stats
    committed_total = stats0.committed
    c_stores = stats0.committed_stores
    c_loads = stats0.committed_loads
    c_branches = stats0.committed_branches
    c_reexec = stats0.loads_reexecuted
    c_should_fwd = stats0.loads_should_forward
    c_fwd = stats0.loads_forwarded
    c_delayed = stats0.loads_delayed
    c_delay_cycles = stats0.total_delay_cycles
    c_violations = stats0.ordering_violations
    c_misfwd = stats0.mis_forwardings
    c_flushes = stats0.flushes
    c_squashed = stats0.squashed_uops
    c_mispred = stats0.branch_mispredictions
    c_replays = stats0.replays
    c_ssn_wraps = stats0.ssn_wraps
    c_fetch_stall = stats0.fetch_stall_cycles
    c_rob_stall = stats0.rob_stall_cycles
    c_iq_stall = stats0.iq_stall_cycles
    c_lq_stall = stats0.lq_stall_cycles
    c_sq_stall = stats0.sq_stall_cycles
    c_waited = stats0.loads_waited_on_prediction
    c_mshr_stall = stats0.mshr_stall_cycles

    warmup_done = warmup_committed == 0
    warmup_cycle_offset = 0
    warmup_instr_offset = 0
    warmup_l1 = 0
    warmup_l2 = 0
    mlp_base = mlp_hier.mlp_stats.snapshot() if mlp_hier is not None else None
    last_commit_cycle = 0

    while committed_total < stop_committed:
        # ------------------------------------------------ idle fast-forward --
        if idle_skip and not ready_count:
            nxt = cycle + 1
            skip = True
            if fetch_blocked_tok < 0 and nxt >= fetch_resume \
                    and fetch_seq < total:
                k = kind_arr[sidx[fetch_seq]]
                if not (rob_occ >= rob_size or iq_occ >= iq_size
                        or (k == KIND_LOAD and lq_occ >= lq_size)
                        or (k == KIND_STORE and len(sq_entries) >= sq_size)):
                    skip = False
            if skip:
                target = min(completions) if completions else None
                if rob_seqs:
                    hi = rob_seqs[0] & mask
                    if v_completed[hi]:
                        commit_at = v_completion[hi] + commit_delay
                        if target is None or commit_at < target:
                            target = commit_at
                if fetch_blocked_tok < 0 and fetch_seq < total \
                        and fetch_resume > nxt:
                    if target is None or fetch_resume < target:
                        target = fetch_resume
                if target is not None:
                    if target > max_cycles_eff:
                        target = max_cycles_eff
                    if target > nxt:
                        # Charge the skipped cycles nxt..target-1 to the
                        # stall counters the straight-line loop would have.
                        n = target - nxt
                        if fetch_blocked_tok >= 0:
                            c_fetch_stall += n
                        else:
                            blocked = fetch_resume - nxt
                            if blocked < 0:
                                blocked = 0
                            elif blocked > n:
                                blocked = n
                            c_fetch_stall += blocked
                            rest = n - blocked
                            if rest > 0 and fetch_seq < total:
                                if rob_occ >= rob_size:
                                    c_rob_stall += rest
                                elif iq_occ >= iq_size:
                                    c_iq_stall += rest
                                else:
                                    k = kind_arr[sidx[fetch_seq]]
                                    if k == KIND_LOAD \
                                            and lq_occ >= lq_size:
                                        c_lq_stall += rest
                                    elif k == KIND_STORE \
                                            and len(sq_entries) >= sq_size:
                                        c_sq_stall += rest
                        cycle = target - 1
        cycle += 1

        # ---------------------------------------------------- completions --
        if completions:
            ops = completions_pop(cycle, None)
            if ops:
                for tok in ops:
                    i = tok & mask
                    if v_tok[i] != tok or v_squashed[i]:
                        continue
                    v_completed[i] = 1
                    if v_kind[i] == KIND_STORE:
                        sq_write_execute(v_ssn[i], v_addr[i], v_size[i],
                                         v_value[i])
                        waiters = v_fwd_waiters[i]
                        if waiters:
                            for wtok in waiters:
                                wi = wtok & mask
                                if v_tok[wi] != wtok or v_squashed[wi] \
                                        or not v_wait_fwd[wi]:
                                    continue
                                v_wait_fwd[wi] = 0
                                if v_issued[wi] or v_ready_pushed[wi]:
                                    continue
                                if v_wait_srcs[wi] == 0:
                                    if v_other_ready[wi] < 0:
                                        v_other_ready[wi] = cycle
                                    if not v_wait_dly[wi]:
                                        v_ready_pushed[wi] = 1
                                        ready_count += 1
                                        heappush(heaps[v_iclass[wi]],
                                                 v_seq[wi])
                            v_fwd_waiters[i] = None
                    # Only a mispredicted branch can block fetch.
                    if fetch_blocked_tok == tok:
                        fetch_blocked_tok = -1
                        resume = cycle + branch_redirect_penalty
                        if resume > fetch_resume:
                            fetch_resume = resume
                    consumers = v_consumers[i]
                    if consumers:
                        for ctok in consumers:
                            ci = ctok & mask
                            if v_tok[ci] != ctok or v_squashed[ci]:
                                continue
                            w = v_wait_srcs[ci] = v_wait_srcs[ci] - 1
                            if (w == 0 and not v_wait_fwd[ci]
                                    and not v_issued[ci]
                                    and not v_ready_pushed[ci]):
                                if v_other_ready[ci] < 0:
                                    v_other_ready[ci] = cycle
                                if not v_wait_dly[ci]:
                                    v_ready_pushed[ci] = 1
                                    ready_count += 1
                                    heappush(heaps[v_iclass[ci]], v_seq[ci])
                        v_consumers[i] = None

        # --------------------------------------------------------- commit --
        committed_now = 0
        if rob_seqs and v_completed[rob_seqs[0] & mask]:
            while committed_now < commit_width:
                if not rob_seqs:
                    break
                seq0 = rob_seqs[0]
                i = seq0 & mask
                if not v_completed[i] or v_completion[i] + commit_delay > cycle:
                    break
                rob_popleft()
                rob_occ -= 1
                committed_now += 1
                committed_total += 1
                dest = v_dest[i]
                if dest is not None and dest != reg_zero \
                        and rat_map[dest] == seq0:
                    rat_map[dest] = arch_ready
                kind = v_kind[i]
                if kind == KIND_STORE:
                    addr = v_addr[i]
                    size = v_size[i]
                    ssn = v_ssn[i]
                    c_stores += 1
                    memory_write(addr, size, v_value[i])
                    if ssn != ssn_commit + 1:
                        raise ValueError(
                            f"stores must commit in SSN order: expected "
                            f"{ssn_commit + 1}, got {ssn}")
                    ssn_commit = ssn
                    sq_release(ssn)
                    store_by_ssn_pop(ssn, None)
                    if fast_store_commit:
                        svw_ssbf_update(addr, size, ssn)
                        svw_spct_update(addr, size, v_pc[i])
                        svw_stats.ssbf_writes += 1
                        svw_stats.spct_writes += 1
                    else:
                        policy_store_committed(v_pc[i], ssn, addr, size)
                    hier_store_touch(addr)
                    waiters = dly_waiters_pop(ssn, None)
                    if waiters:
                        for wtok in waiters:
                            wi = wtok & mask
                            if v_tok[wi] != wtok or v_squashed[wi] \
                                    or not v_wait_dly[wi]:
                                continue
                            v_wait_dly[wi] = 0
                            v_dly_clear[wi] = cycle
                            if v_issued[wi] or v_ready_pushed[wi]:
                                continue
                            if v_wait_srcs[wi] == 0 and not v_wait_fwd[wi]:
                                if v_other_ready[wi] < 0:
                                    v_other_ready[wi] = cycle
                                v_ready_pushed[wi] = 1
                                ready_count += 1
                                heappush(heaps[v_iclass[wi]], v_seq[wi])
                elif kind == KIND_LOAD:
                    addr = v_addr[i]
                    size = v_size[i]
                    c_loads += 1
                    if not lq_seqs:
                        raise RuntimeError("release from an empty load queue")
                    if lq_seqs[0] != seq0:
                        raise ValueError(
                            f"loads must commit in order: head seq "
                            f"{lq_seqs[0]}, got {seq0}")
                    lq_popleft()
                    lq_occ -= 1
                    lq_releases += 1

                    correct_value = memory_read(addr, size)
                    svw_ssn = v_svw_ssn[i]
                    if fast_reexec:
                        svw_stats.loads_checked += 1
                        needs_reexec = svw_ssbf_lookup(addr, size) > svw_ssn
                        if needs_reexec:
                            svw_stats.loads_reexecuted += 1
                    else:
                        needs_reexec = policy_needs_reexec(addr, size, svw_ssn)
                    if needs_reexec:
                        c_reexec += 1
                    spec_value = v_spec[i]
                    violation = spec_value != correct_value
                    if violation and not needs_reexec:
                        raise AssertionError(
                            f"SVW filter missed a violation at "
                            f"pc={v_pc[i]:#x} seq={seq0}: "
                            f"spec={spec_value:#x} "
                            f"correct={correct_value:#x}")

                    if v_should_fwd[i]:
                        c_should_fwd += 1
                    if v_forwarded[i]:
                        c_fwd += 1
                    dc = v_delay_cycles[i]
                    if dc > 0:
                        c_delayed += 1
                        c_delay_cycles += dc

                    info = load_info_new(load_info_cls)
                    info.pc = v_pc[i]
                    info.addr = addr
                    info.size = size
                    info.spec_value = spec_value
                    info.correct_value = correct_value
                    info.forwarded = bool(v_forwarded[i])
                    info.forward_ssn = v_fwd_ssn[i]
                    info.prediction = v_pred[i] or LoadPrediction()
                    info.ssn_at_rename = v_ssn_ren[i]
                    info.ssn_cmt = ssn_commit
                    info.violation = violation
                    policy_load_committed(info)

                    if violation:
                        c_violations += 1
                        if v_should_fwd[i]:
                            c_misfwd += 1
                        # ------------------------------------ flush (inline) --
                        c_flushes += 1
                        while rob_seqs and rob_seqs[-1] > seq0:
                            vseq = rob_drop()
                            rob_occ -= 1
                            vi = vseq & mask
                            v_squashed[vi] = 1
                            c_squashed += 1
                            undo = v_rat_undo[vi]
                            if undo is not None:
                                rat_map[undo[0]] = undo[1]
                            if not v_issued[vi]:
                                iq_occ -= 1
                            vkind = v_kind[vi]
                            if vkind == KIND_STORE:
                                vssn = v_ssn[vi]
                                policy_store_squashed(v_pc[vi], vssn,
                                                      v_sat_undo[vi])
                                store_by_ssn_pop(vssn, None)
                                oundo = v_oracle_undo[vi]
                                if oundo is not None:
                                    vaddr = v_addr[vi]
                                    for off, previous in enumerate(oundo):
                                        byte_addr = vaddr + off
                                        current = last_writer_get(byte_addr)
                                        if current is not None \
                                                and current[0] == vseq:
                                            if previous is None:
                                                del last_writer[byte_addr]
                                            else:
                                                last_writer[byte_addr] = \
                                                    previous
                            elif vkind == KIND_LOAD:
                                pred = v_pred[vi]
                                if pred is not None and pred.dly_ssn:
                                    waiters = dly_waiters_get(pred.dly_ssn)
                                    if waiters:
                                        vtok = v_tok[vi]
                                        if vtok in waiters:
                                            waiters.remove(vtok)
                        sq_squash_younger(v_ssn_ren[i])
                        while lq_seqs and lq_seqs[-1] > seq0:
                            lq_drop()
                            lq_occ -= 1
                            lq_squashes += 1
                        # Inlined SSNAllocator.rewind_rename: the target is
                        # clamped to [ssn_commit, ssn_rename] by construction.
                        ren = v_ssn_ren[i]
                        ssn_rename = ren if ren > ssn_commit else ssn_commit
                        fetch_seq = seq0 + 1
                        fetch_resume = cycle + flush_penalty
                        if fetch_blocked_tok >= 0 \
                                and v_squashed[fetch_blocked_tok & mask]:
                            fetch_blocked_tok = -1
                        break
                elif kind == KIND_BRANCH:
                    c_branches += 1

        # ---------------------------------------------------------- issue --
        if ready_count:
            budgets = [limit_int, limit_fp, limit_branch, limit_load,
                       limit_store]
            total_budget = issue_width
            heads = [None, None, None, None, None]
            for x in range(5):
                if budgets[x] > 0:
                    heap = heaps[x]
                    while heap:
                        s = heap[0]
                        j = s & mask
                        if v_seq[j] != s or v_squashed[j] or v_issued[j] \
                                or not v_ready_pushed[j]:
                            heappop(heap)
                            ready_count -= 1
                        else:
                            break
                    if heap:
                        heads[x] = heap[0]
            while total_budget > 0:
                best_i = -1
                best_seq = None
                for x in range(5):
                    s = heads[x]
                    if s is not None and (best_seq is None or s < best_seq):
                        best_seq = s
                        best_i = x
                if best_i < 0:
                    break
                heap = heaps[best_i]
                if best_i == 3 and mlp_hier is not None \
                        and mlp_would_block(v_addr[heap[0] & mask], cycle):
                    # Structural stall: MSHR file full and the oldest ready
                    # load needs a new fill; the whole class holds.
                    heads[3] = None
                    c_mshr_stall += 1
                    continue
                s = heappop(heap)
                ready_count -= 1
                i = s & mask
                budgets[best_i] -= 1
                total_budget -= 1
                if budgets[best_i] > 0:
                    while heap:
                        s2 = heap[0]
                        j = s2 & mask
                        if v_seq[j] != s2 or v_squashed[j] or v_issued[j] \
                                or not v_ready_pushed[j]:
                            heappop(heap)
                            ready_count -= 1
                        else:
                            break
                    heads[best_i] = heap[0] if heap else None
                else:
                    heads[best_i] = None
                v_issued[i] = 1
                iq_occ -= 1
                if v_kind[i] == KIND_LOAD:
                    # ------------------------------- execute load (inline) --
                    addr = v_addr[i]
                    size = v_size[i]
                    prediction = v_pred[i] or LoadPrediction()
                    v_should_fwd[i] = 1 if v_oracle_dep[i] > ssn_commit else 0
                    decision = policy_forward(addr, size, v_ssn_ren[i],
                                              prediction, sq)
                    if mlp_hier is not None:
                        cache_latency = mlp_load_access(addr, cycle, v_pc[i])
                    else:
                        cache_latency = hier_load_latency(addr)
                    if decision.forwarded:
                        v_forwarded[i] = 1
                        fwd_ssn = decision.forward_ssn
                        v_fwd_ssn[i] = fwd_ssn
                        value = decision.value
                        v_spec[i] = value if value is not None else 0
                        v_svw_ssn[i] = fwd_ssn
                        actual = policy_forwarded_latency(l1_latency)
                    else:
                        v_spec[i] = memory_read(addr, size)
                        v_svw_ssn[i] = ssn_commit
                        actual = cache_latency
                    assumed = policy_assumed_latency(prediction, l1_latency)
                    if actual > assumed:
                        c_replays += 1
                        actual += replay_penalty
                    latency = actual
                    # DDP delay accounting: ready-to-clear interval.
                    dly_clear = v_dly_clear[i]
                    if dly_clear >= 0:
                        orc = v_other_ready[i]
                        if orc >= 0:
                            delay = dly_clear - orc
                            if delay > 0:
                                v_delay_cycles[i] = delay
                else:
                    latency = v_lat[i]
                completion_cycle = cycle + latency
                v_completion[i] = completion_cycle
                tok = v_tok[i]
                bucket = completions_get(completion_cycle)
                if bucket is None:
                    completions[completion_cycle] = [tok]
                else:
                    bucket.append(tok)

        # ------------------------------------------------------- dispatch --
        if cycle < fetch_resume or fetch_blocked_tok >= 0:
            c_fetch_stall += 1
        elif fetch_seq < total:
            dispatched = 0
            taken_budget = taken_per_cycle
            while True:
                si = sidx[fetch_seq]
                kind = kind_arr[si]

                if rob_occ >= rob_size:
                    c_rob_stall += 1
                    break
                if iq_occ >= iq_size:
                    c_iq_stall += 1
                    break
                if kind == KIND_LOAD:
                    if lq_occ >= lq_size:
                        c_lq_stall += 1
                        break
                elif kind == KIND_STORE:
                    if len(sq_entries) >= sq_size:
                        c_sq_stall += 1
                        break

                rseq = fetch_seq
                i = rseq & mask
                disp += 1
                tok = (disp << tok_shift) | i
                v_tok[i] = tok
                v_seq[i] = rseq
                v_kind[i] = kind
                pc = pc_arr[si]
                v_pc[i] = pc
                dest = dest_arr[si]
                v_dest[i] = dest
                v_iclass[i] = iidx_arr[si]
                v_lat[i] = latency_arr[si]
                v_squashed[i] = 0
                v_issued[i] = 0
                v_completed[i] = 0
                v_consumers[i] = None
                v_ready_pushed[i] = 0
                v_other_ready[i] = -1
                # (v_completion is only read behind v_completed, which the
                # issue stage always sets first — no reset store needed.)
                v_rat_undo[i] = None
                fetch_seq = rseq + 1
                dispatched += 1

                rob_push(rseq)
                rob_occ += 1
                rob_alloc += 1
                if rob_occ > rob_maxocc:
                    rob_maxocc = rob_occ
                iq_occ += 1

                wait_srcs = 0
                for src in srcs_arr[si]:
                    if src == reg_zero:
                        continue
                    pseq = rat_map[src]
                    if pseq == arch_ready:
                        continue
                    pi = pseq & mask
                    if v_seq[pi] != pseq or v_completed[pi] or v_squashed[pi]:
                        continue
                    wait_srcs += 1
                    consumers = v_consumers[pi]
                    if consumers is None:
                        v_consumers[pi] = [tok]
                    else:
                        consumers.append(tok)
                v_wait_srcs[i] = wait_srcs

                if dest is not None and dest != reg_zero:
                    v_rat_undo[i] = (dest, rat_map[dest])
                    rat_map[dest] = rseq

                wait_fwd = 0
                wait_dly = 0
                if kind == KIND_LOAD:
                    v_spec[i] = 0
                    v_forwarded[i] = 0
                    v_fwd_ssn[i] = 0
                    v_svw_ssn[i] = 0
                    v_should_fwd[i] = 0
                    v_delay_cycles[i] = 0
                    v_dly_clear[i] = -1
                    v_addr[i] = addr = addr_arr[rseq]
                    v_size[i] = size = size_arr[rseq]
                    v_ssn_ren[i] = ssn_rename
                    lq_push(rseq)
                    lq_occ += 1
                    lq_allocs += 1

                    oracle_ssn = 0
                    for byte_addr in range(addr, addr + size):
                        entry = last_writer_get(byte_addr)
                        if entry is not None and entry[1] > oracle_ssn:
                            oracle_ssn = entry[1]
                    v_oracle_dep[i] = oracle_ssn

                    v_pred[i] = prediction = policy_predict_load(
                        pc, ssn_rename, ssn_commit, oracle_ssn)

                    # Constraint 1: predicted forwarding store must have
                    # executed.
                    fwd_ssn = prediction.fwd_ssn
                    if fwd_ssn and fwd_ssn > ssn_commit:
                        stok = store_by_ssn_get(fwd_ssn)
                        if stok is not None:
                            sj = stok & mask
                            if v_tok[sj] == stok and not v_completed[sj] \
                                    and not v_squashed[sj]:
                                wait_fwd = 1
                                waiters = v_fwd_waiters[sj]
                                if waiters is None:
                                    v_fwd_waiters[sj] = [tok]
                                else:
                                    waiters.append(tok)
                                c_waited += 1

                    # Constraint 2: delay-index store must have committed.
                    dly_ssn = prediction.dly_ssn
                    if dly_ssn and dly_ssn > ssn_commit:
                        wait_dly = 1
                        waiters = dly_waiters_get(dly_ssn)
                        if waiters is None:
                            dly_waiters[dly_ssn] = [tok]
                        else:
                            waiters.append(tok)
                elif kind == KIND_STORE:
                    v_fwd_waiters[i] = None
                    v_addr[i] = addr = addr_arr[rseq]
                    v_size[i] = size = size_arr[rseq]
                    v_value[i] = value_arr[rseq]
                    # Inlined SSNAllocator.allocate + the wrap check (one
                    # mask test covers both the allocator's wrap counter and
                    # the modelled drain event).
                    ssn_rename = ssn = ssn_rename + 1
                    v_ssn[i] = ssn
                    if not ssn & ssn_wrap_mask:
                        ssn_hw_wraps += 1
                        if model_ssn_wrap:
                            c_ssn_wraps += 1
                            resume = cycle + ssn_wrap_drain_penalty
                            if resume > fetch_resume:
                                fetch_resume = resume
                    sq_entry = sq_entry_new(sq_entry_cls)
                    sq_entry.ssn = ssn
                    sq_entry.pc = pc
                    sq_entry.seq = rseq
                    sq_entry.addr = None
                    sq_entry.size = 0
                    sq_entry.value = 0
                    sq_entry.executed = False
                    sq_entries.append(sq_entry)
                    sq_slots[ssn & sq_size_mask] = sq_entry
                    sq_stats.allocations += 1
                    store_by_ssn[ssn] = tok
                    v_sat_undo[i] = policy_store_renamed(pc, ssn)

                    entry = (rseq, ssn)
                    undo = []
                    undo_append = undo.append
                    for byte_addr in range(addr, addr + size):
                        undo_append(last_writer_get(byte_addr))
                        last_writer[byte_addr] = entry
                    v_oracle_undo[i] = undo

                    # Store-store serialisation (original Store Sets only).
                    dep_ssn = policy_store_dependence(pc, ssn)
                    if dep_ssn:
                        dtok = store_by_ssn_get(dep_ssn)
                        if dtok is not None:
                            dj = dtok & mask
                            if v_tok[dj] == dtok and not v_completed[dj] \
                                    and not v_squashed[dj]:
                                wait_fwd = 1
                                waiters = v_fwd_waiters[dj]
                                if waiters is None:
                                    v_fwd_waiters[dj] = [tok]
                                else:
                                    waiters.append(tok)
                elif kind == KIND_BRANCH:
                    taken = taken_arr[rseq]
                    target = target_arr[rseq]
                    mispredicted = branch_resolve(
                        pc, taken, target if target >= 0 else None,
                        hint_call_arr[si], hint_return_arr[si])
                    v_mispred[i] = 1 if mispredicted else 0
                    if mispredicted:
                        c_mispred += 1
                v_wait_fwd[i] = wait_fwd
                v_wait_dly[i] = wait_dly

                # Freshly dispatched record: never squashed/issued/pushed.
                if wait_srcs == 0 and not wait_fwd:
                    v_other_ready[i] = cycle
                    if not wait_dly:
                        v_ready_pushed[i] = 1
                        ready_count += 1
                        heappush(heaps[v_iclass[i]], rseq)

                if kind == KIND_BRANCH:
                    if mispredicted:
                        fetch_blocked_tok = tok
                        break
                    if taken:
                        taken_budget -= 1
                        if taken_budget <= 0:
                            break
                if dispatched >= rename_width or fetch_seq >= total:
                    break

        # ----------------------------------------- warm-up / exit plumbing --
        if not warmup_done and committed_total >= warmup_committed:
            warmup_done = True
            warmup_cycle_offset = cycle
            warmup_instr_offset = committed_total
            warmup_l1 = hier_stats.l1_misses
            warmup_l2 = hier_stats.l2_misses
            if mlp_hier is not None:
                mlp_base = mlp_hier.mlp_stats.snapshot()
            c_stores = c_loads = c_branches = 0
            c_reexec = c_should_fwd = c_fwd = c_delayed = c_delay_cycles = 0
            c_violations = c_misfwd = c_flushes = c_squashed = 0
            c_mispred = c_replays = c_ssn_wraps = 0
            c_fetch_stall = c_rob_stall = c_iq_stall = 0
            c_lq_stall = c_sq_stall = c_waited = c_mshr_stall = 0

        if committed_now:
            last_commit_cycle = cycle
        elif cycle - last_commit_cycle > deadlock_limit:
            ready = sum(len(heap) for heap in heaps)
            raise RuntimeError(
                f"simulation deadlock at cycle {cycle}: "
                f"{committed_total}/{total} committed, "
                f"ROB={rob_occ}, ready={ready}, fetch_seq={fetch_seq}")
        if cycle >= max_cycles_eff:
            break

    # ------------------------------------------------------------ write-back --
    stats = SimStats()
    stats.committed = committed_total
    stats.committed_stores = c_stores
    stats.committed_loads = c_loads
    stats.committed_branches = c_branches
    stats.loads_reexecuted = c_reexec
    stats.loads_should_forward = c_should_fwd
    stats.loads_forwarded = c_fwd
    stats.loads_delayed = c_delayed
    stats.total_delay_cycles = c_delay_cycles
    stats.ordering_violations = c_violations
    stats.mis_forwardings = c_misfwd
    stats.flushes = c_flushes
    stats.squashed_uops = c_squashed
    stats.branch_mispredictions = c_mispred
    stats.replays = c_replays
    stats.ssn_wraps = c_ssn_wraps
    stats.fetch_stall_cycles = c_fetch_stall
    stats.rob_stall_cycles = c_rob_stall
    stats.iq_stall_cycles = c_iq_stall
    stats.lq_stall_cycles = c_lq_stall
    stats.sq_stall_cycles = c_sq_stall
    stats.loads_waited_on_prediction = c_waited
    stats.mshr_stall_cycles = c_mshr_stall
    core.stats = stats
    core._cycle = cycle
    core._fetch_seq = fetch_seq
    core._fetch_resume_cycle = fetch_resume
    core._iq_occupancy = iq_occ
    core._ready_count = ready_count
    ssn_alloc.ssn_rename = ssn_rename
    ssn_alloc.ssn_commit = ssn_commit
    ssn_alloc.wraps = ssn_hw_wraps
    rob.allocations = rob_alloc
    rob.max_occupancy = rob_maxocc
    lq_stats.allocations = lq_allocs
    lq_stats.releases = lq_releases
    lq_stats.squashes = lq_squashes
    return (warmup_cycle_offset, warmup_instr_offset, warmup_l1, warmup_l2,
            mlp_base)

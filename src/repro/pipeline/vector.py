"""Detailed-core kernel seam: object / vector / compiled behind `REPRO_KERNEL`.

The reproduction ships three bit-identical detailed-core kernels:

``object``
    :class:`~repro.pipeline.core.OutOfOrderCore` as-is — per-uop
    ``_Inflight`` records, the reference implementation.
``vector``
    :class:`VectorCore` — struct-of-arrays dynamic state and a single
    fused dispatch/issue/wakeup/commit loop
    (:mod:`repro.pipeline._vector_loop`), pure Python, always available.
``compiled``
    :class:`CompiledCore` — the same fused loop built into a native
    extension (``repro.pipeline._kernel``) by ``tools/build_kernel.py``
    via Cython or mypyc, whichever the environment provides.  Optional:
    when the extension is absent, selecting it raises
    :class:`~repro.exec.resilience.EnvKnobError`.

Selection is runtime-only via the ``REPRO_KERNEL`` environment knob
(``object`` / ``vector`` / ``compiled`` / ``auto``, validated in
:mod:`repro.exec.resilience`).  ``auto`` — and an unset knob — picks the
fastest available kernel: ``compiled`` when the extension is built, else
``vector``.  The knob is *execution-only*: like ``REPRO_BACKEND`` it
never enters any result-cache or snapshot key (``job_key`` hashes spec
fields and source fingerprints, not the environment), because every
kernel produces bit-identical results — enforced by the golden
regression, the equivalence suites, and the kernel property tests.

The vector kernel falls back to the object loop (``super().run()``)
whenever its fused loop could not honour the caller's customisations:
non-encoded traces (the back-compat MicroOp path) and subclasses that
override any of the object kernel's stage methods (the ``_fast_*``
discipline, extended to whole stages).
"""

from __future__ import annotations

from typing import Optional

from repro.exec.resilience import EnvKnobError, resolve_kernel_name
from repro.isa.plane import EncodedOps
from repro.pipeline._vector_loop import run_core_loop
from repro.pipeline.core import OutOfOrderCore, SimulationResult

#: Stage methods of the object kernel that the fused vector loop inlines.
#: A subclass overriding any of them expects the object-kernel call
#: structure, so :meth:`VectorCore.run` falls back to ``super().run()``
#: (mirroring how ``_fast_reexec`` / ``_fast_store_commit`` fall back to
#: policy methods on override).
_LOOP_METHODS = (
    "run",
    "_bind_trace",
    "_warm_caches",
    "_peek_kind",
    "_ready_is_empty",
    "_skip_idle_cycles",
    "_account_idle",
    "_process_completions",
    "_clear_fwd_wait",
    "_maybe_ready",
    "_commit_stage",
    "_flush_after",
    "_undo_last_writer",
    "_issue_stage",
    "_execute_load",
    "_make_dispatch_enc",
)


def compiled_kernel_available() -> bool:
    """True when the optional native extension is importable."""
    try:
        from repro.pipeline import _kernel  # noqa: F401
    except ImportError:
        return False
    return True


class VectorCore(OutOfOrderCore):
    """Struct-of-arrays detailed core (the ``vector`` kernel).

    Bit-identical to :class:`OutOfOrderCore` by contract; only the data
    layout and loop structure differ.  Dynamic in-flight state lives in
    parallel arrays indexed by ROB slot, allocated once per run, and the
    per-cycle stage pipeline is fused into one loop with no per-uop
    object allocation (:mod:`repro.pipeline._vector_loop`).

    ``export_state`` / ``import_state`` are inherited unchanged: they
    bundle only long-lived machine state (hierarchy, predictors, memory,
    SSN counters, last-writer map), which both kernels share — so
    checkpoints and functional warm-up ride either kernel transparently.
    """

    kernel_name = "vector"

    #: The fused loop this kernel runs (CompiledCore rebinds it).
    _loop = staticmethod(run_core_loop)

    @classmethod
    def _stock_loop(cls) -> bool:
        """True when no subclass overrode an inlined stage method."""
        cached = cls.__dict__.get("_stock_loop_ok")
        if cached is None:
            cached = all(
                getattr(cls, name) is getattr(VectorCore, name)
                or getattr(cls, name) is getattr(OutOfOrderCore, name)
                for name in _LOOP_METHODS)
            cls._stock_loop_ok = cached
        return cached

    def run(self, trace, warm_memory: bool = True,
            stats_warmup_fraction: float = 0.0,
            stats_warmup_instructions: Optional[int] = None,
            stats_measure_instructions: Optional[int] = None) -> SimulationResult:
        if not isinstance(trace, EncodedOps) or not type(self)._stock_loop():
            # Back-compat MicroOp path or customised stages: the object
            # kernel's loop is the one that honours them.
            return super().run(
                trace, warm_memory=warm_memory,
                stats_warmup_fraction=stats_warmup_fraction,
                stats_warmup_instructions=stats_warmup_instructions,
                stats_measure_instructions=stats_measure_instructions)

        if not 0.0 <= stats_warmup_fraction < 1.0:
            raise ValueError("stats_warmup_fraction must be in [0, 1)")
        # Per-run trace binding, minus the object path's per-uop record
        # array (the fused loop's slot arrays replace it).
        self._trace_name = getattr(trace, "name", "trace")
        policy_type = type(self.policy)
        from repro.lsu.policies import SQPolicy
        self._fast_reexec = (policy_type.needs_reexecution
                             is SQPolicy.needs_reexecution)
        self._fast_store_commit = (policy_type.store_committed
                                   is SQPolicy.store_committed)
        self._encoded = trace
        self._uops = []
        self._total = total = len(trace)
        if warm_memory:
            self._warm_caches()

        if stats_warmup_instructions is not None:
            if not 0 <= stats_warmup_instructions < max(total, 1):
                raise ValueError(
                    "stats_warmup_instructions must be in [0, len(trace))")
            warmup_committed = stats_warmup_instructions
        else:
            warmup_committed = int(total * stats_warmup_fraction)
        stop_committed = total
        if stats_measure_instructions is not None:
            if stats_measure_instructions <= 0:
                raise ValueError("stats_measure_instructions must be positive")
            stop_committed = min(total,
                                 warmup_committed + stats_measure_instructions)

        (warmup_cycle_offset, warmup_instr_offset, warmup_l1_misses,
         warmup_l2_misses, mlp_base) = self._loop(
            self, trace, warmup_committed, stop_committed)

        # Result assembly, identical to the object kernel's tail.
        stats = self.stats
        stats.cycles = self._cycle - warmup_cycle_offset
        stats.committed -= warmup_instr_offset
        stats.l1_misses = self.hierarchy.stats.l1_misses - warmup_l1_misses
        stats.l2_misses = self.hierarchy.stats.l2_misses - warmup_l2_misses
        extra = {
            "branch_misprediction_rate": self.branch_unit.misprediction_rate,
            "svw_reexecution_rate": self.policy.svw.stats.reexecution_rate,
            "l1_miss_rate": self.hierarchy.stats.l1_miss_rate(),
            "rob_max_occupancy": float(self.rob.max_occupancy),
        }
        mlp_hier = self._mlp_hier
        if mlp_hier is not None:
            mlp_stats = mlp_hier.mlp_stats
            delta = [after - before
                     for after, before in zip(mlp_stats.snapshot(), mlp_base)]
            stats.mshr_modeled = 1
            stats.mshr_demand_misses = delta[0]
            stats.misses_coalesced = delta[1]
            stats.mshr_inflight_sum = delta[2]
            stats.prefetch_issued = delta[3]
            stats.prefetch_useful = delta[4]
            stats.mshr_occupancy = mlp_stats.occupancy_peak
            extra["mlp_avg"] = stats.mlp_avg
            extra["mshr_occupancy"] = float(stats.mshr_occupancy)
        return SimulationResult(workload=self._trace_name,
                                policy=self.policy.name,
                                stats=stats, config=self.config, extra=extra)


class CompiledCore(VectorCore):
    """The ``compiled`` kernel: the fused loop as a native extension.

    Instantiating it when ``repro.pipeline._kernel`` is not built raises
    :class:`EnvKnobError` with the build instructions.
    """

    kernel_name = "compiled"

    def __init__(self, config, policy) -> None:
        try:
            from repro.pipeline import _kernel
        except ImportError as exc:
            raise EnvKnobError(
                "REPRO_KERNEL=compiled but the compiled kernel is not "
                "built; run `python tools/build_kernel.py` (needs Cython "
                "or mypyc) or unset REPRO_KERNEL") from exc
        # Rebind the loop once, on first successful construction.
        type(self)._loop = staticmethod(_kernel.run_core_loop)
        super().__init__(config, policy)


_KERNEL_CLASSES = {
    "object": OutOfOrderCore,
    "vector": VectorCore,
    "compiled": CompiledCore,
}


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve the effective kernel name.

    ``kernel`` overrides the environment; otherwise ``REPRO_KERNEL`` is
    consulted (validated — unknown names raise :class:`EnvKnobError`).
    ``None``/``auto`` picks ``compiled`` when the extension is built,
    else ``vector``.
    """
    name = kernel if kernel is not None else resolve_kernel_name()
    if name is None or name == "auto":
        return "compiled" if compiled_kernel_available() else "vector"
    if name not in _KERNEL_CLASSES:
        raise EnvKnobError(
            f"unknown kernel {name!r}: expected one of "
            f"{', '.join(_KERNEL_CLASSES)}, or auto")
    return name


def make_core(config, policy, kernel: Optional[str] = None) -> OutOfOrderCore:
    """Construct a detailed core running the selected kernel.

    The single construction seam used by the harness, the execution
    engine's workers, and the sampling driver — everything downstream
    (policies, hierarchies, checkpoints, stats) is kernel-agnostic.
    """
    return _KERNEL_CLASSES[resolve_kernel(kernel)](config, policy)


__all__ = [
    "VectorCore",
    "CompiledCore",
    "compiled_kernel_available",
    "resolve_kernel",
    "make_core",
]

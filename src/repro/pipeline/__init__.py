"""Cycle-level out-of-order core.

The timing model is trace driven: a functional workload generator produces a
dynamic instruction stream and :class:`~repro.pipeline.core.OutOfOrderCore`
replays it through a model of the paper's 8-way, 512-entry-ROB machine
(Section 4.1).  The store-queue behaviour is pluggable via
:mod:`repro.lsu.policies`, which is how the Figure 4 configurations are
built.
"""

from repro.pipeline.config import CoreConfig, IssueLimits
from repro.pipeline.rename import RegisterAliasTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats
from repro.pipeline.core import OutOfOrderCore, SimulationResult

__all__ = [
    "CoreConfig",
    "IssueLimits",
    "OutOfOrderCore",
    "RegisterAliasTable",
    "ReorderBuffer",
    "SimStats",
    "SimulationResult",
]
